//! SOAP 1.1-style envelopes: typed values, calls, responses, and
//! faults, encoded to and from real XML. "Interaction between the
//! workflow engine and each Web Service instance is supported through
//! pre-defined SOAP messages" (§4.5) — these are those messages.

use crate::error::{Result, WsError};
use crate::xml::{parse, XmlElement};

/// A typed SOAP value (the subset of XSD the toolkit exchanges).
#[derive(Debug, Clone, PartialEq)]
pub enum SoapValue {
    /// `xsd:nil`.
    Null,
    /// `xsd:boolean`.
    Bool(bool),
    /// `xsd:long`.
    Int(i64),
    /// `xsd:double`.
    Double(f64),
    /// `xsd:string`.
    Text(String),
    /// `xsd:base64Binary` (hex-encoded on the wire for simplicity; the
    /// cost model charges the same 2× inflation base64 would, ×1.33).
    Bytes(Vec<u8>),
    /// A sequence of values.
    List(Vec<SoapValue>),
}

impl SoapValue {
    /// XSD-ish type name used on the wire.
    pub fn type_name(&self) -> &'static str {
        match self {
            SoapValue::Null => "nil",
            SoapValue::Bool(_) => "boolean",
            SoapValue::Int(_) => "long",
            SoapValue::Double(_) => "double",
            SoapValue::Text(_) => "string",
            SoapValue::Bytes(_) => "base64Binary",
            SoapValue::List(_) => "list",
        }
    }

    /// Extract a string, or a fault-shaped error.
    pub fn as_text(&self) -> Result<&str> {
        match self {
            SoapValue::Text(s) => Ok(s),
            other => Err(WsError::Malformed(format!(
                "expected string, got {}",
                other.type_name()
            ))),
        }
    }

    /// Extract bytes.
    pub fn as_bytes(&self) -> Result<&[u8]> {
        match self {
            SoapValue::Bytes(b) => Ok(b),
            other => Err(WsError::Malformed(format!(
                "expected bytes, got {}",
                other.type_name()
            ))),
        }
    }

    /// Extract an integer.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            SoapValue::Int(i) => Ok(*i),
            other => Err(WsError::Malformed(format!(
                "expected long, got {}",
                other.type_name()
            ))),
        }
    }

    /// Extract a double.
    pub fn as_double(&self) -> Result<f64> {
        match self {
            SoapValue::Double(d) => Ok(*d),
            SoapValue::Int(i) => Ok(*i as f64),
            other => Err(WsError::Malformed(format!(
                "expected double, got {}",
                other.type_name()
            ))),
        }
    }

    /// Extract a list.
    pub fn as_list(&self) -> Result<&[SoapValue]> {
        match self {
            SoapValue::List(l) => Ok(l),
            other => Err(WsError::Malformed(format!(
                "expected list, got {}",
                other.type_name()
            ))),
        }
    }

    fn to_element(&self, name: &str) -> XmlElement {
        let el = XmlElement::new(name).attr("xsi:type", self.type_name());
        match self {
            SoapValue::Null => el,
            SoapValue::Bool(b) => el.with_text(b.to_string()),
            SoapValue::Int(i) => el.with_text(i.to_string()),
            SoapValue::Double(d) => el.with_text(format_double(*d)),
            SoapValue::Text(s) => el.with_text(s.clone()),
            SoapValue::Bytes(b) => el.with_text(hex_encode(b)),
            SoapValue::List(items) => items
                .iter()
                .fold(el, |acc, item| acc.child(item.to_element("item"))),
        }
    }

    fn from_element(el: &XmlElement) -> Result<SoapValue> {
        let ty = el.attribute("xsi:type").unwrap_or("string");
        Ok(match ty {
            "nil" => SoapValue::Null,
            "boolean" => SoapValue::Bool(el.text == "true"),
            "long" => SoapValue::Int(
                el.text
                    .parse()
                    .map_err(|_| WsError::Malformed(format!("bad long {:?}", el.text)))?,
            ),
            "double" => SoapValue::Double(parse_double(&el.text)?),
            "string" => SoapValue::Text(el.text.clone()),
            "base64Binary" => SoapValue::Bytes(hex_decode(&el.text)?),
            "list" => SoapValue::List(
                el.children
                    .iter()
                    .map(SoapValue::from_element)
                    .collect::<Result<_>>()?,
            ),
            other => return Err(WsError::Malformed(format!("unknown xsi:type {other:?}"))),
        })
    }

    /// Approximate wire size in bytes (used by the transport cost model
    /// so large datasets cost proportionally more to ship).
    pub fn wire_size(&self) -> usize {
        match self {
            SoapValue::Null => 8,
            SoapValue::Bool(_) => 12,
            SoapValue::Int(_) | SoapValue::Double(_) => 24,
            SoapValue::Text(s) => 32 + s.len(),
            SoapValue::Bytes(b) => 32 + b.len() * 4 / 3, // base64 inflation
            SoapValue::List(l) => 32 + l.iter().map(SoapValue::wire_size).sum::<usize>(),
        }
    }
}

fn format_double(d: f64) -> String {
    if d.is_nan() {
        "NaN".to_string()
    } else if d == f64::INFINITY {
        "INF".to_string()
    } else if d == f64::NEG_INFINITY {
        "-INF".to_string()
    } else {
        format!("{d:?}")
    }
}

fn parse_double(s: &str) -> Result<f64> {
    match s {
        "NaN" => Ok(f64::NAN),
        "INF" => Ok(f64::INFINITY),
        "-INF" => Ok(f64::NEG_INFINITY),
        other => other
            .parse()
            .map_err(|_| WsError::Malformed(format!("bad double {other:?}"))),
    }
}

fn hex_encode(b: &[u8]) -> String {
    let mut s = String::with_capacity(b.len() * 2);
    for byte in b {
        s.push_str(&format!("{byte:02x}"));
    }
    s
}

fn hex_decode(s: &str) -> Result<Vec<u8>> {
    if s.len() % 2 != 0 {
        return Err(WsError::Malformed("odd-length hex payload".into()));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&s[i..i + 2], 16)
                .map_err(|_| WsError::Malformed(format!("bad hex at {i}")))
        })
        .collect()
}

/// A SOAP request: target service, operation, and named arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct SoapCall {
    /// Target service name.
    pub service: String,
    /// Operation name.
    pub operation: String,
    /// Named arguments in call order.
    pub args: Vec<(String, SoapValue)>,
}

impl SoapCall {
    /// Create a call.
    pub fn new<S: Into<String>, O: Into<String>>(service: S, operation: O) -> SoapCall {
        SoapCall {
            service: service.into(),
            operation: operation.into(),
            args: Vec::new(),
        }
    }

    /// Builder: append an argument.
    pub fn arg<N: Into<String>>(mut self, name: N, value: SoapValue) -> SoapCall {
        self.args.push((name.into(), value));
        self
    }

    /// Argument lookup by name.
    pub fn get(&self, name: &str) -> Result<&SoapValue> {
        self.args
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
            .ok_or_else(|| WsError::Malformed(format!("missing argument {name:?}")))
    }

    /// Encode as a SOAP envelope.
    pub fn to_envelope(&self) -> String {
        XmlElement::new("soap:Envelope")
            .attr("xmlns:soap", "http://schemas.xmlsoap.org/soap/envelope/")
            .attr("xmlns:xsi", "http://www.w3.org/2001/XMLSchema-instance")
            .child(
                XmlElement::new("soap:Body").child(
                    self.args.iter().fold(
                        XmlElement::new(format!("ns:{}", self.operation))
                            .attr("xmlns:ns", format!("urn:{}", self.service)),
                        |acc, (name, value)| acc.child(value.to_element(name)),
                    ),
                ),
            )
            .to_xml()
    }

    /// Decode a request envelope.
    pub fn from_envelope(xml: &str) -> Result<SoapCall> {
        let doc = parse(xml)?;
        let body = doc
            .find("Body")
            .ok_or_else(|| WsError::Malformed("no soap:Body".into()))?;
        let op = body
            .children
            .first()
            .ok_or_else(|| WsError::Malformed("empty soap:Body".into()))?;
        let service = op
            .attributes
            .iter()
            .find(|(k, _)| k.starts_with("xmlns"))
            .and_then(|(_, v)| v.strip_prefix("urn:"))
            .unwrap_or("")
            .to_string();
        let operation = crate::xml::local_name(&op.name).to_string();
        let args = op
            .children
            .iter()
            .map(|c| Ok((c.name.clone(), SoapValue::from_element(c)?)))
            .collect::<Result<_>>()?;
        Ok(SoapCall {
            service,
            operation,
            args,
        })
    }
}

/// A SOAP response: a result value or a fault.
#[derive(Debug, Clone, PartialEq)]
pub enum SoapResponse {
    /// Successful invocation result.
    Value(SoapValue),
    /// SOAP fault.
    Fault {
        /// Fault code.
        code: String,
        /// Fault string.
        message: String,
    },
}

impl SoapResponse {
    /// Encode as a response envelope.
    pub fn to_envelope(&self, operation: &str) -> String {
        let body = match self {
            SoapResponse::Value(v) => {
                XmlElement::new(format!("{operation}Response")).child(v.to_element("return"))
            }
            SoapResponse::Fault { code, message } => XmlElement::new("soap:Fault")
                .child(XmlElement::new("faultcode").with_text(code.clone()))
                .child(XmlElement::new("faultstring").with_text(message.clone())),
        };
        XmlElement::new("soap:Envelope")
            .attr("xmlns:soap", "http://schemas.xmlsoap.org/soap/envelope/")
            .attr("xmlns:xsi", "http://www.w3.org/2001/XMLSchema-instance")
            .child(XmlElement::new("soap:Body").child(body))
            .to_xml()
    }

    /// Decode a response envelope.
    pub fn from_envelope(xml: &str) -> Result<SoapResponse> {
        let doc = parse(xml)?;
        let body = doc
            .find("Body")
            .ok_or_else(|| WsError::Malformed("no soap:Body".into()))?;
        if let Some(fault) = body.find("Fault") {
            let code = fault
                .find("faultcode")
                .map(|e| e.text.clone())
                .unwrap_or_default();
            let message = fault
                .find("faultstring")
                .map(|e| e.text.clone())
                .unwrap_or_default();
            return Ok(SoapResponse::Fault { code, message });
        }
        let resp = body
            .children
            .first()
            .ok_or_else(|| WsError::Malformed("empty response body".into()))?;
        let ret = resp
            .find("return")
            .ok_or_else(|| WsError::Malformed("no return element".into()))?;
        Ok(SoapResponse::Value(SoapValue::from_element(ret)?))
    }

    /// Convert into a plain result.
    pub fn into_result(self) -> Result<SoapValue> {
        match self {
            SoapResponse::Value(v) => Ok(v),
            SoapResponse::Fault { code, message } => Err(WsError::Fault { code, message }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_envelope_roundtrip() {
        let call = SoapCall::new("Classifier", "classifyInstance")
            .arg("classifier", SoapValue::Text("J48".into()))
            .arg("options", SoapValue::Text("-C 0.25 -M 2".into()))
            .arg("dataset", SoapValue::Bytes(vec![1, 2, 3, 250]))
            .arg("attribute", SoapValue::Text("Class".into()));
        let xml = call.to_envelope();
        assert!(xml.contains("soap:Envelope"));
        let back = SoapCall::from_envelope(&xml).unwrap();
        assert_eq!(back, call);
    }

    #[test]
    fn value_types_roundtrip() {
        let values = vec![
            SoapValue::Null,
            SoapValue::Bool(true),
            SoapValue::Int(-42),
            SoapValue::Double(0.25),
            SoapValue::Double(f64::NAN),
            SoapValue::Text("hello <world> & 'friends'".into()),
            SoapValue::Bytes((0..=255).collect()),
            SoapValue::List(vec![SoapValue::Int(1), SoapValue::Text("two".into())]),
        ];
        for v in values {
            let call = SoapCall::new("S", "op").arg("x", v.clone());
            let back = SoapCall::from_envelope(&call.to_envelope()).unwrap();
            let got = back.get("x").unwrap();
            match (&v, got) {
                (SoapValue::Double(a), SoapValue::Double(b)) if a.is_nan() => {
                    assert!(b.is_nan())
                }
                _ => assert_eq!(got, &v),
            }
        }
    }

    #[test]
    fn response_roundtrip() {
        let r = SoapResponse::Value(SoapValue::Text("tree text".into()));
        let xml = r.to_envelope("classify");
        assert!(xml.contains("classifyResponse"));
        assert_eq!(SoapResponse::from_envelope(&xml).unwrap(), r);
    }

    #[test]
    fn fault_roundtrip_and_into_result() {
        let f = SoapResponse::Fault {
            code: "Server".into(),
            message: "boom".into(),
        };
        let xml = f.to_envelope("classify");
        let back = SoapResponse::from_envelope(&xml).unwrap();
        assert!(matches!(
            back.into_result(),
            Err(WsError::Fault { code, .. }) if code == "Server"
        ));
    }

    #[test]
    fn missing_argument_reported() {
        let call = SoapCall::new("S", "op");
        assert!(call.get("nope").is_err());
    }

    #[test]
    fn accessor_type_mismatch() {
        let v = SoapValue::Int(3);
        assert!(v.as_text().is_err());
        assert_eq!(v.as_double().unwrap(), 3.0);
        assert!(SoapValue::Text("x".into()).as_bytes().is_err());
    }

    #[test]
    fn hex_codec() {
        assert_eq!(hex_encode(&[0, 255, 16]), "00ff10");
        assert_eq!(hex_decode("00ff10").unwrap(), vec![0, 255, 16]);
        assert!(hex_decode("0f0").is_err());
        assert!(hex_decode("zz").is_err());
    }

    #[test]
    fn wire_size_scales_with_payload() {
        let small = SoapValue::Bytes(vec![0; 100]).wire_size();
        let large = SoapValue::Bytes(vec![0; 10_000]).wire_size();
        assert!(large > small * 50);
    }

    #[test]
    fn malformed_envelopes_rejected() {
        assert!(SoapCall::from_envelope("<a/>").is_err());
        assert!(
            SoapResponse::from_envelope("<soap:Envelope><soap:Body/></soap:Envelope>").is_err()
        );
    }
}
