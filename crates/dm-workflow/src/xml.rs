//! Workflow XML: "the ability to export the workflow graph in XML; the
//! GriPhyN DAX standard is also supported" (§2). Taskgraph XML
//! round-trips through a [`crate::toolbox::Toolbox`] (tools are
//! referenced by name); DAX export renders jobs and parent–child
//! dependencies.

use crate::error::{Result, WorkflowError};
use crate::graph::{Cable, TaskGraph};
use crate::toolbox::Toolbox;
use dm_wsrf::xml::{parse, XmlElement};

/// Export a workflow as Triana-style taskgraph XML.
pub fn export_taskgraph(graph: &TaskGraph) -> String {
    let mut root = XmlElement::new("taskgraph").attr("version", "1.0");
    for (id, task) in graph.tasks().iter().enumerate() {
        root = root.child(
            XmlElement::new("task")
                .attr("id", id.to_string())
                .attr("name", task.name.clone())
                .attr("tool", task.tool.name().to_string())
                .attr("package", task.tool.package().to_string()),
        );
    }
    for c in graph.cables() {
        root = root.child(
            XmlElement::new("cable")
                .attr("fromTask", c.from_task.to_string())
                .attr("fromPort", c.from_port.to_string())
                .attr("toTask", c.to_task.to_string())
                .attr("toPort", c.to_port.to_string()),
        );
    }
    root.to_pretty_xml()
}

/// Import taskgraph XML, resolving tool names against `toolbox`.
pub fn import_taskgraph(xml: &str, toolbox: &Toolbox) -> Result<TaskGraph> {
    let doc = parse(xml).map_err(|e| WorkflowError::Xml(e.to_string()))?;
    if doc.name != "taskgraph" {
        return Err(WorkflowError::Xml(format!(
            "expected <taskgraph>, got <{}>",
            doc.name
        )));
    }
    let mut graph = TaskGraph::new();
    for task_el in doc.find_all("task") {
        let name = task_el
            .attribute("name")
            .ok_or_else(|| WorkflowError::Xml("task without name".into()))?;
        let tool_name = task_el
            .attribute("tool")
            .ok_or_else(|| WorkflowError::Xml("task without tool".into()))?;
        let tool = toolbox.find(tool_name)?;
        graph.add_named_task(name, tool);
    }
    for cable_el in doc.find_all("cable") {
        let get = |attr: &str| -> Result<usize> {
            cable_el
                .attribute(attr)
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| WorkflowError::Xml(format!("cable missing {attr}")))
        };
        graph.connect(
            get("fromTask")?,
            get("fromPort")?,
            get("toTask")?,
            get("toPort")?,
        )?;
    }
    Ok(graph)
}

/// Export a workflow as a GriPhyN-DAX-style document: one `<job>` per
/// task and `<child>/<parent>` dependency records.
pub fn export_dax(graph: &TaskGraph) -> String {
    let mut root = XmlElement::new("adag")
        .attr("xmlns", "http://pegasus.isi.edu/schema/DAX")
        .attr("version", "2.1")
        .attr("jobCount", graph.num_tasks().to_string())
        .attr("childCount", count_children(graph.cables()).to_string());
    for (id, task) in graph.tasks().iter().enumerate() {
        root = root.child(
            XmlElement::new("job")
                .attr("id", format!("ID{id:06}"))
                .attr("name", task.name.clone())
                .attr("namespace", task.tool.package().to_string()),
        );
    }
    // Group dependencies by child.
    let mut children: Vec<usize> = graph.cables().iter().map(|c| c.to_task).collect();
    children.sort_unstable();
    children.dedup();
    for child in children {
        let mut el = XmlElement::new("child").attr("ref", format!("ID{child:06}"));
        let mut parents: Vec<usize> = graph
            .cables()
            .iter()
            .filter(|c| c.to_task == child)
            .map(|c| c.from_task)
            .collect();
        parents.sort_unstable();
        parents.dedup();
        for p in parents {
            el = el.child(XmlElement::new("parent").attr("ref", format!("ID{p:06}")));
        }
        root = root.child(el);
    }
    root.to_pretty_xml()
}

fn count_children(cables: &[Cable]) -> usize {
    let mut children: Vec<usize> = cables.iter().map(|c| c.to_task).collect();
    children.sort_unstable();
    children.dedup();
    children.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Executor;
    use crate::graph::Token;
    use std::collections::HashMap;

    fn sample() -> (TaskGraph, Toolbox) {
        let toolbox = Toolbox::with_common_tools();
        let mut g = TaskGraph::new();
        let src = g.add_named_task("source", toolbox.find("StringGen").unwrap());
        let up = g.add_named_task("upper", toolbox.find("ToUpperCase").unwrap());
        let cat = g.add_named_task("join", toolbox.find("StringConcat").unwrap());
        g.connect(src, 0, up, 0).unwrap();
        g.connect(up, 0, cat, 0).unwrap();
        g.connect(src, 0, cat, 1).unwrap();
        (g, toolbox)
    }

    #[test]
    fn taskgraph_roundtrip() {
        let (g, toolbox) = sample();
        let xml = export_taskgraph(&g);
        assert!(xml.contains("<taskgraph"));
        assert!(xml.contains("tool=\"ToUpperCase\""));
        let imported = import_taskgraph(&xml, &toolbox).unwrap();
        assert_eq!(imported.num_tasks(), 3);
        assert_eq!(imported.cables(), g.cables());
        assert_eq!(imported.task(1).unwrap().name, "upper");
    }

    #[test]
    fn imported_graph_is_runnable() {
        let (g, toolbox) = sample();
        let imported = import_taskgraph(&export_taskgraph(&g), &toolbox).unwrap();
        // StringGen default is empty text; bind nothing — zero-input tool.
        let report = Executor::serial().run(&imported, &HashMap::new()).unwrap();
        let cat = imported.find_task("join").unwrap();
        assert_eq!(report.output(cat, 0), Some(&Token::Text(String::new())));
    }

    #[test]
    fn unknown_tool_rejected_on_import() {
        let xml = "<taskgraph><task id=\"0\" name=\"x\" tool=\"Nope\" package=\"P\"/></taskgraph>";
        let toolbox = Toolbox::with_common_tools();
        assert!(matches!(
            import_taskgraph(xml, &toolbox),
            Err(WorkflowError::UnknownTool(_))
        ));
    }

    #[test]
    fn malformed_xml_rejected() {
        let toolbox = Toolbox::new();
        assert!(import_taskgraph("<nope/>", &toolbox).is_err());
        assert!(import_taskgraph("not xml", &toolbox).is_err());
    }

    #[test]
    fn dax_export_structure() {
        let (g, _) = sample();
        let dax = export_dax(&g);
        assert!(dax.contains("<adag"));
        assert!(dax.contains("jobCount=\"3\""));
        assert!(dax.contains("childCount=\"2\"")); // tasks 1 and 2 have parents
        assert!(dax.contains("<job id=\"ID000000\""));
        // Task 2 (join) depends on 0 and 1.
        assert!(dax.contains("<child ref=\"ID000002\">"));
        assert!(dax.contains("<parent ref=\"ID000001\"/>"));
    }

    #[test]
    fn dax_deduplicates_parents() {
        let toolbox = Toolbox::with_common_tools();
        let mut g = TaskGraph::new();
        let src = g.add_task(toolbox.find("StringGen").unwrap());
        let cat = g.add_task(toolbox.find("StringConcat").unwrap());
        g.connect(src, 0, cat, 0).unwrap();
        g.connect(src, 0, cat, 1).unwrap();
        let dax = export_dax(&g);
        let count = dax.matches("<parent ref=\"ID000000\"/>").count();
        assert_eq!(count, 1);
    }
}
