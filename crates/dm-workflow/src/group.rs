//! Hierarchical services: "Additional support is provided to enable
//! service hierarchy, i.e. a single service made up of a number of
//! others and made available as a single interface" (§2).
//!
//! A [`GroupTool`] wraps a whole sub-workflow behind a single tool
//! interface: its input ports are the group's designated unbound inputs
//! and its output ports the designated outputs; executing the group
//! enacts the inner graph.

use crate::engine::Executor;
use crate::error::{Result, WorkflowError};
use crate::graph::{PortSpec, TaskGraph, TaskId, Token, Tool};
use std::collections::HashMap;

/// A sub-workflow exposed as a single tool.
pub struct GroupTool {
    // (No derived Debug: the wrapped graph holds `dyn Tool` objects.)
    name: String,
    graph: TaskGraph,
    /// Exposed inputs: `(task, input port)` in interface order.
    inputs: Vec<(TaskId, usize)>,
    /// Exposed outputs: `(task, output port)` in interface order.
    outputs: Vec<(TaskId, usize)>,
}

impl std::fmt::Debug for GroupTool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupTool")
            .field("name", &self.name)
            .field("tasks", &self.graph.num_tasks())
            .field("inputs", &self.inputs)
            .field("outputs", &self.outputs)
            .finish()
    }
}

impl GroupTool {
    /// Group `graph` behind a single interface. `inputs` and `outputs`
    /// name the inner ports to expose; every other unbound inner input
    /// must be listed (they have no other way to receive data).
    pub fn new<N: Into<String>>(
        name: N,
        graph: TaskGraph,
        inputs: Vec<(TaskId, usize)>,
        outputs: Vec<(TaskId, usize)>,
    ) -> Result<GroupTool> {
        // Validate exposed ports exist and all unbound inputs are exposed.
        for &(t, p) in &inputs {
            let node = graph.task(t)?;
            if p >= node.tool.input_ports().len() {
                return Err(WorkflowError::UnknownPort {
                    task: t,
                    port: p,
                    input: true,
                });
            }
        }
        for &(t, p) in &outputs {
            let node = graph.task(t)?;
            if p >= node.tool.output_ports().len() {
                return Err(WorkflowError::UnknownPort {
                    task: t,
                    port: p,
                    input: false,
                });
            }
        }
        for t in 0..graph.num_tasks() {
            for (p, spec) in graph.unconnected_inputs(t)? {
                if !inputs.contains(&(t, p)) {
                    return Err(WorkflowError::UnboundInput {
                        task: graph.task(t)?.name.clone(),
                        port: spec.name,
                    });
                }
            }
        }
        Ok(GroupTool {
            name: name.into(),
            graph,
            inputs,
            outputs,
        })
    }

    /// The wrapped graph (for XML export of hierarchies).
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }
}

impl Tool for GroupTool {
    fn name(&self) -> &str {
        &self.name
    }

    fn package(&self) -> &str {
        "Groups"
    }

    fn input_ports(&self) -> Vec<PortSpec> {
        self.inputs
            .iter()
            .map(|&(t, p)| self.graph.task(t).expect("validated").tool.input_ports()[p].clone())
            .collect()
    }

    fn output_ports(&self) -> Vec<PortSpec> {
        self.outputs
            .iter()
            .map(|&(t, p)| self.graph.task(t).expect("validated").tool.output_ports()[p].clone())
            .collect()
    }

    fn execute(&self, inputs: &[Token]) -> std::result::Result<Vec<Token>, String> {
        let mut bindings: HashMap<(TaskId, usize), Token> = HashMap::new();
        for (&(t, p), token) in self.inputs.iter().zip(inputs) {
            bindings.insert((t, p), token.clone());
        }
        let report = Executor::serial()
            .run(&self.graph, &bindings)
            .map_err(|e| e.to_string())?;
        self.outputs
            .iter()
            .map(|&(t, p)| {
                report
                    .output(t, p)
                    .cloned()
                    .ok_or_else(|| format!("group produced no output for task {t} port {p}"))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::test_tools::{Concat, ConstText, Upper};
    use std::sync::Arc;

    /// A group that uppercases and then appends "!".
    fn shout_group() -> GroupTool {
        let mut inner = TaskGraph::new();
        let up = inner.add_task(Arc::new(Upper));
        let bang = inner.add_task(Arc::new(ConstText("!".into())));
        let cat = inner.add_task(Arc::new(Concat));
        inner.connect(up, 0, cat, 0).unwrap();
        inner.connect(bang, 0, cat, 1).unwrap();
        GroupTool::new("Shout", inner, vec![(up, 0)], vec![(cat, 0)]).unwrap()
    }

    #[test]
    fn group_has_single_interface() {
        let g = shout_group();
        assert_eq!(g.input_ports().len(), 1);
        assert_eq!(g.output_ports().len(), 1);
        assert_eq!(g.package(), "Groups");
    }

    #[test]
    fn group_executes_inner_graph() {
        let g = shout_group();
        let out = g.execute(&[Token::Text("hello".into())]).unwrap();
        assert_eq!(out, vec![Token::Text("HELLO!".into())]);
    }

    #[test]
    fn group_usable_inside_outer_workflow() {
        let mut outer = TaskGraph::new();
        let src = outer.add_task(Arc::new(ConstText("nested".into())));
        let grp = outer.add_task(Arc::new(shout_group()));
        outer.connect(src, 0, grp, 0).unwrap();
        let report = Executor::serial().run(&outer, &HashMap::new()).unwrap();
        assert_eq!(report.output(grp, 0), Some(&Token::Text("NESTED!".into())));
    }

    #[test]
    fn groups_nest_recursively() {
        // A group containing a group.
        let mut mid = TaskGraph::new();
        let inner_group = mid.add_task(Arc::new(shout_group()));
        let outer_group = GroupTool::new(
            "DoubleWrap",
            mid,
            vec![(inner_group, 0)],
            vec![(inner_group, 0)],
        )
        .unwrap();
        let out = outer_group.execute(&[Token::Text("deep".into())]).unwrap();
        assert_eq!(out, vec![Token::Text("DEEP!".into())]);
    }

    #[test]
    fn unexposed_unbound_input_rejected() {
        let mut inner = TaskGraph::new();
        let _cat = inner.add_task(Arc::new(Concat)); // two unbound inputs
        let err = GroupTool::new("Bad", inner, vec![(0, 0)], vec![(0, 0)]).unwrap_err();
        assert!(matches!(err, WorkflowError::UnboundInput { .. }));
    }

    #[test]
    fn bad_exposed_ports_rejected() {
        let mut inner = TaskGraph::new();
        let up = inner.add_task(Arc::new(Upper));
        assert!(GroupTool::new("Bad", inner.clone(), vec![(up, 7)], vec![(up, 0)]).is_err());
        assert!(GroupTool::new("Bad", inner, vec![(up, 0)], vec![(up, 7)]).is_err());
    }
}
