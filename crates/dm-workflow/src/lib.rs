//! # dm-workflow — the workflow engine of `faehim-rs`
//!
//! The paper composes its data mining Web Services with the Triana
//! problem-solving environment: tools live in folders in a toolbox,
//! are dragged into a workspace, and are wired output-node →
//! input-node with cables; imported WSDL interfaces become "a tool for
//! each operation provided by the service"; workflows can be grouped
//! into hierarchical services, manipulated with pattern operators, and
//! exported as XML (Triana taskgraph and the GriPhyN DAX standard)
//! (§2, §4). Triana is a Java GUI application; this crate implements
//! the engine underneath those behaviours:
//!
//! * [`graph`] — tasks, typed ports, cables, cycle/type validation;
//! * [`toolbox`] — folders of [`graph::Tool`] definitions (Figure 1's
//!   left-hand pane) plus the built-in Common tools;
//! * [`engine`] — serial and parallel (crossbeam-scoped) enactment,
//!   with per-task retry (exponential backoff, a shared per-workflow
//!   retry budget) and host migration for fault tolerance;
//! * [`memo`] — memoised enactment: pure tasks with unchanged input
//!   fingerprints are served from an LRU result cache without
//!   executing (the workflow half of the content-addressed data
//!   plane);
//! * [`journal`] — the append-only, checksummed run-event log
//!   (version-enveloped records, torn-tail detection, large outputs
//!   persisted as content-addressed store references);
//! * [`durable`] — event-sourced durable enactment on top of the
//!   journal: an orchestrator / worker-pool split with claim/ack
//!   redelivery, scripted crash injection, and resume-from-log
//!   recovery that re-executes zero completed tasks;
//! * [`wsimport`] — WSDL import: one tool per operation, invoking the
//!   service over the simulated network with health-aware replica
//!   failover (circuit breakers, deadlines, failing-primary demotion);
//! * [`planner`] — the cost- and locality-aware composition planner:
//!   an abstract chain of service categories is bound to concrete
//!   replicas by a QoS knapsack over a live-telemetry cost snapshot,
//!   pre-ranked by a usage-log recommender;
//! * [`group`] — hierarchical services ("a single service made up of a
//!   number of others and made available as a single interface");
//! * [`patterns`] — structural pattern operators (pipeline, fan-out /
//!   fan-in star, ring) after Gomes, Rana & Cunha;
//! * [`xml`] — taskgraph XML export/import and DAX-like export.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod durable;
pub mod engine;
pub mod error;
pub mod graph;
pub mod group;
pub mod iterate;
pub mod journal;
pub mod memo;
pub mod patterns;
pub mod planner;
pub mod toolbox;
pub mod wsimport;
pub mod xml;

pub use error::{Result, WorkflowError};
pub use graph::{Cable, PortSpec, TaskGraph, TaskId, Token, Tool};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::durable::DurableConfig;
    pub use crate::engine::{
        BackoffSink, ExecutionMode, ExecutionReport, Executor, ProgressEvent, RetryPolicy,
    };
    pub use crate::error::{Result, WorkflowError};
    pub use crate::graph::{Cable, PortSpec, TaskGraph, TaskId, Token, Tool};
    pub use crate::journal::{JournalStats, RunEvent, RunJournal};
    pub use crate::memo::MemoCache;
    pub use crate::planner::{Goal, GoalStep, Plan, Planner, PlannerConfig, UsageRecommender};
    pub use crate::toolbox::Toolbox;
    pub use crate::wsimport::import_wsdl;
}
