//! Workflow enactment: serial and parallel executors with per-task
//! retry (the fault-tolerance requirement: "the framework must …
//! include the ability to complete the task if a fault occurs by moving
//! the job to another resource", §3 — the moving itself is implemented
//! by [`crate::wsimport::WsTool`] host failover; the engine contributes
//! bounded retries and failure accounting).

use crate::error::{Result, WorkflowError};
use crate::graph::{TaskGraph, TaskId, Token};
use crate::memo::MemoCache;
use dm_wsrf::resilience::{BackoffSchedule, ResiliencePolicy};
use dm_wsrf::trace::{SpanContext, SpanKind, Tracer};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Serial or parallel enactment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Topological order on the calling thread.
    Serial,
    /// Ready tasks run concurrently on scoped threads.
    Parallel,
}

/// Retry behaviour for the executor: a per-task attempt ceiling plus
/// exponential backoff between attempts and an optional per-workflow
/// retry *budget* shared by every task in a run — once the budget is
/// spent, no task may retry again, bounding the total extra work a
/// degraded deployment can absorb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum execution attempts per task (1 = no retries).
    pub max_attempts: usize,
    /// First backoff pause; later pauses grow with decorrelated jitter.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff pause.
    pub max_backoff: Duration,
    /// Total retries allowed across the whole run (`None` = unlimited).
    pub retry_budget: Option<usize>,
    /// Jitter seed, perturbed per task, so runs are reproducible.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            retry_budget: None,
            seed: 0xB0FF,
        }
    }
}

/// Receives each backoff pause instead of sleeping. The toolkit wires
/// this to the simulated network's virtual clock
/// ([`dm_wsrf::transport::Network::advance_virtual_time`]) so pauses
/// are charged to simulated time and enactment stays fast.
pub type BackoffSink = std::sync::Arc<dyn Fn(Duration) + Send + Sync>;

/// Reads the current simulated instant. The toolkit wires this to
/// [`dm_wsrf::transport::Network::now`] so reports measure enactment on
/// the same virtual clock the whole stack charges — wall-clock
/// `Instant` readings say nothing about a simulation that never sleeps.
pub type ClockSource = std::sync::Arc<dyn Fn() -> Duration + Send + Sync>;

/// Per-task record in an [`ExecutionReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct TaskRun {
    /// Task display name.
    pub task: String,
    /// Execution attempts used (1 = no retry).
    pub attempts: usize,
    /// Wall-clock duration of the successful attempt (or the last
    /// failed one).
    pub duration: Duration,
    /// Simulated-time duration of the same attempt, read from the
    /// executor's [`ClockSource`]; zero when no clock is wired.
    pub virtual_duration: Duration,
    /// Backoff accumulated between this task's attempts.
    pub backoff: Duration,
    /// `ServerBusy` sheds absorbed by the task's tool across all
    /// attempts ([`crate::graph::Tool::last_call_sheds`]).
    pub sheds: u64,
    /// `true` when the outputs came from the memo cache and the tool
    /// never executed (then `attempts` is 0).
    pub cached: bool,
    /// `true` when the run was restored from a run journal by durable
    /// recovery ([`crate::durable`]) and the tool did not execute in
    /// this process.
    pub replayed: bool,
    /// `None` on success, the failure message otherwise.
    pub error: Option<String>,
}

/// The result of enacting a workflow.
#[derive(Debug, Clone, Default)]
pub struct ExecutionReport {
    /// Output tokens of unconnected output ports: `(task, port) → token`.
    pub outputs: HashMap<(TaskId, usize), Token>,
    /// Per-task run records, in completion order.
    pub runs: Vec<TaskRun>,
    /// Total enactment wall-clock time.
    pub elapsed: Duration,
    /// Total enactment time on the simulated clock (zero when the
    /// executor has no [`ClockSource`]). This is the figure that agrees
    /// with benches and traces; `elapsed` only measures host CPU time.
    pub virtual_elapsed: Duration,
    /// Retries left in the run's shared budget (`None` = unlimited).
    pub retry_budget_remaining: Option<usize>,
}

impl ExecutionReport {
    /// Fetch an output token by task id and port.
    pub fn output(&self, task: TaskId, port: usize) -> Option<&Token> {
        self.outputs.get(&(task, port))
    }

    /// Total retry attempts beyond first tries.
    pub fn total_retries(&self) -> usize {
        self.runs.iter().map(|r| r.attempts.saturating_sub(1)).sum()
    }

    /// Total backoff accumulated between attempts, across all tasks.
    pub fn total_backoff(&self) -> Duration {
        self.runs.iter().map(|r| r.backoff).sum()
    }

    /// Tasks served from the memo cache without executing.
    pub fn memo_hits(&self) -> usize {
        self.runs.iter().filter(|r| r.cached).count()
    }

    /// Total `ServerBusy` sheds absorbed across all task runs — the
    /// overload pressure the resilience layer hid from the outputs.
    pub fn total_sheds(&self) -> u64 {
        self.runs.iter().map(|r| r.sheds).sum()
    }

    /// Tasks restored from a run journal instead of executing
    /// ([`TaskRun::replayed`]) — the work durable recovery saved.
    pub fn replay_hits(&self) -> usize {
        self.runs.iter().filter(|r| r.replayed).count()
    }

    /// A canonical byte encoding of the report's *semantic* content:
    /// every output token sorted by `(task, port)`, then every task run
    /// sorted by name with its success/failure status. Excludes
    /// attempts, durations, cache/replay provenance, and budget — the
    /// figures that legitimately differ between an uninterrupted run
    /// and a crash-then-resume of the same workflow. Two enactments
    /// computed the same results iff their canonical bytes are equal.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let mut outputs: Vec<_> = self.outputs.iter().collect();
        outputs.sort_by_key(|&(&(task, port), _)| (task, port));
        for (&(task, port), token) in outputs {
            out.extend_from_slice(format!("o {task} {port} ").as_bytes());
            crate::journal::canonical_token_bytes(&mut out, token);
            out.push(b'\n');
        }
        let mut runs: Vec<_> = self.runs.iter().collect();
        runs.sort_by(|a, b| a.task.cmp(&b.task).then_with(|| a.error.cmp(&b.error)));
        for run in runs {
            out.push(b'r');
            out.push(b' ');
            out.extend_from_slice(run.task.as_bytes());
            match &run.error {
                None => out.extend_from_slice(b" ok\n"),
                Some(message) => {
                    out.extend_from_slice(format!(" err {message}\n").as_bytes());
                }
            }
        }
        out
    }
}

/// A live progress event, delivered while the workflow runs — the
/// paper's service-monitoring requirement ("the framework should allow
/// users to monitor the progress of their jobs as they are executed on
/// distributed resources", §3).
#[derive(Debug, Clone, PartialEq)]
pub enum ProgressEvent {
    /// A task began executing (attempt number starts at 1).
    Started {
        /// Task display name.
        task: String,
        /// Attempt number.
        attempt: usize,
    },
    /// A task finished successfully.
    Finished {
        /// Task display name.
        task: String,
        /// Attempts used.
        attempts: usize,
        /// Duration of the successful attempt.
        duration: Duration,
    },
    /// A task attempt failed and a retry is scheduled after a backoff
    /// pause. Fires only between attempts, never on clean runs.
    Retrying {
        /// Task display name.
        task: String,
        /// The attempt number about to run (≥ 2).
        next_attempt: usize,
        /// Backoff pause before the next attempt.
        backoff: Duration,
        /// Retries left in the shared budget after this one (`None` =
        /// unlimited).
        budget_remaining: Option<usize>,
    },
    /// A task failed terminally.
    Failed {
        /// Task display name.
        task: String,
        /// The failure message.
        message: String,
    },
    /// A pure task's outputs were served from the memo cache; the tool
    /// did not execute.
    CacheHit {
        /// Task display name.
        task: String,
    },
    /// Enactment began (fires once, before any task event).
    RunStarted {
        /// Number of tasks in the graph.
        tasks: usize,
    },
    /// Enactment completed successfully (terminal failures emit
    /// [`ProgressEvent::Failed`] instead).
    RunFinished {
        /// Number of task runs recorded (including cached ones).
        tasks: usize,
        /// Total enactment wall-clock time.
        elapsed: Duration,
        /// Total enactment time on the simulated clock (zero without a
        /// [`ClockSource`]).
        virtual_elapsed: Duration,
    },
}

/// Listener callback for [`ProgressEvent`]s. Shared across worker
/// threads in parallel mode.
pub type ProgressListener = std::sync::Arc<dyn Fn(ProgressEvent) + Send + Sync>;

/// The workflow executor.
#[derive(Clone)]
pub struct Executor {
    pub(crate) mode: ExecutionMode,
    pub(crate) policy: RetryPolicy,
    pub(crate) backoff_sink: Option<BackoffSink>,
    pub(crate) clock: Option<ClockSource>,
    pub(crate) listener: Option<ProgressListener>,
    pub(crate) memo: Option<Arc<MemoCache>>,
    pub(crate) tracer: Option<Arc<Tracer>>,
    pub(crate) deterministic_events: bool,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("mode", &self.mode)
            .field("policy", &self.policy)
            .field("backoff_sink", &self.backoff_sink.is_some())
            .field("clock", &self.clock.is_some())
            .field("listener", &self.listener.is_some())
            .field("memo", &self.memo.is_some())
            .field("tracer", &self.tracer.is_some())
            .field("deterministic_events", &self.deterministic_events)
            .finish()
    }
}

impl Executor {
    /// Create a serial executor without retries.
    pub fn serial() -> Executor {
        Executor {
            mode: ExecutionMode::Serial,
            policy: RetryPolicy::default(),
            backoff_sink: None,
            clock: None,
            listener: None,
            memo: None,
            tracer: None,
            deterministic_events: false,
        }
    }

    /// Create a parallel executor without retries.
    pub fn parallel() -> Executor {
        Executor {
            mode: ExecutionMode::Parallel,
            ..Executor::serial()
        }
    }

    /// Builder: allow up to `attempts` executions per task.
    pub fn with_max_attempts(mut self, attempts: usize) -> Executor {
        self.policy.max_attempts = attempts.max(1);
        self
    }

    /// Builder: install a full [`RetryPolicy`] (attempt ceiling,
    /// backoff shape, shared retry budget, jitter seed).
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Executor {
        self.policy = policy;
        self.policy.max_attempts = self.policy.max_attempts.max(1);
        self
    }

    /// The retry policy in force.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Builder: deliver backoff pauses to `sink` instead of sleeping.
    /// Without a sink, backoff is accounted in reports and events but
    /// no time passes anywhere.
    pub fn with_backoff_sink(mut self, sink: BackoffSink) -> Executor {
        self.backoff_sink = Some(sink);
        self
    }

    /// Builder: measure enactment on `clock` (the simulated instant,
    /// usually [`dm_wsrf::transport::Network::now`]) in addition to
    /// wall time. Fills [`ExecutionReport::virtual_elapsed`] and
    /// [`TaskRun::virtual_duration`]; without a clock both stay zero.
    pub fn with_virtual_clock(mut self, clock: ClockSource) -> Executor {
        self.clock = Some(clock);
        self
    }

    /// The simulated instant per the wired [`ClockSource`], or zero
    /// when none is wired (differences then stay zero too).
    pub(crate) fn virtual_now(&self) -> Duration {
        self.clock.as_ref().map(|c| c()).unwrap_or(Duration::ZERO)
    }

    /// Builder: receive live [`ProgressEvent`]s during enactment.
    pub fn with_listener(mut self, listener: ProgressListener) -> Executor {
        self.listener = Some(listener);
        self
    }

    /// Builder: serve pure tasks ([`crate::graph::Tool::is_pure`]) from
    /// `cache` when their inputs are unchanged, and record fresh
    /// results into it. Impure tasks always execute.
    pub fn with_memoisation(mut self, cache: Arc<MemoCache>) -> Executor {
        self.memo = Some(cache);
        self
    }

    /// The memo cache in use, if any.
    pub fn memo_cache(&self) -> Option<Arc<MemoCache>> {
        self.memo.clone()
    }

    /// Builder: record causal spans into `tracer` — one workflow root
    /// per run, one task span per execution attempt. Task spans are
    /// made the thread's current span while the tool executes, so
    /// deeper layers (SOAP calls, transport legs, dispatches) chain
    /// under them. Use the tracer from
    /// [`dm_wsrf::transport::Network::enable_tracing`] so the whole
    /// stack shares one trace.
    pub fn with_tracing(mut self, tracer: Arc<Tracer>) -> Executor {
        self.tracer = Some(tracer);
        self
    }

    /// The tracer in use, if any.
    pub fn tracer(&self) -> Option<Arc<Tracer>> {
        self.tracer.clone()
    }

    /// Builder: make the [`ProgressEvent`] sequence replay-deterministic
    /// under parallel enactment. Each task's event block is buffered
    /// while workers race and flushed after quiescence, ordered by the
    /// task's completion instant on the simulated clock (ties broken by
    /// task id), with `RunStarted` first and `RunFinished` last;
    /// `ExecutionReport::runs` follows the same order. The default
    /// (live) delivery hands events to the listener the moment they
    /// happen, which is what monitoring wants but makes the interleaving
    /// scheduler-dependent. Durable enactment ([`crate::durable`])
    /// always buffers.
    pub fn with_deterministic_events(mut self) -> Executor {
        self.deterministic_events = true;
        self
    }

    pub(crate) fn emit(&self, event: ProgressEvent) {
        if let Some(l) = &self.listener {
            l(event);
        }
    }

    /// Enact `graph`. `bindings` provides tokens for unconnected input
    /// ports (`(task, port) → token`).
    pub fn run(
        &self,
        graph: &TaskGraph,
        bindings: &HashMap<(TaskId, usize), Token>,
    ) -> Result<ExecutionReport> {
        // Validate that every input is fed.
        for t in 0..graph.num_tasks() {
            for (port, spec) in graph.unconnected_inputs(t)? {
                if !bindings.contains_key(&(t, port)) {
                    return Err(WorkflowError::UnboundInput {
                        task: graph.task(t)?.name.clone(),
                        port: spec.name,
                    });
                }
            }
        }
        let order = graph.topological_order()?;
        self.emit(ProgressEvent::RunStarted {
            tasks: graph.num_tasks(),
        });
        let mut root_span = self.tracer.as_ref().map(|t| {
            let mut span = t.start_span("workflow", SpanKind::Workflow, None);
            span.set_attr("tasks", graph.num_tasks().to_string());
            span
        });
        let root = root_span.as_ref().map(|s| s.ctx());
        let result = match self.mode {
            ExecutionMode::Serial => self.run_serial(graph, bindings, &order, root),
            ExecutionMode::Parallel => self.run_parallel(graph, bindings, root),
        };
        match &result {
            Ok(report) => self.emit(ProgressEvent::RunFinished {
                tasks: report.runs.len(),
                elapsed: report.elapsed,
                virtual_elapsed: report.virtual_elapsed,
            }),
            Err(e) => {
                if let Some(span) = root_span.as_mut() {
                    span.set_error(e.to_string());
                }
            }
        }
        result
    }

    pub(crate) fn execute_task(
        &self,
        graph: &TaskGraph,
        task: TaskId,
        inputs: &[Token],
        budget: &Mutex<Option<usize>>,
        root: Option<SpanContext>,
        emit: &(dyn Fn(ProgressEvent) + Sync),
    ) -> (std::result::Result<Vec<Token>, String>, TaskRun) {
        let node = graph.task(task).expect("validated id");
        // Memoisation: pure tasks with unchanged inputs are served from
        // the cache without executing (attempts stays 0).
        let memo_key = self
            .memo
            .as_deref()
            .and_then(|m| m.key_for(node.tool.as_ref(), inputs));
        if let (Some(memo), Some(key)) = (&self.memo, memo_key) {
            if let Some(outputs) = memo.get(key) {
                if let Some(t) = &self.tracer {
                    let mut span = t.start_span(node.name.clone(), SpanKind::Task, root);
                    span.set_attr("cached", "true");
                }
                emit(ProgressEvent::CacheHit {
                    task: node.name.clone(),
                });
                return (
                    Ok(outputs),
                    TaskRun {
                        task: node.name.clone(),
                        attempts: 0,
                        duration: Duration::ZERO,
                        virtual_duration: Duration::ZERO,
                        backoff: Duration::ZERO,
                        sheds: 0,
                        cached: true,
                        replayed: false,
                        error: None,
                    },
                );
            }
        }
        let backoff_policy =
            ResiliencePolicy::default().backoff(self.policy.base_backoff, self.policy.max_backoff);
        let mut schedule =
            BackoffSchedule::new(&backoff_policy, self.policy.seed ^ task_seed(&node.name));
        let mut backoff_total = Duration::ZERO;
        let mut sheds = 0u64;
        let mut attempts = 0;
        loop {
            attempts += 1;
            emit(ProgressEvent::Started {
                task: node.name.clone(),
                attempt: attempts,
            });
            // One span per attempt, current for the duration of the
            // tool call so SOAP-call spans opened inside chain under it.
            let mut task_span = self.tracer.as_ref().map(|t| {
                let mut span = t.start_span(node.name.clone(), SpanKind::Task, root);
                span.set_attr("attempt", attempts.to_string());
                span
            });
            let _current = task_span.as_ref().map(|s| s.make_current());
            let start = Instant::now();
            let vstart = self.virtual_now();
            let result = node.tool.execute(inputs);
            // Sheds the tool absorbed this attempt (retried or failed-
            // over ServerBusy responses) roll up into the run record.
            sheds += node.tool.last_call_sheds();
            match result {
                Ok(outputs) => {
                    let expected = node.tool.output_ports().len();
                    if outputs.len() != expected {
                        let msg = format!(
                            "tool returned {} outputs, declared {expected}",
                            outputs.len()
                        );
                        if let Some(span) = task_span.as_mut() {
                            span.set_error(msg.clone());
                        }
                        emit(ProgressEvent::Failed {
                            task: node.name.clone(),
                            message: msg.clone(),
                        });
                        return (
                            Err(msg.clone()),
                            TaskRun {
                                task: node.name.clone(),
                                attempts,
                                duration: start.elapsed(),
                                virtual_duration: self.virtual_now().saturating_sub(vstart),
                                backoff: backoff_total,
                                sheds,
                                cached: false,
                                replayed: false,
                                error: Some(msg),
                            },
                        );
                    }
                    emit(ProgressEvent::Finished {
                        task: node.name.clone(),
                        attempts,
                        duration: start.elapsed(),
                    });
                    if let (Some(memo), Some(key)) = (&self.memo, memo_key) {
                        memo.insert(key, outputs.clone());
                    }
                    return (
                        Ok(outputs),
                        TaskRun {
                            task: node.name.clone(),
                            attempts,
                            duration: start.elapsed(),
                            virtual_duration: self.virtual_now().saturating_sub(vstart),
                            backoff: backoff_total,
                            sheds,
                            cached: false,
                            replayed: false,
                            error: None,
                        },
                    );
                }
                Err(mut message) => {
                    if let Some(span) = task_span.as_mut() {
                        span.set_error(message.clone());
                    }
                    // Charge the shared per-workflow budget before
                    // retrying; exhaustion turns this failure terminal
                    // even with attempts left.
                    let budget_remaining = if attempts < self.policy.max_attempts {
                        let mut budget = budget.lock();
                        match *budget {
                            None => Some(None),
                            Some(n) if n > 0 => {
                                *budget = Some(n - 1);
                                Some(Some(n - 1))
                            }
                            Some(_) => {
                                message = format!("{message} (retry budget exhausted)");
                                None
                            }
                        }
                    } else {
                        None
                    };
                    match budget_remaining {
                        Some(remaining) => {
                            let delay = schedule.next_delay();
                            backoff_total += delay;
                            if let Some(sink) = &self.backoff_sink {
                                sink(delay);
                            }
                            emit(ProgressEvent::Retrying {
                                task: node.name.clone(),
                                next_attempt: attempts + 1,
                                backoff: delay,
                                budget_remaining: remaining,
                            });
                        }
                        None => {
                            emit(ProgressEvent::Failed {
                                task: node.name.clone(),
                                message: message.clone(),
                            });
                            return (
                                Err(message.clone()),
                                TaskRun {
                                    task: node.name.clone(),
                                    attempts,
                                    duration: start.elapsed(),
                                    virtual_duration: self.virtual_now().saturating_sub(vstart),
                                    backoff: backoff_total,
                                    sheds,
                                    cached: false,
                                    replayed: false,
                                    error: Some(message),
                                },
                            );
                        }
                    }
                }
            }
        }
    }

    pub(crate) fn gather_inputs(
        graph: &TaskGraph,
        task: TaskId,
        bindings: &HashMap<(TaskId, usize), Token>,
        produced: &HashMap<(TaskId, usize), Token>,
    ) -> Vec<Token> {
        let num_inputs = graph
            .task(task)
            .expect("validated")
            .tool
            .input_ports()
            .len();
        (0..num_inputs)
            .map(|port| {
                if let Some(cable) = graph
                    .cables()
                    .iter()
                    .find(|c| c.to_task == task && c.to_port == port)
                {
                    produced
                        .get(&(cable.from_task, cable.from_port))
                        .cloned()
                        .expect("producer ran before consumer")
                } else {
                    bindings
                        .get(&(task, port))
                        .cloned()
                        .expect("validated binding")
                }
            })
            .collect()
    }

    fn run_serial(
        &self,
        graph: &TaskGraph,
        bindings: &HashMap<(TaskId, usize), Token>,
        order: &[TaskId],
        root: Option<SpanContext>,
    ) -> Result<ExecutionReport> {
        let start = Instant::now();
        let vstart = self.virtual_now();
        let budget = Mutex::new(self.policy.retry_budget);
        let mut produced: HashMap<(TaskId, usize), Token> = HashMap::new();
        let mut report = ExecutionReport::default();
        for &task in order {
            let inputs = Self::gather_inputs(graph, task, bindings, &produced);
            let (result, run) =
                self.execute_task(graph, task, &inputs, &budget, root, &|e| self.emit(e));
            report.runs.push(run);
            match result {
                Ok(outputs) => {
                    for (port, token) in outputs.into_iter().enumerate() {
                        produced.insert((task, port), token);
                    }
                }
                Err(message) => {
                    report.elapsed = start.elapsed();
                    return Err(WorkflowError::TaskFailed {
                        task: graph.task(task)?.name.clone(),
                        message,
                    });
                }
            }
        }
        self.collect_outputs(graph, &produced, &mut report)?;
        report.elapsed = start.elapsed();
        report.virtual_elapsed = self.virtual_now().saturating_sub(vstart);
        report.retry_budget_remaining = budget.into_inner();
        Ok(report)
    }

    fn run_parallel(
        &self,
        graph: &TaskGraph,
        bindings: &HashMap<(TaskId, usize), Token>,
        root: Option<SpanContext>,
    ) -> Result<ExecutionReport> {
        let start = Instant::now();
        let vstart = self.virtual_now();
        let n = graph.num_tasks();
        let mut indegree = vec![0usize; n];
        for c in graph.cables() {
            indegree[c.to_task] += 1;
        }

        let produced = Mutex::new(HashMap::<(TaskId, usize), Token>::new());
        let budget = Mutex::new(self.policy.retry_budget);
        let state = Mutex::new((indegree, Vec::<TaskRun>::new(), None::<(String, String)>));
        // Deterministic-event mode: each task's event block is buffered
        // with its completion instant and flushed in sorted order after
        // the scope, so listeners see a schedule-independent sequence.
        type Buffered = (Duration, TaskId, Vec<ProgressEvent>, TaskRun);
        let buffered = Mutex::new(Vec::<Buffered>::new());
        let (work_tx, work_rx) = crossbeam::channel::unbounded::<TaskId>();
        let pending = std::sync::atomic::AtomicUsize::new(n);

        // Seed the ready queue.
        {
            let state = state.lock();
            for t in 0..n {
                if state.0[t] == 0 {
                    work_tx.send(t).expect("queue open");
                }
            }
        }
        if n == 0 {
            return Ok(ExecutionReport {
                elapsed: start.elapsed(),
                ..Default::default()
            });
        }

        // Poison pill: once the final task completes (or one fails), a
        // worker broadcasts POISON; every receiver re-broadcasts and
        // exits, so no thread blocks on a channel whose senders are all
        // still alive inside blocked peers.
        const POISON: TaskId = usize::MAX;
        let workers = std::thread::available_parallelism()
            .map_or(4, |p| p.get())
            .min(n.max(1));
        crossbeam::scope(|scope| {
            for _ in 0..workers {
                let work_rx = work_rx.clone();
                let work_tx = work_tx.clone();
                let produced = &produced;
                let budget = &budget;
                let state = &state;
                let pending = &pending;
                let buffered = &buffered;
                scope.spawn(move |_| {
                    while let Ok(task) = work_rx.recv() {
                        if task == POISON {
                            let _ = work_tx.send(POISON);
                            break;
                        }
                        // Fail-fast cancellation. Tasks already sitting
                        // in the queue when a sibling fails must not
                        // execute: without this check they race the
                        // POISON pill, and which of them win depends on
                        // scheduling — the set of tasks that ran after
                        // a failure was nondeterministic. The failing
                        // worker has already broadcast POISON, so
                        // skipping (not executing, not touching
                        // `pending`) still terminates every worker.
                        if state.lock().2.is_some() {
                            continue;
                        }
                        let inputs = {
                            let produced = produced.lock();
                            Self::gather_inputs(graph, task, bindings, &produced)
                        };
                        let (result, run) = if self.deterministic_events {
                            let local = Mutex::new(Vec::new());
                            let (result, run) =
                                self.execute_task(graph, task, &inputs, budget, root, &|e| {
                                    local.lock().push(e)
                                });
                            buffered.lock().push((
                                self.virtual_now(),
                                task,
                                local.into_inner(),
                                run.clone(),
                            ));
                            (result, run)
                        } else {
                            self.execute_task(graph, task, &inputs, budget, root, &|e| self.emit(e))
                        };
                        let failed = result.is_err();
                        match result {
                            Ok(outputs) => {
                                {
                                    let mut produced = produced.lock();
                                    for (port, token) in outputs.into_iter().enumerate() {
                                        produced.insert((task, port), token);
                                    }
                                }
                                let mut state = state.lock();
                                state.1.push(run);
                                // A sibling failed while this task was
                                // in flight: record the completed run
                                // but schedule no successors — the run
                                // is over.
                                if state.2.is_none() {
                                    for c in graph.cables() {
                                        if c.from_task == task {
                                            state.0[c.to_task] -= 1;
                                            if state.0[c.to_task] == 0 {
                                                work_tx.send(c.to_task).expect("queue open");
                                            }
                                        }
                                    }
                                }
                            }
                            Err(message) => {
                                let mut state = state.lock();
                                state.1.push(run);
                                if state.2.is_none() {
                                    state.2 = Some((
                                        graph.task(task).expect("validated").name.clone(),
                                        message,
                                    ));
                                }
                            }
                        }
                        let left = pending.fetch_sub(1, std::sync::atomic::Ordering::SeqCst) - 1;
                        if left == 0 || failed {
                            let _ = work_tx.send(POISON);
                            break;
                        }
                    }
                });
            }
            drop(work_tx);
            drop(work_rx);
        })
        .expect("workflow worker panicked");

        let (_, runs, failure) = state.into_inner();
        let runs = if self.deterministic_events {
            // Flush buffered event blocks (and order the run records)
            // by (completion tick, task id): the same sequence every
            // enactment of the same workflow, regardless of how the OS
            // scheduled the workers.
            let mut buffered = buffered.into_inner();
            buffered.sort_by_key(|b| (b.0, b.1));
            for (_, _, events, _) in &buffered {
                for event in events {
                    self.emit(event.clone());
                }
            }
            buffered.into_iter().map(|(_, _, _, run)| run).collect()
        } else {
            runs
        };
        let mut report = ExecutionReport {
            runs,
            ..ExecutionReport::default()
        };
        if let Some((task, message)) = failure {
            report.elapsed = start.elapsed();
            return Err(WorkflowError::TaskFailed { task, message });
        }
        let produced = produced.into_inner();
        self.collect_outputs(graph, &produced, &mut report)?;
        report.elapsed = start.elapsed();
        report.virtual_elapsed = self.virtual_now().saturating_sub(vstart);
        report.retry_budget_remaining = budget.into_inner();
        Ok(report)
    }

    pub(crate) fn collect_outputs(
        &self,
        graph: &TaskGraph,
        produced: &HashMap<(TaskId, usize), Token>,
        report: &mut ExecutionReport,
    ) -> Result<()> {
        for t in 0..graph.num_tasks() {
            for (port, _) in graph.unconnected_outputs(t)? {
                if let Some(token) = produced.get(&(t, port)) {
                    report.outputs.insert((t, port), token.clone());
                }
            }
        }
        Ok(())
    }
}

/// Stable per-task seed perturbation so concurrent tasks don't share
/// one backoff-jitter stream.
fn task_seed(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::test_tools::*;
    use std::sync::Arc;

    #[test]
    fn serial_pipeline_produces_output() {
        let mut g = TaskGraph::new();
        let src = g.add_task(Arc::new(ConstText("hello".into())));
        let up = g.add_task(Arc::new(Upper));
        g.connect(src, 0, up, 0).unwrap();
        let report = Executor::serial().run(&g, &HashMap::new()).unwrap();
        assert_eq!(report.output(up, 0), Some(&Token::Text("HELLO".into())));
        assert_eq!(report.runs.len(), 2);
    }

    #[test]
    fn bindings_feed_unconnected_inputs() {
        let mut g = TaskGraph::new();
        let cat = g.add_task(Arc::new(Concat));
        let mut bindings = HashMap::new();
        bindings.insert((cat, 0), Token::Text("a".into()));
        bindings.insert((cat, 1), Token::Text("b".into()));
        let report = Executor::serial().run(&g, &bindings).unwrap();
        assert_eq!(report.output(cat, 0), Some(&Token::Text("ab".into())));
    }

    #[test]
    fn missing_binding_detected() {
        let mut g = TaskGraph::new();
        g.add_task(Arc::new(Upper));
        let err = Executor::serial().run(&g, &HashMap::new()).unwrap_err();
        assert!(matches!(err, WorkflowError::UnboundInput { .. }));
    }

    #[test]
    fn diamond_graph_joins() {
        // src → (upper, concat-b) ; upper → concat-a.
        let mut g = TaskGraph::new();
        let src = g.add_task(Arc::new(ConstText("x".into())));
        let up = g.add_task(Arc::new(Upper));
        let cat = g.add_task(Arc::new(Concat));
        g.connect(src, 0, up, 0).unwrap();
        g.connect(up, 0, cat, 0).unwrap();
        g.connect(src, 0, cat, 1).unwrap();
        let report = Executor::serial().run(&g, &HashMap::new()).unwrap();
        assert_eq!(report.output(cat, 0), Some(&Token::Text("Xx".into())));
    }

    #[test]
    fn parallel_matches_serial() {
        let mut g = TaskGraph::new();
        let src = g.add_task(Arc::new(ConstText("abc".into())));
        let mut sinks = Vec::new();
        for _ in 0..8 {
            let up = g.add_task(Arc::new(Upper));
            g.connect(src, 0, up, 0).unwrap();
            sinks.push(up);
        }
        let serial = Executor::serial().run(&g, &HashMap::new()).unwrap();
        let parallel = Executor::parallel().run(&g, &HashMap::new()).unwrap();
        for &s in &sinks {
            assert_eq!(serial.output(s, 0), parallel.output(s, 0));
        }
        assert_eq!(parallel.runs.len(), 9);
    }

    #[test]
    fn failure_reports_task_name() {
        let mut g = TaskGraph::new();
        let src = g.add_task(Arc::new(ConstText("x".into())));
        let flaky = g.add_named_task("always-fails", Arc::new(Flaky::failing(usize::MAX)));
        g.connect(src, 0, flaky, 0).unwrap();
        let err = Executor::serial().run(&g, &HashMap::new()).unwrap_err();
        assert!(
            matches!(err, WorkflowError::TaskFailed { ref task, .. } if task == "always-fails")
        );
    }

    #[test]
    fn retries_recover_transient_failures() {
        let mut g = TaskGraph::new();
        let src = g.add_task(Arc::new(ConstText("ok".into())));
        let flaky = g.add_task(Arc::new(Flaky::failing(2)));
        g.connect(src, 0, flaky, 0).unwrap();
        let report = Executor::serial()
            .with_max_attempts(3)
            .run(&g, &HashMap::new())
            .unwrap();
        assert_eq!(report.output(flaky, 0), Some(&Token::Text("ok".into())));
        assert_eq!(report.total_retries(), 2);
    }

    #[test]
    fn insufficient_retries_still_fail() {
        let mut g = TaskGraph::new();
        let src = g.add_task(Arc::new(ConstText("ok".into())));
        let flaky = g.add_task(Arc::new(Flaky::failing(5)));
        g.connect(src, 0, flaky, 0).unwrap();
        assert!(Executor::serial()
            .with_max_attempts(3)
            .run(&g, &HashMap::new())
            .is_err());
    }

    #[test]
    fn parallel_failure_terminates() {
        let mut g = TaskGraph::new();
        let src = g.add_task(Arc::new(ConstText("x".into())));
        let flaky = g.add_task(Arc::new(Flaky::failing(usize::MAX)));
        g.connect(src, 0, flaky, 0).unwrap();
        let err = Executor::parallel().run(&g, &HashMap::new()).unwrap_err();
        assert!(matches!(err, WorkflowError::TaskFailed { .. }));
    }

    #[test]
    fn progress_events_stream_in_order() {
        use parking_lot::Mutex;
        let events = std::sync::Arc::new(Mutex::new(Vec::new()));
        let sink = std::sync::Arc::clone(&events);
        let listener: super::ProgressListener = std::sync::Arc::new(move |e| sink.lock().push(e));

        let mut g = TaskGraph::new();
        let src = g.add_task(Arc::new(ConstText("x".into())));
        let up = g.add_task(Arc::new(Upper));
        g.connect(src, 0, up, 0).unwrap();
        Executor::serial()
            .with_listener(listener)
            .run(&g, &HashMap::new())
            .unwrap();
        let events = events.lock();
        // RunStarted + 2 × (Started + Finished) + RunFinished
        assert_eq!(events.len(), 6);
        assert!(matches!(
            &events[0],
            super::ProgressEvent::RunStarted { tasks: 2 }
        ));
        assert!(matches!(
            &events[1],
            super::ProgressEvent::Started { task, attempt: 1 } if task == "ConstText"
        ));
        assert!(matches!(
            &events[4],
            super::ProgressEvent::Finished { task, .. } if task == "Upper"
        ));
        assert!(matches!(
            &events[5],
            super::ProgressEvent::RunFinished { tasks: 2, .. }
        ));
    }

    #[test]
    fn tracing_links_task_spans_under_one_workflow_root() {
        let tracer = Arc::new(Tracer::wall_clock());
        let mut g = TaskGraph::new();
        let src = g.add_task(Arc::new(ConstText("x".into())));
        let up = g.add_task(Arc::new(Upper));
        g.connect(src, 0, up, 0).unwrap();
        Executor::serial()
            .with_tracing(Arc::clone(&tracer))
            .run(&g, &HashMap::new())
            .unwrap();

        let spans = tracer.finished_spans();
        assert_eq!(spans.len(), 3); // 2 task spans + 1 workflow root
        let root = spans
            .iter()
            .find(|s| s.kind == SpanKind::Workflow)
            .expect("workflow root span");
        assert_eq!(root.parent_span_id, None);
        assert_eq!(root.attribute("tasks"), Some("2"));
        for task in spans.iter().filter(|s| s.kind == SpanKind::Task) {
            assert_eq!(task.trace_id, root.trace_id);
            assert_eq!(task.parent_span_id, Some(root.span_id));
            assert_eq!(task.attribute("attempt"), Some("1"));
        }
        assert!(spans.iter().any(|s| s.name == "ConstText"));
        assert!(spans.iter().any(|s| s.name == "Upper"));
    }

    #[test]
    fn tracing_marks_failed_attempts_and_cache_hits() {
        use crate::memo::MemoCache;
        let tracer = Arc::new(Tracer::wall_clock());
        let memo = Arc::new(MemoCache::new(16));
        let mut g = TaskGraph::new();
        let up = g.add_task(Arc::new(PureUpper::new()));
        let mut bindings = HashMap::new();
        bindings.insert((up, 0), Token::Text("hello".into()));
        let exec = Executor::serial()
            .with_tracing(Arc::clone(&tracer))
            .with_memoisation(Arc::clone(&memo));
        exec.run(&g, &bindings).unwrap();
        exec.run(&g, &bindings).unwrap();
        let spans = tracer.finished_spans();
        let cached = spans
            .iter()
            .find(|s| s.attribute("cached") == Some("true"))
            .expect("cache-hit span");
        assert_eq!(cached.kind, SpanKind::Task);

        tracer.clear();
        let mut g = TaskGraph::new();
        let src = g.add_task(Arc::new(ConstText("x".into())));
        let flaky = g.add_task(Arc::new(Flaky::failing(usize::MAX)));
        g.connect(src, 0, flaky, 0).unwrap();
        let _ = Executor::serial()
            .with_max_attempts(2)
            .with_tracing(Arc::clone(&tracer))
            .run(&g, &HashMap::new());
        let spans = tracer.finished_spans();
        let failed: Vec<_> = spans
            .iter()
            .filter(|s| matches!(s.status, dm_wsrf::trace::SpanStatus::Error(_)))
            .collect();
        // Both flaky attempts errored, and the workflow root errored.
        assert_eq!(
            failed
                .iter()
                .filter(|s| s.kind == SpanKind::Task && s.name == "Flaky")
                .count(),
            2
        );
        assert!(failed.iter().any(|s| s.kind == SpanKind::Workflow));
    }

    #[test]
    fn progress_events_report_retries_and_failures() {
        use parking_lot::Mutex;
        let events = std::sync::Arc::new(Mutex::new(Vec::new()));
        let sink = std::sync::Arc::clone(&events);
        let listener: super::ProgressListener = std::sync::Arc::new(move |e| sink.lock().push(e));

        let mut g = TaskGraph::new();
        let src = g.add_task(Arc::new(ConstText("x".into())));
        let flaky = g.add_task(Arc::new(Flaky::failing(usize::MAX)));
        g.connect(src, 0, flaky, 0).unwrap();
        let _ = Executor::serial()
            .with_max_attempts(3)
            .with_listener(listener)
            .run(&g, &HashMap::new());
        let events = events.lock();
        let starts = events
            .iter()
            .filter(|e| matches!(e, super::ProgressEvent::Started { task, .. } if task == "Flaky"))
            .count();
        assert_eq!(starts, 3);
        assert!(events
            .iter()
            .any(|e| matches!(e, super::ProgressEvent::Failed { task, .. } if task == "Flaky")));
    }

    #[test]
    fn backoff_is_accounted_and_delivered_to_sink() {
        use parking_lot::Mutex;
        let charged = std::sync::Arc::new(Mutex::new(Duration::ZERO));
        let sink_total = std::sync::Arc::clone(&charged);
        let sink: super::BackoffSink = std::sync::Arc::new(move |d| *sink_total.lock() += d);

        let mut g = TaskGraph::new();
        let src = g.add_task(Arc::new(ConstText("ok".into())));
        let flaky = g.add_task(Arc::new(Flaky::failing(2)));
        g.connect(src, 0, flaky, 0).unwrap();
        let report = Executor::serial()
            .with_max_attempts(3)
            .with_backoff_sink(sink)
            .run(&g, &HashMap::new())
            .unwrap();
        assert_eq!(report.total_retries(), 2);
        // Two pauses, each at least the base backoff.
        let total = report.total_backoff();
        assert!(
            total >= 2 * RetryPolicy::default().base_backoff,
            "total {total:?}"
        );
        assert_eq!(*charged.lock(), total);
        // The backoff is attributed to the flaky task's run record.
        let flaky_run = report.runs.iter().find(|r| r.task == "Flaky").unwrap();
        assert_eq!(flaky_run.backoff, total);
        assert_eq!(report.retry_budget_remaining, None);
    }

    #[test]
    fn retry_budget_is_shared_across_tasks() {
        // Two flaky tasks each need 2 retries; a budget of 2 is burned
        // by the first, so the second fails even with attempts left.
        let build = || {
            let mut g = TaskGraph::new();
            let src = g.add_task(Arc::new(ConstText("ok".into())));
            let a = g.add_named_task("flaky-a", Arc::new(Flaky::failing(2)));
            let b = g.add_named_task("flaky-b", Arc::new(Flaky::failing(2)));
            g.connect(src, 0, a, 0).unwrap();
            g.connect(a, 0, b, 0).unwrap();
            g
        };
        let policy = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };

        let starved = Executor::serial()
            .with_retry_policy(RetryPolicy {
                retry_budget: Some(2),
                ..policy
            })
            .run(&build(), &HashMap::new());
        let err = starved.unwrap_err();
        assert!(
            matches!(err, WorkflowError::TaskFailed { ref task, ref message }
                if task == "flaky-b" && message.contains("retry budget exhausted")),
            "got: {err}"
        );

        let funded = Executor::serial()
            .with_retry_policy(RetryPolicy {
                retry_budget: Some(5),
                ..policy
            })
            .run(&build(), &HashMap::new())
            .unwrap();
        assert_eq!(funded.total_retries(), 4);
        assert_eq!(funded.retry_budget_remaining, Some(1));
    }

    #[test]
    fn retrying_events_fire_between_attempts() {
        use parking_lot::Mutex;
        let events = std::sync::Arc::new(Mutex::new(Vec::new()));
        let sink = std::sync::Arc::clone(&events);
        let listener: super::ProgressListener = std::sync::Arc::new(move |e| sink.lock().push(e));

        let mut g = TaskGraph::new();
        let src = g.add_task(Arc::new(ConstText("x".into())));
        let flaky = g.add_task(Arc::new(Flaky::failing(1)));
        g.connect(src, 0, flaky, 0).unwrap();
        Executor::serial()
            .with_retry_policy(RetryPolicy {
                max_attempts: 2,
                retry_budget: Some(10),
                ..RetryPolicy::default()
            })
            .with_listener(listener)
            .run(&g, &HashMap::new())
            .unwrap();
        let events = events.lock();
        let retrying: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                super::ProgressEvent::Retrying {
                    task,
                    next_attempt,
                    backoff,
                    budget_remaining,
                } => Some((task.clone(), *next_attempt, *backoff, *budget_remaining)),
                _ => None,
            })
            .collect();
        assert_eq!(retrying.len(), 1);
        let (task, next_attempt, backoff, budget_remaining) = &retrying[0];
        assert_eq!(task, "Flaky");
        assert_eq!(*next_attempt, 2);
        assert!(*backoff >= RetryPolicy::default().base_backoff);
        assert_eq!(*budget_remaining, Some(9));
    }

    /// Pure uppercase that counts real executions.
    struct PureUpper {
        executions: std::sync::atomic::AtomicUsize,
    }

    impl PureUpper {
        fn new() -> PureUpper {
            PureUpper {
                executions: std::sync::atomic::AtomicUsize::new(0),
            }
        }
    }

    impl crate::graph::Tool for PureUpper {
        fn name(&self) -> &str {
            "PureUpper"
        }

        fn input_ports(&self) -> Vec<crate::graph::PortSpec> {
            vec![crate::graph::PortSpec::new("text", "string")]
        }

        fn output_ports(&self) -> Vec<crate::graph::PortSpec> {
            vec![crate::graph::PortSpec::new("upper", "string")]
        }

        fn execute(&self, inputs: &[Token]) -> std::result::Result<Vec<Token>, String> {
            self.executions
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            match &inputs[0] {
                Token::Text(s) => Ok(vec![Token::Text(s.to_uppercase())]),
                _ => Err("expected text".into()),
            }
        }

        fn is_pure(&self) -> bool {
            true
        }
    }

    #[test]
    fn memoised_rerun_skips_pure_tasks() {
        use crate::memo::MemoCache;
        let tool = Arc::new(PureUpper::new());
        let mut g = TaskGraph::new();
        let up = g.add_task(Arc::clone(&tool) as Arc<dyn crate::graph::Tool>);
        let mut bindings = HashMap::new();
        bindings.insert((up, 0), Token::Text("hello".into()));

        let cache = Arc::new(MemoCache::new(16));
        let exec = Executor::serial().with_memoisation(Arc::clone(&cache));
        let cold = exec.run(&g, &bindings).unwrap();
        assert_eq!(cold.output(up, 0), Some(&Token::Text("HELLO".into())));
        assert_eq!(cold.memo_hits(), 0);
        let warm = exec.run(&g, &bindings).unwrap();
        assert_eq!(warm.output(up, 0), Some(&Token::Text("HELLO".into())));
        assert_eq!(warm.memo_hits(), 1);
        let run = &warm.runs[0];
        assert!(run.cached);
        assert_eq!(run.attempts, 0);
        // The tool body ran exactly once across both enactments.
        assert_eq!(tool.executions.load(std::sync::atomic::Ordering::SeqCst), 1);
        // Changed input bypasses the cache.
        bindings.insert((up, 0), Token::Text("other".into()));
        let changed = exec.run(&g, &bindings).unwrap();
        assert_eq!(changed.output(up, 0), Some(&Token::Text("OTHER".into())));
        assert_eq!(changed.memo_hits(), 0);
        assert_eq!(tool.executions.load(std::sync::atomic::Ordering::SeqCst), 2);
    }

    #[test]
    fn impure_tasks_are_never_memoised() {
        use crate::memo::MemoCache;
        let mut g = TaskGraph::new();
        let src = g.add_task(Arc::new(ConstText("x".into())));
        let up = g.add_task(Arc::new(Upper));
        g.connect(src, 0, up, 0).unwrap();
        let cache = Arc::new(MemoCache::new(16));
        let exec = Executor::serial().with_memoisation(Arc::clone(&cache));
        exec.run(&g, &HashMap::new()).unwrap();
        let rerun = exec.run(&g, &HashMap::new()).unwrap();
        assert_eq!(rerun.memo_hits(), 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn cache_hit_events_fire_on_warm_runs() {
        use crate::memo::MemoCache;
        use parking_lot::Mutex;
        let events = std::sync::Arc::new(Mutex::new(Vec::new()));
        let sink = std::sync::Arc::clone(&events);
        let listener: super::ProgressListener = std::sync::Arc::new(move |e| sink.lock().push(e));

        let mut g = TaskGraph::new();
        let up = g.add_task(Arc::new(PureUpper::new()));
        let mut bindings = HashMap::new();
        bindings.insert((up, 0), Token::Text("x".into()));
        let exec = Executor::serial()
            .with_memoisation(Arc::new(MemoCache::new(4)))
            .with_listener(listener);
        exec.run(&g, &bindings).unwrap();
        exec.run(&g, &bindings).unwrap();
        let events = events.lock();
        let hits = events
            .iter()
            .filter(|e| matches!(e, super::ProgressEvent::CacheHit { task } if task == "PureUpper"))
            .count();
        assert_eq!(hits, 1);
    }

    #[test]
    fn empty_graph_runs() {
        let g = TaskGraph::new();
        let report = Executor::parallel().run(&g, &HashMap::new()).unwrap();
        assert!(report.outputs.is_empty());
        let report = Executor::serial().run(&g, &HashMap::new()).unwrap();
        assert!(report.runs.is_empty());
    }

    /// Passes its input through, counting executions.
    struct CountingPass {
        name: String,
        executions: std::sync::Arc<std::sync::atomic::AtomicUsize>,
    }

    impl crate::graph::Tool for CountingPass {
        fn name(&self) -> &str {
            &self.name
        }

        fn input_ports(&self) -> Vec<crate::graph::PortSpec> {
            vec![crate::graph::PortSpec::new("in", "string")]
        }

        fn output_ports(&self) -> Vec<crate::graph::PortSpec> {
            vec![crate::graph::PortSpec::new("out", "string")]
        }

        fn execute(&self, inputs: &[Token]) -> std::result::Result<Vec<Token>, String> {
            self.executions
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Ok(vec![inputs[0].clone()])
        }
    }

    /// Blocks until `failed` is raised (a sibling's terminal failure),
    /// then succeeds — so its successors are provably enqueued *after*
    /// the failure, where the pre-fix executor could still run them.
    struct WaitForFailure {
        failed: std::sync::Arc<std::sync::atomic::AtomicBool>,
    }

    impl crate::graph::Tool for WaitForFailure {
        fn name(&self) -> &str {
            "WaitForFailure"
        }

        fn input_ports(&self) -> Vec<crate::graph::PortSpec> {
            vec![crate::graph::PortSpec::new("in", "string")]
        }

        fn output_ports(&self) -> Vec<crate::graph::PortSpec> {
            vec![crate::graph::PortSpec::new("out", "string")]
        }

        fn execute(&self, inputs: &[Token]) -> std::result::Result<Vec<Token>, String> {
            let start = Instant::now();
            while !self.failed.load(std::sync::atomic::Ordering::SeqCst)
                && start.elapsed() < Duration::from_secs(5)
            {
                std::thread::yield_now();
            }
            // Grace period: the Failed event fires just before the
            // failing worker records the failure under the state lock;
            // give it time to get there so this completion lands after.
            std::thread::sleep(Duration::from_millis(2));
            Ok(vec![inputs[0].clone()])
        }
    }

    #[test]
    fn parallel_failure_cancels_queued_tasks_deterministically() {
        use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
        // src fans out to an instantly-failing task and a gate that
        // completes only after the failure is visible; the gate's five
        // successors are therefore queued (or about to be) when the
        // failure is recorded. Pre-fix, workers could claim and execute
        // them before the POISON pill propagated, so how many ran
        // varied run to run. Post-fix they must never run: claimed
        // tasks re-check the failure flag, and completions after a
        // failure schedule no successors. 100 iterations pin it.
        for iteration in 0..100 {
            let failed = std::sync::Arc::new(AtomicBool::new(false));
            let downstream = std::sync::Arc::new(AtomicUsize::new(0));

            let mut g = TaskGraph::new();
            let src = g.add_task(Arc::new(ConstText("x".into())));
            let fail = g.add_named_task("fail", Arc::new(Flaky::failing(usize::MAX)));
            let gate = g.add_task(Arc::new(WaitForFailure {
                failed: std::sync::Arc::clone(&failed),
            }));
            g.connect(src, 0, fail, 0).unwrap();
            g.connect(src, 0, gate, 0).unwrap();
            for i in 0..5 {
                let sink = g.add_task(Arc::new(CountingPass {
                    name: format!("downstream-{i}"),
                    executions: std::sync::Arc::clone(&downstream),
                }));
                g.connect(gate, 0, sink, 0).unwrap();
            }

            let flag = std::sync::Arc::clone(&failed);
            let listener: super::ProgressListener = std::sync::Arc::new(move |e| {
                if matches!(e, super::ProgressEvent::Failed { .. }) {
                    flag.store(true, Ordering::SeqCst);
                }
            });
            let err = Executor::parallel()
                .with_listener(listener)
                .run(&g, &HashMap::new())
                .unwrap_err();
            assert!(
                matches!(err, WorkflowError::TaskFailed { ref task, .. } if task == "fail"),
                "iteration {iteration}: wrong failure: {err}"
            );
            assert_eq!(
                downstream.load(Ordering::SeqCst),
                0,
                "iteration {iteration}: a queued task executed after the failure"
            );
        }
    }

    #[test]
    fn virtual_clock_reports_simulated_elapsed() {
        use std::sync::atomic::{AtomicU64, Ordering};
        /// Charges 5 ms of simulated time per execution, like a WsTool
        /// charging transport against the network's virtual clock.
        struct Charging {
            nanos: std::sync::Arc<AtomicU64>,
        }
        impl crate::graph::Tool for Charging {
            fn name(&self) -> &str {
                "Charging"
            }
            fn input_ports(&self) -> Vec<crate::graph::PortSpec> {
                vec![crate::graph::PortSpec::new("in", "string")]
            }
            fn output_ports(&self) -> Vec<crate::graph::PortSpec> {
                vec![crate::graph::PortSpec::new("out", "string")]
            }
            fn execute(&self, inputs: &[Token]) -> std::result::Result<Vec<Token>, String> {
                self.nanos
                    .fetch_add(Duration::from_millis(5).as_nanos() as u64, Ordering::SeqCst);
                Ok(vec![inputs[0].clone()])
            }
        }

        let nanos = std::sync::Arc::new(AtomicU64::new(0));
        let mut g = TaskGraph::new();
        let src = g.add_task(Arc::new(ConstText("x".into())));
        let charge = g.add_task(Arc::new(Charging {
            nanos: std::sync::Arc::clone(&nanos),
        }));
        g.connect(src, 0, charge, 0).unwrap();

        // Without a clock source both simulated figures stay zero.
        let report = Executor::serial().run(&g, &HashMap::new()).unwrap();
        assert_eq!(report.virtual_elapsed, Duration::ZERO);
        assert!(report
            .runs
            .iter()
            .all(|r| r.virtual_duration == Duration::ZERO));

        nanos.store(0, Ordering::SeqCst);
        let clock_nanos = std::sync::Arc::clone(&nanos);
        let clock: super::ClockSource =
            std::sync::Arc::new(move || Duration::from_nanos(clock_nanos.load(Ordering::SeqCst)));
        use parking_lot::Mutex;
        let events = std::sync::Arc::new(Mutex::new(Vec::new()));
        let sink = std::sync::Arc::clone(&events);
        let listener: super::ProgressListener = std::sync::Arc::new(move |e| sink.lock().push(e));

        let report = Executor::serial()
            .with_virtual_clock(clock)
            .with_listener(listener)
            .run(&g, &HashMap::new())
            .unwrap();
        // The whole enactment advanced the simulated clock by exactly
        // the 5 ms the charging task spent; wall elapsed says nothing
        // about that (the run never sleeps).
        assert_eq!(report.virtual_elapsed, Duration::from_millis(5));
        let charge_run = report.runs.iter().find(|r| r.task == "Charging").unwrap();
        assert_eq!(charge_run.virtual_duration, Duration::from_millis(5));
        let src_run = report.runs.iter().find(|r| r.task == "ConstText").unwrap();
        assert_eq!(src_run.virtual_duration, Duration::ZERO);
        // RunFinished carries the simulated figure too, so live
        // monitors agree with benches and traces.
        let events = events.lock();
        assert!(events.iter().any(|e| matches!(
            e,
            super::ProgressEvent::RunFinished { virtual_elapsed, .. }
                if *virtual_elapsed == Duration::from_millis(5)
        )));
    }

    #[test]
    fn deterministic_events_are_replay_stable_under_parallelism() {
        use parking_lot::Mutex;
        // Eight same-tick leaves raced by the worker pool: with live
        // delivery the Started/Finished interleaving varies run to run,
        // so a journal replayed against the event stream could never be
        // compared. In deterministic mode every enactment of the same
        // workflow must yield the identical sequence — per-task blocks
        // ordered by (completion tick, task id), RunStarted first,
        // RunFinished last. Many iterations pin the ordering against
        // scheduler luck.
        let build = || {
            let mut g = TaskGraph::new();
            let src = g.add_task(Arc::new(ConstText("abc".into())));
            for i in 0..8 {
                let up = g.add_named_task(format!("upper-{i}"), Arc::new(Upper));
                g.connect(src, 0, up, 0).unwrap();
            }
            g
        };
        let mut reference: Option<Vec<ProgressEvent>> = None;
        for iteration in 0..50 {
            let events = std::sync::Arc::new(Mutex::new(Vec::new()));
            let sink = std::sync::Arc::clone(&events);
            let listener: super::ProgressListener =
                std::sync::Arc::new(move |e| sink.lock().push(e));
            let report = Executor::parallel()
                .with_deterministic_events()
                .with_listener(listener)
                .run(&build(), &HashMap::new())
                .unwrap();
            // Run records follow the same deterministic order.
            let names: Vec<_> = report.runs.iter().map(|r| r.task.clone()).collect();
            assert_eq!(names[0], "ConstText", "iteration {iteration}");
            assert_eq!(
                names[1..],
                (0..8).map(|i| format!("upper-{i}")).collect::<Vec<_>>()[..],
                "iteration {iteration}"
            );
            let mut seen = events.lock().clone();
            // Wall-clock durations inside events vary; normalise them.
            for e in seen.iter_mut() {
                match e {
                    ProgressEvent::Finished { duration, .. } => *duration = Duration::ZERO,
                    ProgressEvent::RunFinished {
                        elapsed,
                        virtual_elapsed,
                        ..
                    } => {
                        *elapsed = Duration::ZERO;
                        *virtual_elapsed = Duration::ZERO;
                    }
                    _ => {}
                }
            }
            assert!(matches!(
                seen.first(),
                Some(ProgressEvent::RunStarted { .. })
            ));
            assert!(matches!(
                seen.last(),
                Some(ProgressEvent::RunFinished { .. })
            ));
            match &reference {
                None => reference = Some(seen),
                Some(expected) => {
                    assert_eq!(&seen, expected, "iteration {iteration} diverged");
                }
            }
        }
    }

    #[test]
    fn canonical_bytes_ignore_provenance_but_not_results() {
        let mut g = TaskGraph::new();
        let src = g.add_task(Arc::new(ConstText("hello".into())));
        let up = g.add_task(Arc::new(Upper));
        g.connect(src, 0, up, 0).unwrap();
        let a = Executor::serial().run(&g, &HashMap::new()).unwrap();
        let mut b = Executor::parallel().run(&g, &HashMap::new()).unwrap();
        // Attempt counts, durations, and replay provenance differ
        // legitimately between enactments; results must not.
        for run in b.runs.iter_mut() {
            run.attempts += 3;
            run.duration += Duration::from_secs(1);
            run.replayed = true;
        }
        assert_eq!(a.canonical_bytes(), b.canonical_bytes());
        assert_eq!(b.replay_hits(), 2);
        // A changed output token changes the bytes.
        let mut c = a.clone();
        c.outputs.insert((up, 0), Token::Text("OTHER".into()));
        assert_ne!(a.canonical_bytes(), c.canonical_bytes());
    }
}
