//! Workflow enactment: serial and parallel executors with per-task
//! retry (the fault-tolerance requirement: "the framework must …
//! include the ability to complete the task if a fault occurs by moving
//! the job to another resource", §3 — the moving itself is implemented
//! by [`crate::wsimport::WsTool`] host failover; the engine contributes
//! bounded retries and failure accounting).

use crate::error::{Result, WorkflowError};
use crate::graph::{TaskGraph, TaskId, Token};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Serial or parallel enactment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Topological order on the calling thread.
    Serial,
    /// Ready tasks run concurrently on scoped threads.
    Parallel,
}

/// Per-task record in an [`ExecutionReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct TaskRun {
    /// Task display name.
    pub task: String,
    /// Execution attempts used (1 = no retry).
    pub attempts: usize,
    /// Wall-clock duration of the successful attempt (or the last
    /// failed one).
    pub duration: Duration,
    /// `None` on success, the failure message otherwise.
    pub error: Option<String>,
}

/// The result of enacting a workflow.
#[derive(Debug, Clone, Default)]
pub struct ExecutionReport {
    /// Output tokens of unconnected output ports: `(task, port) → token`.
    pub outputs: HashMap<(TaskId, usize), Token>,
    /// Per-task run records, in completion order.
    pub runs: Vec<TaskRun>,
    /// Total enactment wall-clock time.
    pub elapsed: Duration,
}

impl ExecutionReport {
    /// Fetch an output token by task id and port.
    pub fn output(&self, task: TaskId, port: usize) -> Option<&Token> {
        self.outputs.get(&(task, port))
    }

    /// Total retry attempts beyond first tries.
    pub fn total_retries(&self) -> usize {
        self.runs.iter().map(|r| r.attempts.saturating_sub(1)).sum()
    }
}

/// A live progress event, delivered while the workflow runs — the
/// paper's service-monitoring requirement ("the framework should allow
/// users to monitor the progress of their jobs as they are executed on
/// distributed resources", §3).
#[derive(Debug, Clone, PartialEq)]
pub enum ProgressEvent {
    /// A task began executing (attempt number starts at 1).
    Started {
        /// Task display name.
        task: String,
        /// Attempt number.
        attempt: usize,
    },
    /// A task finished successfully.
    Finished {
        /// Task display name.
        task: String,
        /// Attempts used.
        attempts: usize,
        /// Duration of the successful attempt.
        duration: Duration,
    },
    /// A task failed terminally.
    Failed {
        /// Task display name.
        task: String,
        /// The failure message.
        message: String,
    },
}

/// Listener callback for [`ProgressEvent`]s. Shared across worker
/// threads in parallel mode.
pub type ProgressListener = std::sync::Arc<dyn Fn(ProgressEvent) + Send + Sync>;

/// The workflow executor.
#[derive(Clone)]
pub struct Executor {
    mode: ExecutionMode,
    /// Maximum execution attempts per task (1 = no retries).
    max_attempts: usize,
    listener: Option<ProgressListener>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("mode", &self.mode)
            .field("max_attempts", &self.max_attempts)
            .field("listener", &self.listener.is_some())
            .finish()
    }
}

impl Executor {
    /// Create a serial executor without retries.
    pub fn serial() -> Executor {
        Executor { mode: ExecutionMode::Serial, max_attempts: 1, listener: None }
    }

    /// Create a parallel executor without retries.
    pub fn parallel() -> Executor {
        Executor { mode: ExecutionMode::Parallel, max_attempts: 1, listener: None }
    }

    /// Builder: allow up to `attempts` executions per task.
    pub fn with_max_attempts(mut self, attempts: usize) -> Executor {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Builder: receive live [`ProgressEvent`]s during enactment.
    pub fn with_listener(mut self, listener: ProgressListener) -> Executor {
        self.listener = Some(listener);
        self
    }

    fn emit(&self, event: ProgressEvent) {
        if let Some(l) = &self.listener {
            l(event);
        }
    }

    /// Enact `graph`. `bindings` provides tokens for unconnected input
    /// ports (`(task, port) → token`).
    pub fn run(
        &self,
        graph: &TaskGraph,
        bindings: &HashMap<(TaskId, usize), Token>,
    ) -> Result<ExecutionReport> {
        // Validate that every input is fed.
        for t in 0..graph.num_tasks() {
            for (port, spec) in graph.unconnected_inputs(t)? {
                if !bindings.contains_key(&(t, port)) {
                    return Err(WorkflowError::UnboundInput {
                        task: graph.task(t)?.name.clone(),
                        port: spec.name,
                    });
                }
            }
        }
        let order = graph.topological_order()?;
        match self.mode {
            ExecutionMode::Serial => self.run_serial(graph, bindings, &order),
            ExecutionMode::Parallel => self.run_parallel(graph, bindings),
        }
    }

    fn execute_task(
        &self,
        graph: &TaskGraph,
        task: TaskId,
        inputs: &[Token],
    ) -> (std::result::Result<Vec<Token>, String>, TaskRun) {
        let node = graph.task(task).expect("validated id");
        let mut attempts = 0;
        loop {
            attempts += 1;
            self.emit(ProgressEvent::Started { task: node.name.clone(), attempt: attempts });
            let start = Instant::now();
            match node.tool.execute(inputs) {
                Ok(outputs) => {
                    let expected = node.tool.output_ports().len();
                    if outputs.len() != expected {
                        let msg = format!(
                            "tool returned {} outputs, declared {expected}",
                            outputs.len()
                        );
                        self.emit(ProgressEvent::Failed {
                            task: node.name.clone(),
                            message: msg.clone(),
                        });
                        return (
                            Err(msg.clone()),
                            TaskRun {
                                task: node.name.clone(),
                                attempts,
                                duration: start.elapsed(),
                                error: Some(msg),
                            },
                        );
                    }
                    self.emit(ProgressEvent::Finished {
                        task: node.name.clone(),
                        attempts,
                        duration: start.elapsed(),
                    });
                    return (
                        Ok(outputs),
                        TaskRun {
                            task: node.name.clone(),
                            attempts,
                            duration: start.elapsed(),
                            error: None,
                        },
                    );
                }
                Err(message) => {
                    if attempts >= self.max_attempts {
                        self.emit(ProgressEvent::Failed {
                            task: node.name.clone(),
                            message: message.clone(),
                        });
                        return (
                            Err(message.clone()),
                            TaskRun {
                                task: node.name.clone(),
                                attempts,
                                duration: start.elapsed(),
                                error: Some(message),
                            },
                        );
                    }
                }
            }
        }
    }

    fn gather_inputs(
        graph: &TaskGraph,
        task: TaskId,
        bindings: &HashMap<(TaskId, usize), Token>,
        produced: &HashMap<(TaskId, usize), Token>,
    ) -> Vec<Token> {
        let num_inputs = graph.task(task).expect("validated").tool.input_ports().len();
        (0..num_inputs)
            .map(|port| {
                if let Some(cable) =
                    graph.cables().iter().find(|c| c.to_task == task && c.to_port == port)
                {
                    produced
                        .get(&(cable.from_task, cable.from_port))
                        .cloned()
                        .expect("producer ran before consumer")
                } else {
                    bindings.get(&(task, port)).cloned().expect("validated binding")
                }
            })
            .collect()
    }

    fn run_serial(
        &self,
        graph: &TaskGraph,
        bindings: &HashMap<(TaskId, usize), Token>,
        order: &[TaskId],
    ) -> Result<ExecutionReport> {
        let start = Instant::now();
        let mut produced: HashMap<(TaskId, usize), Token> = HashMap::new();
        let mut report = ExecutionReport::default();
        for &task in order {
            let inputs = Self::gather_inputs(graph, task, bindings, &produced);
            let (result, run) = self.execute_task(graph, task, &inputs);
            report.runs.push(run);
            match result {
                Ok(outputs) => {
                    for (port, token) in outputs.into_iter().enumerate() {
                        produced.insert((task, port), token);
                    }
                }
                Err(message) => {
                    report.elapsed = start.elapsed();
                    return Err(WorkflowError::TaskFailed {
                        task: graph.task(task)?.name.clone(),
                        message,
                    });
                }
            }
        }
        self.collect_outputs(graph, &produced, &mut report)?;
        report.elapsed = start.elapsed();
        Ok(report)
    }

    fn run_parallel(
        &self,
        graph: &TaskGraph,
        bindings: &HashMap<(TaskId, usize), Token>,
    ) -> Result<ExecutionReport> {
        let start = Instant::now();
        let n = graph.num_tasks();
        let mut indegree = vec![0usize; n];
        for c in graph.cables() {
            indegree[c.to_task] += 1;
        }

        let produced = Mutex::new(HashMap::<(TaskId, usize), Token>::new());
        let state = Mutex::new((indegree, Vec::<TaskRun>::new(), None::<(String, String)>));
        let (work_tx, work_rx) = crossbeam::channel::unbounded::<TaskId>();
        let pending = std::sync::atomic::AtomicUsize::new(n);

        // Seed the ready queue.
        {
            let state = state.lock();
            for t in 0..n {
                if state.0[t] == 0 {
                    work_tx.send(t).expect("queue open");
                }
            }
        }
        if n == 0 {
            let mut report = ExecutionReport::default();
            report.elapsed = start.elapsed();
            return Ok(report);
        }

        // Poison pill: once the final task completes (or one fails), a
        // worker broadcasts POISON; every receiver re-broadcasts and
        // exits, so no thread blocks on a channel whose senders are all
        // still alive inside blocked peers.
        const POISON: TaskId = usize::MAX;
        let workers = std::thread::available_parallelism().map_or(4, |p| p.get()).min(n.max(1));
        crossbeam::scope(|scope| {
            for _ in 0..workers {
                let work_rx = work_rx.clone();
                let work_tx = work_tx.clone();
                let produced = &produced;
                let state = &state;
                let pending = &pending;
                scope.spawn(move |_| {
                    while let Ok(task) = work_rx.recv() {
                        if task == POISON {
                            let _ = work_tx.send(POISON);
                            break;
                        }
                        let inputs = {
                            let produced = produced.lock();
                            Self::gather_inputs(graph, task, bindings, &produced)
                        };
                        let (result, run) = self.execute_task(graph, task, &inputs);
                        let failed = result.is_err();
                        match result {
                            Ok(outputs) => {
                                {
                                    let mut produced = produced.lock();
                                    for (port, token) in outputs.into_iter().enumerate() {
                                        produced.insert((task, port), token);
                                    }
                                }
                                let mut state = state.lock();
                                state.1.push(run);
                                for c in graph.cables() {
                                    if c.from_task == task {
                                        state.0[c.to_task] -= 1;
                                        if state.0[c.to_task] == 0 {
                                            work_tx.send(c.to_task).expect("queue open");
                                        }
                                    }
                                }
                            }
                            Err(message) => {
                                let mut state = state.lock();
                                state.1.push(run);
                                if state.2.is_none() {
                                    state.2 = Some((
                                        graph.task(task).expect("validated").name.clone(),
                                        message,
                                    ));
                                }
                            }
                        }
                        let left =
                            pending.fetch_sub(1, std::sync::atomic::Ordering::SeqCst) - 1;
                        if left == 0 || failed {
                            let _ = work_tx.send(POISON);
                            break;
                        }
                    }
                });
            }
            drop(work_tx);
            drop(work_rx);
        })
        .expect("workflow worker panicked");

        let (_, runs, failure) = state.into_inner();
        let mut report = ExecutionReport { runs, ..ExecutionReport::default() };
        if let Some((task, message)) = failure {
            report.elapsed = start.elapsed();
            return Err(WorkflowError::TaskFailed { task, message });
        }
        let produced = produced.into_inner();
        self.collect_outputs(graph, &produced, &mut report)?;
        report.elapsed = start.elapsed();
        Ok(report)
    }

    fn collect_outputs(
        &self,
        graph: &TaskGraph,
        produced: &HashMap<(TaskId, usize), Token>,
        report: &mut ExecutionReport,
    ) -> Result<()> {
        for t in 0..graph.num_tasks() {
            for (port, _) in graph.unconnected_outputs(t)? {
                if let Some(token) = produced.get(&(t, port)) {
                    report.outputs.insert((t, port), token.clone());
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::test_tools::*;
    use std::sync::Arc;

    #[test]
    fn serial_pipeline_produces_output() {
        let mut g = TaskGraph::new();
        let src = g.add_task(Arc::new(ConstText("hello".into())));
        let up = g.add_task(Arc::new(Upper));
        g.connect(src, 0, up, 0).unwrap();
        let report = Executor::serial().run(&g, &HashMap::new()).unwrap();
        assert_eq!(report.output(up, 0), Some(&Token::Text("HELLO".into())));
        assert_eq!(report.runs.len(), 2);
    }

    #[test]
    fn bindings_feed_unconnected_inputs() {
        let mut g = TaskGraph::new();
        let cat = g.add_task(Arc::new(Concat));
        let mut bindings = HashMap::new();
        bindings.insert((cat, 0), Token::Text("a".into()));
        bindings.insert((cat, 1), Token::Text("b".into()));
        let report = Executor::serial().run(&g, &bindings).unwrap();
        assert_eq!(report.output(cat, 0), Some(&Token::Text("ab".into())));
    }

    #[test]
    fn missing_binding_detected() {
        let mut g = TaskGraph::new();
        g.add_task(Arc::new(Upper));
        let err = Executor::serial().run(&g, &HashMap::new()).unwrap_err();
        assert!(matches!(err, WorkflowError::UnboundInput { .. }));
    }

    #[test]
    fn diamond_graph_joins() {
        // src → (upper, concat-b) ; upper → concat-a.
        let mut g = TaskGraph::new();
        let src = g.add_task(Arc::new(ConstText("x".into())));
        let up = g.add_task(Arc::new(Upper));
        let cat = g.add_task(Arc::new(Concat));
        g.connect(src, 0, up, 0).unwrap();
        g.connect(up, 0, cat, 0).unwrap();
        g.connect(src, 0, cat, 1).unwrap();
        let report = Executor::serial().run(&g, &HashMap::new()).unwrap();
        assert_eq!(report.output(cat, 0), Some(&Token::Text("Xx".into())));
    }

    #[test]
    fn parallel_matches_serial() {
        let mut g = TaskGraph::new();
        let src = g.add_task(Arc::new(ConstText("abc".into())));
        let mut sinks = Vec::new();
        for _ in 0..8 {
            let up = g.add_task(Arc::new(Upper));
            g.connect(src, 0, up, 0).unwrap();
            sinks.push(up);
        }
        let serial = Executor::serial().run(&g, &HashMap::new()).unwrap();
        let parallel = Executor::parallel().run(&g, &HashMap::new()).unwrap();
        for &s in &sinks {
            assert_eq!(serial.output(s, 0), parallel.output(s, 0));
        }
        assert_eq!(parallel.runs.len(), 9);
    }

    #[test]
    fn failure_reports_task_name() {
        let mut g = TaskGraph::new();
        let src = g.add_task(Arc::new(ConstText("x".into())));
        let flaky = g.add_named_task("always-fails", Arc::new(Flaky::failing(usize::MAX)));
        g.connect(src, 0, flaky, 0).unwrap();
        let err = Executor::serial().run(&g, &HashMap::new()).unwrap_err();
        assert!(matches!(err, WorkflowError::TaskFailed { ref task, .. } if task == "always-fails"));
    }

    #[test]
    fn retries_recover_transient_failures() {
        let mut g = TaskGraph::new();
        let src = g.add_task(Arc::new(ConstText("ok".into())));
        let flaky = g.add_task(Arc::new(Flaky::failing(2)));
        g.connect(src, 0, flaky, 0).unwrap();
        let report = Executor::serial()
            .with_max_attempts(3)
            .run(&g, &HashMap::new())
            .unwrap();
        assert_eq!(report.output(flaky, 0), Some(&Token::Text("ok".into())));
        assert_eq!(report.total_retries(), 2);
    }

    #[test]
    fn insufficient_retries_still_fail() {
        let mut g = TaskGraph::new();
        let src = g.add_task(Arc::new(ConstText("ok".into())));
        let flaky = g.add_task(Arc::new(Flaky::failing(5)));
        g.connect(src, 0, flaky, 0).unwrap();
        assert!(Executor::serial()
            .with_max_attempts(3)
            .run(&g, &HashMap::new())
            .is_err());
    }

    #[test]
    fn parallel_failure_terminates() {
        let mut g = TaskGraph::new();
        let src = g.add_task(Arc::new(ConstText("x".into())));
        let flaky = g.add_task(Arc::new(Flaky::failing(usize::MAX)));
        g.connect(src, 0, flaky, 0).unwrap();
        let err = Executor::parallel().run(&g, &HashMap::new()).unwrap_err();
        assert!(matches!(err, WorkflowError::TaskFailed { .. }));
    }

    #[test]
    fn progress_events_stream_in_order() {
        use parking_lot::Mutex;
        let events = std::sync::Arc::new(Mutex::new(Vec::new()));
        let sink = std::sync::Arc::clone(&events);
        let listener: super::ProgressListener =
            std::sync::Arc::new(move |e| sink.lock().push(e));

        let mut g = TaskGraph::new();
        let src = g.add_task(Arc::new(ConstText("x".into())));
        let up = g.add_task(Arc::new(Upper));
        g.connect(src, 0, up, 0).unwrap();
        Executor::serial()
            .with_listener(listener)
            .run(&g, &HashMap::new())
            .unwrap();
        let events = events.lock();
        assert_eq!(events.len(), 4); // 2 × (Started + Finished)
        assert!(matches!(
            &events[0],
            super::ProgressEvent::Started { task, attempt: 1 } if task == "ConstText"
        ));
        assert!(matches!(
            &events[3],
            super::ProgressEvent::Finished { task, .. } if task == "Upper"
        ));
    }

    #[test]
    fn progress_events_report_retries_and_failures() {
        use parking_lot::Mutex;
        let events = std::sync::Arc::new(Mutex::new(Vec::new()));
        let sink = std::sync::Arc::clone(&events);
        let listener: super::ProgressListener =
            std::sync::Arc::new(move |e| sink.lock().push(e));

        let mut g = TaskGraph::new();
        let src = g.add_task(Arc::new(ConstText("x".into())));
        let flaky = g.add_task(Arc::new(Flaky::failing(usize::MAX)));
        g.connect(src, 0, flaky, 0).unwrap();
        let _ = Executor::serial()
            .with_max_attempts(3)
            .with_listener(listener)
            .run(&g, &HashMap::new());
        let events = events.lock();
        let starts = events
            .iter()
            .filter(|e| matches!(e, super::ProgressEvent::Started { task, .. } if task == "Flaky"))
            .count();
        assert_eq!(starts, 3);
        assert!(events
            .iter()
            .any(|e| matches!(e, super::ProgressEvent::Failed { task, .. } if task == "Flaky")));
    }

    #[test]
    fn empty_graph_runs() {
        let g = TaskGraph::new();
        let report = Executor::parallel().run(&g, &HashMap::new()).unwrap();
        assert!(report.outputs.is_empty());
        let report = Executor::serial().run(&g, &HashMap::new()).unwrap();
        assert!(report.runs.is_empty());
    }
}
