//! WSDL import: "A Web Service is imported to the workspace by
//! providing its WSDL interface. Once the interface is provided Triana
//! creates a tool for each operation provided by the service. These
//! tools are used to invoke the service operations" (§4).
//!
//! [`WsTool`] is such a generated tool: its ports mirror the
//! operation's message parts, and `execute` marshals the tokens into a
//! SOAP call over the simulated network. A `WsTool` may carry *replica
//! hosts*: on a transport failure it migrates the invocation to the
//! next replica — the paper's fault-tolerance requirement ("the ability
//! to complete the task if a fault occurs by moving the job to another
//! resource").

use crate::graph::{PortSpec, Token, Tool};
use dm_wsrf::fleet::P2cRouter;
use dm_wsrf::resilience::{CallStats, ResilientCaller};
use dm_wsrf::trace::{current, SpanKind};
use dm_wsrf::transport::Network;
use dm_wsrf::wsdl::{Operation, WsdlDocument};
use dm_wsrf::WsError;
use parking_lot::Mutex;
use std::sync::Arc;

/// A workspace tool generated from one WSDL operation.
pub struct WsTool {
    name: String,
    package: String,
    service: String,
    operation: Operation,
    network: Arc<Network>,
    /// Invocation targets in preference order (primary first).
    hosts: Mutex<Vec<String>>,
    /// When attached, every per-host attempt goes through the resilient
    /// caller (deadline, backoff retries, circuit breakers) and failing
    /// primaries are demoted behind healthy replicas.
    resilience: Option<ResilientCaller>,
    /// When attached, each `execute` re-orders the replica set with a
    /// power-of-two-choices draw over the network's live load snapshot
    /// (E19) instead of using the stored preference order.
    router: Option<Arc<P2cRouter>>,
    /// Host that served the most recent successful `execute`.
    last_served: Mutex<Option<String>>,
    /// Aggregate attempt/backoff statistics of the most recent `execute`.
    last_stats: Mutex<CallStats>,
    /// Whether the remote operation is a pure function of its inputs
    /// (set from service metadata; enables memoised enactment).
    pure: bool,
}

impl WsTool {
    /// The service this tool invokes.
    pub fn service(&self) -> &str {
        &self.service
    }

    /// The WSDL operation this tool marshals.
    pub fn operation(&self) -> &Operation {
        &self.operation
    }

    /// Declare whether the remote operation is pure (side-effect free
    /// and deterministic in its inputs). Import cannot know this from
    /// the WSDL alone, so it defaults to impure; deployments with
    /// service metadata (e.g. a per-service purity table) opt
    /// operations in.
    pub fn set_pure(&mut self, pure: bool) {
        self.pure = pure;
    }

    /// The hosts this tool will try, in order.
    pub fn hosts(&self) -> Vec<String> {
        self.hosts.lock().clone()
    }

    /// Add a replica host for failover.
    pub fn add_replica<H: Into<String>>(&mut self, host: H) {
        self.hosts.lock().push(host.into());
    }

    /// Route invocations through `caller` (builder form).
    pub fn with_resilience(mut self, caller: ResilientCaller) -> WsTool {
        self.set_resilience(caller);
        self
    }

    /// Route invocations through `caller`: each per-host attempt gets
    /// the caller's deadline/retry/breaker treatment, and a host that
    /// fails an `execute` is demoted behind the replicas that did not.
    pub fn set_resilience(&mut self, caller: ResilientCaller) {
        self.resilience = Some(caller);
    }

    /// Route each `execute` with `router` (builder form).
    pub fn with_router(mut self, router: Arc<P2cRouter>) -> WsTool {
        self.set_router(router);
        self
    }

    /// Route each `execute` power-of-two-choices over the network's
    /// load snapshot: the router picks the serving replica per call and
    /// the remaining replicas (ordered by ascending observed load)
    /// become the failover sequence. Demotion still reorders the stored
    /// hosts, which only matters if the router is later detached.
    pub fn set_router(&mut self, router: Arc<P2cRouter>) {
        self.router = Some(router);
    }

    /// The host that served the last successful [`Tool::execute`], if any.
    pub fn last_served_host(&self) -> Option<String> {
        self.last_served.lock().clone()
    }

    /// Attempt/backoff statistics aggregated over every host tried by
    /// the last [`Tool::execute`] (zeroed at the start of each call).
    pub fn last_call_stats(&self) -> CallStats {
        *self.last_stats.lock()
    }

    /// One invocation attempt against `host`, through the resilient
    /// caller when attached. Always reports the attempt stats, even for
    /// failed calls, so `execute` can account retries spent on hosts
    /// that never answered.
    fn try_host(
        &self,
        host: &str,
        args: &[(String, Token)],
    ) -> (Result<Token, WsError>, CallStats) {
        // Open a SOAP-call span chained under the enclosing task span
        // when one exists, or as a new root trace when the tool runs
        // outside an enactment. Making it current lets the transport
        // legs opened below parent under it.
        let mut span = self.network.tracer().map(|tracer| {
            let parent = current().map(|(_, ctx)| ctx);
            let mut s = tracer.start_span(self.name.clone(), SpanKind::SoapCall, parent);
            s.set_attr("host", host);
            s
        });
        let _current = span.as_ref().map(|s| s.make_current());
        let (result, stats) = match &self.resilience {
            Some(caller) => {
                caller.invoke_collect(host, &self.service, &self.operation.name, args.to_vec())
            }
            None => {
                let result =
                    self.network
                        .invoke(host, &self.service, &self.operation.name, args.to_vec());
                let busy = u32::from(matches!(&result, Err(e) if e.is_server_busy()));
                (
                    result,
                    CallStats {
                        attempts: 1,
                        busy,
                        ..CallStats::default()
                    },
                )
            }
        };
        if let (Some(s), Err(err)) = (span.as_mut(), &result) {
            s.set_error(err.to_string());
        }
        (result, stats)
    }

    /// Should `err` migrate the job to the next replica?
    fn fails_over(&self, err: &WsError) -> bool {
        if self.resilience.is_some() {
            // The resilient caller has already burned its retry budget on
            // this host, so anything transport-shaped — including an open
            // breaker, a blown deadline, or a corrupt response envelope —
            // moves on to the next replica. A host still shedding after
            // the whole backoff budget is saturated, so spread the load.
            err.is_transport_level()
                || err.is_server_busy()
                || matches!(err, WsError::Xml { .. } | WsError::Malformed(_))
        } else {
            err.is_retryable()
        }
    }

    /// Move every host in `failed` behind the hosts that are not,
    /// preserving relative order within each group.
    fn demote(&self, failed: &[String]) {
        let mut hosts = self.hosts.lock();
        let mut healthy: Vec<String> = Vec::with_capacity(hosts.len());
        let mut demoted: Vec<String> = Vec::new();
        for host in hosts.drain(..) {
            if failed.contains(&host) {
                demoted.push(host);
            } else {
                healthy.push(host);
            }
        }
        healthy.append(&mut demoted);
        *hosts = healthy;
    }
}

impl Tool for WsTool {
    fn name(&self) -> &str {
        &self.name
    }

    fn package(&self) -> &str {
        &self.package
    }

    fn input_ports(&self) -> Vec<PortSpec> {
        self.operation
            .inputs
            .iter()
            .map(|p| PortSpec::new(p.name.clone(), p.type_name.clone()))
            .collect()
    }

    fn output_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new(
            self.operation.output.name.clone(),
            self.operation.output.type_name.clone(),
        )]
    }

    fn execute(&self, inputs: &[Token]) -> std::result::Result<Vec<Token>, String> {
        let args: Vec<(String, Token)> = self
            .operation
            .inputs
            .iter()
            .zip(inputs)
            .map(|(part, token)| (part.name.clone(), token.clone()))
            .collect();
        *self.last_served.lock() = None;
        *self.last_stats.lock() = CallStats::default();

        let hosts = match &self.router {
            Some(router) => router.order(&self.hosts(), &self.network.load_snapshot()),
            None => self.hosts(),
        };
        let mut attempt_errors: Vec<String> = Vec::new();
        let mut failed_hosts: Vec<String> = Vec::new();
        for host in &hosts {
            let (result, stats) = self.try_host(host, &args);
            {
                let mut total = self.last_stats.lock();
                total.attempts += stats.attempts;
                total.backoff += stats.backoff;
                total.possibly_duplicated += stats.possibly_duplicated;
                total.busy += stats.busy;
            }
            match result {
                Ok(value) => {
                    *self.last_served.lock() = Some(host.clone());
                    if self.resilience.is_some() && !failed_hosts.is_empty() {
                        self.demote(&failed_hosts);
                    }
                    return Ok(vec![value]);
                }
                Err(err) if self.fails_over(&err) => {
                    // Job migration: try the next replica.
                    attempt_errors.push(format!("host {host}: {err}"));
                    failed_hosts.push(host.clone());
                }
                Err(err) => return Err(err.to_string()),
            }
        }
        if self.resilience.is_some() && !failed_hosts.is_empty() {
            self.demote(&failed_hosts);
        }
        if attempt_errors.is_empty() {
            attempt_errors.push("no hosts configured".to_string());
        }
        Err(format!(
            "all hosts failed; attempts: [{}]",
            attempt_errors.join(" | ")
        ))
    }

    fn is_pure(&self) -> bool {
        self.pure
    }

    fn last_call_sheds(&self) -> u64 {
        u64::from(self.last_stats.lock().busy)
    }

    fn memo_identity(&self) -> String {
        // Service + operation, not the display name: replica set and
        // resilience wiring don't change what a pure operation returns.
        format!("ws:{}.{}", self.service, self.operation.name)
    }
}

/// Import a WSDL document: one [`WsTool`] per operation, targeting
/// `host` (with no replicas yet). The tools are placed in a package
/// named after the service, mirroring Triana's import behaviour.
pub fn import_wsdl(network: Arc<Network>, host: &str, wsdl: &WsdlDocument) -> Vec<WsTool> {
    wsdl.operations
        .iter()
        .map(|op| WsTool {
            name: format!("{}.{}", wsdl.service, op.name),
            package: format!("WebServices.{}", wsdl.service),
            service: wsdl.service.clone(),
            operation: op.clone(),
            network: Arc::clone(&network),
            hosts: Mutex::new(vec![host.to_string()]),
            resilience: None,
            router: None,
            last_served: Mutex::new(None),
            last_stats: Mutex::new(CallStats::default()),
            pure: false,
        })
        .collect()
}

/// Fetch a service's WSDL from a host and import it in one step (what
/// pasting a `?wsdl` URL into Triana did).
pub fn import_from_host(
    network: Arc<Network>,
    host: &str,
    service: &str,
) -> Result<Vec<WsTool>, WsError> {
    let wsdl = network.fetch_wsdl(host, service)?;
    Ok(import_wsdl(network, host, &wsdl))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_wsrf::container::{ServiceFault, WebService};
    use dm_wsrf::soap::SoapValue;
    use dm_wsrf::wsdl::Part;

    struct Doubler;

    impl WebService for Doubler {
        fn name(&self) -> &str {
            "Doubler"
        }

        fn wsdl(&self) -> WsdlDocument {
            WsdlDocument::new("Doubler", "").operation(Operation::new(
                "double",
                vec![Part::new("x", "long")],
                Part::new("y", "long"),
            ))
        }

        fn invoke(
            &self,
            operation: &str,
            args: &[(String, SoapValue)],
        ) -> Result<SoapValue, ServiceFault> {
            match operation {
                "double" => {
                    let x = args
                        .iter()
                        .find(|(n, _)| n == "x")
                        .and_then(|(_, v)| v.as_int().ok())
                        .ok_or_else(|| ServiceFault::client("missing x"))?;
                    Ok(SoapValue::Int(2 * x))
                }
                _ => Err(ServiceFault::client("no such operation")),
            }
        }
    }

    fn network() -> Arc<Network> {
        let net = Arc::new(Network::new());
        net.add_host("a").deploy(Arc::new(Doubler));
        net.add_host("b").deploy(Arc::new(Doubler));
        net
    }

    #[test]
    fn one_tool_per_operation_with_typed_ports() {
        let net = network();
        let tools = import_from_host(Arc::clone(&net), "a", "Doubler").unwrap();
        assert_eq!(tools.len(), 1);
        let tool = &tools[0];
        assert_eq!(tool.name(), "Doubler.double");
        assert_eq!(tool.package(), "WebServices.Doubler");
        assert_eq!(tool.input_ports(), vec![PortSpec::new("x", "long")]);
        assert_eq!(tool.output_ports(), vec![PortSpec::new("y", "long")]);
    }

    #[test]
    fn tool_invokes_the_service() {
        let net = network();
        let tools = import_from_host(Arc::clone(&net), "a", "Doubler").unwrap();
        let out = tools[0].execute(&[Token::Int(21)]).unwrap();
        assert_eq!(out, vec![Token::Int(42)]);
    }

    #[test]
    fn failover_migrates_to_replica() {
        let net = network();
        let mut tools = import_from_host(Arc::clone(&net), "a", "Doubler").unwrap();
        tools[0].add_replica("b");
        net.set_host_down("a", true);
        let out = tools[0].execute(&[Token::Int(5)]).unwrap();
        assert_eq!(out, vec![Token::Int(10)]);
        assert_eq!(tools[0].hosts(), ["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn all_hosts_down_reports_failure() {
        let net = network();
        let mut tools = import_from_host(Arc::clone(&net), "a", "Doubler").unwrap();
        tools[0].add_replica("b");
        net.set_host_down("a", true);
        net.set_host_down("b", true);
        let err = tools[0].execute(&[Token::Int(5)]).unwrap_err();
        assert!(err.contains("all hosts failed"));
    }

    #[test]
    fn soap_faults_are_not_retried() {
        // A fault is an application error, not a transport one: it must
        // surface immediately without trying replicas.
        let net = network();
        let mut tools = import_from_host(Arc::clone(&net), "a", "Doubler").unwrap();
        tools[0].add_replica("b");
        let err = tools[0].execute(&[Token::Text("bad".into())]).unwrap_err();
        assert!(err.contains("SOAP fault"), "got: {err}");
    }

    fn resilient(net: &Arc<Network>) -> ResilientCaller {
        use dm_wsrf::resilience::{BreakerBoard, BreakerConfig, ResiliencePolicy};
        ResilientCaller::new(
            Arc::clone(net),
            Arc::new(BreakerBoard::new(BreakerConfig::default())),
            ResiliencePolicy::default().attempts(2),
        )
    }

    #[test]
    fn plain_execute_records_serving_host_and_stats() {
        let net = network();
        let tools = import_from_host(Arc::clone(&net), "a", "Doubler").unwrap();
        assert_eq!(tools[0].last_served_host(), None);
        tools[0].execute(&[Token::Int(1)]).unwrap();
        assert_eq!(tools[0].last_served_host(), Some("a".to_string()));
        assert_eq!(tools[0].last_call_stats().attempts, 1);
    }

    #[test]
    fn resilient_failover_demotes_failing_primary() {
        let net = network();
        let tools = import_from_host(Arc::clone(&net), "a", "Doubler").unwrap();
        let mut tool = tools
            .into_iter()
            .next()
            .unwrap()
            .with_resilience(resilient(&net));
        tool.add_replica("b");
        net.set_host_down("a", true);

        let out = tool.execute(&[Token::Int(5)]).unwrap();
        assert_eq!(out, vec![Token::Int(10)]);
        assert_eq!(tool.last_served_host(), Some("b".to_string()));
        // The failing primary is demoted behind the replica that served.
        assert_eq!(tool.hosts(), ["b".to_string(), "a".to_string()]);
        // Two attempts burned on "a", one succeeded on "b".
        let stats = tool.last_call_stats();
        assert_eq!(stats.attempts, 3);
        assert!(stats.backoff > std::time::Duration::ZERO);
    }

    #[test]
    fn resilient_execute_collects_every_attempt_error() {
        let net = network();
        let tools = import_from_host(Arc::clone(&net), "a", "Doubler").unwrap();
        let mut tool = tools
            .into_iter()
            .next()
            .unwrap()
            .with_resilience(resilient(&net));
        tool.add_replica("b");
        net.set_host_down("a", true);
        net.set_host_down("b", true);

        let err = tool.execute(&[Token::Int(5)]).unwrap_err();
        assert!(err.contains("all hosts failed"), "got: {err}");
        assert!(err.contains("host a:"), "got: {err}");
        assert!(err.contains("host b:"), "got: {err}");
        assert_eq!(tool.last_served_host(), None);
        assert_eq!(tool.last_call_stats().attempts, 4);
    }

    #[test]
    fn open_breaker_routes_around_host_without_attempting_it() {
        let net = network();
        let caller = resilient(&net);
        // Trip "a"'s breaker: enough recorded failures to cross the
        // default min-calls floor and failure-rate threshold.
        let breaker = caller.board().breaker("a");
        for _ in 0..4 {
            breaker.record_failure(net.now());
        }
        let tools = import_from_host(Arc::clone(&net), "a", "Doubler").unwrap();
        let mut tool = tools.into_iter().next().unwrap().with_resilience(caller);
        tool.add_replica("b");

        // "a" is actually up, but its breaker is open, so the call is
        // served by "b" without ever touching "a".
        let before = net.monitor().len();
        let out = tool.execute(&[Token::Int(7)]).unwrap();
        assert_eq!(out, vec![Token::Int(14)]);
        assert_eq!(tool.last_served_host(), Some("b".to_string()));
        assert_eq!(net.monitor().len(), before + 1);
        assert_eq!(tool.hosts(), ["b".to_string(), "a".to_string()]);
    }

    #[test]
    fn router_spreads_calls_across_replicas() {
        let net = network();
        let tools = import_from_host(Arc::clone(&net), "a", "Doubler").unwrap();
        let mut tool = tools.into_iter().next().unwrap();
        tool.add_replica("b");
        tool.set_router(Arc::new(P2cRouter::new(11)));
        let mut served = std::collections::HashSet::new();
        for _ in 0..32 {
            assert_eq!(tool.execute(&[Token::Int(2)]).unwrap(), vec![Token::Int(4)]);
            served.insert(tool.last_served_host().unwrap());
        }
        assert_eq!(
            served.len(),
            2,
            "router kept hammering one replica: {served:?}"
        );
        // Routing is per-call; the stored preference order is untouched.
        assert_eq!(tool.hosts(), ["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn router_still_fails_over_to_surviving_replica() {
        let net = network();
        let tools = import_from_host(Arc::clone(&net), "a", "Doubler").unwrap();
        let mut tool = tools.into_iter().next().unwrap();
        tool.add_replica("b");
        tool.set_router(Arc::new(P2cRouter::new(3)));
        net.set_host_down("a", true);
        for _ in 0..8 {
            assert_eq!(tool.execute(&[Token::Int(3)]).unwrap(), vec![Token::Int(6)]);
            assert_eq!(tool.last_served_host(), Some("b".to_string()));
        }
    }

    #[test]
    fn import_uses_wire_wsdl() {
        // Import must work from the XML round-trip, not object sharing.
        let net = network();
        let wsdl_xml = net.fetch_wsdl("a", "Doubler").unwrap().to_xml();
        let parsed = WsdlDocument::from_xml(&wsdl_xml).unwrap();
        let tools = import_wsdl(Arc::clone(&net), "a", &parsed);
        assert_eq!(
            tools[0].execute(&[Token::Int(3)]).unwrap(),
            vec![Token::Int(6)]
        );
    }
}
