//! WSDL import: "A Web Service is imported to the workspace by
//! providing its WSDL interface. Once the interface is provided Triana
//! creates a tool for each operation provided by the service. These
//! tools are used to invoke the service operations" (§4).
//!
//! [`WsTool`] is such a generated tool: its ports mirror the
//! operation's message parts, and `execute` marshals the tokens into a
//! SOAP call over the simulated network. A `WsTool` may carry *replica
//! hosts*: on a transport failure it migrates the invocation to the
//! next replica — the paper's fault-tolerance requirement ("the ability
//! to complete the task if a fault occurs by moving the job to another
//! resource").

use crate::graph::{PortSpec, Token, Tool};
use dm_wsrf::transport::Network;
use dm_wsrf::wsdl::{Operation, WsdlDocument};
use dm_wsrf::WsError;
use std::sync::Arc;

/// A workspace tool generated from one WSDL operation.
pub struct WsTool {
    name: String,
    package: String,
    service: String,
    operation: Operation,
    network: Arc<Network>,
    /// Invocation targets in preference order (primary first).
    hosts: Vec<String>,
}

impl WsTool {
    /// The service this tool invokes.
    pub fn service(&self) -> &str {
        &self.service
    }

    /// The hosts this tool will try, in order.
    pub fn hosts(&self) -> &[String] {
        &self.hosts
    }

    /// Add a replica host for failover.
    pub fn add_replica<H: Into<String>>(&mut self, host: H) {
        self.hosts.push(host.into());
    }
}

impl Tool for WsTool {
    fn name(&self) -> &str {
        &self.name
    }

    fn package(&self) -> &str {
        &self.package
    }

    fn input_ports(&self) -> Vec<PortSpec> {
        self.operation
            .inputs
            .iter()
            .map(|p| PortSpec::new(p.name.clone(), p.type_name.clone()))
            .collect()
    }

    fn output_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new(
            self.operation.output.name.clone(),
            self.operation.output.type_name.clone(),
        )]
    }

    fn execute(&self, inputs: &[Token]) -> std::result::Result<Vec<Token>, String> {
        let args: Vec<(String, Token)> = self
            .operation
            .inputs
            .iter()
            .zip(inputs)
            .map(|(part, token)| (part.name.clone(), token.clone()))
            .collect();
        let mut last_error = String::from("no hosts configured");
        for host in &self.hosts {
            match self.network.invoke(host, &self.service, &self.operation.name, args.clone()) {
                Ok(value) => return Ok(vec![value]),
                Err(WsError::Transport(m)) | Err(WsError::UnknownHost(m)) => {
                    // Job migration: try the next replica.
                    last_error = format!("host {host}: {m}");
                }
                Err(other) => return Err(other.to_string()),
            }
        }
        Err(format!("all hosts failed; last: {last_error}"))
    }
}

/// Import a WSDL document: one [`WsTool`] per operation, targeting
/// `host` (with no replicas yet). The tools are placed in a package
/// named after the service, mirroring Triana's import behaviour.
pub fn import_wsdl(
    network: Arc<Network>,
    host: &str,
    wsdl: &WsdlDocument,
) -> Vec<WsTool> {
    wsdl.operations
        .iter()
        .map(|op| WsTool {
            name: format!("{}.{}", wsdl.service, op.name),
            package: format!("WebServices.{}", wsdl.service),
            service: wsdl.service.clone(),
            operation: op.clone(),
            network: Arc::clone(&network),
            hosts: vec![host.to_string()],
        })
        .collect()
}

/// Fetch a service's WSDL from a host and import it in one step (what
/// pasting a `?wsdl` URL into Triana did).
pub fn import_from_host(
    network: Arc<Network>,
    host: &str,
    service: &str,
) -> Result<Vec<WsTool>, WsError> {
    let wsdl = network.fetch_wsdl(host, service)?;
    Ok(import_wsdl(network, host, &wsdl))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_wsrf::container::{ServiceFault, WebService};
    use dm_wsrf::soap::SoapValue;
    use dm_wsrf::wsdl::Part;

    struct Doubler;

    impl WebService for Doubler {
        fn name(&self) -> &str {
            "Doubler"
        }

        fn wsdl(&self) -> WsdlDocument {
            WsdlDocument::new("Doubler", "").operation(Operation::new(
                "double",
                vec![Part::new("x", "long")],
                Part::new("y", "long"),
            ))
        }

        fn invoke(
            &self,
            operation: &str,
            args: &[(String, SoapValue)],
        ) -> Result<SoapValue, ServiceFault> {
            match operation {
                "double" => {
                    let x = args
                        .iter()
                        .find(|(n, _)| n == "x")
                        .and_then(|(_, v)| v.as_int().ok())
                        .ok_or_else(|| ServiceFault::client("missing x"))?;
                    Ok(SoapValue::Int(2 * x))
                }
                _ => Err(ServiceFault::client("no such operation")),
            }
        }
    }

    fn network() -> Arc<Network> {
        let net = Arc::new(Network::new());
        net.add_host("a").deploy(Arc::new(Doubler));
        net.add_host("b").deploy(Arc::new(Doubler));
        net
    }

    #[test]
    fn one_tool_per_operation_with_typed_ports() {
        let net = network();
        let tools = import_from_host(Arc::clone(&net), "a", "Doubler").unwrap();
        assert_eq!(tools.len(), 1);
        let tool = &tools[0];
        assert_eq!(tool.name(), "Doubler.double");
        assert_eq!(tool.package(), "WebServices.Doubler");
        assert_eq!(tool.input_ports(), vec![PortSpec::new("x", "long")]);
        assert_eq!(tool.output_ports(), vec![PortSpec::new("y", "long")]);
    }

    #[test]
    fn tool_invokes_the_service() {
        let net = network();
        let tools = import_from_host(Arc::clone(&net), "a", "Doubler").unwrap();
        let out = tools[0].execute(&[Token::Int(21)]).unwrap();
        assert_eq!(out, vec![Token::Int(42)]);
    }

    #[test]
    fn failover_migrates_to_replica() {
        let net = network();
        let mut tools = import_from_host(Arc::clone(&net), "a", "Doubler").unwrap();
        tools[0].add_replica("b");
        net.set_host_down("a", true);
        let out = tools[0].execute(&[Token::Int(5)]).unwrap();
        assert_eq!(out, vec![Token::Int(10)]);
        assert_eq!(tools[0].hosts(), ["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn all_hosts_down_reports_failure() {
        let net = network();
        let mut tools = import_from_host(Arc::clone(&net), "a", "Doubler").unwrap();
        tools[0].add_replica("b");
        net.set_host_down("a", true);
        net.set_host_down("b", true);
        let err = tools[0].execute(&[Token::Int(5)]).unwrap_err();
        assert!(err.contains("all hosts failed"));
    }

    #[test]
    fn soap_faults_are_not_retried() {
        // A fault is an application error, not a transport one: it must
        // surface immediately without trying replicas.
        let net = network();
        let mut tools = import_from_host(Arc::clone(&net), "a", "Doubler").unwrap();
        tools[0].add_replica("b");
        let err = tools[0].execute(&[Token::Text("bad".into())]).unwrap_err();
        assert!(err.contains("SOAP fault"), "got: {err}");
    }

    #[test]
    fn import_uses_wire_wsdl() {
        // Import must work from the XML round-trip, not object sharing.
        let net = network();
        let wsdl_xml = net.fetch_wsdl("a", "Doubler").unwrap().to_xml();
        let parsed = WsdlDocument::from_xml(&wsdl_xml).unwrap();
        let tools = import_wsdl(Arc::clone(&net), "a", &parsed);
        assert_eq!(tools[0].execute(&[Token::Int(3)]).unwrap(), vec![Token::Int(6)]);
    }
}
