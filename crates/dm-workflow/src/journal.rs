//! Event-sourced run journal for durable enactment.
//!
//! The paper's §3 framework promises fault-tolerant distributed
//! execution; an in-memory enactment loses the whole run when the
//! orchestrating process dies. This module supplies the persistence
//! half of the fix: an **append-only log of run events** (run started,
//! task started / completed / failed / shed, run finished) from which a
//! fresh orchestrator reconstructs the remaining-work frontier —
//! completed tasks are restored, not re-executed
//! (see [`crate::durable`]).
//!
//! Records are written with a version envelope and a checksum, so a
//! journal cut mid-record by a crash (a *torn tail*) is detected and
//! dropped rather than trusted: decoding stops at the first record
//! whose envelope or checksum fails to verify, and everything from that
//! point on is discarded (record boundaries after a bad record cannot
//! be trusted). Task outputs above an inline threshold are persisted as
//! content-addressed references into an
//! [`AttachmentStore`](dm_wsrf::dataplane::AttachmentStore) — the PR 2
//! data plane's store — keeping the journal small while large datasets
//! and models travel by handle, exactly as they do on the wire.
//!
//! ## Record format
//!
//! ```text
//! FJ1 <payload-len> <checksum-32-hex>\n
//! <payload bytes>\n
//! ```
//!
//! `FJ1` is the version envelope (Faehim Journal, version 1); the
//! checksum is the 128-bit content hash of the payload. Payloads are a
//! compact field encoding with length-prefixed strings, so task names,
//! failure messages, and inline tokens may contain any byte sequence.

use crate::graph::{TaskId, Token};
use dm_wsrf::dataplane::{content_ref, hash_bytes, AttachmentStore, Payload};
use dm_wsrf::soap::RefKind;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The journal format version written into every record's envelope.
pub const JOURNAL_VERSION: u32 = 1;

/// Magic prefix of every record header (`FJ` + version).
const MAGIC: &str = "FJ1";

/// Default inline threshold: Text/Bytes outputs at or above this many
/// bytes are persisted into the attachment store and journaled as
/// content-addressed references.
pub const DEFAULT_INLINE_LIMIT: usize = 1024;

/// One event in the enactment's history.
#[derive(Debug, Clone, PartialEq)]
pub enum RunEvent {
    /// Enactment began. Stamped with the graph's structural
    /// fingerprint ([`crate::graph::TaskGraph::structure_fingerprint`])
    /// so a resume against a different workflow is rejected.
    RunStarted {
        /// Number of tasks in the graph.
        tasks: usize,
        /// Structural fingerprint of the graph.
        fingerprint: u128,
    },
    /// A task was dispatched to the worker pool. A started record with
    /// no matching completion marks work that was in flight when the
    /// orchestrator died — it is re-executed on resume.
    TaskStarted {
        /// Task id within the graph.
        task: TaskId,
        /// Task display name.
        name: String,
    },
    /// A task's tool absorbed `ServerBusy` sheds while executing.
    TaskShed {
        /// Task id within the graph.
        task: TaskId,
        /// Task display name.
        name: String,
        /// Sheds absorbed across the task's attempts.
        sheds: u64,
    },
    /// A task completed; its outputs are durable from this point on.
    TaskCompleted {
        /// Task id within the graph.
        task: TaskId,
        /// Task display name.
        name: String,
        /// Execution attempts used (0 = memo cache hit).
        attempts: usize,
        /// Simulated-time duration of the successful attempt, in
        /// nanoseconds.
        virtual_nanos: u64,
        /// `true` when the outputs came from the memo cache.
        cached: bool,
        /// `ServerBusy` sheds absorbed across attempts.
        sheds: u64,
        /// Output tokens, one per output port.
        outputs: Vec<Token>,
    },
    /// A task failed terminally (retries exhausted). Its downstream
    /// cone is blocked on resume; independent branches continue.
    TaskFailed {
        /// Task id within the graph.
        task: TaskId,
        /// Task display name.
        name: String,
        /// The failure message.
        message: String,
    },
    /// Enactment reached quiescence: no runnable work remained.
    RunFinished {
        /// Task runs recorded (completed + failed).
        tasks: usize,
        /// Total enactment time on the simulated clock, in nanoseconds.
        virtual_nanos: u64,
    },
}

/// Counters describing a journal's life so far, in the flattened form
/// the metrics registry ingests
/// ([`dm_wsrf::metrics::MetricsRegistry::ingest_recovery`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records appended through this handle.
    pub appends: u64,
    /// Well-formed records currently decodable.
    pub records: u64,
    /// Encoded size in bytes.
    pub bytes: u64,
    /// Completed tasks restored from the journal instead of
    /// re-executing.
    pub replay_hits: u64,
    /// Claimed tasks redelivered after a worker death.
    pub redeliveries: u64,
    /// Torn-tail bytes dropped by verification during decode.
    pub torn_bytes: u64,
    /// Completed-task records whose stored output payload was no longer
    /// in the attachment store (the task is re-executed instead).
    pub missing_payloads: u64,
}

/// A completed task restored from the journal.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayedTask {
    /// Task display name.
    pub name: String,
    /// Attempts recorded at completion time (0 = memo hit).
    pub attempts: usize,
    /// Simulated duration of the completing attempt, nanoseconds.
    pub virtual_nanos: u64,
    /// Whether the completion was served from the memo cache.
    pub cached: bool,
    /// Sheds absorbed.
    pub sheds: u64,
    /// Output tokens, one per output port.
    pub outputs: Vec<Token>,
}

/// The aggregate state reconstructed by replaying a journal.
#[derive(Debug, Clone, Default)]
pub struct Replay {
    /// `(tasks, fingerprint)` from the run-started record, if present.
    pub started: Option<(usize, u128)>,
    /// Tasks with durable completions, keyed by task id.
    pub completed: HashMap<TaskId, ReplayedTask>,
    /// Terminally failed tasks: id → (name, message).
    pub failed: HashMap<TaskId, (String, String)>,
    /// `true` when a run-finished record is present.
    pub finished: bool,
    /// Well-formed events replayed.
    pub events: usize,
    /// Torn-tail bytes dropped by verification.
    pub torn_bytes: u64,
}

/// The append-only, checksummed run-event log.
///
/// Thread-safe: the orchestrator appends while workers run. A journal
/// round-trips through [`RunJournal::bytes`] /
/// [`RunJournal::from_bytes`], which is how tests (and the E16 bench)
/// simulate a process boundary: the dying orchestrator's journal bytes
/// are all that survives, and a fresh [`RunJournal`] — and a fresh
/// `Executor` — resume from them.
pub struct RunJournal {
    buf: Mutex<Vec<u8>>,
    store: Option<Arc<AttachmentStore>>,
    inline_limit: usize,
    appends: AtomicU64,
    replay_hits: AtomicU64,
    redeliveries: AtomicU64,
    torn_bytes: AtomicU64,
    torn_dropped: AtomicU64,
    missing_payloads: AtomicU64,
}

impl std::fmt::Debug for RunJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunJournal")
            .field("bytes", &self.buf.lock().len())
            .field("appends", &self.appends.load(Ordering::Relaxed))
            .field("store", &self.store.is_some())
            .finish()
    }
}

impl Default for RunJournal {
    fn default() -> RunJournal {
        RunJournal::new()
    }
}

impl RunJournal {
    /// An empty journal that inlines every output token.
    pub fn new() -> RunJournal {
        RunJournal {
            buf: Mutex::new(Vec::new()),
            store: None,
            inline_limit: DEFAULT_INLINE_LIMIT,
            appends: AtomicU64::new(0),
            replay_hits: AtomicU64::new(0),
            redeliveries: AtomicU64::new(0),
            torn_bytes: AtomicU64::new(0),
            torn_dropped: AtomicU64::new(0),
            missing_payloads: AtomicU64::new(0),
        }
    }

    /// An empty journal persisting large Text/Bytes outputs into
    /// `store` as content-addressed references. Outputs shorter than
    /// `inline_limit` bytes stay inline.
    pub fn with_store(store: Arc<AttachmentStore>, inline_limit: usize) -> RunJournal {
        RunJournal {
            store: Some(store),
            inline_limit,
            ..RunJournal::new()
        }
    }

    /// Rebuild a journal from encoded bytes (e.g. what survived a
    /// crash). A torn or corrupt tail is cut off here — never trusted —
    /// so records appended after recovery extend the verified prefix
    /// rather than hiding behind damage; the dropped byte count stays
    /// visible in [`RunJournal::stats`]. The result has no attachment
    /// store; chain [`RunJournal::attach_store`] to materialise stored
    /// references.
    pub fn from_bytes(bytes: &[u8]) -> RunJournal {
        let journal = RunJournal::new();
        let valid = journal.valid_prefix_len(bytes);
        journal
            .torn_dropped
            .store((bytes.len() - valid) as u64, Ordering::Relaxed);
        *journal.buf.lock() = bytes[..valid].to_vec();
        journal
    }

    /// Length of the longest decodable record prefix of `bytes`
    /// (records with missing store payloads are structurally sound and
    /// count; the first torn or corrupt record ends the prefix).
    fn valid_prefix_len(&self, bytes: &[u8]) -> usize {
        let mut pos = 0usize;
        while pos < bytes.len() {
            match self.decode_record(bytes, pos) {
                Some((next, _)) => pos = next,
                None => break,
            }
        }
        pos
    }

    /// Builder: attach the content-addressed store holding (and
    /// receiving) large output payloads.
    pub fn attach_store(mut self, store: Arc<AttachmentStore>, inline_limit: usize) -> RunJournal {
        self.store = Some(store);
        self.inline_limit = inline_limit;
        self
    }

    /// Append one event as a checksummed, version-enveloped record.
    pub fn append(&self, event: &RunEvent) {
        let mut payload = Vec::new();
        self.encode_event(&mut payload, event);
        let checksum = hash_bytes(&payload);
        let mut buf = self.buf.lock();
        buf.extend_from_slice(format!("{MAGIC} {} {:032x}\n", payload.len(), checksum).as_bytes());
        buf.extend_from_slice(&payload);
        buf.push(b'\n');
        self.appends.fetch_add(1, Ordering::Relaxed);
    }

    /// The encoded journal. This is the durable artifact: everything a
    /// resume needs (modulo payloads held by the attachment store).
    pub fn bytes(&self) -> Vec<u8> {
        self.buf.lock().clone()
    }

    /// Cut the log to its first `len` bytes — simulates a crash tearing
    /// the tail of the file mid-record.
    pub fn truncate_to(&self, len: usize) {
        let mut buf = self.buf.lock();
        if len < buf.len() {
            buf.truncate(len);
        }
    }

    /// Decode every verifiable record, stopping at the first torn or
    /// corrupt one. Never fails: a damaged tail yields fewer events.
    pub fn events(&self) -> Vec<RunEvent> {
        let buf = self.buf.lock().clone();
        let mut events = Vec::new();
        let mut pos = 0usize;
        // Both damage gauges describe the current decode pass.
        self.missing_payloads.store(0, Ordering::Relaxed);
        while pos < buf.len() {
            match self.decode_record(&buf, pos) {
                Some((next, Some(event))) => {
                    events.push(event);
                    pos = next;
                }
                Some((next, None)) => {
                    // Well-formed record whose stored payload is gone:
                    // skip the event, keep decoding.
                    pos = next;
                }
                None => {
                    // Torn or corrupt: drop everything from here on.
                    self.torn_bytes
                        .store((buf.len() - pos) as u64, Ordering::Relaxed);
                    return events;
                }
            }
        }
        self.torn_bytes.store(0, Ordering::Relaxed);
        events
    }

    /// Replay the journal into aggregate run state: the completed-task
    /// map (with materialised outputs), the failed set, and whether the
    /// run already finished.
    pub fn replay(&self) -> Replay {
        let mut replay = Replay::default();
        for event in self.events() {
            replay.events += 1;
            match event {
                RunEvent::RunStarted { tasks, fingerprint } => {
                    replay.started = Some((tasks, fingerprint));
                }
                RunEvent::TaskStarted { .. } | RunEvent::TaskShed { .. } => {}
                RunEvent::TaskCompleted {
                    task,
                    name,
                    attempts,
                    virtual_nanos,
                    cached,
                    sheds,
                    outputs,
                } => {
                    replay.completed.insert(
                        task,
                        ReplayedTask {
                            name,
                            attempts,
                            virtual_nanos,
                            cached,
                            sheds,
                            outputs,
                        },
                    );
                }
                RunEvent::TaskFailed {
                    task,
                    name,
                    message,
                } => {
                    replay.failed.insert(task, (name, message));
                }
                RunEvent::RunFinished { .. } => replay.finished = true,
            }
        }
        replay.torn_bytes =
            self.torn_bytes.load(Ordering::Relaxed) + self.torn_dropped.load(Ordering::Relaxed);
        replay
    }

    /// Record that `n` completed tasks were restored from the log
    /// instead of re-executing (called by the durable orchestrator).
    pub fn note_replay_hits(&self, n: u64) {
        self.replay_hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one claim redelivery after a worker death.
    pub fn note_redelivery(&self) {
        self.redeliveries.fetch_add(1, Ordering::Relaxed);
    }

    /// Lifetime counters, for the metrics registry and for pinning
    /// recovery behaviour in tests.
    pub fn stats(&self) -> JournalStats {
        let records = self.events().len() as u64;
        JournalStats {
            appends: self.appends.load(Ordering::Relaxed),
            records,
            bytes: self.buf.lock().len() as u64,
            replay_hits: self.replay_hits.load(Ordering::Relaxed),
            redeliveries: self.redeliveries.load(Ordering::Relaxed),
            torn_bytes: self.torn_bytes.load(Ordering::Relaxed)
                + self.torn_dropped.load(Ordering::Relaxed),
            missing_payloads: self.missing_payloads.load(Ordering::Relaxed),
        }
    }

    /// `true` when nothing has been journaled.
    pub fn is_empty(&self) -> bool {
        self.buf.lock().is_empty()
    }

    // ---- encoding ----------------------------------------------------

    fn encode_event(&self, out: &mut Vec<u8>, event: &RunEvent) {
        match event {
            RunEvent::RunStarted { tasks, fingerprint } => {
                out.extend_from_slice(format!("run-started {tasks} {fingerprint:032x}").as_bytes());
            }
            RunEvent::TaskStarted { task, name } => {
                out.extend_from_slice(format!("task-started {task} ").as_bytes());
                encode_str(out, name);
            }
            RunEvent::TaskShed { task, name, sheds } => {
                out.extend_from_slice(format!("task-shed {task} {sheds} ").as_bytes());
                encode_str(out, name);
            }
            RunEvent::TaskCompleted {
                task,
                name,
                attempts,
                virtual_nanos,
                cached,
                sheds,
                outputs,
            } => {
                out.extend_from_slice(
                    format!(
                        "task-completed {task} {attempts} {virtual_nanos} {} {sheds} ",
                        u8::from(*cached)
                    )
                    .as_bytes(),
                );
                encode_str(out, name);
                out.extend_from_slice(format!(" {}", outputs.len()).as_bytes());
                for token in outputs {
                    out.push(b' ');
                    self.encode_token(out, token);
                }
            }
            RunEvent::TaskFailed {
                task,
                name,
                message,
            } => {
                out.extend_from_slice(format!("task-failed {task} ").as_bytes());
                encode_str(out, name);
                out.push(b' ');
                encode_str(out, message);
            }
            RunEvent::RunFinished {
                tasks,
                virtual_nanos,
            } => {
                out.extend_from_slice(format!("run-finished {tasks} {virtual_nanos}").as_bytes());
            }
        }
    }

    fn encode_token(&self, out: &mut Vec<u8>, token: &Token) {
        // Large Text/Bytes payloads go to the content-addressed store;
        // the journal keeps only the `hash:len:kind` handle.
        if let Some(store) = &self.store {
            let big = match token {
                Token::Text(s) => s.len() >= self.inline_limit,
                Token::Bytes(b) => b.len() >= self.inline_limit,
                _ => false,
            };
            if big {
                let r = content_ref(token).expect("Text/Bytes have content refs");
                if let Some(payload) = Payload::from_value(token) {
                    store.insert(r.hash, payload);
                }
                out.extend_from_slice(
                    format!("s{:032x}:{}:{}", r.hash, r.len, kind_char(r.kind)).as_bytes(),
                );
                return;
            }
        }
        match token {
            Token::Null => out.push(b'n'),
            Token::Bool(b) => out.extend_from_slice(if *b { b"b1" } else { b"b0" }),
            Token::Int(i) => out.extend_from_slice(format!("i{i}").as_bytes()),
            Token::Double(d) => {
                out.extend_from_slice(format!("d{:016x}", d.to_bits()).as_bytes());
            }
            Token::Text(s) => {
                out.push(b't');
                encode_str(out, s);
            }
            Token::Bytes(b) => {
                out.extend_from_slice(format!("y{}:", b.len()).as_bytes());
                out.extend_from_slice(b);
            }
            Token::List(items) => {
                out.extend_from_slice(format!("l{}", items.len()).as_bytes());
                for item in items {
                    out.push(b' ');
                    self.encode_token(out, item);
                }
            }
            Token::DataRef { hash, len, kind } => {
                out.extend_from_slice(
                    format!("r{hash:032x}:{len}:{}", kind_char(*kind)).as_bytes(),
                );
            }
        }
    }

    // ---- decoding ----------------------------------------------------

    /// Decode the record starting at `pos`. Returns `None` when the
    /// record is torn or corrupt; `Some((next_pos, None))` when it is
    /// intact but references a payload the store no longer holds.
    fn decode_record(&self, buf: &[u8], pos: usize) -> Option<(usize, Option<RunEvent>)> {
        let header_end = buf[pos..].iter().position(|&b| b == b'\n')? + pos;
        let header = std::str::from_utf8(&buf[pos..header_end]).ok()?;
        let mut fields = header.split(' ');
        if fields.next()? != MAGIC {
            return None;
        }
        let len: usize = fields.next()?.parse().ok()?;
        let checksum = u128::from_str_radix(fields.next()?, 16).ok()?;
        if fields.next().is_some() {
            return None;
        }
        let payload_start = header_end + 1;
        let payload_end = payload_start.checked_add(len)?;
        if payload_end > buf.len() || buf.get(payload_end) != Some(&b'\n') {
            return None;
        }
        let payload = &buf[payload_start..payload_end];
        if hash_bytes(payload) != checksum {
            return None;
        }
        let next = payload_end + 1;
        match self.decode_event(payload) {
            Ok(event) => Some((next, Some(event))),
            Err(DecodeError::MissingPayload) => {
                self.missing_payloads.fetch_add(1, Ordering::Relaxed);
                Some((next, None))
            }
            // A payload that checksums correctly but does not parse is
            // a version we do not understand: drop it and the rest.
            Err(DecodeError::Malformed) => None,
        }
    }

    fn decode_event(&self, payload: &[u8]) -> Result<RunEvent, DecodeError> {
        let mut cur = Cursor::new(payload);
        let kind = cur.word()?;
        let event = match kind.as_str() {
            "run-started" => RunEvent::RunStarted {
                tasks: cur.word()?.parse().map_err(|_| DecodeError::Malformed)?,
                fingerprint: u128::from_str_radix(&cur.word()?, 16)
                    .map_err(|_| DecodeError::Malformed)?,
            },
            "task-started" => RunEvent::TaskStarted {
                task: cur.word()?.parse().map_err(|_| DecodeError::Malformed)?,
                name: cur.string()?,
            },
            "task-shed" => RunEvent::TaskShed {
                task: cur.word()?.parse().map_err(|_| DecodeError::Malformed)?,
                sheds: cur.word()?.parse().map_err(|_| DecodeError::Malformed)?,
                name: cur.string()?,
            },
            "task-completed" => {
                let task = cur.word()?.parse().map_err(|_| DecodeError::Malformed)?;
                let attempts = cur.word()?.parse().map_err(|_| DecodeError::Malformed)?;
                let virtual_nanos = cur.word()?.parse().map_err(|_| DecodeError::Malformed)?;
                let cached = cur.word()? == "1";
                let sheds = cur.word()?.parse().map_err(|_| DecodeError::Malformed)?;
                let name = cur.string()?;
                let count: usize = cur.word()?.parse().map_err(|_| DecodeError::Malformed)?;
                let mut outputs = Vec::with_capacity(count);
                for _ in 0..count {
                    outputs.push(self.decode_token(&mut cur)?);
                }
                RunEvent::TaskCompleted {
                    task,
                    name,
                    attempts,
                    virtual_nanos,
                    cached,
                    sheds,
                    outputs,
                }
            }
            "task-failed" => {
                let task = cur.word()?.parse().map_err(|_| DecodeError::Malformed)?;
                let name = cur.string()?;
                let message = cur.string()?;
                RunEvent::TaskFailed {
                    task,
                    name,
                    message,
                }
            }
            "run-finished" => RunEvent::RunFinished {
                tasks: cur.word()?.parse().map_err(|_| DecodeError::Malformed)?,
                virtual_nanos: cur.word()?.parse().map_err(|_| DecodeError::Malformed)?,
            },
            _ => return Err(DecodeError::Malformed),
        };
        Ok(event)
    }

    fn decode_token(&self, cur: &mut Cursor<'_>) -> Result<Token, DecodeError> {
        let tag = cur.byte()?;
        Ok(match tag {
            b'n' => {
                cur.sep();
                Token::Null
            }
            b'b' => {
                let value = cur.byte()? == b'1';
                cur.sep();
                Token::Bool(value)
            }
            b'i' => Token::Int(cur.word()?.parse().map_err(|_| DecodeError::Malformed)?),
            b'd' => Token::Double(f64::from_bits(
                u64::from_str_radix(&cur.word()?, 16).map_err(|_| DecodeError::Malformed)?,
            )),
            b't' => Token::Text(cur.string()?),
            b'y' => Token::Bytes(cur.raw()?),
            b'l' => {
                let count: usize = cur.word()?.parse().map_err(|_| DecodeError::Malformed)?;
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    items.push(self.decode_token(cur)?);
                }
                Token::List(items)
            }
            b'r' | b's' => {
                let (hash, len, kind) = cur.ref_triple()?;
                if tag == b'r' {
                    Token::DataRef { hash, len, kind }
                } else {
                    // Stored payload: materialise from the store.
                    let payload = self
                        .store
                        .as_ref()
                        .and_then(|s| s.get(hash))
                        .ok_or(DecodeError::MissingPayload)?;
                    payload.to_value()
                }
            }
            _ => return Err(DecodeError::Malformed),
        })
    }
}

/// Encode one token in the journal's inline grammar, never spilling to
/// a store — a canonical, store-independent byte form. Two tokens are
/// structurally equal iff their canonical bytes are equal; used by
/// [`crate::engine::ExecutionReport::canonical_bytes`] to compare an
/// uninterrupted enactment against a crash-then-resume one.
pub fn canonical_token_bytes(out: &mut Vec<u8>, token: &Token) {
    match token {
        Token::Null => out.push(b'n'),
        Token::Bool(b) => out.extend_from_slice(if *b { b"b1" } else { b"b0" }),
        Token::Int(i) => out.extend_from_slice(format!("i{i}").as_bytes()),
        Token::Double(d) => {
            out.extend_from_slice(format!("d{:016x}", d.to_bits()).as_bytes());
        }
        Token::Text(s) => {
            out.push(b't');
            encode_str(out, s);
        }
        Token::Bytes(b) => {
            out.extend_from_slice(format!("y{}:", b.len()).as_bytes());
            out.extend_from_slice(b);
        }
        Token::List(items) => {
            out.extend_from_slice(format!("l{}", items.len()).as_bytes());
            for item in items {
                out.push(b' ');
                canonical_token_bytes(out, item);
            }
        }
        Token::DataRef { hash, len, kind } => {
            out.extend_from_slice(format!("r{hash:032x}:{len}:{}", kind_char(*kind)).as_bytes());
        }
    }
}

fn kind_char(kind: RefKind) -> char {
    match kind {
        RefKind::Text => 'T',
        RefKind::Bytes => 'B',
    }
}

fn encode_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(format!("{}:", s.len()).as_bytes());
    out.extend_from_slice(s.as_bytes());
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DecodeError {
    /// The payload does not parse under this version's grammar.
    Malformed,
    /// A stored output reference points at a payload the attachment
    /// store no longer holds.
    MissingPayload,
}

/// A byte cursor over one record payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn byte(&mut self) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or(DecodeError::Malformed)?;
        self.pos += 1;
        Ok(b)
    }

    /// Consume one separator space, if present. Every field reader is
    /// self-delimiting: it swallows its own trailing separator, so
    /// consecutive fields parse without lookahead.
    fn sep(&mut self) {
        if self.buf.get(self.pos) == Some(&b' ') {
            self.pos += 1;
        }
    }

    /// Read up to the next space (or end of input), consuming the
    /// separator.
    fn word(&mut self) -> Result<String, DecodeError> {
        let start = self.pos;
        while self.pos < self.buf.len() && self.buf[self.pos] != b' ' {
            self.pos += 1;
        }
        let word = std::str::from_utf8(&self.buf[start..self.pos])
            .map_err(|_| DecodeError::Malformed)?
            .to_string();
        self.sep();
        if word.is_empty() {
            return Err(DecodeError::Malformed);
        }
        Ok(word)
    }

    /// `<len>:<raw bytes>`, UTF-8 validated, separator consumed.
    fn string(&mut self) -> Result<String, DecodeError> {
        let bytes = self.raw()?;
        String::from_utf8(bytes).map_err(|_| DecodeError::Malformed)
    }

    /// `<len>:<raw bytes>`, separator consumed.
    fn raw(&mut self) -> Result<Vec<u8>, DecodeError> {
        let start = self.pos;
        while self.pos < self.buf.len() && self.buf[self.pos] != b':' {
            self.pos += 1;
        }
        let len: usize = std::str::from_utf8(&self.buf[start..self.pos])
            .map_err(|_| DecodeError::Malformed)?
            .parse()
            .map_err(|_| DecodeError::Malformed)?;
        self.pos += 1; // ':'
        let end = self.pos.checked_add(len).ok_or(DecodeError::Malformed)?;
        if end > self.buf.len() {
            return Err(DecodeError::Malformed);
        }
        let bytes = self.buf[self.pos..end].to_vec();
        self.pos = end;
        self.sep();
        Ok(bytes)
    }

    /// `<hash-32-hex>:<len>:<T|B>`.
    fn ref_triple(&mut self) -> Result<(u128, u64, RefKind), DecodeError> {
        let word = self.word()?;
        let mut parts = word.split(':');
        let hash = u128::from_str_radix(parts.next().ok_or(DecodeError::Malformed)?, 16)
            .map_err(|_| DecodeError::Malformed)?;
        let len: u64 = parts
            .next()
            .ok_or(DecodeError::Malformed)?
            .parse()
            .map_err(|_| DecodeError::Malformed)?;
        let kind = match parts.next() {
            Some("T") => RefKind::Text,
            Some("B") => RefKind::Bytes,
            _ => return Err(DecodeError::Malformed),
        };
        Ok((hash, len, kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<RunEvent> {
        vec![
            RunEvent::RunStarted {
                tasks: 3,
                fingerprint: 0xDEAD_BEEF,
            },
            RunEvent::TaskStarted {
                task: 0,
                name: "read url".into(),
            },
            RunEvent::TaskShed {
                task: 0,
                name: "read url".into(),
                sheds: 2,
            },
            RunEvent::TaskCompleted {
                task: 0,
                name: "read url".into(),
                attempts: 2,
                virtual_nanos: 1_500_000,
                cached: false,
                sheds: 2,
                outputs: vec![
                    Token::Null,
                    Token::Bool(true),
                    Token::Int(-42),
                    Token::Double(1.25),
                    Token::Text("hello\nworld with spaces".into()),
                    Token::Bytes(vec![0, 1, 2, 255, b'\n', b' ']),
                    Token::List(vec![Token::Int(1), Token::Text("x y".into())]),
                    Token::DataRef {
                        hash: 0xABCD,
                        len: 99,
                        kind: RefKind::Bytes,
                    },
                ],
            },
            RunEvent::TaskFailed {
                task: 1,
                name: "classify".into(),
                message: "host down:\nno replicas left".into(),
            },
            RunEvent::RunFinished {
                tasks: 2,
                virtual_nanos: 9_000,
            },
        ]
    }

    #[test]
    fn events_roundtrip_through_encode_decode() {
        let journal = RunJournal::new();
        let events = sample_events();
        for e in &events {
            journal.append(e);
        }
        assert_eq!(journal.events(), events);
        // A process boundary: only the bytes survive.
        let revived = RunJournal::from_bytes(&journal.bytes());
        assert_eq!(revived.events(), events);
        let stats = journal.stats();
        assert_eq!(stats.appends, 6);
        assert_eq!(stats.records, 6);
        assert_eq!(stats.torn_bytes, 0);
    }

    #[test]
    fn torn_tail_is_dropped_not_trusted() {
        let journal = RunJournal::new();
        for e in sample_events() {
            journal.append(&e);
        }
        let full = journal.bytes();
        // Cut mid-way through the final record.
        let torn = RunJournal::from_bytes(&full[..full.len() - 7]);
        let events = torn.events();
        assert_eq!(events.len(), 5, "only intact records decode");
        assert!(torn.stats().torn_bytes > 0);
        // Cut mid-way through the first record: nothing decodes, and
        // nothing panics.
        let torn = RunJournal::from_bytes(&full[..10]);
        assert!(torn.events().is_empty());
    }

    #[test]
    fn corrupt_record_stops_decoding_conservatively() {
        let journal = RunJournal::new();
        for e in sample_events() {
            journal.append(&e);
        }
        let mut bytes = journal.bytes();
        // Flip a payload byte in the middle of the log: that record's
        // checksum fails, and record boundaries after it are untrusted.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let corrupt = RunJournal::from_bytes(&bytes);
        let events = corrupt.events();
        assert!(events.len() < sample_events().len());
        assert!(corrupt.stats().torn_bytes > 0);
        // The prefix before the corruption still replays.
        let replay = corrupt.replay();
        assert_eq!(replay.events, events.len());
    }

    #[test]
    fn replay_aggregates_run_state() {
        let journal = RunJournal::new();
        for e in sample_events() {
            journal.append(&e);
        }
        let replay = journal.replay();
        assert_eq!(replay.started, Some((3, 0xDEAD_BEEF)));
        assert!(replay.finished);
        assert_eq!(replay.completed.len(), 1);
        let task0 = &replay.completed[&0];
        assert_eq!(task0.name, "read url");
        assert_eq!(task0.attempts, 2);
        assert_eq!(task0.outputs.len(), 8);
        assert_eq!(
            replay.failed[&1],
            ("classify".into(), "host down:\nno replicas left".into())
        );
    }

    #[test]
    fn large_outputs_are_stored_as_refs_and_materialised() {
        let store = Arc::new(AttachmentStore::new(1 << 20));
        let journal = RunJournal::with_store(Arc::clone(&store), 64);
        let big = "x".repeat(10_000);
        let event = RunEvent::TaskCompleted {
            task: 0,
            name: "produce".into(),
            attempts: 1,
            virtual_nanos: 0,
            cached: false,
            sheds: 0,
            outputs: vec![Token::Text(big.clone()), Token::Text("small".into())],
        };
        journal.append(&event);
        // The journal stays small: the 10 kB payload lives in the store.
        assert!(
            journal.bytes().len() < 300,
            "journal is {} bytes",
            journal.bytes().len()
        );
        assert_eq!(store.len(), 1);
        // Replay materialises the payload back into a full token.
        let replay = journal.replay();
        assert_eq!(replay.completed[&0].outputs[0], Token::Text(big));
        assert_eq!(replay.completed[&0].outputs[1], Token::Text("small".into()));
        // A revived journal without the store cannot materialise: the
        // completion is skipped (the task will re-execute), gracefully.
        let revived = RunJournal::from_bytes(&journal.bytes());
        assert!(revived.replay().completed.is_empty());
        assert_eq!(revived.stats().missing_payloads, 1);
        // With the store re-attached it materialises again.
        let revived = RunJournal::from_bytes(&journal.bytes()).attach_store(store, 64);
        assert_eq!(revived.replay().completed.len(), 1);
    }

    #[test]
    fn truncate_to_simulates_torn_tails_at_any_offset() {
        let journal = RunJournal::new();
        for e in sample_events() {
            journal.append(&e);
        }
        let full_len = journal.bytes().len();
        let full_events = journal.events().len();
        // Every possible cut point decodes some prefix without panic,
        // and decoded counts are monotone in the cut length.
        let mut last = 0;
        for cut in 0..=full_len {
            let j = RunJournal::from_bytes(&journal.bytes()[..cut]);
            let n = j.events().len();
            assert!(n >= last, "decoded count regressed at cut {cut}");
            last = n;
        }
        assert_eq!(last, full_events);
    }
}
