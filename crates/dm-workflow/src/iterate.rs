//! Driver-controlled iteration: "The workflow can involve significant
//! iteration and can contain loops. … it is often necessary for a user
//! to make decisions during the process depending on partial results of
//! each stage" (§3.1).
//!
//! The enactment graph stays acyclic; looping is expressed by a driver
//! that re-runs the graph, feeding chosen outputs of iteration *k* back
//! into bindings of iteration *k + 1*, until a caller-supplied decision
//! function (the stand-in for the interactive user) stops the loop.

use crate::engine::{ExecutionReport, Executor};
use crate::error::{Result, WorkflowError};
use crate::graph::{TaskGraph, TaskId, Token};
use std::collections::HashMap;

/// A feedback edge: output `(from_task, from_port)` of one iteration
/// becomes binding `(to_task, to_port)` of the next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Feedback {
    /// Producing task of iteration *k*.
    pub from_task: TaskId,
    /// Its output port.
    pub from_port: usize,
    /// Consuming task of iteration *k + 1*.
    pub to_task: TaskId,
    /// Its (unconnected) input port.
    pub to_port: usize,
}

/// What the decision function returns after inspecting an iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopDecision {
    /// Run another iteration.
    Continue,
    /// Stop; the current report is the result.
    Stop,
}

/// Result of an iterated enactment.
#[derive(Debug, Clone)]
pub struct IterationResult {
    /// Report of the final iteration.
    pub final_report: ExecutionReport,
    /// Number of iterations executed (≥ 1).
    pub iterations: usize,
}

/// Run `graph` repeatedly. `bindings` seeds the first iteration;
/// `feedback` edges carry outputs forward; `decide` inspects each
/// iteration's report (the §3.1 "user decision between stages") and
/// says whether to continue. Hard-capped at `max_iterations`.
pub fn iterate(
    executor: &Executor,
    graph: &TaskGraph,
    bindings: &HashMap<(TaskId, usize), Token>,
    feedback: &[Feedback],
    max_iterations: usize,
    mut decide: impl FnMut(usize, &ExecutionReport) -> LoopDecision,
) -> Result<IterationResult> {
    if max_iterations == 0 {
        return Err(WorkflowError::TaskFailed {
            task: "(iteration driver)".into(),
            message: "max_iterations must be >= 1".into(),
        });
    }
    let mut current = bindings.clone();
    let mut iterations = 0;
    loop {
        let report = executor.run(graph, &current)?;
        iterations += 1;
        if iterations >= max_iterations || decide(iterations, &report) == LoopDecision::Stop {
            return Ok(IterationResult {
                final_report: report,
                iterations,
            });
        }
        for f in feedback {
            let token = report
                .output(f.from_task, f.from_port)
                .cloned()
                .ok_or_else(|| WorkflowError::TaskFailed {
                    task: format!("(feedback from task {})", f.from_task),
                    message: format!(
                        "iteration produced no output at ({}, {})",
                        f.from_task, f.from_port
                    ),
                })?;
            current.insert((f.to_task, f.to_port), token);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{PortSpec, Tool};
    use std::sync::Arc;

    /// Appends "x" to its input — iteration grows the string.
    struct AppendX;

    impl Tool for AppendX {
        fn name(&self) -> &str {
            "AppendX"
        }

        fn input_ports(&self) -> Vec<PortSpec> {
            vec![PortSpec::new("in", "string")]
        }

        fn output_ports(&self) -> Vec<PortSpec> {
            vec![PortSpec::new("out", "string")]
        }

        fn execute(&self, inputs: &[Token]) -> std::result::Result<Vec<Token>, String> {
            match &inputs[0] {
                Token::Text(s) => Ok(vec![Token::Text(format!("{s}x"))]),
                _ => Err("expected text".into()),
            }
        }
    }

    fn loop_graph() -> (TaskGraph, TaskId) {
        let mut g = TaskGraph::new();
        let t = g.add_task(Arc::new(AppendX));
        (g, t)
    }

    #[test]
    fn feedback_carries_state_forward() {
        let (g, t) = loop_graph();
        let mut bindings = HashMap::new();
        bindings.insert((t, 0), Token::Text("seed".into()));
        let feedback = [Feedback {
            from_task: t,
            from_port: 0,
            to_task: t,
            to_port: 0,
        }];
        let result = iterate(
            &Executor::serial(),
            &g,
            &bindings,
            &feedback,
            100,
            |_, report| match report.output(t, 0) {
                Some(Token::Text(s)) if s.len() >= 8 => LoopDecision::Stop,
                _ => LoopDecision::Continue,
            },
        )
        .unwrap();
        assert_eq!(result.iterations, 4); // seed+x*4 = 8 chars
        assert_eq!(
            result.final_report.output(t, 0),
            Some(&Token::Text("seedxxxx".into()))
        );
    }

    #[test]
    fn max_iterations_caps_runaway_loops() {
        let (g, t) = loop_graph();
        let mut bindings = HashMap::new();
        bindings.insert((t, 0), Token::Text("s".into()));
        let feedback = [Feedback {
            from_task: t,
            from_port: 0,
            to_task: t,
            to_port: 0,
        }];
        let result = iterate(&Executor::serial(), &g, &bindings, &feedback, 5, |_, _| {
            LoopDecision::Continue
        })
        .unwrap();
        assert_eq!(result.iterations, 5);
    }

    #[test]
    fn single_iteration_when_decide_stops() {
        let (g, t) = loop_graph();
        let mut bindings = HashMap::new();
        bindings.insert((t, 0), Token::Text("s".into()));
        let result = iterate(&Executor::serial(), &g, &bindings, &[], 10, |_, _| {
            LoopDecision::Stop
        })
        .unwrap();
        assert_eq!(result.iterations, 1);
    }

    #[test]
    fn zero_max_iterations_rejected() {
        let (g, t) = loop_graph();
        let mut bindings = HashMap::new();
        bindings.insert((t, 0), Token::Text("s".into()));
        assert!(iterate(&Executor::serial(), &g, &bindings, &[], 0, |_, _| {
            LoopDecision::Stop
        })
        .is_err());
    }

    #[test]
    fn bad_feedback_source_reported() {
        let (g, t) = loop_graph();
        let mut bindings = HashMap::new();
        bindings.insert((t, 0), Token::Text("s".into()));
        let feedback = [Feedback {
            from_task: t,
            from_port: 9,
            to_task: t,
            to_port: 0,
        }];
        let err = iterate(&Executor::serial(), &g, &bindings, &feedback, 3, |_, _| {
            LoopDecision::Continue
        })
        .unwrap_err();
        assert!(matches!(err, WorkflowError::TaskFailed { .. }));
    }
}
