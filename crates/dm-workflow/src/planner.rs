//! The cost- and locality-aware composition planner (E20).
//!
//! The paper's workflows are hand-wired cables between *concrete*
//! services; this module plans a composition from an **abstract goal**
//! — an ordered chain of service categories ("CSV load → attribute
//! selection → classifier train → evaluation") — by solving the QoS
//! service-selection problem over live telemetry. Candidate replicas
//! come from a registry's live views; each `(step, replica)` pairing is
//! priced with a frozen [`CostModel`] snapshot (per-host p50/p99, queue
//! depth, shed rate, breaker state, and predicted transfer bytes with a
//! `DataRef` dedup credit when adjacent data-intensive steps co-locate
//! on one host); a dynamic-programming pass over the chain picks the
//! assignment minimising predicted makespan plus bytes moved (the
//! knapsack relaxation of Fan & Yang's selection model, biased to data
//! locality after Sadeghiram et al.). A per-host capacity budget caps
//! how many steps one host may take: when the unconstrained DP answer
//! oversubscribes a host, an exact branch-and-bound pass with
//! suffix-lower-bound pruning re-solves under the budget.
//!
//! The planner is **seedable and deterministic**: given the same goal,
//! candidates, and snapshot, the same seed always yields the same
//! assignment, and different seeds only permute genuinely equal-cost
//! choices — so mining outputs are byte-identical regardless of
//! placement, which the E20 bench pins.
//!
//! A [`UsageRecommender`] mines past [`ExecutionReport`]s and
//! [`RunJournal`] logs for frequently co-invoked operation pairs and
//! pre-ranks each step's candidates, so historical affinity breaks
//! cost ties before the seed does.

use crate::engine::ExecutionReport;
use crate::error::{Result, WorkflowError};
use crate::graph::{TaskGraph, TaskId};
use crate::journal::{RunEvent, RunJournal};
use crate::wsimport::{import_from_host, WsTool};
use dm_wsrf::costmodel::CostModel;
use dm_wsrf::fleet::{splitmix64, ReplicaRecord};
use dm_wsrf::registry::ServiceEntry;
use dm_wsrf::transport::Network;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// One abstract step of a [`Goal`]: a service *category* (the UDDI
/// category bag the paper publishes services under), the operation the
/// bound tool must expose, and the predicted size of the data arriving
/// at the step — the payload the cost model prices for transfer and
/// credits when co-location lets it travel as a `DataRef` handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoalStep {
    /// Required category tag, e.g. `"classifier"`.
    pub category: String,
    /// Operation the chosen service must expose, e.g. `"classify"`.
    pub operation: String,
    /// Predicted bytes of data that must be present at the step's host
    /// (the dataset / intermediate flowing into this step).
    pub payload_bytes: usize,
}

/// An abstract composition goal: an ordered chain of [`GoalStep`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Goal {
    /// The steps, in execution order.
    pub steps: Vec<GoalStep>,
}

impl Goal {
    /// Build a goal from `(category, operation, payload_bytes)` triples.
    pub fn chain(steps: &[(&str, &str, usize)]) -> Goal {
        Goal {
            steps: steps
                .iter()
                .map(|(category, operation, payload_bytes)| GoalStep {
                    category: (*category).to_string(),
                    operation: (*operation).to_string(),
                    payload_bytes: *payload_bytes,
                })
                .collect(),
        }
    }
}

/// Planner knobs. The defaults fit the paper's testbed: each host can
/// take every step of a small chain, so co-location — the placement
/// the `DataRef` credit rewards — is allowed by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannerConfig {
    /// Tie-break seed. Plans with different seeds may differ only in
    /// genuinely equal-cost choices.
    pub seed: u64,
    /// Maximum steps of one plan placeable on a single host.
    pub host_capacity: usize,
}

impl Default for PlannerConfig {
    fn default() -> PlannerConfig {
        PlannerConfig {
            seed: 0xE20,
            host_capacity: 4,
        }
    }
}

/// One step's chosen binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// Step index within the goal.
    pub step: usize,
    /// The goal step's category.
    pub category: String,
    /// Operation the bound tool invokes.
    pub operation: String,
    /// Chosen service name.
    pub service: String,
    /// Chosen replica host.
    pub host: String,
    /// Predicted virtual nanoseconds for the step (queueing + service
    /// + transfer).
    pub predicted_nanos: u128,
    /// Predicted wire bytes moved to reach the step's host.
    pub predicted_bytes: u64,
    /// `true` when the step shares its host with the previous step —
    /// the placement the `DataRef` dedup credit rewards.
    pub colocated: bool,
}

/// A concrete plan: one [`Assignment`] per goal step plus the
/// predictions the selection minimised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// Chosen bindings, in step order.
    pub assignments: Vec<Assignment>,
    /// Predicted makespan of the chain (sum of per-step predictions).
    pub predicted_makespan: Duration,
    /// Predicted total wire bytes moved.
    pub predicted_bytes_moved: u64,
}

impl Plan {
    /// Hosts used by the plan, deduplicated, in step order.
    pub fn hosts(&self) -> Vec<String> {
        let mut hosts: Vec<String> = Vec::new();
        for a in &self.assignments {
            if !hosts.contains(&a.host) {
                hosts.push(a.host.clone());
            }
        }
        hosts
    }

    /// Bind the plan to a concrete [`TaskGraph`]: one imported Web
    /// Service tool per step, pinned to its chosen replica host, with a
    /// cable from each step's first output to the next step's first
    /// type-compatible input (steps whose ports don't chain stay
    /// unconnected and take their inputs from the enactment bindings).
    /// Task names carry only the step index and category — never the
    /// host — so reports from differently-placed plans of the same goal
    /// stay byte-comparable.
    pub fn bind(&self, network: Arc<Network>) -> Result<(TaskGraph, Vec<TaskId>)> {
        self.bind_with(&mut |host, service| {
            import_from_host(Arc::clone(&network), host, service).map_err(Into::into)
        })
    }

    /// [`bind`](Self::bind) with a caller-supplied importer, so a
    /// toolkit can attach purity/resilience metadata, and benches can
    /// reuse pre-fetched WSDLs instead of re-fetching per plan.
    pub fn bind_with(
        &self,
        import: &mut dyn FnMut(&str, &str) -> Result<Vec<WsTool>>,
    ) -> Result<(TaskGraph, Vec<TaskId>)> {
        let mut graph = TaskGraph::new();
        let mut ids = Vec::with_capacity(self.assignments.len());
        let mut prev: Option<TaskId> = None;
        for a in &self.assignments {
            let tools = import(&a.host, &a.service)?;
            let tool = tools
                .into_iter()
                .find(|t| t.operation().name == a.operation)
                .ok_or_else(|| {
                    WorkflowError::Ws(format!(
                        "service {:?} on {:?} has no operation {:?}",
                        a.service, a.host, a.operation
                    ))
                })?;
            let id = graph.add_named_task(format!("step{}:{}", a.step + 1, a.category), {
                let tool: Arc<dyn crate::graph::Tool> = Arc::new(tool);
                tool
            });
            if let Some(p) = prev {
                let out = graph.task(p)?.tool.output_ports();
                let ins = graph.task(id)?.tool.input_ports();
                if let Some(out_spec) = out.first() {
                    if let Some((port, _)) = ins
                        .iter()
                        .enumerate()
                        .find(|(_, spec)| out_spec.compatible_with(spec))
                    {
                        graph.connect(p, 0, id, port)?;
                    }
                }
            }
            prev = Some(id);
            ids.push(id);
        }
        Ok((graph, ids))
    }
}

/// Mines enactment history — [`ExecutionReport`]s and [`RunJournal`]
/// event logs — for co-invoked operation pairs, and pre-ranks a step's
/// candidates by how often they historically followed the previous
/// step's candidates. Labels are `"Service.operation"`, the same form
/// [`WsTool`] task names take, so journal mining needs no mapping.
#[derive(Debug, Clone, Default)]
pub struct UsageRecommender {
    pairs: BTreeMap<(String, String), u64>,
}

impl UsageRecommender {
    /// An empty recommender (every affinity 0 — pre-ranking is the
    /// identity).
    pub fn new() -> UsageRecommender {
        UsageRecommender::default()
    }

    /// Count of distinct co-invoked pairs observed.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` when no history has been mined.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Record one invocation sequence: each adjacent pair of labels is
    /// counted as co-invoked.
    pub fn observe_sequence<S: AsRef<str>>(&mut self, labels: &[S]) {
        for window in labels.windows(2) {
            let key = (
                window[0].as_ref().to_string(),
                window[1].as_ref().to_string(),
            );
            *self.pairs.entry(key).or_insert(0) += 1;
        }
    }

    /// Mine an [`ExecutionReport`]: task names in completion order.
    pub fn observe_report(&mut self, report: &ExecutionReport) {
        let names: Vec<&str> = report.runs.iter().map(|r| r.task.as_str()).collect();
        self.observe_sequence(&names);
    }

    /// Mine a [`RunJournal`]: completed-task names in append order.
    pub fn observe_journal(&mut self, journal: &RunJournal) {
        let names: Vec<String> = journal
            .events()
            .into_iter()
            .filter_map(|e| match e {
                RunEvent::TaskCompleted { name, .. } => Some(name),
                _ => None,
            })
            .collect();
        self.observe_sequence(&names);
    }

    /// How often `next` has directly followed `prev`.
    pub fn affinity(&self, prev: &str, next: &str) -> u64 {
        self.pairs
            .get(&(prev.to_string(), next.to_string()))
            .copied()
            .unwrap_or(0)
    }
}

/// The planner. Construct with a [`PlannerConfig`] and call
/// [`plan`](Planner::plan); the result is a pure function of the goal,
/// the candidate sets, the cost snapshot, and the seed.
#[derive(Debug, Clone, Default)]
pub struct Planner {
    config: PlannerConfig,
}

impl Planner {
    /// A planner with the given knobs.
    pub fn new(config: PlannerConfig) -> Planner {
        Planner { config }
    }

    /// A planner with default knobs and the given tie-break seed.
    pub fn seeded(seed: u64) -> Planner {
        Planner {
            config: PlannerConfig {
                seed,
                ..PlannerConfig::default()
            },
        }
    }

    /// The planner's configuration.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// Enumerate live candidates for `category` from a gossip view
    /// snapshot: tombstoned replicas and stale heartbeats are excluded,
    /// survivors are sorted by `(service, host)` for determinism.
    pub fn live_candidates(
        view: &[ReplicaRecord],
        category: &str,
        now: Duration,
        freshness: Duration,
    ) -> Vec<ServiceEntry> {
        let mut hits: Vec<ServiceEntry> = view
            .iter()
            .filter(|r| {
                !r.tombstone
                    && now.saturating_sub(r.heartbeat_at) < freshness
                    && r.entry.categories.iter().any(|c| c == category)
            })
            .map(|r| r.entry.clone())
            .collect();
        hits.sort_by(|a, b| (&a.name, &a.host).cmp(&(&b.name, &b.host)));
        hits
    }

    /// Plan `goal` against live telemetry. `candidates` supplies each
    /// step's replica set (e.g. a registry inquiry or
    /// [`live_candidates`](Self::live_candidates) over a gossip view);
    /// hosts whose breakers the snapshot reports open are excluded.
    /// Errors with [`WorkflowError::NoCandidates`] when a step has no
    /// placeable replica.
    pub fn plan(
        &self,
        goal: &Goal,
        candidates: &dyn Fn(&GoalStep) -> Vec<ServiceEntry>,
        cost: &CostModel,
        recommender: Option<&UsageRecommender>,
    ) -> Result<Plan> {
        if goal.steps.is_empty() {
            return Ok(Plan {
                assignments: Vec::new(),
                predicted_makespan: Duration::ZERO,
                predicted_bytes_moved: 0,
            });
        }
        // Candidate enumeration: drop breaker-open hosts, rotate by a
        // seeded offset, then stable-sort by usage affinity. Rotation
        // first, ranking second: history outranks the seed, and the
        // seed only permutes within equal-affinity (and, later,
        // equal-cost) classes.
        let mut cands: Vec<Vec<ServiceEntry>> = Vec::with_capacity(goal.steps.len());
        for (i, step) in goal.steps.iter().enumerate() {
            let mut hits: Vec<ServiceEntry> = candidates(step)
                .into_iter()
                .filter(|e| cost.allows(&e.host))
                .collect();
            if hits.is_empty() {
                return Err(WorkflowError::NoCandidates {
                    step: i,
                    category: step.category.clone(),
                });
            }
            let offset = (splitmix64(self.config.seed ^ (i as u64)) % hits.len() as u64) as usize;
            hits.rotate_left(offset);
            if let Some(rec) = recommender {
                if i > 0 {
                    let prev_step = &goal.steps[i - 1];
                    let prev_labels: Vec<String> = cands[i - 1]
                        .iter()
                        .map(|p| format!("{}.{}", p.name, prev_step.operation))
                        .collect();
                    // Stable sort by descending historical affinity:
                    // never-seen pairings keep their rotated order.
                    hits.sort_by_key(|e| {
                        let label = format!("{}.{}", e.name, step.operation);
                        let score: u64 = prev_labels.iter().map(|p| rec.affinity(p, &label)).sum();
                        std::cmp::Reverse(score)
                    });
                }
            }
            cands.push(hits);
        }

        // Fast path: the unconstrained chain DP. When its answer fits
        // the per-host budget — the common case — it is optimal
        // outright. Otherwise an exact branch-and-bound pass re-solves
        // under the budget.
        let plan = self.solve_chain(goal, &cands, cost);
        if Self::fits(&plan, self.config.host_capacity) {
            return Ok(plan);
        }
        self.solve_capped(goal, &cands, cost).ok_or_else(|| {
            let hosts: std::collections::BTreeSet<&str> =
                cands.iter().flatten().map(|e| e.host.as_str()).collect();
            WorkflowError::Ws(format!(
                "planner cannot place {} step(s) under a budget of {} per host \
                     with only {} distinct host(s)",
                goal.steps.len(),
                self.config.host_capacity,
                hosts.len()
            ))
        })
    }

    /// `true` when no host carries more than `capacity` assignments.
    fn fits(plan: &Plan, capacity: usize) -> bool {
        let mut per_host: BTreeMap<&str, usize> = BTreeMap::new();
        for a in &plan.assignments {
            let n = per_host.entry(a.host.as_str()).or_insert(0);
            *n += 1;
            if *n > capacity {
                return false;
            }
        }
        true
    }

    /// Predicted `(nanos, wire bytes)` for placing `step` on `host`.
    fn step_cost(cost: &CostModel, step: &GoalStep, host: &str, colocated: bool) -> (u128, usize) {
        let bytes = cost.predicted_transfer_bytes(step.payload_bytes, colocated);
        (cost.service_nanos(host) + cost.transfer_nanos(bytes), bytes)
    }

    /// Turn a per-step candidate choice into a [`Plan`] with its real
    /// predictions.
    fn materialise(
        goal: &Goal,
        cands: &[Vec<ServiceEntry>],
        cost: &CostModel,
        choice: &[usize],
    ) -> Plan {
        let mut assignments = Vec::with_capacity(choice.len());
        let mut makespan: u128 = 0;
        let mut bytes_moved: u64 = 0;
        let mut prev_host: Option<&str> = None;
        for (i, step) in goal.steps.iter().enumerate() {
            let entry = &cands[i][choice[i]];
            let colocated = prev_host == Some(entry.host.as_str());
            let (nanos, bytes) = Self::step_cost(cost, step, &entry.host, colocated);
            makespan += nanos;
            bytes_moved += bytes as u64;
            assignments.push(Assignment {
                step: i,
                category: step.category.clone(),
                operation: step.operation.clone(),
                service: entry.name.clone(),
                host: entry.host.clone(),
                predicted_nanos: nanos,
                predicted_bytes: bytes as u64,
                colocated,
            });
            prev_host = Some(entry.host.as_str());
        }
        Plan {
            assignments,
            predicted_makespan: Duration::from_nanos(makespan.min(u64::MAX as u128) as u64),
            predicted_bytes_moved: bytes_moved,
        }
    }

    /// The unconstrained chain DP: `dp[i][c]` = cheapest predicted
    /// nanos to finish steps `0..=i` with step `i` on candidate `c`.
    /// Transfer between adjacent steps is priced with the co-location
    /// `DataRef` credit; step 0 always ships its payload from the
    /// client.
    fn solve_chain(&self, goal: &Goal, cands: &[Vec<ServiceEntry>], cost: &CostModel) -> Plan {
        let n = goal.steps.len();
        let mut best: Vec<Vec<u128>> = Vec::with_capacity(n);
        let mut back: Vec<Vec<usize>> = Vec::with_capacity(n);
        let first: Vec<u128> = cands[0]
            .iter()
            .map(|e| Self::step_cost(cost, &goal.steps[0], &e.host, false).0)
            .collect();
        best.push(first);
        back.push(vec![0; cands[0].len()]);
        for i in 1..n {
            let mut row = Vec::with_capacity(cands[i].len());
            let mut arg = Vec::with_capacity(cands[i].len());
            for e in &cands[i] {
                let mut cheapest = u128::MAX;
                let mut from = 0usize;
                for (p, prev) in cands[i - 1].iter().enumerate() {
                    let colocated = prev.host == e.host;
                    let total = best[i - 1][p]
                        + Self::step_cost(cost, &goal.steps[i], &e.host, colocated).0;
                    // Strict `<`: the first-seen minimum wins, so the
                    // candidate order (seeded rotation + affinity) is
                    // the only source of tie-break variation.
                    if total < cheapest {
                        cheapest = total;
                        from = p;
                    }
                }
                row.push(cheapest);
                arg.push(from);
            }
            best.push(row);
            back.push(arg);
        }

        // Reconstruct the cheapest chain.
        let (mut at, _) =
            best[n - 1]
                .iter()
                .enumerate()
                .fold(
                    (0usize, u128::MAX),
                    |(bi, bv), (i, &v)| {
                        if v < bv {
                            (i, v)
                        } else {
                            (bi, bv)
                        }
                    },
                );
        let mut choice = vec![0usize; n];
        for i in (0..n).rev() {
            choice[i] = at;
            at = back[i][at];
        }
        Self::materialise(goal, cands, cost, &choice)
    }

    /// Exact branch-and-bound under the per-host capacity budget.
    /// Candidates are explored in list order and a partial assignment
    /// is pruned when its cost plus an optimistic suffix bound cannot
    /// beat the incumbent (`>=`, so the first-found minimum survives
    /// ties — same tie-break discipline as the DP). Goals here are
    /// short chains, so the exponential worst case never bites.
    fn solve_capped(
        &self,
        goal: &Goal,
        cands: &[Vec<ServiceEntry>],
        cost: &CostModel,
    ) -> Option<Plan> {
        let n = goal.steps.len();
        // Optimistic cost of finishing steps `i..`: every step takes
        // its cheapest host with the co-location transfer credit.
        let mut suffix_lb = vec![0u128; n + 1];
        for i in (0..n).rev() {
            let cheapest = cands[i]
                .iter()
                .map(|e| Self::step_cost(cost, &goal.steps[i], &e.host, i > 0).0)
                .min()
                .unwrap_or(0);
            suffix_lb[i] = suffix_lb[i + 1] + cheapest;
        }

        struct Search<'a> {
            goal: &'a Goal,
            cands: &'a [Vec<ServiceEntry>],
            cost: &'a CostModel,
            suffix_lb: &'a [u128],
            capacity: usize,
            best: Option<(u128, Vec<usize>)>,
        }
        impl Search<'_> {
            fn dfs(
                &mut self,
                i: usize,
                prev_host: Option<&str>,
                used: &mut BTreeMap<String, usize>,
                running: u128,
                choice: &mut Vec<usize>,
            ) {
                if let Some((incumbent, _)) = &self.best {
                    if running + self.suffix_lb[i] >= *incumbent {
                        return;
                    }
                }
                if i == self.goal.steps.len() {
                    self.best = Some((running, choice.clone()));
                    return;
                }
                for (c, e) in self.cands[i].iter().enumerate() {
                    if used.get(e.host.as_str()).copied().unwrap_or(0) >= self.capacity {
                        continue;
                    }
                    let colocated = prev_host == Some(e.host.as_str());
                    let (nanos, _) =
                        Planner::step_cost(self.cost, &self.goal.steps[i], &e.host, colocated);
                    *used.entry(e.host.clone()).or_insert(0) += 1;
                    choice.push(c);
                    self.dfs(i + 1, Some(&e.host), used, running + nanos, choice);
                    choice.pop();
                    *used.get_mut(&e.host).expect("host just inserted") -= 1;
                }
            }
        }

        let mut search = Search {
            goal,
            cands,
            cost,
            suffix_lb: &suffix_lb,
            capacity: self.config.host_capacity,
            best: None,
        };
        search.dfs(0, None, &mut BTreeMap::new(), 0, &mut Vec::with_capacity(n));
        let (_, choice) = search.best?;
        Some(Self::materialise(goal, cands, cost, &choice))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(service: &str, host: &str, categories: &[&str]) -> ServiceEntry {
        ServiceEntry {
            name: service.to_string(),
            host: host.to_string(),
            wsdl_url: format!("http://{host}/axis/{service}?wsdl"),
            categories: categories.iter().map(|s| s.to_string()).collect(),
            description: String::new(),
        }
    }

    fn fixed_candidates(
        sets: Vec<Vec<ServiceEntry>>,
        goal: &Goal,
    ) -> impl Fn(&GoalStep) -> Vec<ServiceEntry> + '_ {
        move |step: &GoalStep| {
            let i = goal
                .steps
                .iter()
                .position(|s| s == step)
                .expect("step belongs to goal");
            sets[i].clone()
        }
    }

    #[test]
    fn empty_goal_plans_to_nothing() {
        let plan = Planner::default()
            .plan(&Goal::default(), &|_| Vec::new(), &CostModel::new(), None)
            .unwrap();
        assert!(plan.assignments.is_empty());
        assert_eq!(plan.predicted_bytes_moved, 0);
    }

    #[test]
    fn no_candidates_is_a_typed_error() {
        let goal = Goal::chain(&[("classifier", "classify", 0)]);
        let err = Planner::default()
            .plan(&goal, &|_| Vec::new(), &CostModel::new(), None)
            .unwrap_err();
        assert!(matches!(
            err,
            WorkflowError::NoCandidates { step: 0, ref category } if category == "classifier"
        ));
    }

    #[test]
    fn cold_start_produces_a_valid_colocated_plan() {
        // Empty telemetry: every host prices identically, so the chain
        // co-locates (transfer credit) on some live replica.
        let goal = Goal::chain(&[("a", "opA", 50_000), ("b", "opB", 50_000)]);
        let sets = vec![
            vec![entry("A", "h1", &["a"]), entry("A", "h2", &["a"])],
            vec![entry("B", "h1", &["b"]), entry("B", "h2", &["b"])],
        ];
        let plan = Planner::default()
            .plan(
                &goal,
                &fixed_candidates(sets, &goal),
                &CostModel::new(),
                None,
            )
            .unwrap();
        assert_eq!(plan.assignments.len(), 2);
        assert_eq!(plan.assignments[0].host, plan.assignments[1].host);
        assert!(plan.assignments[1].colocated);
        // The co-located hop pays only the DataRef handle.
        assert_eq!(
            plan.assignments[1].predicted_bytes,
            dm_wsrf::costmodel::DATA_REF_WIRE_BYTES as u64
        );
    }

    #[test]
    fn busy_hosts_lose_to_idle_ones() {
        let goal = Goal::chain(&[("a", "op", 100)]);
        let sets = vec![vec![entry("A", "busy", &["a"]), entry("A", "idle", &["a"])]];
        let mut cost = CostModel::new();
        cost.observe_loads(&[("busy".to_string(), 50)].into());
        let plan = Planner::default()
            .plan(&goal, &fixed_candidates(sets, &goal), &cost, None)
            .unwrap();
        assert_eq!(plan.assignments[0].host, "idle");
    }

    #[test]
    fn open_breaker_hosts_are_never_selected() {
        use dm_wsrf::resilience::{BreakerBoard, BreakerConfig};
        let goal = Goal::chain(&[("a", "op", 100)]);
        let sets = vec![vec![entry("A", "bad", &["a"]), entry("A", "good", &["a"])]];
        let board = BreakerBoard::new(BreakerConfig::default());
        for _ in 0..32 {
            board.breaker("bad").record_failure(Duration::ZERO);
        }
        let mut cost = CostModel::new();
        cost.observe_breakers(&board, Duration::ZERO);
        for seed in 0..16 {
            let plan = Planner::seeded(seed)
                .plan(&goal, &fixed_candidates(sets.clone(), &goal), &cost, None)
                .unwrap();
            assert_eq!(plan.assignments[0].host, "good", "seed {seed}");
        }
    }

    #[test]
    fn capacity_budget_spreads_an_oversubscribed_chain() {
        let goal = Goal::chain(&[("a", "op", 10_000), ("b", "op", 10_000)]);
        let sets = vec![
            vec![entry("A", "h1", &["a"]), entry("A", "h2", &["a"])],
            vec![entry("B", "h1", &["b"]), entry("B", "h2", &["b"])],
        ];
        let planner = Planner::new(PlannerConfig {
            host_capacity: 1,
            ..PlannerConfig::default()
        });
        let plan = planner
            .plan(
                &goal,
                &fixed_candidates(sets, &goal),
                &CostModel::new(),
                None,
            )
            .unwrap();
        assert_ne!(
            plan.assignments[0].host, plan.assignments[1].host,
            "capacity 1 must forbid co-location"
        );
    }

    #[test]
    fn same_seed_same_plan_different_seeds_equal_cost() {
        let goal = Goal::chain(&[("a", "op", 4_000), ("b", "op", 4_000)]);
        let sets = vec![
            vec![entry("A", "h1", &["a"]), entry("A", "h2", &["a"])],
            vec![entry("B", "h1", &["b"]), entry("B", "h2", &["b"])],
        ];
        let cost = CostModel::new();
        let plan_a1 = Planner::seeded(1)
            .plan(&goal, &fixed_candidates(sets.clone(), &goal), &cost, None)
            .unwrap();
        let plan_a2 = Planner::seeded(1)
            .plan(&goal, &fixed_candidates(sets.clone(), &goal), &cost, None)
            .unwrap();
        assert_eq!(plan_a1, plan_a2, "same seed must replan identically");
        for seed in 0..8 {
            let plan = Planner::seeded(seed)
                .plan(&goal, &fixed_candidates(sets.clone(), &goal), &cost, None)
                .unwrap();
            assert_eq!(
                plan.predicted_makespan, plan_a1.predicted_makespan,
                "seed {seed} found a different cost, not a tie"
            );
        }
    }

    #[test]
    fn tombstoned_replicas_never_appear_in_candidates() {
        let now = Duration::from_secs(100);
        let fresh = Duration::from_secs(30);
        let record = |host: &str, tombstone: bool, age: u64| ReplicaRecord {
            entry: entry("A", host, &["a"]),
            version: 1,
            heartbeat_at: now - Duration::from_secs(age),
            tombstone,
        };
        let view = vec![
            record("live", false, 1),
            record("drained", true, 1),
            record("stale", false, 99),
        ];
        let hits = Planner::live_candidates(&view, "a", now, fresh);
        let hosts: Vec<&str> = hits.iter().map(|e| e.host.as_str()).collect();
        assert_eq!(hosts, ["live"]);
    }

    #[test]
    fn recommender_mines_pairs_and_breaks_ties() {
        let mut rec = UsageRecommender::new();
        assert!(rec.is_empty());
        rec.observe_sequence(&["X.load", "B.op", "Y.train"]);
        rec.observe_sequence(&["X.load", "B.op"]);
        assert_eq!(rec.affinity("X.load", "B.op"), 2);
        assert_eq!(rec.affinity("B.op", "Y.train"), 1);
        assert_eq!(rec.affinity("Y.train", "X.load"), 0);
        assert_eq!(rec.len(), 2);

        // Two equal-cost services for step 1; history says B followed
        // X, so every seed must pick B on the same host as X.
        let goal = Goal::chain(&[("l", "load", 0), ("o", "op", 0)]);
        let sets = vec![
            vec![entry("X", "h1", &["l"])],
            vec![entry("A", "h1", &["o"]), entry("B", "h1", &["o"])],
        ];
        for seed in 0..8 {
            let plan = Planner::seeded(seed)
                .plan(
                    &goal,
                    &fixed_candidates(sets.clone(), &goal),
                    &CostModel::new(),
                    Some(&rec),
                )
                .unwrap();
            assert_eq!(plan.assignments[1].service, "B", "seed {seed}");
        }
    }

    #[test]
    fn plan_reports_distinct_hosts_in_step_order() {
        let plan = Plan {
            assignments: vec![
                Assignment {
                    step: 0,
                    category: "a".into(),
                    operation: "op".into(),
                    service: "A".into(),
                    host: "h2".into(),
                    predicted_nanos: 1,
                    predicted_bytes: 1,
                    colocated: false,
                },
                Assignment {
                    step: 1,
                    category: "b".into(),
                    operation: "op".into(),
                    service: "B".into(),
                    host: "h1".into(),
                    predicted_nanos: 1,
                    predicted_bytes: 1,
                    colocated: false,
                },
                Assignment {
                    step: 2,
                    category: "c".into(),
                    operation: "op".into(),
                    service: "C".into(),
                    host: "h2".into(),
                    predicted_nanos: 1,
                    predicted_bytes: 1,
                    colocated: false,
                },
            ],
            predicted_makespan: Duration::ZERO,
            predicted_bytes_moved: 3,
        };
        assert_eq!(plan.hosts(), ["h2".to_string(), "h1".to_string()]);
    }
}
