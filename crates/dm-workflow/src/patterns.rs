//! Structural pattern operators (Gomes, Rana & Cunha, "Pattern
//! operators for grid environments" — reference \[9\] of the paper):
//! reusable graph shapes the composition environment offers, and
//! behavioural operators that transform an existing workflow.

use crate::error::Result;
use crate::graph::{TaskGraph, TaskId, Tool};
use std::sync::Arc;

/// Wire `stages` into a linear pipeline (each stage's output 0 to the
/// next stage's input 0). Returns the task ids in order.
pub fn pipeline(graph: &mut TaskGraph, stages: Vec<Arc<dyn Tool>>) -> Result<Vec<TaskId>> {
    let ids: Vec<TaskId> = stages.into_iter().map(|t| graph.add_task(t)).collect();
    for w in ids.windows(2) {
        graph.connect(w[0], 0, w[1], 0)?;
    }
    Ok(ids)
}

/// Fan a single source output to `workers` (a star / master-worker
/// shape). Returns `(source_id, worker_ids)`.
pub fn fan_out(
    graph: &mut TaskGraph,
    source: Arc<dyn Tool>,
    workers: Vec<Arc<dyn Tool>>,
) -> Result<(TaskId, Vec<TaskId>)> {
    let src = graph.add_task(source);
    let mut ids = Vec::with_capacity(workers.len());
    for w in workers {
        let id = graph.add_task(w);
        graph.connect(src, 0, id, 0)?;
        ids.push(id);
    }
    Ok((src, ids))
}

/// Fan `producers` into one sink with matching input arity (a join).
/// Returns the sink id.
pub fn fan_in(graph: &mut TaskGraph, producers: &[TaskId], sink: Arc<dyn Tool>) -> Result<TaskId> {
    let sink_id = graph.add_task(sink);
    for (port, &p) in producers.iter().enumerate() {
        graph.connect(p, 0, sink_id, port)?;
    }
    Ok(sink_id)
}

/// A ring: each stage feeds the next; the last output is *not* wired
/// back (the graph must stay acyclic for enactment) but is returned so
/// a driver can loop iterations explicitly — the paper notes workflows
/// "can contain loops" driven by user interaction between stages.
pub fn ring(graph: &mut TaskGraph, stages: Vec<Arc<dyn Tool>>) -> Result<(Vec<TaskId>, TaskId)> {
    let ids = pipeline(graph, stages)?;
    let last = *ids.last().expect("ring needs at least one stage");
    Ok((ids, last))
}

/// Behavioural operator: replicate the subgraph rooted at a worker
/// tool across `copies` instances fed from the same source port —
/// increasing a star's width (the paper's operators manipulate
/// workflows structurally in exactly this way).
pub fn widen_star(
    graph: &mut TaskGraph,
    source: TaskId,
    source_port: usize,
    worker_factory: impl Fn() -> Arc<dyn Tool>,
    copies: usize,
) -> Result<Vec<TaskId>> {
    let mut ids = Vec::with_capacity(copies);
    for _ in 0..copies {
        let id = graph.add_task(worker_factory());
        graph.connect(source, source_port, id, 0)?;
        ids.push(id);
    }
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Executor;
    use crate::graph::test_tools::{Concat, ConstText, Upper};
    use crate::graph::Token;
    use std::collections::HashMap;

    #[test]
    fn pipeline_runs_in_order() {
        let mut g = TaskGraph::new();
        let ids = pipeline(
            &mut g,
            vec![
                Arc::new(ConstText("abc".into())),
                Arc::new(Upper),
                Arc::new(Upper),
            ],
        )
        .unwrap();
        assert_eq!(ids.len(), 3);
        let report = Executor::serial().run(&g, &HashMap::new()).unwrap();
        assert_eq!(report.output(ids[2], 0), Some(&Token::Text("ABC".into())));
    }

    #[test]
    fn fan_out_star() {
        let mut g = TaskGraph::new();
        let (src, workers) = fan_out(
            &mut g,
            Arc::new(ConstText("x".into())),
            vec![Arc::new(Upper), Arc::new(Upper), Arc::new(Upper)],
        )
        .unwrap();
        assert_eq!(workers.len(), 3);
        assert_eq!(g.cables().len(), 3);
        assert!(g.cables().iter().all(|c| c.from_task == src));
    }

    #[test]
    fn fan_in_joins() {
        let mut g = TaskGraph::new();
        let a = g.add_task(Arc::new(ConstText("a".into())));
        let b = g.add_task(Arc::new(ConstText("b".into())));
        let sink = fan_in(&mut g, &[a, b], Arc::new(Concat)).unwrap();
        let report = Executor::serial().run(&g, &HashMap::new()).unwrap();
        assert_eq!(report.output(sink, 0), Some(&Token::Text("ab".into())));
    }

    #[test]
    fn ring_returns_loop_point() {
        let mut g = TaskGraph::new();
        let (ids, last) = ring(
            &mut g,
            vec![Arc::new(ConstText("seed".into())), Arc::new(Upper)],
        )
        .unwrap();
        assert_eq!(last, ids[1]);
        // Driver-controlled iteration: run twice, feeding back manually.
        let report = Executor::serial().run(&g, &HashMap::new()).unwrap();
        assert_eq!(report.output(last, 0), Some(&Token::Text("SEED".into())));
    }

    #[test]
    fn widen_star_adds_workers() {
        let mut g = TaskGraph::new();
        let src = g.add_task(Arc::new(ConstText("w".into())));
        let ids = widen_star(&mut g, src, 0, || Arc::new(Upper), 5).unwrap();
        assert_eq!(ids.len(), 5);
        let report = Executor::parallel().run(&g, &HashMap::new()).unwrap();
        for id in ids {
            assert_eq!(report.output(id, 0), Some(&Token::Text("W".into())));
        }
    }
}
