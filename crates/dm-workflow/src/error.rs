//! Error type for the workflow engine.

use std::fmt;

/// Result alias used throughout `dm-workflow`.
pub type Result<T> = std::result::Result<T, WorkflowError>;

/// Errors raised while building or enacting workflows.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkflowError {
    /// A task id was not found in the graph.
    UnknownTask(usize),
    /// A port index was out of range for a task.
    UnknownPort {
        /// Task id.
        task: usize,
        /// Port index.
        port: usize,
        /// `true` for input ports.
        input: bool,
    },
    /// A cable would connect incompatible port types.
    TypeMismatch {
        /// Producing port type.
        from: String,
        /// Consuming port type.
        to: String,
    },
    /// An input port is fed by more than one cable.
    PortAlreadyConnected {
        /// Task id.
        task: usize,
        /// Input port index.
        port: usize,
    },
    /// The graph contains a cycle (enactment needs a DAG).
    Cycle,
    /// An input port has no cable and no initial binding.
    UnboundInput {
        /// Task name.
        task: String,
        /// Port name.
        port: String,
    },
    /// A task failed during execution (after exhausting retries).
    TaskFailed {
        /// Task name.
        task: String,
        /// Failure message.
        message: String,
    },
    /// The enactment orchestrator was killed by a scripted crash
    /// (simulated process death). The run journal retains everything
    /// appended before the kill; a fresh executor can resume from it.
    Crashed {
        /// Journal records durably appended before the process died.
        appended: u64,
    },
    /// A journal was replayed against a workflow it does not belong to
    /// (the structural fingerprints disagree).
    JournalMismatch {
        /// Fingerprint recorded in the journal's run-started record.
        journal: u128,
        /// Fingerprint of the graph being enacted.
        graph: u128,
    },
    /// A tool name was not found in the toolbox.
    UnknownTool(String),
    /// The composition planner found no placeable replica for a step
    /// (nothing published under the category, or every candidate sits
    /// behind an open circuit breaker).
    NoCandidates {
        /// Goal step index (0-based).
        step: usize,
        /// The category the step asked for.
        category: String,
    },
    /// XML import failure.
    Xml(String),
    /// Underlying Web Services error.
    Ws(String),
}

impl fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkflowError::UnknownTask(id) => write!(f, "no task with id {id}"),
            WorkflowError::UnknownPort { task, port, input } => write!(
                f,
                "task {task} has no {} port {port}",
                if *input { "input" } else { "output" }
            ),
            WorkflowError::TypeMismatch { from, to } => {
                write!(f, "cannot connect {from:?} output to {to:?} input")
            }
            WorkflowError::PortAlreadyConnected { task, port } => {
                write!(f, "input port {port} of task {task} is already connected")
            }
            WorkflowError::Cycle => write!(f, "workflow graph contains a cycle"),
            WorkflowError::UnboundInput { task, port } => {
                write!(
                    f,
                    "input {port:?} of task {task:?} is not connected or bound"
                )
            }
            WorkflowError::TaskFailed { task, message } => {
                write!(f, "task {task:?} failed: {message}")
            }
            WorkflowError::Crashed { appended } => write!(
                f,
                "orchestrator killed (simulated crash) after {appended} journal records; resume from the journal"
            ),
            WorkflowError::JournalMismatch { journal, graph } => write!(
                f,
                "journal belongs to a different workflow (journal fingerprint {journal:#034x}, graph {graph:#034x})"
            ),
            WorkflowError::UnknownTool(name) => write!(f, "no tool named {name:?}"),
            WorkflowError::NoCandidates { step, category } => write!(
                f,
                "no placeable replica for goal step {step} (category {category:?})"
            ),
            WorkflowError::Xml(m) => write!(f, "taskgraph XML error: {m}"),
            WorkflowError::Ws(m) => write!(f, "web service error: {m}"),
        }
    }
}

impl std::error::Error for WorkflowError {}

impl From<dm_wsrf::WsError> for WorkflowError {
    fn from(e: dm_wsrf::WsError) -> Self {
        WorkflowError::Ws(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            WorkflowError::Cycle.to_string(),
            "workflow graph contains a cycle"
        );
        let e = WorkflowError::UnknownPort {
            task: 3,
            port: 1,
            input: true,
        };
        assert!(e.to_string().contains("input port 1"));
        let e = WorkflowError::TaskFailed {
            task: "t".into(),
            message: "m".into(),
        };
        assert!(e.to_string().contains("\"t\""));
    }

    #[test]
    fn ws_error_converts() {
        let e: WorkflowError = dm_wsrf::WsError::UnknownHost("h".into()).into();
        assert!(matches!(e, WorkflowError::Ws(_)));
    }
}
