//! The toolbox: "On the left hand side the user is provided with a
//! collection of pre-defined folders containing tools grouped according
//! to functions. The tools in the Common folder for example perform
//! tasks such as inputting and viewing strings" (§4, Figure 1).

use crate::error::{Result, WorkflowError};
use crate::graph::{PortSpec, Token, Tool};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A folder-organised collection of tool prototypes.
#[derive(Default)]
pub struct Toolbox {
    folders: RwLock<BTreeMap<String, Vec<Arc<dyn Tool>>>>,
}

impl Toolbox {
    /// Create an empty toolbox.
    pub fn new() -> Toolbox {
        Toolbox::default()
    }

    /// Create a toolbox pre-loaded with the Common folder tools.
    pub fn with_common_tools() -> Toolbox {
        let tb = Toolbox::new();
        tb.add(Arc::new(StringGen::new("")));
        tb.add(Arc::new(StringViewer::new()));
        tb.add(Arc::new(StringConcat));
        tb.add(Arc::new(ToUpperCase));
        tb.add(Arc::new(LineCount));
        tb
    }

    /// Register a tool under its own package folder.
    pub fn add(&self, tool: Arc<dyn Tool>) {
        self.folders
            .write()
            .entry(tool.package().to_string())
            .or_default()
            .push(tool);
    }

    /// Folder names, sorted.
    pub fn folders(&self) -> Vec<String> {
        self.folders.read().keys().cloned().collect()
    }

    /// Tool names within a folder, sorted.
    pub fn tools_in(&self, folder: &str) -> Vec<String> {
        let mut names: Vec<String> = self
            .folders
            .read()
            .get(folder)
            .map(|tools| tools.iter().map(|t| t.name().to_string()).collect())
            .unwrap_or_default();
        names.sort();
        names
    }

    /// Total number of registered tools.
    pub fn len(&self) -> usize {
        self.folders.read().values().map(Vec::len).sum()
    }

    /// `true` when no tools are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Find a tool prototype by name (searching all folders).
    pub fn find(&self, name: &str) -> Result<Arc<dyn Tool>> {
        self.folders
            .read()
            .values()
            .flatten()
            .find(|t| t.name() == name)
            .cloned()
            .ok_or_else(|| WorkflowError::UnknownTool(name.to_string()))
    }

    /// Render the folder tree as text (the Figure-1 left pane).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (folder, tools) in self.folders.read().iter() {
            out.push_str(&format!("{folder}/\n"));
            let mut names: Vec<&str> = tools.iter().map(|t| t.name()).collect();
            names.sort();
            for name in names {
                out.push_str(&format!("  {name}\n"));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Common-folder tools.
// ---------------------------------------------------------------------

/// Emits a configured string (the "inputting strings" tool).
pub struct StringGen {
    text: String,
}

impl StringGen {
    /// Create with the given constant text.
    pub fn new<T: Into<String>>(text: T) -> StringGen {
        StringGen { text: text.into() }
    }
}

impl Tool for StringGen {
    fn name(&self) -> &str {
        "StringGen"
    }

    fn input_ports(&self) -> Vec<PortSpec> {
        vec![]
    }

    fn output_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new("value", "string")]
    }

    fn execute(&self, _inputs: &[Token]) -> std::result::Result<Vec<Token>, String> {
        Ok(vec![Token::Text(self.text.clone())])
    }
}

/// Collects strings for viewing (the "viewing strings" tool); the
/// received values are retained and also passed through.
#[derive(Default)]
pub struct StringViewer {
    seen: RwLock<Vec<String>>,
}

impl StringViewer {
    /// Create an empty viewer.
    pub fn new() -> StringViewer {
        StringViewer::default()
    }

    /// Everything viewed so far.
    pub fn contents(&self) -> Vec<String> {
        self.seen.read().clone()
    }
}

impl Tool for StringViewer {
    fn name(&self) -> &str {
        "StringViewer"
    }

    fn input_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new("text", "string")]
    }

    fn output_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new("text", "string")]
    }

    fn execute(&self, inputs: &[Token]) -> std::result::Result<Vec<Token>, String> {
        let text = match &inputs[0] {
            Token::Text(s) => s.clone(),
            other => format!("{other:?}"),
        };
        self.seen.write().push(text.clone());
        Ok(vec![Token::Text(text)])
    }
}

/// Concatenates two strings.
pub struct StringConcat;

impl Tool for StringConcat {
    fn name(&self) -> &str {
        "StringConcat"
    }

    fn input_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new("a", "string"), PortSpec::new("b", "string")]
    }

    fn output_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new("ab", "string")]
    }

    fn execute(&self, inputs: &[Token]) -> std::result::Result<Vec<Token>, String> {
        match (&inputs[0], &inputs[1]) {
            (Token::Text(a), Token::Text(b)) => Ok(vec![Token::Text(format!("{a}{b}"))]),
            _ => Err("StringConcat expects two strings".into()),
        }
    }
}

/// Uppercases a string.
pub struct ToUpperCase;

impl Tool for ToUpperCase {
    fn name(&self) -> &str {
        "ToUpperCase"
    }

    fn input_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new("text", "string")]
    }

    fn output_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new("upper", "string")]
    }

    fn execute(&self, inputs: &[Token]) -> std::result::Result<Vec<Token>, String> {
        match &inputs[0] {
            Token::Text(s) => Ok(vec![Token::Text(s.to_uppercase())]),
            _ => Err("ToUpperCase expects a string".into()),
        }
    }
}

/// Counts the lines of a string.
pub struct LineCount;

impl Tool for LineCount {
    fn name(&self) -> &str {
        "LineCount"
    }

    fn input_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new("text", "string")]
    }

    fn output_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new("lines", "long")]
    }

    fn execute(&self, inputs: &[Token]) -> std::result::Result<Vec<Token>, String> {
        match &inputs[0] {
            Token::Text(s) => Ok(vec![Token::Int(s.lines().count() as i64)]),
            _ => Err("LineCount expects a string".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_folder_populated() {
        let tb = Toolbox::with_common_tools();
        assert_eq!(tb.folders(), vec!["Common".to_string()]);
        let tools = tb.tools_in("Common");
        assert!(tools.contains(&"StringGen".to_string()));
        assert!(tools.contains(&"StringViewer".to_string()));
        assert_eq!(tb.len(), 5);
        assert!(!tb.is_empty());
    }

    #[test]
    fn find_and_missing() {
        let tb = Toolbox::with_common_tools();
        assert!(tb.find("StringConcat").is_ok());
        assert!(matches!(
            tb.find("Nope"),
            Err(WorkflowError::UnknownTool(_))
        ));
    }

    #[test]
    fn render_shows_folders_and_tools() {
        let tb = Toolbox::with_common_tools();
        let text = tb.render();
        assert!(text.starts_with("Common/\n"));
        assert!(text.contains("  LineCount\n"));
    }

    #[test]
    fn viewer_collects() {
        let v = StringViewer::new();
        v.execute(&[Token::Text("one".into())]).unwrap();
        v.execute(&[Token::Text("two".into())]).unwrap();
        assert_eq!(v.contents(), vec!["one".to_string(), "two".to_string()]);
    }

    #[test]
    fn line_count_counts() {
        let out = LineCount.execute(&[Token::Text("a\nb\nc".into())]).unwrap();
        assert_eq!(out, vec![Token::Int(3)]);
        assert!(LineCount.execute(&[Token::Int(1)]).is_err());
    }

    #[test]
    fn empty_folder_queries() {
        let tb = Toolbox::new();
        assert!(tb.tools_in("Nope").is_empty());
        assert!(tb.is_empty());
    }
}
