//! The dataflow graph: tasks host [`Tool`]s, cables connect output
//! nodes to input nodes ("the connection between tasks is made by
//! dragging a cable from the output node … of the sending task to the
//! input node … of the receiving task", §4).

use crate::error::{Result, WorkflowError};
use std::sync::Arc;

/// Data flowing through cables. The engine reuses the SOAP value type
/// so imported Web Service tools and local tools exchange tokens
/// without conversion.
pub type Token = dm_wsrf::soap::SoapValue;

/// A typed port: name plus a type tag (`"string"`, `"long"`, `"double"`,
/// `"boolean"`, `"base64Binary"`, `"list"`, or `"any"`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortSpec {
    /// Port name.
    pub name: String,
    /// Type tag. `"any"` is compatible with everything.
    pub type_name: String,
}

impl PortSpec {
    /// Create a port spec.
    pub fn new<N: Into<String>, T: Into<String>>(name: N, type_name: T) -> PortSpec {
        PortSpec {
            name: name.into(),
            type_name: type_name.into(),
        }
    }

    /// `true` if a value of `self`'s type may flow into `other`.
    pub fn compatible_with(&self, other: &PortSpec) -> bool {
        self.type_name == "any" || other.type_name == "any" || self.type_name == other.type_name
    }
}

/// A unit of computation placeable on the workspace.
pub trait Tool: Send + Sync {
    /// Tool name, e.g. `"CSVToARFF"` or `"Classifier.classifyInstance"`.
    fn name(&self) -> &str;

    /// Toolbox folder, e.g. `"Common"` or `"DataMining.Classifiers"`.
    fn package(&self) -> &str {
        "Common"
    }

    /// Input ports, in order.
    fn input_ports(&self) -> Vec<PortSpec>;

    /// Output ports, in order.
    fn output_ports(&self) -> Vec<PortSpec>;

    /// Execute with one token per input port; must return one token per
    /// output port.
    fn execute(&self, inputs: &[Token]) -> std::result::Result<Vec<Token>, String>;

    /// `true` when the tool is a pure function of its input tokens: no
    /// side effects, and identical inputs always produce identical
    /// outputs. Pure tasks are eligible for memoised enactment
    /// ([`crate::memo::MemoCache`]). Defaults to `false` — impure until
    /// proven otherwise.
    fn is_pure(&self) -> bool {
        false
    }

    /// Identity string mixed into memo keys alongside the input
    /// fingerprints. Tools whose behaviour depends on configuration
    /// (selected algorithm, option strings, …) must embed that
    /// configuration here, or differently-configured instances sharing
    /// a name would collide in the cache. Defaults to [`Tool::name`].
    fn memo_identity(&self) -> String {
        self.name().to_string()
    }

    /// `ServerBusy` sheds absorbed (by retries or failover) during this
    /// tool's most recent [`Tool::execute`]. Local tools never touch
    /// the network and report 0; [`crate::wsimport::WsTool`] reports the
    /// busy-attempt count of its last call so the executor can surface
    /// overload pressure in [`crate::engine::ExecutionReport`].
    fn last_call_sheds(&self) -> u64 {
        0
    }
}

/// Task identifier within a [`TaskGraph`].
pub type TaskId = usize;

/// A placed task: a tool instance with a display name.
#[derive(Clone)]
pub struct TaskNode {
    /// Display name (unique within the graph; defaults to the tool name
    /// plus a counter).
    pub name: String,
    /// The tool implementation.
    pub tool: Arc<dyn Tool>,
}

/// A cable from an output node to an input node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cable {
    /// Producing task.
    pub from_task: TaskId,
    /// Output port index on the producing task.
    pub from_port: usize,
    /// Consuming task.
    pub to_task: TaskId,
    /// Input port index on the consuming task.
    pub to_port: usize,
}

/// The workflow graph.
#[derive(Clone, Default)]
pub struct TaskGraph {
    tasks: Vec<TaskNode>,
    cables: Vec<Cable>,
}

impl TaskGraph {
    /// Create an empty graph.
    pub fn new() -> TaskGraph {
        TaskGraph::default()
    }

    /// Place a tool on the workspace; returns the new task's id.
    pub fn add_task(&mut self, tool: Arc<dyn Tool>) -> TaskId {
        let base = tool.name().to_string();
        let count = self.tasks.iter().filter(|t| t.tool.name() == base).count();
        let name = if count == 0 {
            base
        } else {
            format!("{base}-{}", count + 1)
        };
        self.tasks.push(TaskNode { name, tool });
        self.tasks.len() - 1
    }

    /// Place a tool with an explicit display name.
    pub fn add_named_task<N: Into<String>>(&mut self, name: N, tool: Arc<dyn Tool>) -> TaskId {
        self.tasks.push(TaskNode {
            name: name.into(),
            tool,
        });
        self.tasks.len() - 1
    }

    /// Number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Borrow a task.
    pub fn task(&self, id: TaskId) -> Result<&TaskNode> {
        self.tasks.get(id).ok_or(WorkflowError::UnknownTask(id))
    }

    /// All tasks in placement order.
    pub fn tasks(&self) -> &[TaskNode] {
        &self.tasks
    }

    /// All cables.
    pub fn cables(&self) -> &[Cable] {
        &self.cables
    }

    /// A structural fingerprint of the graph: task names, tool names,
    /// port counts, and the cable list, hashed in placement order. Two
    /// graphs built the same way fingerprint identically; adding,
    /// renaming, or rewiring a task changes the value. The durable
    /// enactment journal ([`crate::journal`]) stamps this into its
    /// run-started record so a resume against a *different* workflow is
    /// rejected instead of replaying nonsense.
    pub fn structure_fingerprint(&self) -> u128 {
        let mut h = dm_wsrf::dataplane::Hasher128::new();
        h.write(&(self.tasks.len() as u64).to_le_bytes());
        for t in &self.tasks {
            h.write(&(t.name.len() as u64).to_le_bytes());
            h.write(t.name.as_bytes());
            let tool = t.tool.name();
            h.write(&(tool.len() as u64).to_le_bytes());
            h.write(tool.as_bytes());
            h.write_u8(t.tool.input_ports().len() as u8);
            h.write_u8(t.tool.output_ports().len() as u8);
        }
        for c in &self.cables {
            for v in [c.from_task, c.from_port, c.to_task, c.to_port] {
                h.write(&(v as u64).to_le_bytes());
            }
        }
        h.finish()
    }

    /// Wire `from_task.out[from_port]` → `to_task.in[to_port]`,
    /// validating ids, port ranges, type compatibility, single-writer
    /// inputs, and acyclicity.
    pub fn connect(
        &mut self,
        from_task: TaskId,
        from_port: usize,
        to_task: TaskId,
        to_port: usize,
    ) -> Result<()> {
        let from = self.task(from_task)?;
        let to = self.task(to_task)?;
        let out_ports = from.tool.output_ports();
        let in_ports = to.tool.input_ports();
        let out_spec = out_ports.get(from_port).ok_or(WorkflowError::UnknownPort {
            task: from_task,
            port: from_port,
            input: false,
        })?;
        let in_spec = in_ports.get(to_port).ok_or(WorkflowError::UnknownPort {
            task: to_task,
            port: to_port,
            input: true,
        })?;
        if !out_spec.compatible_with(in_spec) {
            return Err(WorkflowError::TypeMismatch {
                from: out_spec.type_name.clone(),
                to: in_spec.type_name.clone(),
            });
        }
        if self
            .cables
            .iter()
            .any(|c| c.to_task == to_task && c.to_port == to_port)
        {
            return Err(WorkflowError::PortAlreadyConnected {
                task: to_task,
                port: to_port,
            });
        }
        let cable = Cable {
            from_task,
            from_port,
            to_task,
            to_port,
        };
        self.cables.push(cable);
        if self.topological_order().is_err() {
            self.cables.pop();
            return Err(WorkflowError::Cycle);
        }
        Ok(())
    }

    /// Kahn topological sort; `Err(Cycle)` if the graph is cyclic.
    pub fn topological_order(&self) -> Result<Vec<TaskId>> {
        let n = self.tasks.len();
        let mut indegree = vec![0usize; n];
        for c in &self.cables {
            indegree[c.to_task] += 1;
        }
        let mut queue: Vec<TaskId> = (0..n).filter(|&t| indegree[t] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(t) = queue.pop() {
            order.push(t);
            for c in &self.cables {
                if c.from_task == t {
                    indegree[c.to_task] -= 1;
                    if indegree[c.to_task] == 0 {
                        queue.push(c.to_task);
                    }
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(WorkflowError::Cycle)
        }
    }

    /// Input ports of `task` with no incoming cable, as
    /// `(port_index, spec)` pairs — these must be bound before running.
    pub fn unconnected_inputs(&self, task: TaskId) -> Result<Vec<(usize, PortSpec)>> {
        let node = self.task(task)?;
        Ok(node
            .tool
            .input_ports()
            .into_iter()
            .enumerate()
            .filter(|(p, _)| {
                !self
                    .cables
                    .iter()
                    .any(|c| c.to_task == task && c.to_port == *p)
            })
            .collect())
    }

    /// Output ports of `task` with no outgoing cable — workflow results.
    pub fn unconnected_outputs(&self, task: TaskId) -> Result<Vec<(usize, PortSpec)>> {
        let node = self.task(task)?;
        Ok(node
            .tool
            .output_ports()
            .into_iter()
            .enumerate()
            .filter(|(p, _)| {
                !self
                    .cables
                    .iter()
                    .any(|c| c.from_task == task && c.from_port == *p)
            })
            .collect())
    }

    /// Task lookup by display name.
    pub fn find_task(&self, name: &str) -> Option<TaskId> {
        self.tasks.iter().position(|t| t.name == name)
    }

    /// Render the workflow as layered text — the "directed graphs to
    /// visualize the state of the application" requirement (§3), usable
    /// on a terminal:
    ///
    /// ```text
    /// layer 0: [0] StringGen
    /// layer 1: [1] ToUpperCase
    ///   [0] StringGen.value -> [1] ToUpperCase.text
    /// ```
    pub fn render_text(&self) -> String {
        // Longest-path layering.
        let n = self.tasks.len();
        let mut layer = vec![0usize; n];
        if let Ok(order) = self.topological_order() {
            for &t in &order {
                for c in &self.cables {
                    if c.from_task == t {
                        layer[c.to_task] = layer[c.to_task].max(layer[t] + 1);
                    }
                }
            }
        }
        let max_layer = layer.iter().copied().max().unwrap_or(0);
        let mut out = String::new();
        for l in 0..=max_layer {
            let members: Vec<String> = (0..n)
                .filter(|&t| layer[t] == l)
                .map(|t| format!("[{t}] {}", self.tasks[t].name))
                .collect();
            if !members.is_empty() {
                out.push_str(&format!("layer {l}: {}\n", members.join(", ")));
            }
        }
        for c in &self.cables {
            let from = &self.tasks[c.from_task];
            let to = &self.tasks[c.to_task];
            let out_port = from
                .tool
                .output_ports()
                .get(c.from_port)
                .map(|p| p.name.clone())
                .unwrap_or_else(|| c.from_port.to_string());
            let in_port = to
                .tool
                .input_ports()
                .get(c.to_port)
                .map(|p| p.name.clone())
                .unwrap_or_else(|| c.to_port.to_string());
            out.push_str(&format!(
                "  [{}] {}.{out_port} -> [{}] {}.{in_port}\n",
                c.from_task, from.name, c.to_task, to.name
            ));
        }
        out
    }
}

#[cfg(test)]
pub(crate) mod test_tools {
    use super::*;

    /// Emits a configured constant string.
    pub struct ConstText(pub String);

    impl Tool for ConstText {
        fn name(&self) -> &str {
            "ConstText"
        }

        fn input_ports(&self) -> Vec<PortSpec> {
            vec![]
        }

        fn output_ports(&self) -> Vec<PortSpec> {
            vec![PortSpec::new("value", "string")]
        }

        fn execute(&self, _inputs: &[Token]) -> std::result::Result<Vec<Token>, String> {
            Ok(vec![Token::Text(self.0.clone())])
        }
    }

    /// Uppercases a string.
    pub struct Upper;

    impl Tool for Upper {
        fn name(&self) -> &str {
            "Upper"
        }

        fn input_ports(&self) -> Vec<PortSpec> {
            vec![PortSpec::new("text", "string")]
        }

        fn output_ports(&self) -> Vec<PortSpec> {
            vec![PortSpec::new("upper", "string")]
        }

        fn execute(&self, inputs: &[Token]) -> std::result::Result<Vec<Token>, String> {
            match &inputs[0] {
                Token::Text(s) => Ok(vec![Token::Text(s.to_uppercase())]),
                _ => Err("expected text".into()),
            }
        }
    }

    /// Concatenates two strings.
    pub struct Concat;

    impl Tool for Concat {
        fn name(&self) -> &str {
            "Concat"
        }

        fn input_ports(&self) -> Vec<PortSpec> {
            vec![PortSpec::new("a", "string"), PortSpec::new("b", "string")]
        }

        fn output_ports(&self) -> Vec<PortSpec> {
            vec![PortSpec::new("ab", "string")]
        }

        fn execute(&self, inputs: &[Token]) -> std::result::Result<Vec<Token>, String> {
            match (&inputs[0], &inputs[1]) {
                (Token::Text(a), Token::Text(b)) => Ok(vec![Token::Text(format!("{a}{b}"))]),
                _ => Err("expected two texts".into()),
            }
        }
    }

    /// Emits an integer output (for type-mismatch tests).
    pub struct ConstInt(pub i64);

    impl Tool for ConstInt {
        fn name(&self) -> &str {
            "ConstInt"
        }

        fn input_ports(&self) -> Vec<PortSpec> {
            vec![]
        }

        fn output_ports(&self) -> Vec<PortSpec> {
            vec![PortSpec::new("value", "long")]
        }

        fn execute(&self, _inputs: &[Token]) -> std::result::Result<Vec<Token>, String> {
            Ok(vec![Token::Int(self.0)])
        }
    }

    /// Fails the first `n` executions, then echoes its input.
    pub struct Flaky {
        pub remaining: std::sync::atomic::AtomicUsize,
    }

    impl Flaky {
        pub fn failing(n: usize) -> Flaky {
            Flaky {
                remaining: std::sync::atomic::AtomicUsize::new(n),
            }
        }
    }

    impl Tool for Flaky {
        fn name(&self) -> &str {
            "Flaky"
        }

        fn input_ports(&self) -> Vec<PortSpec> {
            vec![PortSpec::new("in", "any")]
        }

        fn output_ports(&self) -> Vec<PortSpec> {
            vec![PortSpec::new("out", "any")]
        }

        fn execute(&self, inputs: &[Token]) -> std::result::Result<Vec<Token>, String> {
            use std::sync::atomic::Ordering;
            let left = self.remaining.load(Ordering::SeqCst);
            if left > 0 {
                self.remaining.store(left - 1, Ordering::SeqCst);
                Err("transient failure".into())
            } else {
                Ok(vec![inputs[0].clone()])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_tools::*;
    use super::*;

    #[test]
    fn build_and_validate_pipeline() {
        let mut g = TaskGraph::new();
        let src = g.add_task(Arc::new(ConstText("hello".into())));
        let up = g.add_task(Arc::new(Upper));
        g.connect(src, 0, up, 0).unwrap();
        assert_eq!(g.num_tasks(), 2);
        assert_eq!(g.cables().len(), 1);
        let order = g.topological_order().unwrap();
        assert!(order.iter().position(|&t| t == src) < order.iter().position(|&t| t == up));
    }

    #[test]
    fn duplicate_names_get_suffixes() {
        let mut g = TaskGraph::new();
        g.add_task(Arc::new(Upper));
        let second = g.add_task(Arc::new(Upper));
        assert_eq!(g.task(second).unwrap().name, "Upper-2");
        assert_eq!(g.find_task("Upper"), Some(0));
        assert_eq!(g.find_task("Upper-2"), Some(1));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut g = TaskGraph::new();
        let n = g.add_task(Arc::new(ConstInt(3)));
        let up = g.add_task(Arc::new(Upper));
        assert!(matches!(
            g.connect(n, 0, up, 0),
            Err(WorkflowError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn double_connection_rejected() {
        let mut g = TaskGraph::new();
        let a = g.add_task(Arc::new(ConstText("a".into())));
        let b = g.add_task(Arc::new(ConstText("b".into())));
        let up = g.add_task(Arc::new(Upper));
        g.connect(a, 0, up, 0).unwrap();
        assert!(matches!(
            g.connect(b, 0, up, 0),
            Err(WorkflowError::PortAlreadyConnected { .. })
        ));
    }

    #[test]
    fn cycles_rejected() {
        let mut g = TaskGraph::new();
        let a = g.add_task(Arc::new(Upper));
        let b = g.add_task(Arc::new(Upper));
        g.connect(a, 0, b, 0).unwrap();
        assert!(matches!(g.connect(b, 0, a, 0), Err(WorkflowError::Cycle)));
        // The failed cable must have been rolled back.
        assert_eq!(g.cables().len(), 1);
    }

    #[test]
    fn bad_ids_and_ports_rejected() {
        let mut g = TaskGraph::new();
        let a = g.add_task(Arc::new(ConstText("x".into())));
        assert!(matches!(
            g.connect(a, 0, 99, 0),
            Err(WorkflowError::UnknownTask(99))
        ));
        let up = g.add_task(Arc::new(Upper));
        assert!(matches!(
            g.connect(a, 5, up, 0),
            Err(WorkflowError::UnknownPort { input: false, .. })
        ));
        assert!(matches!(
            g.connect(a, 0, up, 5),
            Err(WorkflowError::UnknownPort { input: true, .. })
        ));
    }

    #[test]
    fn unconnected_port_queries() {
        let mut g = TaskGraph::new();
        let a = g.add_task(Arc::new(ConstText("x".into())));
        let cat = g.add_task(Arc::new(Concat));
        g.connect(a, 0, cat, 0).unwrap();
        let inputs = g.unconnected_inputs(cat).unwrap();
        assert_eq!(inputs.len(), 1);
        assert_eq!(inputs[0].1.name, "b");
        let outputs = g.unconnected_outputs(cat).unwrap();
        assert_eq!(outputs.len(), 1);
    }

    #[test]
    fn render_text_layers_and_cables() {
        let mut g = TaskGraph::new();
        let src = g.add_task(Arc::new(ConstText("x".into())));
        let up = g.add_task(Arc::new(Upper));
        let cat = g.add_task(Arc::new(Concat));
        g.connect(src, 0, up, 0).unwrap();
        g.connect(up, 0, cat, 0).unwrap();
        g.connect(src, 0, cat, 1).unwrap();
        let text = g.render_text();
        assert!(text.contains("layer 0: [0] ConstText"));
        assert!(text.contains("layer 1: [1] Upper"));
        assert!(text.contains("layer 2: [2] Concat"));
        assert!(text.contains("[1] Upper.upper -> [2] Concat.a"));
    }

    #[test]
    fn any_type_is_universal() {
        let any = PortSpec::new("x", "any");
        let s = PortSpec::new("y", "string");
        assert!(any.compatible_with(&s));
        assert!(s.compatible_with(&any));
        assert!(!s.compatible_with(&PortSpec::new("z", "long")));
    }
}
