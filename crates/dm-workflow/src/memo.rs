//! Memoised enactment: a cache of pure-task results keyed by the
//! tool's identity and the content fingerprints of its input tokens.
//!
//! Re-enacting a workflow whose inputs have not changed is a common
//! pattern in exploratory data mining ("run the case study again with
//! one parameter tweaked"); tasks declared pure ([`Tool::is_pure`])
//! can skip execution entirely when the cache already holds their
//! outputs for the same inputs. Combined with the pass-by-reference
//! data plane ([`dm_wsrf::dataplane`]) this is what makes warm re-runs
//! move almost no wire bytes.

use crate::graph::{Token, Tool};
use dm_wsrf::dataplane::{fingerprint, CacheStats, Hasher128, LruMap};

/// Default entry capacity for a [`MemoCache`].
pub const DEFAULT_MEMO_CAPACITY: usize = 1024;

/// Compute the memo key for a tool identity and a set of input tokens.
///
/// The key mixes the identity string (length-prefixed, so `"ab" + "c"`
/// and `"a" + "bc"` differ) with the structural
/// [`fingerprint`] of every input token, in port order.
pub fn memo_key(identity: &str, inputs: &[Token]) -> u128 {
    let mut h = Hasher128::new();
    h.write(&(identity.len() as u64).to_le_bytes());
    h.write(identity.as_bytes());
    for token in inputs {
        h.write(&fingerprint(token).to_le_bytes());
    }
    h.finish()
}

/// An entry-bounded LRU cache of pure-task outputs, shared across
/// executors and runs (wrap it in an `Arc` and hand it to
/// [`crate::engine::Executor::with_memoisation`]).
#[derive(Debug)]
pub struct MemoCache {
    entries: LruMap<u128, Vec<Token>>,
}

impl Default for MemoCache {
    fn default() -> MemoCache {
        MemoCache::new(DEFAULT_MEMO_CAPACITY)
    }
}

impl MemoCache {
    /// Create a cache holding at most `capacity` task results.
    pub fn new(capacity: usize) -> MemoCache {
        MemoCache {
            entries: LruMap::new(capacity),
        }
    }

    /// Key derivation for `tool` applied to `inputs`; `None` when the
    /// tool is not pure (impure tasks are never memoised).
    pub fn key_for(&self, tool: &dyn Tool, inputs: &[Token]) -> Option<u128> {
        if tool.is_pure() {
            Some(memo_key(&tool.memo_identity(), inputs))
        } else {
            None
        }
    }

    /// Look up cached outputs (counts a hit or miss).
    pub fn get(&self, key: u128) -> Option<Vec<Token>> {
        self.entries.get(&key)
    }

    /// Store the outputs of a successful pure-task execution.
    pub fn insert(&self, key: u128, outputs: Vec<Token>) {
        self.entries.insert(key, outputs);
    }

    /// Re-seed the cache with a known result for `tool` applied to
    /// `inputs`, without executing the tool. Used by durable replay
    /// ([`crate::durable`]) to restore memo entries a dead process had
    /// built, so memo hits survive crash recovery. Returns `false`
    /// (and stores nothing) for impure tools.
    pub fn populate(&self, tool: &dyn Tool, inputs: &[Token], outputs: Vec<Token>) -> bool {
        match self.key_for(tool, inputs) {
            Some(key) => {
                self.entries.insert(key, outputs);
                true
            }
            None => false,
        }
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counter snapshot (lookups, hits, misses, insertions, evictions).
    pub fn stats(&self) -> CacheStats {
        self.entries.stats()
    }

    /// Drop all cached results (counters survive).
    pub fn clear(&self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_separate_identity_and_inputs() {
        let a = memo_key("tool-a", &[Token::Text("x".into())]);
        let b = memo_key("tool-b", &[Token::Text("x".into())]);
        let c = memo_key("tool-a", &[Token::Text("y".into())]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Length prefix keeps identity bytes from bleeding into input
        // fingerprints.
        let d = memo_key("ab", &[]);
        let e = memo_key("a", &[Token::Text("b".into())]);
        assert_ne!(d, e);
        // Deterministic.
        assert_eq!(a, memo_key("tool-a", &[Token::Text("x".into())]));
    }

    #[test]
    fn cache_round_trip_and_counters() {
        let cache = MemoCache::new(8);
        let key = memo_key("t", &[Token::Int(1)]);
        assert!(cache.get(key).is_none());
        cache.insert(key, vec![Token::Int(2)]);
        assert_eq!(cache.get(key), Some(vec![Token::Int(2)]));
        let stats = cache.stats();
        assert_eq!(stats.lookups, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits + stats.misses, stats.lookups);
    }

    #[test]
    fn capacity_bounds_entries() {
        let cache = MemoCache::new(2);
        for i in 0..5 {
            cache.insert(memo_key("t", &[Token::Int(i)]), vec![Token::Int(i)]);
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 3);
    }
}
