//! Durable enactment: an orchestrator / worker-pool split over the
//! run journal, with crash injection and resume-from-log recovery.
//!
//! The engine's in-memory modes ([`Executor::run`]) lose the whole run
//! when the enacting process dies — unacceptable for the paper's
//! long-running distributed mining jobs. Durable mode splits the
//! engine in two:
//!
//! * the **orchestrator** (the calling thread) owns the graph logic:
//!   it replays the [`RunJournal`] to reconstruct the remaining-work
//!   frontier (completed tasks are restored, **not** re-executed;
//!   failed tasks block only their downstream cone, independent
//!   branches continue), dispatches ready tasks to the worker pool
//!   with claim/ack job-queue semantics, and is the only writer of the
//!   journal;
//! * the **workers** (scoped threads) execute tools via the engine's
//!   retry machinery and report each claim's outcome. A worker that
//!   dies mid-claim never acks, and the orchestrator redelivers the
//!   task under a fresh claim — at-least-once execution, exactly-once
//!   recording.
//!
//! Crash injection wires into the fault engine
//! ([`dm_wsrf::resilience::CrashScript`]): scripted orchestrator
//! kill-points (by virtual-clock instant or by journal-append count,
//! so tests can kill the enactment at *every* task boundary and
//! mid-task) and scripted worker deaths. A killed orchestrator returns
//! [`WorkflowError::Crashed`]; everything appended before the kill is
//! durable, and a fresh `Executor` given the surviving journal bytes
//! resumes to a report whose
//! [`canonical bytes`](ExecutionReport::canonical_bytes) are identical
//! to an uninterrupted run's.

use crate::engine::{ExecutionReport, Executor, ProgressEvent, TaskRun};
use crate::error::{Result, WorkflowError};
use crate::graph::{TaskGraph, TaskId, Token};
use crate::journal::{RunEvent, RunJournal};
use dm_wsrf::resilience::CrashScript;
use dm_wsrf::trace::SpanKind;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sentinel task id telling a worker to exit.
const POISON: TaskId = usize::MAX;

/// Configuration for one durable enactment: the journal to append to
/// (and resume from), the worker-pool width, and optional scripted
/// crashes for fault-injection tests.
#[derive(Clone)]
pub struct DurableConfig {
    journal: Arc<RunJournal>,
    workers: usize,
    orchestrator_crash: Option<Arc<CrashScript>>,
    kill_after_appends: Option<u64>,
    worker_crash: Option<Arc<CrashScript>>,
    kill_worker_on_claim: Option<u64>,
}

impl std::fmt::Debug for DurableConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableConfig")
            .field("journal", &self.journal)
            .field("workers", &self.workers)
            .field("orchestrator_crash", &self.orchestrator_crash.is_some())
            .field("kill_after_appends", &self.kill_after_appends)
            .field("worker_crash", &self.worker_crash.is_some())
            .field("kill_worker_on_claim", &self.kill_worker_on_claim)
            .finish()
    }
}

impl DurableConfig {
    /// Durable enactment appending to (and resuming from) `journal`,
    /// with a default pool of 4 workers and no scripted crashes.
    pub fn new(journal: Arc<RunJournal>) -> DurableConfig {
        DurableConfig {
            journal,
            workers: 4,
            orchestrator_crash: None,
            kill_after_appends: None,
            worker_crash: None,
            kill_worker_on_claim: None,
        }
    }

    /// Builder: use `workers` pool threads (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> DurableConfig {
        self.workers = workers.max(1);
        self
    }

    /// Builder: kill the orchestrator when `script` schedules a crash
    /// on the virtual clock (polled at each task acknowledgement).
    pub fn with_orchestrator_crash(mut self, script: Arc<CrashScript>) -> DurableConfig {
        self.orchestrator_crash = Some(script);
        self
    }

    /// Builder: kill the orchestrator immediately after its `n`-th
    /// journal append in this process — the boundary-exhaustive kill
    /// point (append 1 is the run-started record; task-started appends
    /// land mid-task, before the matching completion).
    pub fn with_kill_after_appends(mut self, n: u64) -> DurableConfig {
        self.kill_after_appends = Some(n);
        self
    }

    /// Builder: workers die (discard their finished claim without
    /// acking) when `script` schedules a crash on the virtual clock.
    pub fn with_worker_crash(mut self, script: Arc<CrashScript>) -> DurableConfig {
        self.worker_crash = Some(script);
        self
    }

    /// Builder: the worker executing claim number `claim` (claims are
    /// numbered from 1 in dispatch order) dies instead of acking it —
    /// a deterministic single worker death.
    pub fn with_kill_worker_on_claim(mut self, claim: u64) -> DurableConfig {
        self.kill_worker_on_claim = Some(claim);
        self
    }

    /// The journal this enactment appends to.
    pub fn journal(&self) -> &Arc<RunJournal> {
        &self.journal
    }

    /// The configured worker-pool width.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

/// A dispatched claim: the job queue carries `(claim, task)` and the
/// orchestrator only trusts outcomes whose claim is still current.
struct Job {
    claim: u64,
    task: TaskId,
}

/// What a worker did with a claim.
enum Outcome {
    /// The claim is acked: the task ran to a terminal result.
    Finished {
        result: std::result::Result<Vec<Token>, String>,
        run: TaskRun,
        events: Vec<ProgressEvent>,
        tick: Duration,
    },
    /// The worker died mid-claim (scripted): no ack, results discarded.
    Died,
}

struct Done {
    claim: u64,
    task: TaskId,
    outcome: Outcome,
}

/// Orchestrator-side task lifecycle.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    Completed,
    Failed,
    Blocked,
}

/// The orchestrator's journal writer: counts this-process appends and
/// enforces the append-count kill point.
struct Appender<'a> {
    journal: &'a RunJournal,
    appended: u64,
    kill_after: Option<u64>,
}

impl Appender<'_> {
    fn append(&mut self, event: &RunEvent) -> Result<()> {
        self.journal.append(event);
        self.appended += 1;
        if self.kill_after == Some(self.appended) {
            return Err(WorkflowError::Crashed {
                appended: self.appended,
            });
        }
        Ok(())
    }
}

#[allow(clippy::too_many_arguments)]
fn dispatch(
    appender: &mut Appender<'_>,
    claims: &mut HashMap<TaskId, u64>,
    next_claim: &mut u64,
    job_tx: &crossbeam::channel::Sender<Job>,
    in_flight: &mut usize,
    graph: &TaskGraph,
    task: TaskId,
) -> Result<()> {
    // Journal the dispatch first: a crash between this append and the
    // task's completion record is the mid-task kill point — on resume
    // the started-but-never-completed task is simply re-executed.
    appender.append(&RunEvent::TaskStarted {
        task,
        name: graph.task(task)?.name.clone(),
    })?;
    let claim = *next_claim;
    *next_claim += 1;
    claims.insert(task, claim);
    let _ = job_tx.send(Job { claim, task });
    *in_flight += 1;
    Ok(())
}

/// Mark every not-yet-resolved descendant of `task` blocked: a failed
/// node poisons only its downstream cone; independent branches keep
/// running.
fn block_cone(graph: &TaskGraph, status: &mut [Status], task: TaskId) {
    let mut queue = vec![task];
    while let Some(t) = queue.pop() {
        for c in graph.cables() {
            if c.from_task == t && status[c.to_task] == Status::Runnable {
                status[c.to_task] = Status::Blocked;
                queue.push(c.to_task);
            }
        }
    }
}

impl Executor {
    /// Enact `graph` durably: journal every state transition to
    /// `config.journal()`, executing on a claim/ack worker pool. If the
    /// journal already holds a prefix of this workflow's history, the
    /// enactment **resumes**: completed tasks are restored from the log
    /// (zero re-execution, counted as replay hits), failed tasks stay
    /// terminal with their downstream cones blocked, and only the
    /// remaining frontier runs.
    ///
    /// Unlike [`Executor::run`], task failure is not fatal to the
    /// enactment: the run continues on independent branches and the
    /// returned report carries per-task errors ([`TaskRun::error`]).
    /// The report's event stream and run order are deterministic (as
    /// with [`Executor::with_deterministic_events`]).
    ///
    /// Returns [`WorkflowError::Crashed`] when a scripted crash kills
    /// the orchestrator (the journal keeps everything appended before
    /// the kill), and [`WorkflowError::JournalMismatch`] when the
    /// journal belongs to a different workflow.
    pub fn run_durable(
        &self,
        graph: &TaskGraph,
        bindings: &HashMap<(TaskId, usize), Token>,
        config: &DurableConfig,
    ) -> Result<ExecutionReport> {
        // Validate that every input is fed, exactly as `run` does.
        for t in 0..graph.num_tasks() {
            for (port, spec) in graph.unconnected_inputs(t)? {
                if !bindings.contains_key(&(t, port)) {
                    return Err(WorkflowError::UnboundInput {
                        task: graph.task(t)?.name.clone(),
                        port: spec.name,
                    });
                }
            }
        }
        let order = graph.topological_order()?;
        let n = graph.num_tasks();
        let fingerprint = graph.structure_fingerprint();
        let journal = config.journal.as_ref();

        // Replay: reconstruct the frontier from the journal.
        let replay = journal.replay();
        if let Some((_, journal_fp)) = replay.started {
            if journal_fp != fingerprint {
                return Err(WorkflowError::JournalMismatch {
                    journal: journal_fp,
                    graph: fingerprint,
                });
            }
        }
        journal.note_replay_hits(replay.completed.len() as u64);

        let start = Instant::now();
        let vstart = self.virtual_now();
        self.emit(ProgressEvent::RunStarted { tasks: n });
        let mut root_span = self.tracer.as_ref().map(|t| {
            let mut span = t.start_span("durable-workflow", SpanKind::Workflow, None);
            span.set_attr("tasks", n.to_string());
            span.set_attr("replayed", replay.completed.len().to_string());
            span
        });
        let root = root_span.as_ref().map(|s| s.ctx());

        let mut appender = Appender {
            journal,
            appended: 0,
            kill_after: config.kill_after_appends,
        };
        let crash_check = |appender: &Appender<'_>| -> Result<()> {
            if let Some(script) = &config.orchestrator_crash {
                if script.poll_kill(self.virtual_now()) {
                    return Err(WorkflowError::Crashed {
                        appended: appender.appended,
                    });
                }
            }
            Ok(())
        };

        // Restore produced tokens from replayed completions.
        let mut produced_map: HashMap<(TaskId, usize), Token> = HashMap::new();
        for (&task, replayed) in &replay.completed {
            for (port, token) in replayed.outputs.iter().enumerate() {
                produced_map.insert((task, port), token.clone());
            }
        }
        // Repopulate the memo cache from replayed pure tasks, in
        // topological order, so memo hits survive recovery: re-executed
        // downstream work (and future warm runs) still find them.
        if let Some(memo) = &self.memo {
            for &task in &order {
                let Some(replayed) = replay.completed.get(&task) else {
                    continue;
                };
                let inputs_ready = graph
                    .cables()
                    .iter()
                    .filter(|c| c.to_task == task)
                    .all(|c| replay.completed.contains_key(&c.from_task));
                if inputs_ready {
                    let inputs = Self::gather_inputs(graph, task, bindings, &produced_map);
                    memo.populate(
                        graph.task(task)?.tool.as_ref(),
                        &inputs,
                        replayed.outputs.clone(),
                    );
                }
            }
        }

        // Frontier: completed tasks are done, journaled failures stay
        // terminal and block their cones, the rest is runnable.
        let mut status = vec![Status::Runnable; n];
        for &task in replay.completed.keys() {
            status[task] = Status::Completed;
        }
        for &task in replay.failed.keys() {
            status[task] = Status::Failed;
        }
        for &task in replay.failed.keys() {
            block_cone(graph, &mut status, task);
        }
        let mut indegree = vec![0usize; n];
        for c in graph.cables() {
            if status[c.to_task] == Status::Runnable && status[c.from_task] != Status::Completed {
                indegree[c.to_task] += 1;
            }
        }

        if replay.started.is_none() {
            appender.append(&RunEvent::RunStarted {
                tasks: n,
                fingerprint,
            })?;
        }

        let produced = Mutex::new(produced_map);
        let budget = Mutex::new(self.policy.retry_budget);
        let workers = config.workers.max(1).min(n.max(1));
        let (job_tx, job_rx) = crossbeam::channel::unbounded::<Job>();
        let (done_tx, done_rx) = crossbeam::channel::unbounded::<Done>();

        type Fresh = (TaskId, TaskRun, Vec<ProgressEvent>, Duration);
        let outcome: Result<Vec<Fresh>> = crossbeam::scope(|scope| {
            for _ in 0..workers {
                let job_rx = job_rx.clone();
                let done_tx = done_tx.clone();
                let produced = &produced;
                let budget = &budget;
                scope.spawn(move |_| {
                    while let Ok(job) = job_rx.recv() {
                        if job.task == POISON {
                            break;
                        }
                        let inputs = {
                            let produced = produced.lock();
                            Self::gather_inputs(graph, job.task, bindings, &produced)
                        };
                        let events = Mutex::new(Vec::new());
                        let (result, run) =
                            self.execute_task(graph, job.task, &inputs, budget, root, &|e| {
                                events.lock().push(e)
                            });
                        let tick = self.virtual_now();
                        // Scripted worker death: the finished claim is
                        // discarded without an ack, so the orchestrator
                        // must redeliver. The thread itself keeps
                        // serving — it models a restarted worker.
                        let died = config
                            .worker_crash
                            .as_ref()
                            .is_some_and(|s| s.poll_kill(tick))
                            || config.kill_worker_on_claim == Some(job.claim);
                        let outcome = if died {
                            Outcome::Died
                        } else {
                            Outcome::Finished {
                                result,
                                run,
                                events: events.into_inner(),
                                tick,
                            }
                        };
                        let _ = done_tx.send(Done {
                            claim: job.claim,
                            task: job.task,
                            outcome,
                        });
                    }
                });
            }
            drop(done_tx);

            // ---- orchestrator ----------------------------------------
            let mut run_loop = || -> Result<Vec<Fresh>> {
                let mut fresh: Vec<Fresh> = Vec::new();
                let mut claims: HashMap<TaskId, u64> = HashMap::new();
                let mut next_claim = 1u64;
                let mut in_flight = 0usize;
                for task in 0..n {
                    if status[task] == Status::Runnable && indegree[task] == 0 {
                        dispatch(
                            &mut appender,
                            &mut claims,
                            &mut next_claim,
                            &job_tx,
                            &mut in_flight,
                            graph,
                            task,
                        )?;
                    }
                }
                while in_flight > 0 {
                    let done = done_rx.recv().expect("workers hold the sender");
                    if claims.get(&done.task) != Some(&done.claim) {
                        continue; // stale claim: already redelivered
                    }
                    match done.outcome {
                        Outcome::Died => {
                            // No ack: redeliver under a fresh claim.
                            journal.note_redelivery();
                            in_flight -= 1;
                            dispatch(
                                &mut appender,
                                &mut claims,
                                &mut next_claim,
                                &job_tx,
                                &mut in_flight,
                                graph,
                                done.task,
                            )?;
                        }
                        Outcome::Finished {
                            result,
                            run,
                            events,
                            tick,
                        } => {
                            crash_check(&appender)?;
                            claims.remove(&done.task);
                            in_flight -= 1;
                            let task = done.task;
                            let name = graph.task(task)?.name.clone();
                            match result {
                                Ok(outputs) => {
                                    if run.sheds > 0 {
                                        appender.append(&RunEvent::TaskShed {
                                            task,
                                            name: name.clone(),
                                            sheds: run.sheds,
                                        })?;
                                    }
                                    appender.append(&RunEvent::TaskCompleted {
                                        task,
                                        name,
                                        attempts: run.attempts,
                                        virtual_nanos: run.virtual_duration.as_nanos() as u64,
                                        cached: run.cached,
                                        sheds: run.sheds,
                                        outputs: outputs.clone(),
                                    })?;
                                    {
                                        let mut produced = produced.lock();
                                        for (port, token) in outputs.into_iter().enumerate() {
                                            produced.insert((task, port), token);
                                        }
                                    }
                                    status[task] = Status::Completed;
                                    fresh.push((task, run, events, tick));
                                    for c in graph.cables() {
                                        if c.from_task == task
                                            && status[c.to_task] == Status::Runnable
                                        {
                                            indegree[c.to_task] -= 1;
                                            if indegree[c.to_task] == 0 {
                                                dispatch(
                                                    &mut appender,
                                                    &mut claims,
                                                    &mut next_claim,
                                                    &job_tx,
                                                    &mut in_flight,
                                                    graph,
                                                    c.to_task,
                                                )?;
                                            }
                                        }
                                    }
                                }
                                Err(message) => {
                                    appender.append(&RunEvent::TaskFailed {
                                        task,
                                        name,
                                        message,
                                    })?;
                                    status[task] = Status::Failed;
                                    fresh.push((task, run, events, tick));
                                    block_cone(graph, &mut status, task);
                                }
                            }
                        }
                    }
                }
                if !replay.finished {
                    let recorded = status
                        .iter()
                        .filter(|s| matches!(s, Status::Completed | Status::Failed))
                        .count();
                    appender.append(&RunEvent::RunFinished {
                        tasks: recorded,
                        virtual_nanos: self.virtual_now().saturating_sub(vstart).as_nanos() as u64,
                    })?;
                }
                Ok(fresh)
            };
            let outcome = run_loop();
            // Terminate the pool on every exit path, crash included.
            for _ in 0..workers {
                let _ = job_tx.send(Job {
                    claim: 0,
                    task: POISON,
                });
            }
            drop(job_tx);
            outcome
        })
        .expect("durable worker panicked");

        let fresh = match outcome {
            Ok(fresh) => fresh,
            Err(e) => {
                if let Some(span) = root_span.as_mut() {
                    span.set_error(e.to_string());
                }
                return Err(e);
            }
        };

        // Build the report: replayed runs (restored, zero re-execution)
        // plus fresh runs, in the deterministic (tick, task id) order.
        let mut entries: Vec<Fresh> = Vec::new();
        for (&task, replayed) in &replay.completed {
            entries.push((
                task,
                TaskRun {
                    task: replayed.name.clone(),
                    attempts: replayed.attempts,
                    duration: Duration::ZERO,
                    virtual_duration: Duration::from_nanos(replayed.virtual_nanos),
                    backoff: Duration::ZERO,
                    sheds: replayed.sheds,
                    cached: replayed.cached,
                    replayed: true,
                    error: None,
                },
                Vec::new(),
                Duration::ZERO,
            ));
        }
        for (&task, (name, message)) in &replay.failed {
            entries.push((
                task,
                TaskRun {
                    task: name.clone(),
                    attempts: 0,
                    duration: Duration::ZERO,
                    virtual_duration: Duration::ZERO,
                    backoff: Duration::ZERO,
                    sheds: 0,
                    cached: false,
                    replayed: true,
                    error: Some(message.clone()),
                },
                Vec::new(),
                Duration::ZERO,
            ));
        }
        entries.extend(fresh);
        entries.sort_by_key(|e| (e.3, e.0));
        for (_, _, events, _) in &entries {
            for event in events {
                self.emit(event.clone());
            }
        }

        let mut report = ExecutionReport {
            runs: entries.into_iter().map(|(_, run, _, _)| run).collect(),
            ..ExecutionReport::default()
        };
        let produced = produced.into_inner();
        self.collect_outputs(graph, &produced, &mut report)?;
        report.elapsed = start.elapsed();
        report.virtual_elapsed = self.virtual_now().saturating_sub(vstart);
        report.retry_budget_remaining = budget.into_inner();
        self.emit(ProgressEvent::RunFinished {
            tasks: report.runs.len(),
            elapsed: report.elapsed,
            virtual_elapsed: report.virtual_elapsed,
        });
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::test_tools::*;
    use std::sync::Arc;

    fn diamond() -> TaskGraph {
        // src → (left, right) → join
        let mut g = TaskGraph::new();
        let src = g.add_named_task("src", Arc::new(ConstText("x".into())));
        let left = g.add_named_task("left", Arc::new(Upper));
        let right = g.add_named_task("right", Arc::new(Upper));
        let join = g.add_named_task("join", Arc::new(Concat));
        g.connect(src, 0, left, 0).unwrap();
        g.connect(src, 0, right, 0).unwrap();
        g.connect(left, 0, join, 0).unwrap();
        g.connect(right, 0, join, 1).unwrap();
        g
    }

    #[test]
    fn durable_run_matches_plain_run() {
        let g = diamond();
        let plain = Executor::parallel().run(&g, &HashMap::new()).unwrap();
        let journal = Arc::new(RunJournal::new());
        let durable = Executor::parallel()
            .run_durable(
                &g,
                &HashMap::new(),
                &DurableConfig::new(Arc::clone(&journal)),
            )
            .unwrap();
        assert_eq!(plain.canonical_bytes(), durable.canonical_bytes());
        assert_eq!(durable.replay_hits(), 0);
        // 1 run-started + 4 started + 4 completed + 1 run-finished.
        assert_eq!(journal.stats().appends, 10);
        let replay = journal.replay();
        assert!(replay.finished);
        assert_eq!(replay.completed.len(), 4);
    }

    #[test]
    fn kill_at_every_append_then_resume_is_byte_identical() {
        let g = diamond();
        let baseline = Executor::parallel()
            .run_durable(
                &g,
                &HashMap::new(),
                &DurableConfig::new(Arc::new(RunJournal::new())),
            )
            .unwrap();
        let expected = baseline.canonical_bytes();
        for kill_at in 1..=10u64 {
            let journal = Arc::new(RunJournal::new());
            let err = Executor::parallel()
                .run_durable(
                    &g,
                    &HashMap::new(),
                    &DurableConfig::new(Arc::clone(&journal)).with_kill_after_appends(kill_at),
                )
                .unwrap_err();
            assert!(
                matches!(err, WorkflowError::Crashed { appended } if appended == kill_at),
                "kill point {kill_at}: {err}"
            );
            // Process boundary: only the journal bytes survive.
            let survived = Arc::new(RunJournal::from_bytes(&journal.bytes()));
            let completed_at_crash = survived.replay().completed.len();
            let resumed = Executor::parallel()
                .run_durable(
                    &g,
                    &HashMap::new(),
                    &DurableConfig::new(Arc::clone(&survived)),
                )
                .unwrap();
            assert_eq!(
                resumed.canonical_bytes(),
                expected,
                "kill point {kill_at}: resumed report differs"
            );
            // Completed tasks were restored, never re-executed.
            assert_eq!(resumed.replay_hits(), completed_at_crash);
            assert_eq!(survived.stats().replay_hits, completed_at_crash as u64);
            assert_eq!(
                resumed.runs.iter().filter(|r| !r.replayed).count(),
                4 - completed_at_crash
            );
        }
    }

    #[test]
    fn worker_death_redelivers_unacked_claims() {
        let g = diamond();
        let journal = Arc::new(RunJournal::new());
        let report = Executor::parallel()
            .run_durable(
                &g,
                &HashMap::new(),
                &DurableConfig::new(Arc::clone(&journal))
                    .with_workers(2)
                    .with_kill_worker_on_claim(2),
            )
            .unwrap();
        assert_eq!(journal.stats().redeliveries, 1);
        let plain = Executor::parallel().run(&g, &HashMap::new()).unwrap();
        assert_eq!(report.canonical_bytes(), plain.canonical_bytes());
        // The redelivered task was journaled as started twice.
        let starts = journal
            .events()
            .iter()
            .filter(|e| matches!(e, RunEvent::TaskStarted { .. }))
            .count();
        assert_eq!(starts, 5);
    }

    #[test]
    fn failed_task_blocks_only_its_cone() {
        // src → fail → doomed ; src → ok (independent branch).
        let mut g = TaskGraph::new();
        let src = g.add_named_task("src", Arc::new(ConstText("x".into())));
        let fail = g.add_named_task("fail", Arc::new(Flaky::failing(usize::MAX)));
        let doomed = g.add_named_task("doomed", Arc::new(Upper));
        let ok = g.add_named_task("ok", Arc::new(Upper));
        g.connect(src, 0, fail, 0).unwrap();
        g.connect(fail, 0, doomed, 0).unwrap();
        g.connect(src, 0, ok, 0).unwrap();

        let journal = Arc::new(RunJournal::new());
        let report = Executor::parallel()
            .run_durable(
                &g,
                &HashMap::new(),
                &DurableConfig::new(Arc::clone(&journal)),
            )
            .unwrap();
        // The independent branch completed; the cone did not run.
        assert_eq!(report.output(ok, 0), Some(&Token::Text("X".into())));
        assert!(report.output(doomed, 0).is_none());
        let names: Vec<_> = report.runs.iter().map(|r| r.task.as_str()).collect();
        assert!(!names.contains(&"doomed"));
        let failed_run = report.runs.iter().find(|r| r.task == "fail").unwrap();
        assert!(failed_run.error.is_some());
        // Resuming the finished journal re-executes nothing and keeps
        // the failure terminal.
        let resumed = Executor::parallel()
            .run_durable(
                &g,
                &HashMap::new(),
                &DurableConfig::new(Arc::clone(&journal)),
            )
            .unwrap();
        assert_eq!(resumed.canonical_bytes(), report.canonical_bytes());
        assert_eq!(resumed.replay_hits(), 3); // src, ok, and the failure record
        assert!(resumed.runs.iter().all(|r| r.replayed));
    }

    #[test]
    fn journal_from_a_different_workflow_is_rejected() {
        let g = diamond();
        let journal = Arc::new(RunJournal::new());
        Executor::parallel()
            .run_durable(
                &g,
                &HashMap::new(),
                &DurableConfig::new(Arc::clone(&journal)),
            )
            .unwrap();
        let mut other = TaskGraph::new();
        other.add_named_task("src", Arc::new(ConstText("x".into())));
        let err = Executor::parallel()
            .run_durable(&other, &HashMap::new(), &DurableConfig::new(journal))
            .unwrap_err();
        assert!(matches!(err, WorkflowError::JournalMismatch { .. }));
    }

    #[test]
    fn orchestrator_crash_script_kills_on_virtual_clock() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let g = diamond();
        let nanos = Arc::new(AtomicU64::new(0));
        let clock_nanos = Arc::clone(&nanos);
        let clock: crate::engine::ClockSource =
            Arc::new(move || Duration::from_nanos(clock_nanos.load(Ordering::SeqCst)));
        // The virtual clock starts past the scripted instant, so the
        // first acknowledgement kills the orchestrator.
        nanos.store(Duration::from_secs(5).as_nanos() as u64, Ordering::SeqCst);
        let script = Arc::new(CrashScript::new());
        script.schedule(dm_wsrf::resilience::CrashRestart::at(Duration::from_secs(
            1,
        )));
        let journal = Arc::new(RunJournal::new());
        let err = Executor::parallel()
            .with_virtual_clock(clock)
            .run_durable(
                &g,
                &HashMap::new(),
                &DurableConfig::new(Arc::clone(&journal))
                    .with_orchestrator_crash(Arc::clone(&script)),
            )
            .unwrap_err();
        assert!(matches!(err, WorkflowError::Crashed { .. }));
        assert_eq!(script.kills_fired(), 1);
        // The journal survived and a crash-free executor resumes it.
        let resumed = Executor::parallel()
            .run_durable(&g, &HashMap::new(), &DurableConfig::new(journal))
            .unwrap();
        let plain = Executor::parallel().run(&g, &HashMap::new()).unwrap();
        assert_eq!(resumed.canonical_bytes(), plain.canonical_bytes());
    }
}
