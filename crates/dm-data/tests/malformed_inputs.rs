//! Malformed-input battery for the CSV and ARFF readers.
//!
//! Every case here must come back as a structured `DataError` — never a
//! panic, and never a silently corrupted dataset. The inputs cover the
//! failure classes seen from real exports: truncated quotes, ragged
//! rows, non-finite numeric literals, bad sparse indices, and header
//! declarations cut off mid-line.

use dm_data::arff::parse_arff;
use dm_data::csv::{parse_csv, parse_csv_with, CsvOptions};
use dm_data::error::DataError;

#[test]
fn malformed_csv_is_rejected_not_panicked() {
    let rejected = [
        ("", "empty input"),
        ("\n\n", "blank lines only"),
        ("a,b\n1\n", "ragged short row"),
        ("a,b\n1,2,3\n", "ragged long row"),
        ("\"x\n", "unterminated quote in header"),
        ("a\n\"unterminated\n", "unterminated quote in data"),
    ];
    for (text, what) in rejected {
        match parse_csv(text) {
            Err(DataError::Parse { .. }) => {}
            other => panic!("{what}: expected parse error, got {other:?}"),
        }
    }
}

#[test]
fn hostile_csv_still_parses_where_well_formed() {
    // Unicode headers and values, CRLF endings, headerless mode with a
    // leading all-empty header-looking row: all legal, none panic.
    let ds = parse_csv("é,ü\n1,2\n").unwrap();
    assert_eq!(ds.attribute(0).unwrap().name(), "é");
    let ds = parse_csv("a\n\u{1F600}\n").unwrap();
    assert_eq!(ds.instance(0).label(0), Some("\u{1F600}"));
    let opts = CsvOptions {
        has_header: false,
        ..CsvOptions::default()
    };
    let ds = parse_csv_with(",,,\n1,2,3,4\n", &opts).unwrap();
    assert_eq!(ds.num_attributes(), 4);
    assert_eq!(ds.num_instances(), 2);
}

#[test]
fn non_finite_csv_columns_degrade_to_nominal() {
    // "NaN"/"inf" parse as f64 but would corrupt the encoded matrix
    // (NaN aliases MISSING). They demote the column to nominal instead.
    for literal in ["NaN", "inf", "-inf", "Infinity"] {
        let ds = parse_csv(&format!("a,b\n{literal},2\n")).unwrap();
        assert!(
            ds.attribute(0).unwrap().is_nominal(),
            "{literal} inferred as numeric"
        );
        assert_eq!(ds.instance(0).label(0), Some(literal));
        assert!(!ds.instance(0).is_missing(0), "{literal} became missing");
    }
}

#[test]
fn malformed_arff_is_rejected_not_panicked() {
    let rejected = [
        ("", "empty input"),
        ("@data\n", "@data before any @attribute"),
        (
            "@relation t\n@attribute\n@data\n",
            "attribute without a name",
        ),
        (
            "@relation t\n@attribute a numeric\n@data\n1,2\n",
            "row wider than header",
        ),
        (
            "@relation t\n@attribute a {x\n@data\nx\n",
            "unterminated nominal domain",
        ),
        (
            "@relation t\n@attribute a numeric\n@data\n{0\n",
            "unterminated sparse row",
        ),
        (
            "@relation t\n@attribute a numeric\n@data\n{99 1}\n",
            "sparse index out of range",
        ),
        (
            "@relation t\n@attribute a numeric\n@data\n{x 1}\n",
            "non-integer sparse index",
        ),
        (
            "@relation t\n@attribute a {x,y}\n@data\n{0 z}\n",
            "sparse label outside domain",
        ),
        (
            "@relation t\n@attribute a {x,y}\n@data\nz\n",
            "dense label outside domain",
        ),
        (
            "@relation t\n@attribute a wibble\n@data\n1\n",
            "unsupported attribute type",
        ),
        ("@relation t\n@bogus\n@data\n", "unknown header directive"),
        (
            "@relation t\n@attribute a numeric\n@data\nNaN\n",
            "non-finite numeric literal",
        ),
        (
            "@relation t\n@attribute a numeric\n@data\n{0 inf}\n",
            "non-finite sparse literal",
        ),
        (
            "@relation t\n@attribute a numeric\n",
            "missing @data section",
        ),
    ];
    for (text, what) in rejected {
        match parse_arff(text) {
            Err(DataError::Parse { .. }) => {}
            other => panic!("{what}: expected parse error, got {other:?}"),
        }
    }
}

#[test]
fn hostile_arff_still_parses_where_well_formed() {
    // Unicode names and labels, comments after data, empty nominal
    // domains with empty sparse rows.
    let ds = parse_arff("@relation t\n@attribute é {ü,ö}\n@data\nü\n").unwrap();
    assert_eq!(ds.instance(0).label(0), Some("ü"));
    let ds = parse_arff("@relation t\n@attribute a numeric % c\n@data\n1 % x\n").unwrap();
    assert_eq!(ds.value(0, 0), 1.0);
    let ds = parse_arff("@attribute a numeric\n@data\n{}\n").unwrap();
    assert_eq!(ds.value(0, 0), 0.0);
}
