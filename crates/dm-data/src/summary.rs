//! Dataset summary statistics, reproducing the per-attribute table of
//! **Figure 3** of the paper ("Information about the Breast cancer
//! data"), which is the WEKA `Instances` summary: for each attribute its
//! type, the percentage of nominal / integer / real values, the missing
//! count and percentage, the number of distinct values, and the number
//! of values occurring exactly once ("unique").

use crate::attribute::AttributeKind;
use crate::dataset::Dataset;

/// Summary row for a single attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeSummary {
    /// Attribute name.
    pub name: String,
    /// Display type: `"Enum"`, `"Int"`, `"Real"`, or `"Str"`.
    pub type_name: &'static str,
    /// Percent of instances with a (non-missing) nominal value, rounded.
    pub nominal_pct: u32,
    /// Percent of instances with an integral numeric value, rounded.
    pub int_pct: u32,
    /// Percent of instances with a non-integral numeric value, rounded.
    pub real_pct: u32,
    /// Count of missing values.
    pub missing: usize,
    /// Percent of missing values, rounded.
    pub missing_pct: u32,
    /// Number of distinct (non-missing) values.
    pub distinct: usize,
    /// Number of values that occur exactly once.
    pub unique: usize,
    /// Percent of values that occur exactly once, rounded.
    pub unique_pct: u32,
}

/// Whole-dataset summary (the header block of Figure 3).
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    /// `Num Instances` — number of rows.
    pub num_instances: usize,
    /// `Num Attributes` — number of columns.
    pub num_attributes: usize,
    /// Number of numeric attributes whose observed values are all integral.
    pub num_int: usize,
    /// Number of numeric attributes with at least one fractional value.
    pub num_real: usize,
    /// `Num Continuous` — numeric attributes (int + real).
    pub num_continuous: usize,
    /// `Num Discrete` — nominal attributes.
    pub num_discrete: usize,
    /// Total missing values across all cells.
    pub missing_values: usize,
    /// Missing values as a percentage of all cells (one decimal place,
    /// e.g. `0.3` for the breast-cancer data).
    pub missing_pct: f64,
    /// Per-attribute rows.
    pub attributes: Vec<AttributeSummary>,
}

fn pct(part: f64, whole: f64) -> u32 {
    if whole == 0.0 {
        0
    } else {
        (100.0 * part / whole).round() as u32
    }
}

impl DatasetSummary {
    /// Compute the summary of a dataset.
    pub fn of(ds: &Dataset) -> DatasetSummary {
        let n = ds.num_instances();
        let mut rows = Vec::with_capacity(ds.num_attributes());
        let mut num_int = 0;
        let mut num_real = 0;
        let mut num_discrete = 0;
        let mut total_missing = 0;

        for a in 0..ds.num_attributes() {
            let attr = ds.attribute(a).expect("index in range");
            // Missing counts come straight off the validity bitmap
            // (popcount per word); the value scan only visits cells
            // the bitmap marks present, so no NaN probing is needed.
            let col = ds.column(a);
            let valid = col.validity();
            let missing = valid.count_missing();
            let mut ints = 0usize;
            let mut reals = 0usize;
            let mut values: Vec<f64> = Vec::with_capacity(n - missing);
            for r in 0..n {
                if valid.get(r) {
                    let v = col.get(r);
                    values.push(v);
                    if v == v.trunc() {
                        ints += 1;
                    } else {
                        reals += 1;
                    }
                }
            }
            total_missing += missing;
            let present = n - missing;

            // Count distinct and unique values.
            values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN present"));
            let mut distinct = 0usize;
            let mut unique = 0usize;
            let mut i = 0;
            while i < values.len() {
                let mut j = i + 1;
                while j < values.len() && values[j] == values[i] {
                    j += 1;
                }
                distinct += 1;
                if j - i == 1 {
                    unique += 1;
                }
                i = j;
            }

            let (type_name, nominal_pct, int_pct, real_pct) = match attr.kind() {
                AttributeKind::Nominal(_) => {
                    num_discrete += 1;
                    ("Enum", pct(present as f64, n as f64), 0, 0)
                }
                AttributeKind::Numeric => {
                    if reals == 0 {
                        num_int += 1;
                        ("Int", 0, pct(ints as f64, n as f64), 0)
                    } else {
                        num_real += 1;
                        (
                            "Real",
                            0,
                            pct(ints as f64, n as f64),
                            pct(reals as f64, n as f64),
                        )
                    }
                }
                AttributeKind::Str => ("Str", 0, 0, 0),
            };

            rows.push(AttributeSummary {
                name: attr.name().to_string(),
                type_name,
                nominal_pct,
                int_pct,
                real_pct,
                missing,
                missing_pct: pct(missing as f64, n as f64),
                distinct,
                unique,
                unique_pct: pct(unique as f64, n as f64),
            });
        }

        let cells = n * ds.num_attributes();
        let missing_pct = if cells == 0 {
            0.0
        } else {
            (1000.0 * total_missing as f64 / cells as f64).round() / 10.0
        };

        DatasetSummary {
            num_instances: n,
            num_attributes: ds.num_attributes(),
            num_int,
            num_real,
            num_continuous: num_int + num_real,
            num_discrete,
            missing_values: total_missing,
            missing_pct,
            attributes: rows,
        }
    }

    /// Render the summary as the Figure-3-style table.
    ///
    /// The header block then one row per attribute:
    /// `idx name type nom% int% real% missing /pct% distinct unique /pct%`.
    pub fn to_table_string(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Num Instances {}  Num Attributes {}  Num Continuous {} (Int {} / Real {})  Num Discrete {}  Missing values {} / {:.1}%\n",
            self.num_instances,
            self.num_attributes,
            self.num_continuous,
            self.num_int,
            self.num_real,
            self.num_discrete,
            self.missing_values,
            self.missing_pct
        ));
        out.push_str(&format!(
            "{:>3} {:<16} {:<5} {:>4} {:>4} {:>4} {:>8} {:>5} {:>8} {:>6}\n",
            "#", "name", "type", "enum", "ints", "real", "missing", "/pct", "distinct", "unique"
        ));
        for (i, a) in self.attributes.iter().enumerate() {
            out.push_str(&format!(
                "{:>3} {:<16} {:<5} {:>4} {:>4} {:>4} {:>8} {:>4}% {:>8} {:>3}/{:>1}%\n",
                i + 1,
                a.name,
                a.type_name,
                a.nominal_pct,
                a.int_pct,
                a.real_pct,
                a.missing,
                a.missing_pct,
                a.distinct,
                a.unique,
                a.unique_pct
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;

    fn mixed() -> Dataset {
        let mut ds = Dataset::new(
            "mixed",
            vec![
                Attribute::nominal("colour", ["red", "green", "blue"]),
                Attribute::numeric("count"),
                Attribute::numeric("ratio"),
            ],
        );
        ds.push_labels(&["red", "1", "0.5"]).unwrap();
        ds.push_labels(&["green", "2", "1.5"]).unwrap();
        ds.push_labels(&["red", "3", "?"]).unwrap();
        ds.push_labels(&["?", "4", "0.5"]).unwrap();
        ds
    }

    #[test]
    fn header_block_counts() {
        let s = DatasetSummary::of(&mixed());
        assert_eq!(s.num_instances, 4);
        assert_eq!(s.num_attributes, 3);
        assert_eq!(s.num_discrete, 1);
        assert_eq!(s.num_int, 1);
        assert_eq!(s.num_real, 1);
        assert_eq!(s.num_continuous, 2);
        assert_eq!(s.missing_values, 2);
    }

    #[test]
    fn nominal_row() {
        let s = DatasetSummary::of(&mixed());
        let a = &s.attributes[0];
        assert_eq!(a.type_name, "Enum");
        assert_eq!(a.nominal_pct, 75); // 3 of 4 present
        assert_eq!(a.missing, 1);
        assert_eq!(a.missing_pct, 25);
        assert_eq!(a.distinct, 2); // red, green observed
        assert_eq!(a.unique, 1); // green appears once
    }

    #[test]
    fn integer_column_detected() {
        let s = DatasetSummary::of(&mixed());
        let a = &s.attributes[1];
        assert_eq!(a.type_name, "Int");
        assert_eq!(a.int_pct, 100);
        assert_eq!(a.distinct, 4);
        assert_eq!(a.unique, 4);
    }

    #[test]
    fn real_column_detected() {
        let s = DatasetSummary::of(&mixed());
        let a = &s.attributes[2];
        assert_eq!(a.type_name, "Real");
        assert_eq!(a.missing, 1);
        assert_eq!(a.distinct, 2); // 0.5 (twice), 1.5
        assert_eq!(a.unique, 1);
    }

    #[test]
    fn table_renders_every_attribute() {
        let s = DatasetSummary::of(&mixed());
        let t = s.to_table_string();
        assert!(t.contains("Num Instances 4"));
        assert!(t.contains("colour"));
        assert!(t.contains("ratio"));
        assert_eq!(t.lines().count(), 2 + 3);
    }

    #[test]
    fn bitmap_missing_counts_match_nan_scan() {
        // Regression for the validity-bitmap accounting: the summary's
        // per-attribute and total missing counts must agree with a
        // cell-by-cell NaN scan through the compatibility API.
        use crate::dataset::Value;
        let ds = mixed();
        let s = DatasetSummary::of(&ds);
        let mut total = 0usize;
        for a in 0..ds.num_attributes() {
            let by_scan = (0..ds.num_instances())
                .filter(|&r| Value::is_missing(ds.value(r, a)))
                .count();
            assert_eq!(s.attributes[a].missing, by_scan, "attr {a}");
            assert_eq!(ds.missing_count(a), by_scan, "attr {a}");
            total += by_scan;
        }
        assert_eq!(s.missing_values, total);
    }

    #[test]
    fn summary_tracks_missingness_edits() {
        // Flipping a cell missing (and back) through set_value must be
        // reflected in the bitmap-backed summary counts.
        let mut ds = mixed();
        ds.set_value(0, 1, f64::NAN);
        let s = DatasetSummary::of(&ds);
        assert_eq!(s.attributes[1].missing, 1);
        assert_eq!(s.missing_values, 3);
        ds.set_value(0, 1, 7.0);
        let s = DatasetSummary::of(&ds);
        assert_eq!(s.attributes[1].missing, 0);
        assert_eq!(s.missing_values, 2);
    }

    #[test]
    fn empty_dataset_summary() {
        let ds = Dataset::new("e", vec![Attribute::numeric("x")]);
        let s = DatasetSummary::of(&ds);
        assert_eq!(s.num_instances, 0);
        assert_eq!(s.missing_pct, 0.0);
        assert_eq!(s.attributes[0].distinct, 0);
    }
}
