//! Attribute descriptors: the schema half of a [`crate::Dataset`].

use crate::error::{DataError, Result};

/// The kind of an attribute, mirroring the ARFF type system used by the
/// paper's toolkit (WEKA types): nominal enumerations, real numbers, and
/// free-form strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttributeKind {
    /// Finite enumeration of labels; values are stored as domain indices.
    Nominal(Vec<String>),
    /// Real-valued attribute (`@attribute x numeric` / `real` / `integer`).
    Numeric,
    /// Free-form string attribute; values index into a per-dataset string
    /// table.
    Str,
}

impl AttributeKind {
    /// `true` if this is a nominal attribute.
    pub fn is_nominal(&self) -> bool {
        matches!(self, AttributeKind::Nominal(_))
    }

    /// `true` if this is a numeric attribute.
    pub fn is_numeric(&self) -> bool {
        matches!(self, AttributeKind::Numeric)
    }

    /// `true` if this is a string attribute.
    pub fn is_string(&self) -> bool {
        matches!(self, AttributeKind::Str)
    }
}

/// A single column descriptor: a name plus an [`AttributeKind`].
///
/// ```
/// use dm_data::{Attribute, AttributeKind};
/// let a = Attribute::nominal("node-caps", ["yes", "no"]);
/// assert_eq!(a.num_labels(), 2);
/// assert_eq!(a.label_index("no"), Some(1));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    name: String,
    kind: AttributeKind,
}

impl Attribute {
    /// Create a nominal attribute from a label list.
    pub fn nominal<N, I, S>(name: N, labels: I) -> Self
    where
        N: Into<String>,
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Attribute {
            name: name.into(),
            kind: AttributeKind::Nominal(labels.into_iter().map(Into::into).collect()),
        }
    }

    /// Create a numeric attribute.
    pub fn numeric<N: Into<String>>(name: N) -> Self {
        Attribute {
            name: name.into(),
            kind: AttributeKind::Numeric,
        }
    }

    /// Create a string attribute.
    pub fn string<N: Into<String>>(name: N) -> Self {
        Attribute {
            name: name.into(),
            kind: AttributeKind::Str,
        }
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute's kind.
    pub fn kind(&self) -> &AttributeKind {
        &self.kind
    }

    /// `true` if nominal.
    pub fn is_nominal(&self) -> bool {
        self.kind.is_nominal()
    }

    /// `true` if numeric.
    pub fn is_numeric(&self) -> bool {
        self.kind.is_numeric()
    }

    /// `true` if string-valued.
    pub fn is_string(&self) -> bool {
        self.kind.is_string()
    }

    /// Labels of a nominal attribute (empty slice for other kinds).
    pub fn labels(&self) -> &[String] {
        match &self.kind {
            AttributeKind::Nominal(l) => l,
            _ => &[],
        }
    }

    /// Number of labels (0 for non-nominal attributes).
    pub fn num_labels(&self) -> usize {
        self.labels().len()
    }

    /// Index of `label` in a nominal domain, if present.
    pub fn label_index(&self, label: &str) -> Option<usize> {
        self.labels().iter().position(|l| l == label)
    }

    /// Label at `index`, or an error for non-nominal / out-of-range.
    pub fn label(&self, index: usize) -> Result<&str> {
        match &self.kind {
            AttributeKind::Nominal(l) => {
                l.get(index)
                    .map(String::as_str)
                    .ok_or_else(|| DataError::UnknownLabel {
                        attribute: self.name.clone(),
                        label: format!("#{index}"),
                    })
            }
            _ => Err(DataError::KindMismatch {
                attribute: self.name.clone(),
                expected: "nominal",
            }),
        }
    }

    /// Append a label to a nominal domain, returning its index. Used by
    /// incremental CSV type inference. Errors on non-nominal attributes.
    pub fn add_label<S: Into<String>>(&mut self, label: S) -> Result<usize> {
        match &mut self.kind {
            AttributeKind::Nominal(l) => {
                l.push(label.into());
                Ok(l.len() - 1)
            }
            _ => Err(DataError::KindMismatch {
                attribute: self.name.clone(),
                expected: "nominal",
            }),
        }
    }

    /// Render the attribute as an ARFF `@attribute` declaration body
    /// (everything after the name), e.g. `{yes,no}` or `numeric`.
    pub fn arff_type(&self) -> String {
        match &self.kind {
            AttributeKind::Nominal(labels) => {
                let mut out = String::from("{");
                for (i, l) in labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&crate::arff::quote_if_needed(l));
                }
                out.push('}');
                out
            }
            AttributeKind::Numeric => "numeric".to_string(),
            AttributeKind::Str => "string".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_roundtrip() {
        let a = Attribute::nominal("deg-malig", ["1", "2", "3"]);
        assert!(a.is_nominal());
        assert_eq!(a.num_labels(), 3);
        assert_eq!(a.label_index("2"), Some(1));
        assert_eq!(a.label(2).unwrap(), "3");
        assert!(a.label(3).is_err());
    }

    #[test]
    fn numeric_has_no_labels() {
        let a = Attribute::numeric("age");
        assert!(a.is_numeric());
        assert_eq!(a.num_labels(), 0);
        assert_eq!(a.label_index("x"), None);
        assert!(a.label(0).is_err());
    }

    #[test]
    fn add_label_grows_domain() {
        let mut a = Attribute::nominal("c", Vec::<String>::new());
        assert_eq!(a.add_label("first").unwrap(), 0);
        assert_eq!(a.add_label("second").unwrap(), 1);
        assert_eq!(a.labels(), ["first".to_string(), "second".to_string()]);
    }

    #[test]
    fn add_label_rejected_for_numeric() {
        let mut a = Attribute::numeric("x");
        assert!(a.add_label("boom").is_err());
    }

    #[test]
    fn arff_type_rendering() {
        assert_eq!(Attribute::numeric("x").arff_type(), "numeric");
        assert_eq!(Attribute::string("s").arff_type(), "string");
        assert_eq!(
            Attribute::nominal("n", ["a", "b c"]).arff_type(),
            "{a,'b c'}"
        );
    }
}
