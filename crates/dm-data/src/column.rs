//! Columnar storage primitives: validity bitmaps, dense nominal code
//! buffers, and the per-attribute [`Column`] containers behind
//! [`crate::Dataset`], plus the zero-copy [`ColumnView`] borrows the
//! mining kernels scan.
//!
//! Layout (see DESIGN.md for the diagram):
//!
//! * numeric attributes: contiguous `Vec<f64>`;
//! * nominal attributes: dense integer codes, `u8` when the domain has
//!   at most 256 labels, `u16` up to 65 536, `u32` beyond;
//! * string attributes: `u32` indices into the dataset string table;
//! * missingness: one validity bit per row (1 = present) instead of the
//!   row-major `NaN` sentinel; the backing cell of a missing value is a
//!   deterministic `0`.

use crate::attribute::{Attribute, AttributeKind};
use crate::error::{DataError, Result};

/// A per-row validity bitmap: bit `i` is 1 when row `i` holds a value
/// and 0 when it is missing. Trailing bits of the last word are always
/// zero, so derived equality is structural.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new() -> Bitmap {
        Bitmap::default()
    }

    /// Number of rows covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no rows are covered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Validity of row `i` (`true` = present).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i >> 6] >> (i & 63) & 1 == 1
    }

    /// Append one row's validity.
    #[inline]
    pub fn push(&mut self, valid: bool) {
        if self.len & 63 == 0 {
            self.words.push(0);
        }
        if valid {
            *self.words.last_mut().expect("pushed above") |= 1u64 << (self.len & 63);
        }
        self.len += 1;
    }

    /// Overwrite the validity of row `i`.
    #[inline]
    pub fn set(&mut self, i: usize, valid: bool) {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i & 63);
        if valid {
            self.words[i >> 6] |= mask;
        } else {
            self.words[i >> 6] &= !mask;
        }
    }

    /// Count of missing (zero) rows.
    pub fn count_missing(&self) -> usize {
        self.len
            - self
                .words
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum::<usize>()
    }

    /// `true` when every covered row is valid — the fast-path guard the
    /// kernels use to skip per-row validity tests.
    pub fn all_valid(&self) -> bool {
        if self.len == 0 {
            return true;
        }
        let full = self.len >> 6;
        if self.words[..full].iter().any(|&w| w != u64::MAX) {
            return false;
        }
        let rem = self.len & 63;
        rem == 0 || self.words[full] == (1u64 << rem) - 1
    }

    /// `true` when at least one covered row is missing.
    pub fn any_missing(&self) -> bool {
        !self.all_valid()
    }
}

/// Dense nominal code storage; width chosen from the attribute's arity.
#[derive(Debug, Clone, PartialEq)]
pub enum Codes {
    /// Domains with at most 256 labels.
    U8(Vec<u8>),
    /// Domains with at most 65 536 labels.
    U16(Vec<u16>),
    /// Larger domains (and a safety net for degenerate headers).
    U32(Vec<u32>),
}

impl Codes {
    /// An empty code buffer sized for a domain of `arity` labels.
    pub fn for_arity(arity: usize) -> Codes {
        if arity <= 1 << 8 {
            Codes::U8(Vec::new())
        } else if arity <= 1 << 16 {
            Codes::U16(Vec::new())
        } else {
            Codes::U32(Vec::new())
        }
    }

    /// Number of stored codes.
    pub fn len(&self) -> usize {
        match self {
            Codes::U8(v) => v.len(),
            Codes::U16(v) => v.len(),
            Codes::U32(v) => v.len(),
        }
    }

    /// `true` when no codes are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The code at row `i`.
    #[inline]
    pub fn get(&self, i: usize) -> usize {
        match self {
            Codes::U8(v) => v[i] as usize,
            Codes::U16(v) => v[i] as usize,
            Codes::U32(v) => v[i] as usize,
        }
    }

    /// Append a code (caller has range-checked it against the arity).
    #[inline]
    pub fn push(&mut self, code: usize) {
        match self {
            Codes::U8(v) => v.push(code as u8),
            Codes::U16(v) => v.push(code as u16),
            Codes::U32(v) => v.push(code as u32),
        }
    }

    /// Overwrite the code at row `i`.
    #[inline]
    pub fn set(&mut self, i: usize, code: usize) {
        match self {
            Codes::U8(v) => v[i] = code as u8,
            Codes::U16(v) => v[i] = code as u16,
            Codes::U32(v) => v[i] = code as u32,
        }
    }

    /// A borrowed view of the codes.
    pub fn view(&self) -> CodesView<'_> {
        match self {
            Codes::U8(v) => CodesView::U8(v),
            Codes::U16(v) => CodesView::U16(v),
            Codes::U32(v) => CodesView::U32(v),
        }
    }
}

/// Borrowed nominal codes (one variant per storage width).
#[derive(Debug, Clone, Copy)]
pub enum CodesView<'a> {
    /// `u8`-backed codes.
    U8(&'a [u8]),
    /// `u16`-backed codes.
    U16(&'a [u16]),
    /// `u32`-backed codes.
    U32(&'a [u32]),
}

impl CodesView<'_> {
    /// The code at row `i`.
    #[inline]
    pub fn get(&self, i: usize) -> usize {
        match self {
            CodesView::U8(v) => v[i] as usize,
            CodesView::U16(v) => v[i] as usize,
            CodesView::U32(v) => v[i] as usize,
        }
    }

    /// Number of codes in the view.
    pub fn len(&self) -> usize {
        match self {
            CodesView::U8(v) => v.len(),
            CodesView::U16(v) => v.len(),
            CodesView::U32(v) => v.len(),
        }
    }

    /// `true` when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One attribute's worth of values in columnar layout.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Numeric attribute: raw values (missing cells hold `0.0`).
    Numeric {
        /// Contiguous cell values.
        values: Vec<f64>,
        /// Per-row validity.
        valid: Bitmap,
    },
    /// Nominal attribute: dense domain-index codes.
    Nominal {
        /// Dense codes (missing cells hold `0`).
        codes: Codes,
        /// Domain size, for insert-time range validation.
        arity: usize,
        /// Per-row validity.
        valid: Bitmap,
    },
    /// String attribute: indices into the dataset string table.
    Str {
        /// Interned string-table ids (missing cells hold `0`).
        ids: Vec<u32>,
        /// Per-row validity.
        valid: Bitmap,
    },
}

impl Column {
    /// An empty column matching `attr`'s kind.
    pub fn for_attribute(attr: &Attribute) -> Column {
        match attr.kind() {
            AttributeKind::Nominal(labels) => Column::Nominal {
                codes: Codes::for_arity(labels.len()),
                arity: labels.len(),
                valid: Bitmap::new(),
            },
            AttributeKind::Numeric => Column::Numeric {
                values: Vec::new(),
                valid: Bitmap::new(),
            },
            AttributeKind::Str => Column::Str {
                ids: Vec::new(),
                valid: Bitmap::new(),
            },
        }
    }

    /// Number of rows stored.
    pub fn len(&self) -> usize {
        match self {
            Column::Numeric { valid, .. }
            | Column::Nominal { valid, .. }
            | Column::Str { valid, .. } => valid.len(),
        }
    }

    /// `true` when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The validity bitmap.
    pub fn validity(&self) -> &Bitmap {
        match self {
            Column::Numeric { valid, .. }
            | Column::Nominal { valid, .. }
            | Column::Str { valid, .. } => valid,
        }
    }

    /// The encoded `f64` value at row `i` (`NaN` when missing) — the
    /// row-major compatibility shim behind [`crate::Dataset::value`].
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        match self {
            Column::Numeric { values, valid } => {
                if valid.get(i) {
                    values[i]
                } else {
                    f64::NAN
                }
            }
            Column::Nominal { codes, valid, .. } => {
                if valid.get(i) {
                    codes.get(i) as f64
                } else {
                    f64::NAN
                }
            }
            Column::Str { ids, valid } => {
                if valid.get(i) {
                    ids[i] as f64
                } else {
                    f64::NAN
                }
            }
        }
    }

    /// `true` when row `i` is missing.
    #[inline]
    pub fn is_missing(&self, i: usize) -> bool {
        !self.validity().get(i)
    }

    /// Check an encoded value without storing it — the read-only half
    /// of [`Column::push_encoded`], used to validate a whole row before
    /// any column is mutated (so a rejected row leaves no ragged state).
    pub fn validate_encoded(&self, v: f64, attr: &Attribute, num_strings: usize) -> Result<()> {
        if v.is_nan() {
            return Ok(());
        }
        match self {
            Column::Numeric { .. } => Ok(()),
            Column::Nominal { arity, .. } => check_code(v, *arity, attr).map(|_| ()),
            Column::Str { .. } => check_code(v, num_strings, attr).map(|_| ()),
        }
    }

    /// Append one encoded value (`NaN` = missing). Nominal codes are
    /// validated against the domain arity; string ids against
    /// `num_strings` (the interned-table length at insert time).
    pub fn push_encoded(&mut self, v: f64, attr: &Attribute, num_strings: usize) -> Result<()> {
        if v.is_nan() {
            match self {
                Column::Numeric { values, valid } => {
                    values.push(0.0);
                    valid.push(false);
                }
                Column::Nominal { codes, valid, .. } => {
                    codes.push(0);
                    valid.push(false);
                }
                Column::Str { ids, valid } => {
                    ids.push(0);
                    valid.push(false);
                }
            }
            return Ok(());
        }
        match self {
            Column::Numeric { values, valid } => {
                values.push(v);
                valid.push(true);
            }
            Column::Nominal {
                codes,
                arity,
                valid,
            } => {
                let code = check_code(v, *arity, attr)?;
                codes.push(code);
                valid.push(true);
            }
            Column::Str { ids, valid } => {
                let id = check_code(v, num_strings, attr)?;
                ids.push(id as u32);
                valid.push(true);
            }
        }
        Ok(())
    }

    /// Overwrite row `i` with an encoded value (`NaN` = missing).
    ///
    /// Panics when a nominal code is outside the attribute's domain —
    /// unlike the fallible insert path, in-place rewrites are only
    /// produced by fitted filters whose codes are constructed in range.
    #[inline]
    pub fn set_encoded(&mut self, i: usize, v: f64) {
        if v.is_nan() {
            match self {
                Column::Numeric { values, valid } => {
                    values[i] = 0.0;
                    valid.set(i, false);
                }
                Column::Nominal { codes, valid, .. } => {
                    codes.set(i, 0);
                    valid.set(i, false);
                }
                Column::Str { ids, valid } => {
                    ids[i] = 0;
                    valid.set(i, false);
                }
            }
            return;
        }
        match self {
            Column::Numeric { values, valid } => {
                values[i] = v;
                valid.set(i, true);
            }
            Column::Nominal {
                codes,
                arity,
                valid,
            } => {
                let code = v as usize;
                assert!(
                    v >= 0.0 && v == v.trunc() && code < *arity,
                    "nominal code {v} out of range (domain arity {arity})"
                );
                codes.set(i, code);
                valid.set(i, true);
            }
            Column::Str { ids, valid } => {
                ids[i] = v as u32;
                valid.set(i, true);
            }
        }
    }

    /// Copy row `i` of `src` onto the end of `self` without the f64
    /// round trip (columns must be of the same kind).
    pub fn push_from(&mut self, src: &Column, i: usize) {
        match (self, src) {
            (
                Column::Numeric { values, valid },
                Column::Numeric {
                    values: sv,
                    valid: svalid,
                },
            ) => {
                let ok = svalid.get(i);
                values.push(if ok { sv[i] } else { 0.0 });
                valid.push(ok);
            }
            (
                Column::Nominal { codes, valid, .. },
                Column::Nominal {
                    codes: sc,
                    valid: svalid,
                    ..
                },
            ) => {
                let ok = svalid.get(i);
                codes.push(if ok { sc.get(i) } else { 0 });
                valid.push(ok);
            }
            (
                Column::Str { ids, valid },
                Column::Str {
                    ids: si,
                    valid: svalid,
                },
            ) => {
                let ok = svalid.get(i);
                ids.push(if ok { si[i] } else { 0 });
                valid.push(ok);
            }
            _ => panic!("push_from across mismatched column kinds"),
        }
    }

    /// Count of missing rows (popcount over the validity bitmap).
    pub fn missing_count(&self) -> usize {
        self.validity().count_missing()
    }

    /// A zero-copy borrow of the column.
    pub fn view(&self) -> ColumnView<'_> {
        match self {
            Column::Numeric { values, valid } => ColumnView::Numeric { values, valid },
            Column::Nominal { codes, valid, .. } => ColumnView::Nominal {
                codes: codes.view(),
                valid,
            },
            Column::Str { ids, valid } => ColumnView::Str { ids, valid },
        }
    }
}

/// Validate an encoded nominal/string value against its domain size.
fn check_code(v: f64, arity: usize, attr: &Attribute) -> Result<usize> {
    if v >= 0.0 && v == v.trunc() && (v as usize) < arity {
        Ok(v as usize)
    } else {
        Err(DataError::NominalRange {
            attribute: attr.name().to_string(),
            code: crate::dataset::format_numeric(v),
            arity,
        })
    }
}

/// A zero-copy borrowed view of one column — what the vectorized
/// kernels in `dm-algorithms` scan instead of per-cell `value()` calls.
#[derive(Debug, Clone, Copy)]
pub enum ColumnView<'a> {
    /// Numeric attribute.
    Numeric {
        /// Contiguous cell values (missing cells hold `0.0`).
        values: &'a [f64],
        /// Per-row validity.
        valid: &'a Bitmap,
    },
    /// Nominal attribute.
    Nominal {
        /// Dense codes.
        codes: CodesView<'a>,
        /// Per-row validity.
        valid: &'a Bitmap,
    },
    /// String attribute.
    Str {
        /// Interned string-table ids.
        ids: &'a [u32],
        /// Per-row validity.
        valid: &'a Bitmap,
    },
}

impl<'a> ColumnView<'a> {
    /// The validity bitmap.
    #[inline]
    pub fn validity(&self) -> &'a Bitmap {
        match self {
            ColumnView::Numeric { valid, .. }
            | ColumnView::Nominal { valid, .. }
            | ColumnView::Str { valid, .. } => valid,
        }
    }

    /// `true` when row `i` is missing.
    #[inline]
    pub fn is_missing(&self, i: usize) -> bool {
        !self.validity().get(i)
    }

    /// The encoded `f64` value at row `i` (`NaN` when missing).
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        match self {
            ColumnView::Numeric { values, valid } => {
                if valid.get(i) {
                    values[i]
                } else {
                    f64::NAN
                }
            }
            ColumnView::Nominal { codes, valid } => {
                if valid.get(i) {
                    codes.get(i) as f64
                } else {
                    f64::NAN
                }
            }
            ColumnView::Str { ids, valid } => {
                if valid.get(i) {
                    ids[i] as f64
                } else {
                    f64::NAN
                }
            }
        }
    }

    /// The domain/string-table index at row `i`, `None` when missing —
    /// the hoisted-out-of-the-loop accessor for contingency counting.
    #[inline]
    pub fn index_at(&self, i: usize) -> Option<usize> {
        match self {
            ColumnView::Nominal { codes, valid } => valid.get(i).then(|| codes.get(i)),
            ColumnView::Str { ids, valid } => valid.get(i).then(|| ids[i] as usize),
            ColumnView::Numeric { values, valid } => valid.get(i).then(|| values[i] as usize),
        }
    }

    /// The numeric cell slice and validity, when this is a numeric
    /// column (missing cells hold `0.0` in the slice).
    #[inline]
    pub fn numeric(&self) -> Option<(&'a [f64], &'a Bitmap)> {
        match self {
            ColumnView::Numeric { values, valid } => Some((values, valid)),
            _ => None,
        }
    }

    /// The code view and validity, when this is a nominal column.
    #[inline]
    pub fn nominal(&self) -> Option<(CodesView<'a>, &'a Bitmap)> {
        match self {
            ColumnView::Nominal { codes, valid } => Some((*codes, valid)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_push_get_set() {
        let mut b = Bitmap::new();
        for i in 0..130 {
            b.push(i % 3 != 0);
        }
        assert_eq!(b.len(), 130);
        for i in 0..130 {
            assert_eq!(b.get(i), i % 3 != 0, "bit {i}");
        }
        assert_eq!(b.count_missing(), 44); // 0,3,..,129
        assert!(b.any_missing());
        b.set(0, true);
        assert!(b.get(0));
        b.set(1, false);
        assert!(!b.get(1));
    }

    #[test]
    fn bitmap_all_valid_word_boundaries() {
        for n in [0usize, 1, 63, 64, 65, 128, 200] {
            let mut b = Bitmap::new();
            for _ in 0..n {
                b.push(true);
            }
            assert!(b.all_valid(), "n={n}");
            assert_eq!(b.count_missing(), 0, "n={n}");
            if n > 0 {
                b.set(n - 1, false);
                assert!(!b.all_valid(), "n={n}");
                assert_eq!(b.count_missing(), 1, "n={n}");
            }
        }
    }

    #[test]
    fn codes_width_by_arity() {
        assert!(matches!(Codes::for_arity(2), Codes::U8(_)));
        assert!(matches!(Codes::for_arity(256), Codes::U8(_)));
        assert!(matches!(Codes::for_arity(257), Codes::U16(_)));
        assert!(matches!(Codes::for_arity(1 << 16), Codes::U16(_)));
        assert!(matches!(Codes::for_arity((1 << 16) + 1), Codes::U32(_)));
    }

    #[test]
    fn codes_roundtrip() {
        let mut c = Codes::for_arity(300);
        c.push(0);
        c.push(299);
        assert_eq!(c.get(0), 0);
        assert_eq!(c.get(1), 299);
        c.set(0, 7);
        assert_eq!(c.get(0), 7);
        assert_eq!(c.view().get(1), 299);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn nominal_column_rejects_out_of_range() {
        let attr = Attribute::nominal("c", ["a", "b"]);
        let mut col = Column::for_attribute(&attr);
        col.push_encoded(1.0, &attr, 0).unwrap();
        let err = col.push_encoded(2.0, &attr, 0).unwrap_err();
        assert!(matches!(err, DataError::NominalRange { arity: 2, .. }));
        let err = col.push_encoded(-1.0, &attr, 0).unwrap_err();
        assert!(matches!(err, DataError::NominalRange { .. }));
        let err = col.push_encoded(0.5, &attr, 0).unwrap_err();
        assert!(matches!(err, DataError::NominalRange { .. }));
        // Missing always accepted.
        col.push_encoded(f64::NAN, &attr, 0).unwrap();
        assert_eq!(col.len(), 2);
        assert!(col.is_missing(1));
        assert_eq!(col.get(0), 1.0);
    }

    #[test]
    fn numeric_column_missing_holds_zero_filler() {
        let attr = Attribute::numeric("x");
        let mut col = Column::for_attribute(&attr);
        col.push_encoded(3.5, &attr, 0).unwrap();
        col.push_encoded(f64::NAN, &attr, 0).unwrap();
        assert_eq!(col.get(0), 3.5);
        assert!(col.get(1).is_nan());
        let (values, valid) = col.view().numeric().unwrap();
        assert_eq!(values, &[3.5, 0.0]);
        assert!(!valid.get(1));
        assert_eq!(col.missing_count(), 1);
    }

    #[test]
    fn set_encoded_flips_validity() {
        let attr = Attribute::numeric("x");
        let mut col = Column::for_attribute(&attr);
        col.push_encoded(1.0, &attr, 0).unwrap();
        col.set_encoded(0, f64::NAN);
        assert!(col.is_missing(0));
        col.set_encoded(0, 9.0);
        assert_eq!(col.get(0), 9.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_encoded_panics_on_bad_nominal_code() {
        let attr = Attribute::nominal("c", ["a", "b"]);
        let mut col = Column::for_attribute(&attr);
        col.push_encoded(0.0, &attr, 0).unwrap();
        col.set_encoded(0, 5.0);
    }

    #[test]
    fn push_from_copies_missing_state() {
        let attr = Attribute::nominal("c", ["a", "b", "c"]);
        let mut src = Column::for_attribute(&attr);
        src.push_encoded(2.0, &attr, 0).unwrap();
        src.push_encoded(f64::NAN, &attr, 0).unwrap();
        let mut dst = Column::for_attribute(&attr);
        dst.push_from(&src, 1);
        dst.push_from(&src, 0);
        assert!(dst.is_missing(0));
        assert_eq!(dst.get(1), 2.0);
    }

    #[test]
    fn index_at_none_when_missing() {
        let attr = Attribute::nominal("c", ["a", "b"]);
        let mut col = Column::for_attribute(&attr);
        col.push_encoded(1.0, &attr, 0).unwrap();
        col.push_encoded(f64::NAN, &attr, 0).unwrap();
        assert_eq!(col.view().index_at(0), Some(1));
        assert_eq!(col.view().index_at(1), None);
    }
}
