//! Record streaming: datasets as sequences of batches.
//!
//! The paper requires that "the framework should allow the streaming of
//! data from a remote machine along with the capability to process the
//! data locally … particularly important when large volumes of data
//! cannot be easily migrated" (§3). This module provides the
//! transport-agnostic half: a dataset is decomposed into a header plus
//! [`RecordBatch`]es which can flow through crossbeam channels (or the
//! simulated network in `dm-wsrf`) and be re-assembled or folded
//! incrementally on the consumer side.

use crate::dataset::Dataset;
use crate::error::{DataError, Result};
use crossbeam::channel::{bounded, Receiver, Sender};

/// A chunk of encoded rows travelling through a stream. Row values use
/// the same encoding as [`Dataset`] (row-major, `NaN` = missing).
#[derive(Debug, Clone, PartialEq)]
pub struct RecordBatch {
    /// Number of attributes per row.
    pub width: usize,
    /// `rows.len() == width * num_rows`.
    pub rows: Vec<f64>,
}

impl RecordBatch {
    /// Number of rows in the batch.
    pub fn num_rows(&self) -> usize {
        self.rows.len().checked_div(self.width).unwrap_or(0)
    }

    /// Borrow row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i * self.width..(i + 1) * self.width]
    }

    /// Serialised size in bytes (used by the transport cost model).
    pub fn byte_len(&self) -> usize {
        8 * self.rows.len() + 16
    }
}

/// Split a dataset into batches of at most `chunk_rows` rows.
pub fn chunk_dataset(ds: &Dataset, chunk_rows: usize) -> Result<Vec<RecordBatch>> {
    if chunk_rows == 0 {
        return Err(DataError::InvalidParameter(
            "chunk_rows must be >= 1".into(),
        ));
    }
    let width = ds.num_attributes();
    let mut batches = Vec::new();
    let mut current = Vec::with_capacity(chunk_rows * width);
    let mut scratch = Vec::with_capacity(width);
    for r in 0..ds.num_instances() {
        ds.copy_row_into(r, &mut scratch);
        current.extend_from_slice(&scratch);
        if current.len() == chunk_rows * width {
            batches.push(RecordBatch {
                width,
                rows: std::mem::take(&mut current),
            });
            current.reserve(chunk_rows * width);
        }
    }
    if !current.is_empty() {
        batches.push(RecordBatch {
            width,
            rows: current,
        });
    }
    Ok(batches)
}

/// The producer half of a record stream.
#[derive(Debug, Clone)]
pub struct StreamSender {
    tx: Sender<RecordBatch>,
}

/// The consumer half of a record stream: the dataset header plus a
/// channel of batches.
#[derive(Debug)]
pub struct StreamReceiver {
    header: Dataset,
    rx: Receiver<RecordBatch>,
}

/// Open a bounded record stream carrying rows for `header`'s schema.
/// `capacity` is the number of in-flight batches before the producer
/// blocks (back-pressure).
pub fn record_stream(header: &Dataset, capacity: usize) -> (StreamSender, StreamReceiver) {
    let (tx, rx) = bounded(capacity.max(1));
    (
        StreamSender { tx },
        StreamReceiver {
            header: header.header_clone(),
            rx,
        },
    )
}

impl StreamSender {
    /// Send one batch; fails with [`DataError::StreamClosed`] when the
    /// receiver is gone.
    pub fn send(&self, batch: RecordBatch) -> Result<()> {
        self.tx.send(batch).map_err(|_| DataError::StreamClosed)
    }

    /// Chunk and send an entire dataset, then drop the sender by value
    /// (closing the stream).
    pub fn send_dataset(self, ds: &Dataset, chunk_rows: usize) -> Result<()> {
        for batch in chunk_dataset(ds, chunk_rows)? {
            self.send(batch)?;
        }
        Ok(())
    }
}

impl StreamReceiver {
    /// The schema of the streamed records.
    pub fn header(&self) -> &Dataset {
        &self.header
    }

    /// Receive the next batch; `None` when the stream is closed.
    pub fn recv(&self) -> Option<RecordBatch> {
        self.rx.recv().ok()
    }

    /// Drain the stream into a full dataset (the "migrate" strategy).
    pub fn collect(self) -> Result<Dataset> {
        let mut ds = self.header.clone();
        let width = ds.num_attributes();
        while let Ok(batch) = self.rx.recv() {
            if batch.width != width {
                return Err(DataError::Arity {
                    got: batch.width,
                    expected: width,
                });
            }
            for i in 0..batch.num_rows() {
                ds.push_row(batch.row(i).to_vec())?;
            }
        }
        Ok(ds)
    }

    /// Fold over batches without materialising the whole dataset (the
    /// "process locally while streaming" strategy). The folder sees each
    /// batch once, in order.
    pub fn fold<T, F: FnMut(T, &RecordBatch) -> T>(self, init: T, mut f: F) -> T {
        let mut acc = init;
        while let Ok(batch) = self.rx.recv() {
            acc = f(acc, &batch);
        }
        acc
    }
}

/// An incremental mean/count aggregator usable as a streaming consumer —
/// demonstrates single-pass processing for algorithms with stream
/// support (the paper: "provided the algorithm being used has support
/// for streaming").
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    /// Per-attribute count of non-missing values.
    pub count: Vec<f64>,
    /// Per-attribute running mean of non-missing values.
    pub mean: Vec<f64>,
    /// Total rows observed.
    pub rows: usize,
}

impl RunningStats {
    /// Create an aggregator for `width` attributes.
    pub fn new(width: usize) -> RunningStats {
        RunningStats {
            count: vec![0.0; width],
            mean: vec![0.0; width],
            rows: 0,
        }
    }

    /// Absorb one batch (Welford update per attribute).
    pub fn update(&mut self, batch: &RecordBatch) {
        for i in 0..batch.num_rows() {
            self.rows += 1;
            for (a, &v) in batch.row(i).iter().enumerate() {
                if !v.is_nan() {
                    self.count[a] += 1.0;
                    self.mean[a] += (v - self.mean[a]) / self.count[a];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;

    fn toy(n: usize) -> Dataset {
        let mut ds = Dataset::new(
            "toy",
            vec![Attribute::numeric("x"), Attribute::numeric("y")],
        );
        for i in 0..n {
            ds.push_row(vec![i as f64, (2 * i) as f64]).unwrap();
        }
        ds
    }

    #[test]
    fn chunking_covers_all_rows() {
        let ds = toy(10);
        let batches = chunk_dataset(&ds, 3).unwrap();
        assert_eq!(batches.len(), 4);
        assert_eq!(batches[0].num_rows(), 3);
        assert_eq!(batches[3].num_rows(), 1);
        let total: usize = batches.iter().map(RecordBatch::num_rows).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn zero_chunk_rejected() {
        assert!(chunk_dataset(&toy(3), 0).is_err());
    }

    #[test]
    fn stream_roundtrip_collect() {
        let ds = toy(25);
        let (tx, rx) = record_stream(&ds, 4);
        let src = ds.clone();
        let producer = std::thread::spawn(move || tx.send_dataset(&src, 7).unwrap());
        let out = rx.collect().unwrap();
        producer.join().unwrap();
        assert_eq!(out.num_instances(), 25);
        assert_eq!(out.value(24, 1), 48.0);
    }

    #[test]
    fn stream_fold_processes_incrementally() {
        let ds = toy(100);
        let (tx, rx) = record_stream(&ds, 2);
        let src = ds.clone();
        let producer = std::thread::spawn(move || tx.send_dataset(&src, 10).unwrap());
        let stats = rx.fold(RunningStats::new(2), |mut s, b| {
            s.update(b);
            s
        });
        producer.join().unwrap();
        assert_eq!(stats.rows, 100);
        assert!((stats.mean[0] - 49.5).abs() < 1e-9);
        assert!((stats.mean[1] - 99.0).abs() < 1e-9);
    }

    #[test]
    fn send_after_receiver_drop_errors() {
        let ds = toy(1);
        let (tx, rx) = record_stream(&ds, 1);
        drop(rx);
        let err = tx.send(RecordBatch {
            width: 2,
            rows: vec![1.0, 2.0],
        });
        assert!(matches!(err, Err(DataError::StreamClosed)));
    }

    #[test]
    fn width_mismatch_detected_on_collect() {
        let ds = toy(1);
        let (tx, rx) = record_stream(&ds, 1);
        tx.send(RecordBatch {
            width: 3,
            rows: vec![1.0, 2.0, 3.0],
        })
        .unwrap();
        drop(tx);
        assert!(rx.collect().is_err());
    }

    #[test]
    fn running_stats_skips_missing() {
        let mut s = RunningStats::new(1);
        s.update(&RecordBatch {
            width: 1,
            rows: vec![1.0, f64::NAN, 3.0],
        });
        assert_eq!(s.rows, 3);
        assert_eq!(s.count[0], 2.0);
        assert!((s.mean[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn batch_byte_len_scales_with_rows() {
        let b = RecordBatch {
            width: 2,
            rows: vec![0.0; 20],
        };
        assert_eq!(b.byte_len(), 8 * 20 + 16);
    }
}
