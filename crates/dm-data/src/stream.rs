//! Record streaming: datasets as a schema header plus columnar batches.
//!
//! The paper requires that "the framework should allow the streaming of
//! data from a remote machine along with the capability to process the
//! data locally … particularly important when large volumes of data
//! cannot be easily migrated" (§3). This module provides the
//! transport-agnostic half: a dataset is decomposed into a
//! [`StreamHeader`] (schema, nominal domains, and the producer's
//! interned string table) followed by [`RecordBatch`]es — per-attribute
//! [`Column`] slices with validity bitmaps, the same layout as the
//! columnar [`Dataset`] engine, not the legacy row-major `NaN`
//! sentinel. Batches flow through crossbeam channels (or, serialised
//! with [`RecordBatch::to_bytes`], through the simulated network in
//! `dm-wsrf`) and are re-assembled or folded incrementally on the
//! consumer side.
//!
//! Receive-side hardening: every batch is validated against the stream
//! header before a single cell is applied — ragged buffers, mismatched
//! column kinds, out-of-domain nominal codes and dangling string-table
//! ids are rejected with a [`DataError`] instead of panicking or
//! silently remapping values. The header carries the producer's string
//! table and nominal domains precisely so interned ids replay losslessly
//! on the consumer (the consumer never re-derives them from its own
//! dictionary state).
//!
//! The serialised forms (`FSH1` header frames, `FSB1` batch frames) are
//! documented in DESIGN.md; [`RecordBatch::byte_len`] is exact — it
//! always equals `to_bytes().len()`, so the transport cost model charges
//! precisely the bytes that travel.

use crate::attribute::{Attribute, AttributeKind};
use crate::column::{Bitmap, Codes, Column};
use crate::dataset::Dataset;
use crate::error::{DataError, Result};
use crossbeam::channel::{bounded, Receiver, Sender};
use std::ops::Range;

/// Magic prefix of a serialised [`StreamHeader`].
const HEADER_MAGIC: &[u8; 4] = b"FSH1";
/// Magic prefix of a serialised [`RecordBatch`].
const BATCH_MAGIC: &[u8; 4] = b"FSB1";

// ---------------------------------------------------------------------------
// Byte codec helpers (deliberately local: dm-data has no serialisation
// dependency, and the frame layout is part of the wire contract).
// ---------------------------------------------------------------------------

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// Sequential reader over a serialised frame; errors are reported as
/// [`DataError::Parse`] with a frame-relative description.
struct FrameReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FrameReader<'a> {
    fn new(buf: &'a [u8]) -> FrameReader<'a> {
        FrameReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(DataError::Parse {
                line: 0,
                message: format!(
                    "truncated stream frame: wanted {n} bytes at offset {}, have {}",
                    self.pos,
                    self.buf.len()
                ),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn get_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn get_usize(&mut self) -> Result<usize> {
        let v = self.get_u64()?;
        // A hostile length larger than the frame itself cannot be real.
        if v > self.buf.len() as u64 && v != u64::MAX {
            return Err(DataError::Parse {
                line: 0,
                message: format!("stream frame length {v} exceeds frame size"),
            });
        }
        Ok(v as usize)
    }

    fn get_f64(&mut self) -> Result<f64> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn get_str(&mut self) -> Result<String> {
        let len = self.get_usize()?;
        let b = self.take(len)?;
        String::from_utf8(b.to_vec()).map_err(|e| DataError::Parse {
            line: 0,
            message: format!("invalid utf-8 in stream frame: {e}"),
        })
    }

    fn expect_magic(&mut self, magic: &[u8; 4], what: &str) -> Result<()> {
        let got = self.take(4)?;
        if got != magic {
            return Err(DataError::Parse {
                line: 0,
                message: format!("bad {what} magic: {got:?}"),
            });
        }
        Ok(())
    }

    fn finish(&self, what: &str) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(DataError::Parse {
                line: 0,
                message: format!(
                    "{what} frame has {} trailing bytes",
                    self.buf.len() - self.pos
                ),
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Stream header
// ---------------------------------------------------------------------------

/// The schema half of a record stream: relation name, attribute
/// descriptors (with full nominal domains), the class index, and the
/// producer's interned string table. Carrying the dictionary state in
/// the header is what makes interned nominal codes and string ids
/// replay losslessly on the consumer — the consumer builds its dataset
/// from *this* header, never from its own (possibly divergent) domains.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamHeader {
    relation: String,
    attributes: Vec<Attribute>,
    class_index: Option<usize>,
    strings: Vec<String>,
}

impl StreamHeader {
    /// Snapshot the schema and dictionary state of `ds`.
    pub fn of(ds: &Dataset) -> StreamHeader {
        StreamHeader {
            relation: ds.relation().to_string(),
            attributes: ds.attributes().to_vec(),
            class_index: ds.class_index(),
            strings: ds.strings().to_vec(),
        }
    }

    /// The relation name.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// Attribute descriptors, in column order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Number of attributes (batch columns).
    pub fn num_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// The class attribute index, if one was set on the producer.
    pub fn class_index(&self) -> Option<usize> {
        self.class_index
    }

    /// The producer's interned string table.
    pub fn strings(&self) -> &[String] {
        &self.strings
    }

    /// Build an empty [`Dataset`] carrying this schema: class index set
    /// and the producer's string table re-interned in order, so encoded
    /// batch cells append without remapping.
    pub fn to_dataset(&self) -> Dataset {
        let mut ds = Dataset::new(self.relation.clone(), self.attributes.clone());
        ds.set_class_index(self.class_index)
            .expect("class index was valid on the producer");
        for s in &self.strings {
            ds.intern_string(s.clone());
        }
        ds
    }

    /// Serialise into an `FSH1` frame (see DESIGN.md).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(HEADER_MAGIC);
        put_str(&mut buf, &self.relation);
        put_u64(&mut buf, self.attributes.len() as u64);
        for attr in &self.attributes {
            match attr.kind() {
                AttributeKind::Numeric => {
                    buf.push(0);
                    put_str(&mut buf, attr.name());
                }
                AttributeKind::Nominal(labels) => {
                    buf.push(1);
                    put_str(&mut buf, attr.name());
                    put_u64(&mut buf, labels.len() as u64);
                    for l in labels {
                        put_str(&mut buf, l);
                    }
                }
                AttributeKind::Str => {
                    buf.push(2);
                    put_str(&mut buf, attr.name());
                }
            }
        }
        put_u64(&mut buf, self.class_index.map_or(u64::MAX, |c| c as u64));
        put_u64(&mut buf, self.strings.len() as u64);
        for s in &self.strings {
            put_str(&mut buf, s);
        }
        buf
    }

    /// Decode an `FSH1` frame.
    pub fn from_bytes(bytes: &[u8]) -> Result<StreamHeader> {
        let mut r = FrameReader::new(bytes);
        r.expect_magic(HEADER_MAGIC, "stream header")?;
        let relation = r.get_str()?;
        let n_attrs = r.get_usize()?;
        let mut attributes = Vec::with_capacity(n_attrs);
        for _ in 0..n_attrs {
            let tag = r.get_u8()?;
            let name = r.get_str()?;
            attributes.push(match tag {
                0 => Attribute::numeric(name),
                1 => {
                    let n_labels = r.get_usize()?;
                    let labels: Result<Vec<String>> = (0..n_labels).map(|_| r.get_str()).collect();
                    Attribute::nominal(name, labels?)
                }
                2 => Attribute::string(name),
                other => {
                    return Err(DataError::Parse {
                        line: 0,
                        message: format!("unknown attribute tag {other}"),
                    })
                }
            });
        }
        let raw_class = r.get_u64()?;
        let class_index = if raw_class == u64::MAX {
            None
        } else {
            let c = raw_class as usize;
            if c >= attributes.len() {
                return Err(DataError::AttributeIndex {
                    index: c,
                    len: attributes.len(),
                });
            }
            Some(c)
        };
        let n_strings = r.get_usize()?;
        let strings: Result<Vec<String>> = (0..n_strings).map(|_| r.get_str()).collect();
        let header = StreamHeader {
            relation,
            attributes,
            class_index,
            strings: strings?,
        };
        r.finish("stream header")?;
        Ok(header)
    }
}

// ---------------------------------------------------------------------------
// Record batch
// ---------------------------------------------------------------------------

/// A chunk of rows travelling through a stream, in the same columnar
/// layout as the [`Dataset`] engine: one [`Column`] per attribute
/// (values plus a validity bitmap — no `NaN` sentinel on the wire) and
/// per-row instance weights. `num_rows` is explicit so zero-attribute
/// datasets still count rows.
///
/// Fields are public so producers can assemble batches directly, which
/// also means a batch from an untrusted producer may be *ragged*
/// (buffers of unequal length) or reference domains the header does not
/// define. Consumers must call [`RecordBatch::validate`] before
/// applying a batch; [`StreamReceiver::collect`] and
/// [`StreamReceiver::fold`] do so on every batch received.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordBatch {
    /// Rows this batch declares. Every column and the weight buffer
    /// must cover exactly this many rows to pass validation.
    pub num_rows: usize,
    /// Per-attribute columnar buffers, parallel to the stream header's
    /// attribute order.
    pub columns: Vec<Column>,
    /// Per-row instance weights (`weights.len() == num_rows`).
    pub weights: Vec<f64>,
}

impl RecordBatch {
    /// Snapshot rows `range` of `ds` into a batch.
    pub fn from_rows(ds: &Dataset, range: Range<usize>) -> RecordBatch {
        let num_strings = ds.strings().len();
        let mut columns: Vec<Column> = ds.attributes().iter().map(Column::for_attribute).collect();
        for (a, col) in columns.iter_mut().enumerate() {
            let attr = &ds.attributes()[a];
            let view = ds.column(a);
            for r in range.clone() {
                col.push_encoded(view.get(r), attr, num_strings)
                    .expect("cells of a valid dataset re-encode");
            }
        }
        RecordBatch {
            num_rows: range.len(),
            columns,
            weights: range.map(|r| ds.weight(r)).collect(),
        }
    }

    /// Number of rows the batch declares.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns (attributes) in the batch.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// The encoded cell at (`row`, `attr`) — `NaN` when missing, domain
    /// index for nominal cells, string-table id for string cells.
    pub fn value(&self, row: usize, attr: usize) -> f64 {
        self.columns[attr].get(row)
    }

    /// Copy row `row` into `buf` as encoded values (cleared first).
    pub fn copy_row_into(&self, row: usize, buf: &mut Vec<f64>) {
        buf.clear();
        buf.extend(self.columns.iter().map(|c| c.get(row)));
    }

    /// Row `row` as a fresh encoded vector.
    pub fn row_values(&self, row: usize) -> Vec<f64> {
        let mut buf = Vec::with_capacity(self.columns.len());
        self.copy_row_into(row, &mut buf);
        buf
    }

    /// Validate this batch against the stream header: column count and
    /// kinds must match the schema, every buffer must cover exactly
    /// `num_rows` (ragged batches are rejected with
    /// [`DataError::RaggedBatch`]), nominal codes must lie inside their
    /// domains, and string ids inside the header's string table.
    pub fn validate(&self, header: &StreamHeader) -> Result<()> {
        if self.columns.len() != header.num_attributes() {
            return Err(DataError::Arity {
                got: self.columns.len(),
                expected: header.num_attributes(),
            });
        }
        if self.weights.len() != self.num_rows {
            return Err(DataError::RaggedBatch {
                column: "weights".into(),
                len: self.weights.len(),
                expected: self.num_rows,
            });
        }
        for (col, attr) in self.columns.iter().zip(header.attributes()) {
            if col.len() != self.num_rows {
                return Err(DataError::RaggedBatch {
                    column: attr.name().to_string(),
                    len: col.len(),
                    expected: self.num_rows,
                });
            }
            let kind_ok = matches!(
                (col, attr.kind()),
                (Column::Numeric { .. }, AttributeKind::Numeric)
                    | (Column::Nominal { .. }, AttributeKind::Nominal(_))
                    | (Column::Str { .. }, AttributeKind::Str)
            );
            if !kind_ok {
                return Err(DataError::KindMismatch {
                    attribute: attr.name().to_string(),
                    expected: match attr.kind() {
                        AttributeKind::Numeric => "numeric",
                        AttributeKind::Nominal(_) => "nominal",
                        AttributeKind::Str => "string",
                    },
                });
            }
            // `Column::len` reports the bitmap length; the payload
            // buffer can still disagree with it on a hand-assembled
            // batch, so check it separately before any indexed access.
            let payload_len = match col {
                Column::Numeric { values, .. } => values.len(),
                Column::Nominal { codes, .. } => codes.len(),
                Column::Str { ids, .. } => ids.len(),
            };
            if payload_len != self.num_rows {
                return Err(DataError::RaggedBatch {
                    column: attr.name().to_string(),
                    len: payload_len,
                    expected: self.num_rows,
                });
            }
            // Codes are replayed verbatim on the consumer, so check
            // them against the *header's* domains here (the producer's
            // buffers need not have been built through a validated
            // Dataset insert path).
            match col {
                Column::Nominal { codes, valid, .. } => {
                    let arity = attr.num_labels();
                    for i in 0..self.num_rows {
                        if valid.get(i) && codes.get(i) >= arity {
                            return Err(DataError::NominalRange {
                                attribute: attr.name().to_string(),
                                code: codes.get(i).to_string(),
                                arity,
                            });
                        }
                    }
                }
                Column::Str { ids, valid } => {
                    let table = header.strings().len();
                    for (i, &id) in ids.iter().enumerate() {
                        if valid.get(i) && id as usize >= table {
                            return Err(DataError::NominalRange {
                                attribute: attr.name().to_string(),
                                code: id.to_string(),
                                arity: table,
                            });
                        }
                    }
                }
                Column::Numeric { .. } => {}
            }
        }
        Ok(())
    }

    /// Exact serialised size in bytes: always equal to
    /// `self.to_bytes().len()`, so the transport cost model charges
    /// precisely the bytes that travel (pinned by tests).
    pub fn byte_len(&self) -> usize {
        let n = self.num_rows;
        // magic + num_rows + num_columns + weights flag.
        let mut len = 4 + 8 + 8 + 1;
        if !self.weights.iter().all(|&w| w == 1.0) {
            len += 8 * self.weights.len();
        }
        for col in &self.columns {
            len += 1; // column tag
            len += 1; // validity flag
            if !col.validity().all_valid() {
                len += 8 * n.div_ceil(64);
            }
            len += match col {
                Column::Numeric { .. } => 8 * n,
                Column::Nominal { codes, .. } => {
                    8 + 1
                        + n * match codes {
                            Codes::U8(_) => 1,
                            Codes::U16(_) => 2,
                            Codes::U32(_) => 4,
                        }
                }
                Column::Str { .. } => 4 * n,
            };
        }
        len
    }

    /// Serialise into an `FSB1` frame (see DESIGN.md).
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.num_rows;
        let mut buf = Vec::with_capacity(self.byte_len());
        buf.extend_from_slice(BATCH_MAGIC);
        put_u64(&mut buf, n as u64);
        put_u64(&mut buf, self.columns.len() as u64);
        if self.weights.iter().all(|&w| w == 1.0) {
            buf.push(0); // unit weights elided
        } else {
            buf.push(1);
            for &w in &self.weights {
                put_f64(&mut buf, w);
            }
        }
        for col in &self.columns {
            let valid = col.validity();
            let write_validity = |buf: &mut Vec<u8>| {
                if valid.all_valid() {
                    buf.push(1);
                } else {
                    buf.push(0);
                    for i in 0..n.div_ceil(64) {
                        let mut word = 0u64;
                        for bit in 0..64 {
                            let row = i * 64 + bit;
                            if row < n && valid.get(row) {
                                word |= 1 << bit;
                            }
                        }
                        put_u64(buf, word);
                    }
                }
            };
            match col {
                Column::Numeric { values, .. } => {
                    buf.push(0);
                    write_validity(&mut buf);
                    for &v in values {
                        put_f64(&mut buf, v);
                    }
                }
                Column::Nominal { codes, arity, .. } => {
                    buf.push(1);
                    write_validity(&mut buf);
                    put_u64(&mut buf, *arity as u64);
                    match codes {
                        Codes::U8(v) => {
                            buf.push(1);
                            buf.extend_from_slice(v);
                        }
                        Codes::U16(v) => {
                            buf.push(2);
                            for &c in v {
                                buf.extend_from_slice(&c.to_le_bytes());
                            }
                        }
                        Codes::U32(v) => {
                            buf.push(4);
                            for &c in v {
                                buf.extend_from_slice(&c.to_le_bytes());
                            }
                        }
                    }
                }
                Column::Str { ids, .. } => {
                    buf.push(2);
                    write_validity(&mut buf);
                    for &id in ids {
                        buf.extend_from_slice(&id.to_le_bytes());
                    }
                }
            }
        }
        debug_assert_eq!(buf.len(), self.byte_len());
        buf
    }

    /// Decode an `FSB1` frame. Structural errors (truncation, unknown
    /// tags) surface as [`DataError::Parse`]; schema conformance is the
    /// caller's job via [`RecordBatch::validate`].
    pub fn from_bytes(bytes: &[u8]) -> Result<RecordBatch> {
        let mut r = FrameReader::new(bytes);
        r.expect_magic(BATCH_MAGIC, "record batch")?;
        let n = r.get_usize()?;
        let n_cols = r.get_usize()?;
        let weights = match r.get_u8()? {
            0 => vec![1.0; n],
            1 => (0..n).map(|_| r.get_f64()).collect::<Result<Vec<_>>>()?,
            other => {
                return Err(DataError::Parse {
                    line: 0,
                    message: format!("unknown weights flag {other}"),
                })
            }
        };
        let mut columns = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            let tag = r.get_u8()?;
            let valid = match r.get_u8()? {
                1 => {
                    let mut b = Bitmap::new();
                    for _ in 0..n {
                        b.push(true);
                    }
                    b
                }
                0 => {
                    let mut b = Bitmap::new();
                    let mut word = 0u64;
                    for row in 0..n {
                        if row % 64 == 0 {
                            word = r.get_u64()?;
                        }
                        b.push(word >> (row % 64) & 1 == 1);
                    }
                    b
                }
                other => {
                    return Err(DataError::Parse {
                        line: 0,
                        message: format!("unknown validity flag {other}"),
                    })
                }
            };
            columns.push(match tag {
                0 => Column::Numeric {
                    values: (0..n).map(|_| r.get_f64()).collect::<Result<Vec<_>>>()?,
                    valid,
                },
                1 => {
                    let arity = r.get_usize()?;
                    let width = r.get_u8()?;
                    let codes = match width {
                        1 => Codes::U8(r.take(n)?.to_vec()),
                        2 => {
                            let raw = r.take(2 * n)?;
                            Codes::U16(
                                raw.chunks_exact(2)
                                    .map(|c| u16::from_le_bytes(c.try_into().expect("2 bytes")))
                                    .collect(),
                            )
                        }
                        4 => {
                            let raw = r.take(4 * n)?;
                            Codes::U32(
                                raw.chunks_exact(4)
                                    .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
                                    .collect(),
                            )
                        }
                        other => {
                            return Err(DataError::Parse {
                                line: 0,
                                message: format!("unknown code width {other}"),
                            })
                        }
                    };
                    Column::Nominal {
                        codes,
                        arity,
                        valid,
                    }
                }
                2 => {
                    let raw = r.take(4 * n)?;
                    Column::Str {
                        ids: raw
                            .chunks_exact(4)
                            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
                            .collect(),
                        valid,
                    }
                }
                other => {
                    return Err(DataError::Parse {
                        line: 0,
                        message: format!("unknown column tag {other}"),
                    })
                }
            });
        }
        r.finish("record batch")?;
        Ok(RecordBatch {
            num_rows: n,
            columns,
            weights,
        })
    }
}

/// Split a dataset into batches of at most `chunk_rows` rows. Batches
/// are cut on row ranges, so a zero-attribute dataset with `n` rows
/// yields `ceil(n / chunk_rows)` batches whose `num_rows` cover all `n`
/// rows (not one empty batch per row).
pub fn chunk_dataset(ds: &Dataset, chunk_rows: usize) -> Result<Vec<RecordBatch>> {
    if chunk_rows == 0 {
        return Err(DataError::InvalidParameter(
            "chunk_rows must be >= 1".into(),
        ));
    }
    let n = ds.num_instances();
    let mut batches = Vec::with_capacity(n.div_ceil(chunk_rows));
    let mut start = 0;
    while start < n {
        let end = (start + chunk_rows).min(n);
        batches.push(RecordBatch::from_rows(ds, start..end));
        start = end;
    }
    Ok(batches)
}

// ---------------------------------------------------------------------------
// Bounded local stream
// ---------------------------------------------------------------------------

/// The producer half of a record stream.
#[derive(Debug, Clone)]
pub struct StreamSender {
    tx: Sender<RecordBatch>,
}

/// The consumer half of a record stream: the stream header (schema,
/// domains, string table) plus a bounded channel of batches.
#[derive(Debug)]
pub struct StreamReceiver {
    header: StreamHeader,
    rx: Receiver<RecordBatch>,
}

/// Open a bounded record stream carrying rows for `source`'s schema
/// *and dictionary state* (nominal domains and the interned string
/// table travel in the header, so string and high-arity nominal cells
/// round-trip losslessly). `capacity` is the number of in-flight
/// batches before the producer blocks (back-pressure).
pub fn record_stream(source: &Dataset, capacity: usize) -> (StreamSender, StreamReceiver) {
    let (tx, rx) = bounded(capacity.max(1));
    (
        StreamSender { tx },
        StreamReceiver {
            header: StreamHeader::of(source),
            rx,
        },
    )
}

impl StreamSender {
    /// Send one batch; fails with [`DataError::StreamClosed`] when the
    /// receiver is gone.
    pub fn send(&self, batch: RecordBatch) -> Result<()> {
        self.tx.send(batch).map_err(|_| DataError::StreamClosed)
    }

    /// Chunk and send an entire dataset, then drop the sender by value
    /// (closing the stream).
    pub fn send_dataset(self, ds: &Dataset, chunk_rows: usize) -> Result<()> {
        for batch in chunk_dataset(ds, chunk_rows)? {
            self.send(batch)?;
        }
        Ok(())
    }
}

impl StreamReceiver {
    /// The stream header (schema, domains, string table).
    pub fn header(&self) -> &StreamHeader {
        &self.header
    }

    /// Receive the next batch; `None` when the stream is closed. The
    /// batch is *not* yet validated — callers applying it by hand
    /// should run [`RecordBatch::validate`] first.
    pub fn recv(&self) -> Option<RecordBatch> {
        self.rx.recv().ok()
    }

    /// Drain the stream into a full dataset (the "migrate" strategy).
    /// Every batch is validated against the stream header before any of
    /// its rows are applied, so ragged or out-of-domain batches fail
    /// with a [`DataError`] instead of panicking mid-append.
    pub fn collect(self) -> Result<Dataset> {
        let mut ds = self.header.to_dataset();
        let mut buf = Vec::with_capacity(self.header.num_attributes());
        while let Ok(batch) = self.rx.recv() {
            batch.validate(&self.header)?;
            for r in 0..batch.num_rows() {
                batch.copy_row_into(r, &mut buf);
                ds.push_row_weighted(buf.clone(), batch.weights[r])?;
            }
        }
        Ok(ds)
    }

    /// Fold over batches without materialising the whole dataset (the
    /// "process locally while streaming" strategy). Each batch is
    /// validated against the stream header, then handed to the folder
    /// once, in order.
    pub fn fold<T, F: FnMut(T, &RecordBatch) -> T>(self, init: T, mut f: F) -> Result<T> {
        let mut acc = init;
        while let Ok(batch) = self.rx.recv() {
            batch.validate(&self.header)?;
            acc = f(acc, &batch);
        }
        Ok(acc)
    }
}

/// An incremental mean/count aggregator usable as a streaming consumer —
/// demonstrates single-pass processing for algorithms with stream
/// support (the paper: "provided the algorithm being used has support
/// for streaming"). Scans batch columns directly (validity bitmap, not
/// `NaN` probes).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningStats {
    /// Per-attribute count of non-missing values.
    pub count: Vec<f64>,
    /// Per-attribute running mean of non-missing values.
    pub mean: Vec<f64>,
    /// Total rows observed.
    pub rows: usize,
}

impl RunningStats {
    /// Create an aggregator for `width` attributes.
    pub fn new(width: usize) -> RunningStats {
        RunningStats {
            count: vec![0.0; width],
            mean: vec![0.0; width],
            rows: 0,
        }
    }

    /// Absorb one batch (Welford update per attribute).
    pub fn update(&mut self, batch: &RecordBatch) {
        self.rows += batch.num_rows();
        for (a, col) in batch.columns.iter().enumerate() {
            for i in 0..col.len() {
                let v = col.get(i);
                if !v.is_nan() {
                    self.count[a] += 1.0;
                    self.mean[a] += (v - self.mean[a]) / self.count[a];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arff::parse_arff;
    use crate::attribute::Attribute;

    fn toy(n: usize) -> Dataset {
        let mut ds = Dataset::new(
            "toy",
            vec![Attribute::numeric("x"), Attribute::numeric("y")],
        );
        for i in 0..n {
            ds.push_row(vec![i as f64, (2 * i) as f64]).unwrap();
        }
        ds
    }

    /// Notes dataset: string attribute, missing cells of every kind.
    fn notes() -> Dataset {
        parse_arff(
            "@relation notes\n\
             @attribute id numeric\n\
             @attribute note string\n\
             @attribute grade {low,high}\n\
             @data\n\
             1,'first note',low\n\
             2,?,high\n\
             ?,'third note',?\n",
        )
        .unwrap()
    }

    #[test]
    fn chunking_covers_all_rows() {
        let ds = toy(10);
        let batches = chunk_dataset(&ds, 3).unwrap();
        assert_eq!(batches.len(), 4);
        assert_eq!(batches[0].num_rows(), 3);
        assert_eq!(batches[3].num_rows(), 1);
        let total: usize = batches.iter().map(RecordBatch::num_rows).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn zero_chunk_rejected() {
        assert!(chunk_dataset(&toy(3), 0).is_err());
    }

    #[test]
    fn zero_attribute_dataset_chunks_by_rows() {
        // Satellite regression: the legacy row-major chunker emitted one
        // empty batch per row when width == 0 (its full-batch trigger
        // fired immediately). Row-range chunking must cover the 7 rows
        // in ceil(7/3) = 3 batches.
        let mut ds = Dataset::new("empty-schema", vec![]);
        for _ in 0..7 {
            ds.push_row(vec![]).unwrap();
        }
        let batches = chunk_dataset(&ds, 3).unwrap();
        assert_eq!(batches.len(), 3);
        let rows: usize = batches.iter().map(RecordBatch::num_rows).sum();
        assert_eq!(rows, 7);
        // And the stream round-trips the row count. The channel holds
        // fewer batches than the producer sends, so the producer must
        // run on its own thread (send blocks when the window is full).
        let (tx, rx) = record_stream(&ds, 2);
        let src = ds.clone();
        let producer = std::thread::spawn(move || tx.send_dataset(&src, 3).unwrap());
        let out = rx.collect().unwrap();
        producer.join().unwrap();
        assert_eq!(out.num_instances(), 7);
    }

    #[test]
    fn stream_roundtrip_collect() {
        let ds = toy(25);
        let (tx, rx) = record_stream(&ds, 4);
        let src = ds.clone();
        let producer = std::thread::spawn(move || tx.send_dataset(&src, 7).unwrap());
        let out = rx.collect().unwrap();
        producer.join().unwrap();
        assert_eq!(out, ds);
        assert_eq!(out.value(24, 1), 48.0);
    }

    #[test]
    fn stream_roundtrip_strings_and_high_arity_nominals() {
        // Satellite regression: the legacy receiver replayed interned
        // ids against its own `header_clone()`, whose empty string table
        // rejected (or remapped) every string cell. The header now
        // carries the producer's dictionary state.
        let ds = notes();
        assert_eq!(ds.strings().len(), 2);
        let (tx, rx) = record_stream(&ds, 2);
        tx.send_dataset(&ds, 2).unwrap();
        let out = rx.collect().unwrap();
        assert_eq!(out, ds);
        assert_eq!(out.string_at(out.value(0, 1) as usize), Some("first note"));
        assert!(out.instance(1).is_missing(1));
        assert!(out.instance(2).is_missing(0));
        assert!(out.instance(2).is_missing(2));

        // High-arity nominal (> 256 labels ⇒ u16 codes on the wire).
        let labels: Vec<String> = (0..300).map(|i| format!("l{i}")).collect();
        let mut wide = Dataset::new("wide", vec![Attribute::nominal("c", labels)]);
        for i in [0usize, 257, 299] {
            wide.push_row(vec![i as f64]).unwrap();
        }
        let (tx, rx) = record_stream(&wide, 2);
        tx.send_dataset(&wide, 2).unwrap();
        let out = rx.collect().unwrap();
        assert_eq!(out, wide);
        assert_eq!(out.value(1, 0), 257.0);
    }

    #[test]
    fn roundtrip_over_arff_corpus() {
        // Property pinned over the corpus: parse → chunk → stream →
        // collect is the identity for every corpus dataset, including
        // missing cells and string attributes, at several chunk sizes.
        let sources = [
            crate::corpus::breast_cancer_arff(),
            crate::arff::write_arff(&crate::corpus::weather_nominal()),
            crate::arff::write_arff(&crate::corpus::weather_numeric()),
            crate::arff::write_arff(&crate::corpus::nominal_classification(40, 4, 3, 2, 0.2, 7)),
            crate::arff::write_arff(&notes()),
        ];
        for (i, text) in sources.iter().enumerate() {
            let ds = parse_arff(text).unwrap();
            for chunk_rows in [1, 7, 64, usize::MAX >> 1] {
                let (tx, rx) = record_stream(&ds, 4);
                let src = ds.clone();
                let producer =
                    std::thread::spawn(move || tx.send_dataset(&src, chunk_rows).unwrap());
                let out = rx.collect().unwrap();
                producer.join().unwrap();
                assert_eq!(out, ds, "corpus source {i}, chunk_rows {chunk_rows}");
            }
        }
    }

    #[test]
    fn batch_bytes_roundtrip_and_exact_byte_len() {
        // Satellite regression: the legacy fixed 16-byte header
        // undercounted the serialised frame. byte_len must equal the
        // serialised length exactly, for every corpus shape.
        let sources = [
            parse_arff(&crate::corpus::breast_cancer_arff()).unwrap(),
            crate::corpus::weather_numeric(),
            notes(),
        ];
        for ds in &sources {
            for batch in chunk_dataset(ds, 9).unwrap() {
                let bytes = batch.to_bytes();
                assert_eq!(bytes.len(), batch.byte_len(), "{}", ds.relation());
                let back = RecordBatch::from_bytes(&bytes).unwrap();
                assert_eq!(back, batch, "{}", ds.relation());
            }
        }
        // Weighted rows take the explicit-weights branch.
        let mut ds = toy(70);
        ds.set_weight(3, 2.5);
        let batch = RecordBatch::from_rows(&ds, 0..70);
        assert_eq!(batch.to_bytes().len(), batch.byte_len());
        assert_eq!(RecordBatch::from_bytes(&batch.to_bytes()).unwrap(), batch);
    }

    #[test]
    fn header_bytes_roundtrip() {
        let ds = notes();
        let header = StreamHeader::of(&ds);
        let back = StreamHeader::from_bytes(&header.to_bytes()).unwrap();
        assert_eq!(back, header);
        assert_eq!(back.strings(), ds.strings());
        assert!(StreamHeader::from_bytes(b"FSXX").is_err());
        let bytes = header.to_bytes();
        assert!(StreamHeader::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn ragged_batch_rejected_at_receive_time() {
        // Satellite regression: the legacy row-major batch panicked in
        // `row()` when the buffer length was not a multiple of the
        // width, and `num_rows` silently floored. A ragged columnar
        // batch must surface as a DataError from collect()/fold(), not
        // a panic or silent truncation.
        let ds = toy(1);
        let mut ragged = RecordBatch::from_rows(&ds, 0..1);
        ragged.num_rows = 2; // declares 2 rows, buffers hold 1
        ragged.weights.push(1.0);
        let (tx, rx) = record_stream(&ds, 1);
        tx.send(ragged.clone()).unwrap();
        drop(tx);
        let err = rx.collect().unwrap_err();
        assert!(
            matches!(err, DataError::RaggedBatch { ref column, len: 1, expected: 2 } if column == "x"),
            "{err:?}"
        );

        let (tx, rx) = record_stream(&ds, 1);
        tx.send(ragged).unwrap();
        drop(tx);
        assert!(matches!(
            rx.fold(0usize, |acc, b| acc + b.num_rows()),
            Err(DataError::RaggedBatch { .. })
        ));

        // Ragged weights are caught too.
        let mut bad_weights = RecordBatch::from_rows(&ds, 0..1);
        bad_weights.weights.clear();
        let (tx, rx) = record_stream(&ds, 1);
        tx.send(bad_weights).unwrap();
        drop(tx);
        assert!(matches!(
            rx.collect(),
            Err(DataError::RaggedBatch { ref column, .. }) if column == "weights"
        ));
    }

    #[test]
    fn out_of_domain_codes_rejected_at_receive_time() {
        let ds = notes();
        let mut batch = RecordBatch::from_rows(&ds, 0..3);
        // Point a string cell past the header's table.
        if let Column::Str { ids, .. } = &mut batch.columns[1] {
            ids[0] = 99;
        }
        assert!(matches!(
            batch.validate(&StreamHeader::of(&ds)),
            Err(DataError::NominalRange { .. })
        ));
    }

    #[test]
    fn stream_fold_processes_incrementally() {
        let ds = toy(100);
        let (tx, rx) = record_stream(&ds, 2);
        let src = ds.clone();
        let producer = std::thread::spawn(move || tx.send_dataset(&src, 10).unwrap());
        let stats = rx
            .fold(RunningStats::new(2), |mut s, b| {
                s.update(b);
                s
            })
            .unwrap();
        producer.join().unwrap();
        assert_eq!(stats.rows, 100);
        assert!((stats.mean[0] - 49.5).abs() < 1e-9);
        assert!((stats.mean[1] - 99.0).abs() < 1e-9);
    }

    #[test]
    fn send_after_receiver_drop_errors() {
        let ds = toy(1);
        let (tx, rx) = record_stream(&ds, 1);
        drop(rx);
        let err = tx.send(RecordBatch::from_rows(&ds, 0..1));
        assert!(matches!(err, Err(DataError::StreamClosed)));
    }

    #[test]
    fn width_mismatch_detected_on_collect() {
        let ds = toy(1);
        let (tx, rx) = record_stream(&ds, 1);
        let wide = Dataset::new(
            "wide",
            vec![
                Attribute::numeric("a"),
                Attribute::numeric("b"),
                Attribute::numeric("c"),
            ],
        );
        let mut src = wide.clone();
        src.push_row(vec![1.0, 2.0, 3.0]).unwrap();
        tx.send(RecordBatch::from_rows(&src, 0..1)).unwrap();
        drop(tx);
        assert!(matches!(
            rx.collect(),
            Err(DataError::Arity {
                got: 3,
                expected: 2
            })
        ));
    }

    #[test]
    fn running_stats_skips_missing() {
        let mut ds = Dataset::new("m", vec![Attribute::numeric("x")]);
        ds.push_row(vec![1.0]).unwrap();
        ds.push_row(vec![f64::NAN]).unwrap();
        ds.push_row(vec![3.0]).unwrap();
        let mut s = RunningStats::new(1);
        s.update(&RecordBatch::from_rows(&ds, 0..3));
        assert_eq!(s.rows, 3);
        assert_eq!(s.count[0], 2.0);
        assert!((s.mean[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn batch_byte_len_scales_with_rows() {
        let small = RecordBatch::from_rows(&toy(10), 0..10);
        let large = RecordBatch::from_rows(&toy(1000), 0..1000);
        assert!(large.byte_len() > small.byte_len());
        // All-valid numeric columns cost ~8 bytes/cell plus framing.
        assert_eq!(
            large.byte_len() - small.byte_len(),
            2 * 8 * (1000 - 10) // two numeric columns
        );
    }
}
