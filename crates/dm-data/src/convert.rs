//! Format converters: the "data set manipulation tools" of the paper's
//! toolbox (§4.3) — CSV↔ARFF translation plus a registry of named
//! converters so the workflow layer can offer a converter library
//! ("a library of such converters may be necessary", §3.1).

use crate::arff::{parse_arff, write_arff};
use crate::csv::{parse_csv, write_csv};
use crate::dataset::Dataset;
use crate::error::{DataError, Result};

/// Data interchange formats understood by the toolkit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataFormat {
    /// Attribute-Relation File Format (WEKA native).
    Arff,
    /// Comma Separated Values.
    Csv,
}

impl DataFormat {
    /// Parse a format name (case-insensitive; accepts file extensions).
    pub fn from_name(name: &str) -> Result<DataFormat> {
        match name
            .trim()
            .trim_start_matches('.')
            .to_ascii_lowercase()
            .as_str()
        {
            "arff" => Ok(DataFormat::Arff),
            "csv" => Ok(DataFormat::Csv),
            other => Err(DataError::InvalidParameter(format!(
                "unknown data format {other:?}"
            ))),
        }
    }

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            DataFormat::Arff => "arff",
            DataFormat::Csv => "csv",
        }
    }

    /// Guess the format of raw text (ARFF files start with `@relation`
    /// or a `%` comment block).
    pub fn sniff(text: &str) -> DataFormat {
        for line in text.lines() {
            let t = line.trim();
            if t.is_empty() || t.starts_with('%') {
                continue;
            }
            if t.to_ascii_lowercase().starts_with("@relation") {
                return DataFormat::Arff;
            }
            break;
        }
        DataFormat::Csv
    }
}

/// Parse `text` in the given format.
pub fn parse(format: DataFormat, text: &str) -> Result<Dataset> {
    match format {
        DataFormat::Arff => parse_arff(text),
        DataFormat::Csv => parse_csv(text),
    }
}

/// Serialise `ds` in the given format.
pub fn write(format: DataFormat, ds: &Dataset) -> String {
    match format {
        DataFormat::Arff => write_arff(ds),
        DataFormat::Csv => write_csv(ds),
    }
}

/// Convert text from one format to another. CSV → ARFF performs type
/// inference (numeric columns stay numeric, everything else becomes a
/// nominal enumeration), matching the paper's CSV-to-ARFF tool.
///
/// ```
/// use dm_data::convert::{convert, DataFormat};
/// let arff = convert("a,b\n1,x\n2,y\n", DataFormat::Csv, DataFormat::Arff).unwrap();
/// assert!(arff.contains("@attribute a numeric"));
/// assert!(arff.contains("{x,y}"));
/// ```
pub fn convert(text: &str, from: DataFormat, to: DataFormat) -> Result<String> {
    let ds = parse(from, text)?;
    Ok(write(to, &ds))
}

/// A named converter entry, as presented in the workflow toolbox.
#[derive(Debug, Clone)]
pub struct Converter {
    /// Toolbox name, e.g. `"CSVToARFF"`.
    pub name: &'static str,
    /// Source format.
    pub from: DataFormat,
    /// Target format.
    pub to: DataFormat,
}

/// The converter library shipped with the toolkit.
pub fn converter_library() -> Vec<Converter> {
    vec![
        Converter {
            name: "CSVToARFF",
            from: DataFormat::Csv,
            to: DataFormat::Arff,
        },
        Converter {
            name: "ARFFToCSV",
            from: DataFormat::Arff,
            to: DataFormat::Csv,
        },
    ]
}

impl Converter {
    /// Apply this converter to raw text.
    pub fn apply(&self, text: &str) -> Result<String> {
        convert(text, self.from, self.to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_to_arff_and_back() {
        let csv = "age,class\n30,recur\n40,no-recur\n";
        let arff = convert(csv, DataFormat::Csv, DataFormat::Arff).unwrap();
        assert!(arff.contains("@relation"));
        let back = convert(&arff, DataFormat::Arff, DataFormat::Csv).unwrap();
        let ds = parse(DataFormat::Csv, &back).unwrap();
        assert_eq!(ds.num_instances(), 2);
        assert_eq!(ds.instance(0).label(1), Some("recur"));
    }

    #[test]
    fn sniffing() {
        assert_eq!(
            DataFormat::sniff("% hi\n@relation x\n@data\n"),
            DataFormat::Arff
        );
        assert_eq!(DataFormat::sniff("a,b\n1,2\n"), DataFormat::Csv);
    }

    #[test]
    fn format_names() {
        assert_eq!(DataFormat::from_name("ARFF").unwrap(), DataFormat::Arff);
        assert_eq!(DataFormat::from_name(".csv").unwrap(), DataFormat::Csv);
        assert!(DataFormat::from_name("xls").is_err());
        assert_eq!(DataFormat::Arff.name(), "arff");
    }

    #[test]
    fn library_contains_both_directions() {
        let lib = converter_library();
        assert!(lib.iter().any(|c| c.name == "CSVToARFF"));
        assert!(lib.iter().any(|c| c.name == "ARFFToCSV"));
        let c = &lib[0];
        assert!(c.apply("x\n1\n").unwrap().contains("@data"));
    }

    #[test]
    fn missing_values_survive_conversion() {
        let csv = "a,b\n1,x\n,y\n";
        let arff = convert(csv, DataFormat::Csv, DataFormat::Arff).unwrap();
        let ds = parse(DataFormat::Arff, &arff).unwrap();
        assert!(ds.instance(1).is_missing(0));
    }
}
