//! Format converters: the "data set manipulation tools" of the paper's
//! toolbox (§4.3) — CSV↔ARFF translation plus a registry of named
//! converters so the workflow layer can offer a converter library
//! ("a library of such converters may be necessary", §3.1).

use crate::arff::{parse_arff, write_arff};
use crate::attribute::Attribute;
use crate::csv::{parse_csv, write_csv};
use crate::dataset::Dataset;
use crate::error::{DataError, Result};

/// Data interchange formats understood by the toolkit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataFormat {
    /// Attribute-Relation File Format (WEKA native).
    Arff,
    /// Comma Separated Values.
    Csv,
}

impl DataFormat {
    /// Parse a format name (case-insensitive; accepts file extensions).
    pub fn from_name(name: &str) -> Result<DataFormat> {
        match name
            .trim()
            .trim_start_matches('.')
            .to_ascii_lowercase()
            .as_str()
        {
            "arff" => Ok(DataFormat::Arff),
            "csv" => Ok(DataFormat::Csv),
            other => Err(DataError::InvalidParameter(format!(
                "unknown data format {other:?}"
            ))),
        }
    }

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            DataFormat::Arff => "arff",
            DataFormat::Csv => "csv",
        }
    }

    /// Guess the format of raw text (ARFF files start with `@relation`
    /// or a `%` comment block).
    pub fn sniff(text: &str) -> DataFormat {
        for line in text.lines() {
            let t = line.trim();
            if t.is_empty() || t.starts_with('%') {
                continue;
            }
            if t.to_ascii_lowercase().starts_with("@relation") {
                return DataFormat::Arff;
            }
            break;
        }
        DataFormat::Csv
    }
}

/// Parse `text` in the given format.
pub fn parse(format: DataFormat, text: &str) -> Result<Dataset> {
    match format {
        DataFormat::Arff => parse_arff(text),
        DataFormat::Csv => parse_csv(text),
    }
}

/// Serialise `ds` in the given format.
pub fn write(format: DataFormat, ds: &Dataset) -> String {
    match format {
        DataFormat::Arff => write_arff(ds),
        DataFormat::Csv => write_csv(ds),
    }
}

/// Convert text from one format to another. CSV → ARFF performs type
/// inference (numeric columns stay numeric, everything else becomes a
/// nominal enumeration), matching the paper's CSV-to-ARFF tool.
///
/// ```
/// use dm_data::convert::{convert, DataFormat};
/// let arff = convert("a,b\n1,x\n2,y\n", DataFormat::Csv, DataFormat::Arff).unwrap();
/// assert!(arff.contains("@attribute a numeric"));
/// assert!(arff.contains("{x,y}"));
/// ```
pub fn convert(text: &str, from: DataFormat, to: DataFormat) -> Result<String> {
    let ds = parse(from, text)?;
    Ok(write(to, &ds))
}

/// A dense row-major snapshot of a dataset — the pre-columnar legacy
/// layout, kept as an explicit interchange form for benchmark baselines
/// and for round-trip testing of the columnar engine. Each row is the
/// encoded cell vector: `NaN` for missing, label indices for nominal
/// cells, string-pool ids for `Str` cells.
///
/// Deliberately not `PartialEq`: rows contain `NaN`, whose `f64`
/// equality would report every missing cell as unequal. Compare by
/// converting back with [`from_row_major`] and using `Dataset`
/// equality, which treats missing-as-missing.
#[derive(Debug, Clone)]
pub struct RowMajorDataset {
    /// Relation name.
    pub relation: String,
    /// Attribute headers, in column order.
    pub attributes: Vec<Attribute>,
    /// Class attribute index, if set.
    pub class_index: Option<usize>,
    /// Interned string pool (ids in `Str` cells index this).
    pub strings: Vec<String>,
    /// One encoded cell vector per instance.
    pub rows: Vec<Vec<f64>>,
    /// Per-instance weights, parallel to `rows`.
    pub weights: Vec<f64>,
}

/// Snapshot a columnar [`Dataset`] into the row-major layout.
pub fn to_row_major(ds: &Dataset) -> RowMajorDataset {
    let n = ds.num_instances();
    RowMajorDataset {
        relation: ds.relation().to_string(),
        attributes: ds.attributes().to_vec(),
        class_index: ds.class_index(),
        strings: ds.strings().to_vec(),
        rows: (0..n).map(|r| ds.row_values(r)).collect(),
        weights: (0..n).map(|r| ds.weight(r)).collect(),
    }
}

/// Rebuild a columnar [`Dataset`] from a row-major snapshot. The string
/// pool is re-interned in order, so `Str` cell ids stay valid.
pub fn from_row_major(rm: &RowMajorDataset) -> Result<Dataset> {
    let mut ds = Dataset::new(rm.relation.clone(), rm.attributes.clone());
    ds.set_class_index(rm.class_index)?;
    for s in &rm.strings {
        ds.intern_string(s.clone());
    }
    for (row, &w) in rm.rows.iter().zip(&rm.weights) {
        ds.push_row_weighted(row.clone(), w)?;
    }
    Ok(ds)
}

/// A named converter entry, as presented in the workflow toolbox.
#[derive(Debug, Clone)]
pub struct Converter {
    /// Toolbox name, e.g. `"CSVToARFF"`.
    pub name: &'static str,
    /// Source format.
    pub from: DataFormat,
    /// Target format.
    pub to: DataFormat,
}

/// The converter library shipped with the toolkit.
pub fn converter_library() -> Vec<Converter> {
    vec![
        Converter {
            name: "CSVToARFF",
            from: DataFormat::Csv,
            to: DataFormat::Arff,
        },
        Converter {
            name: "ARFFToCSV",
            from: DataFormat::Arff,
            to: DataFormat::Csv,
        },
    ]
}

impl Converter {
    /// Apply this converter to raw text.
    pub fn apply(&self, text: &str) -> Result<String> {
        convert(text, self.from, self.to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_to_arff_and_back() {
        let csv = "age,class\n30,recur\n40,no-recur\n";
        let arff = convert(csv, DataFormat::Csv, DataFormat::Arff).unwrap();
        assert!(arff.contains("@relation"));
        let back = convert(&arff, DataFormat::Arff, DataFormat::Csv).unwrap();
        let ds = parse(DataFormat::Csv, &back).unwrap();
        assert_eq!(ds.num_instances(), 2);
        assert_eq!(ds.instance(0).label(1), Some("recur"));
    }

    #[test]
    fn sniffing() {
        assert_eq!(
            DataFormat::sniff("% hi\n@relation x\n@data\n"),
            DataFormat::Arff
        );
        assert_eq!(DataFormat::sniff("a,b\n1,2\n"), DataFormat::Csv);
    }

    #[test]
    fn format_names() {
        assert_eq!(DataFormat::from_name("ARFF").unwrap(), DataFormat::Arff);
        assert_eq!(DataFormat::from_name(".csv").unwrap(), DataFormat::Csv);
        assert!(DataFormat::from_name("xls").is_err());
        assert_eq!(DataFormat::Arff.name(), "arff");
    }

    #[test]
    fn library_contains_both_directions() {
        let lib = converter_library();
        assert!(lib.iter().any(|c| c.name == "CSVToARFF"));
        assert!(lib.iter().any(|c| c.name == "ARFFToCSV"));
        let c = &lib[0];
        assert!(c.apply("x\n1\n").unwrap().contains("@data"));
    }

    #[test]
    fn row_major_roundtrip_over_arff_corpus() {
        // Satellite regression: every corpus dataset must survive
        // parse → columnar → row-major snapshot → columnar with exact
        // Dataset equality (values, missingness, class index, weights).
        use crate::corpus;
        let sources = [
            corpus::breast_cancer_arff(),
            crate::arff::write_arff(&corpus::weather_nominal()),
            crate::arff::write_arff(&corpus::weather_numeric()),
            crate::arff::write_arff(&corpus::nominal_classification(40, 4, 3, 2, 0.2, 7)),
        ];
        for (i, text) in sources.iter().enumerate() {
            let ds = parse_arff(text).unwrap();
            let back = from_row_major(&to_row_major(&ds)).unwrap();
            assert_eq!(ds, back, "corpus source {i}");
        }
    }

    #[test]
    fn row_major_roundtrip_with_strings_and_missing() {
        // String cells travel as pool ids; the pool must be re-interned
        // in order so ids stay stable, and missing cells (of every
        // attribute kind) must stay missing.
        let arff = "@relation notes\n\
                    @attribute id numeric\n\
                    @attribute note string\n\
                    @attribute grade {low,high}\n\
                    @data\n\
                    1,'first note',low\n\
                    2,?,high\n\
                    ?,'third note',?\n";
        let ds = parse_arff(arff).unwrap();
        assert_eq!(ds.strings().len(), 2);
        let rm = to_row_major(&ds);
        assert_eq!(rm.strings, ds.strings());
        let back = from_row_major(&rm).unwrap();
        assert_eq!(ds, back);
        assert_eq!(
            back.string_at(back.value(0, 1) as usize),
            Some("first note")
        );
        assert!(back.instance(1).is_missing(1));
        assert!(back.instance(2).is_missing(0));
        assert!(back.instance(2).is_missing(2));
    }

    #[test]
    fn row_major_preserves_weights_and_class() {
        let mut ds =
            parse_arff("@relation w\n@attribute x numeric\n@attribute c {a,b}\n@data\n1,a\n2,b\n")
                .unwrap();
        ds.set_class_index(Some(1)).unwrap();
        ds.set_weight(1, 2.5);
        let back = from_row_major(&to_row_major(&ds)).unwrap();
        assert_eq!(ds, back);
        assert_eq!(back.class_index(), Some(1));
        assert_eq!(back.weight(1), 2.5);
    }

    #[test]
    fn missing_values_survive_conversion() {
        let csv = "a,b\n1,x\n,y\n";
        let arff = convert(csv, DataFormat::Csv, DataFormat::Arff).unwrap();
        let ds = parse(DataFormat::Arff, &arff).unwrap();
        assert!(ds.instance(1).is_missing(0));
    }
}
