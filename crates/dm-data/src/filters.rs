//! Dataset filters: the preprocessing half of the WEKA substrate.
//!
//! Each filter follows the WEKA convention of learning its parameters
//! from one dataset (`fit`) and then applying them to any compatible
//! dataset (`apply`), so that a filter fitted on training data can be
//! replayed on test data without leaking statistics.

use crate::attribute::{Attribute, AttributeKind};
use crate::dataset::{Dataset, Value};
use crate::error::{DataError, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A fitted, replayable dataset transformation.
pub trait Filter {
    /// Apply the fitted transformation to a dataset with a compatible
    /// header, producing a new dataset.
    fn apply(&self, ds: &Dataset) -> Result<Dataset>;
}

/// Min/max of the present cells of numeric attribute `a`, read straight
/// off the columnar buffer and its validity bitmap; `None` when the
/// attribute is non-numeric or has no present values.
fn numeric_range(ds: &Dataset, a: usize) -> Option<(f64, f64)> {
    let col = ds.column(a);
    let (values, valid) = col.numeric()?;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    if valid.all_valid() {
        for &v in values {
            min = min.min(v);
            max = max.max(v);
        }
    } else {
        for (r, &v) in values.iter().enumerate() {
            if valid.get(r) {
                min = min.min(v);
                max = max.max(v);
            }
        }
    }
    (min <= max).then_some((min, max))
}

// ---------------------------------------------------------------------
// Normalize: min-max scale numeric attributes to [0, 1].
// ---------------------------------------------------------------------

/// Min–max normalisation of every numeric attribute to `[0, 1]`.
#[derive(Debug, Clone)]
pub struct Normalize {
    ranges: Vec<Option<(f64, f64)>>,
}

impl Normalize {
    /// Learn per-attribute min/max from `ds`.
    pub fn fit(ds: &Dataset) -> Normalize {
        let mut ranges = Vec::with_capacity(ds.num_attributes());
        for a in 0..ds.num_attributes() {
            if !ds.attributes()[a].is_numeric() {
                ranges.push(None);
                continue;
            }
            ranges.push(numeric_range(ds, a));
        }
        Normalize { ranges }
    }
}

impl Filter for Normalize {
    fn apply(&self, ds: &Dataset) -> Result<Dataset> {
        if ds.num_attributes() != self.ranges.len() {
            return Err(DataError::Arity {
                got: ds.num_attributes(),
                expected: self.ranges.len(),
            });
        }
        let mut out = ds.clone();
        for (a, range) in self.ranges.iter().enumerate() {
            if let Some((min, max)) = range {
                let span = max - min;
                for r in 0..out.num_instances() {
                    let v = out.value(r, a);
                    if !Value::is_missing(v) {
                        let scaled = if span == 0.0 { 0.0 } else { (v - min) / span };
                        out.set_value(r, a, scaled);
                    }
                }
            }
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// Standardize: zero mean, unit variance.
// ---------------------------------------------------------------------

/// Z-score standardisation of every numeric attribute.
#[derive(Debug, Clone)]
pub struct Standardize {
    moments: Vec<Option<(f64, f64)>>,
}

impl Standardize {
    /// Learn per-attribute mean and standard deviation from `ds`.
    pub fn fit(ds: &Dataset) -> Standardize {
        let mut moments = Vec::with_capacity(ds.num_attributes());
        for a in 0..ds.num_attributes() {
            let Some((values, valid)) = ds.column(a).numeric() else {
                moments.push(None);
                continue;
            };
            // Two columnar passes over present cells only; row order is
            // preserved so the accumulation matches the row-wise code
            // bit for bit.
            let mut sum = 0.0;
            let mut count = 0.0;
            for (r, &v) in values.iter().enumerate() {
                if valid.get(r) {
                    sum += v;
                    count += 1.0;
                }
            }
            if count == 0.0 {
                moments.push(None);
                continue;
            }
            let mean = sum / count;
            let mut ss = 0.0;
            for (r, &v) in values.iter().enumerate() {
                if valid.get(r) {
                    ss += (v - mean) * (v - mean);
                }
            }
            let sd = (ss / count).sqrt();
            moments.push(Some((mean, sd)));
        }
        Standardize { moments }
    }
}

impl Filter for Standardize {
    fn apply(&self, ds: &Dataset) -> Result<Dataset> {
        if ds.num_attributes() != self.moments.len() {
            return Err(DataError::Arity {
                got: ds.num_attributes(),
                expected: self.moments.len(),
            });
        }
        let mut out = ds.clone();
        for (a, m) in self.moments.iter().enumerate() {
            if let Some((mean, sd)) = m {
                for r in 0..out.num_instances() {
                    let v = out.value(r, a);
                    if !Value::is_missing(v) {
                        let z = if *sd == 0.0 { 0.0 } else { (v - mean) / sd };
                        out.set_value(r, a, z);
                    }
                }
            }
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// ReplaceMissing: mode (nominal) / mean (numeric) imputation.
// ---------------------------------------------------------------------

/// Replace missing values with the training mode (nominal) or mean
/// (numeric) — WEKA's `ReplaceMissingValues`.
#[derive(Debug, Clone)]
pub struct ReplaceMissing {
    fill: Vec<Option<f64>>,
}

impl ReplaceMissing {
    /// Learn fill values from `ds`.
    pub fn fit(ds: &Dataset) -> ReplaceMissing {
        let mut fill = Vec::with_capacity(ds.num_attributes());
        for a in 0..ds.num_attributes() {
            let attr = &ds.attributes()[a];
            let value = match attr.kind() {
                AttributeKind::Nominal(labels) => {
                    let mut counts = vec![0.0f64; labels.len()];
                    for r in 0..ds.num_instances() {
                        let v = ds.value(r, a);
                        if !Value::is_missing(v) {
                            counts[Value::as_index(v)] += ds.weight(r);
                        }
                    }
                    counts
                        .iter()
                        .enumerate()
                        .max_by(|x, y| x.1.partial_cmp(y.1).expect("finite"))
                        .filter(|(_, &c)| c > 0.0)
                        .map(|(i, _)| Value::from_index(i))
                }
                AttributeKind::Numeric => {
                    let mut sum = 0.0;
                    let mut count = 0.0;
                    for r in 0..ds.num_instances() {
                        let v = ds.value(r, a);
                        if !Value::is_missing(v) {
                            sum += v * ds.weight(r);
                            count += ds.weight(r);
                        }
                    }
                    (count > 0.0).then(|| sum / count)
                }
                AttributeKind::Str => None,
            };
            fill.push(value);
        }
        ReplaceMissing { fill }
    }
}

impl Filter for ReplaceMissing {
    fn apply(&self, ds: &Dataset) -> Result<Dataset> {
        if ds.num_attributes() != self.fill.len() {
            return Err(DataError::Arity {
                got: ds.num_attributes(),
                expected: self.fill.len(),
            });
        }
        let mut out = ds.clone();
        for (a, f) in self.fill.iter().enumerate() {
            if let Some(fill) = f {
                for r in 0..out.num_instances() {
                    if Value::is_missing(out.value(r, a)) {
                        out.set_value(r, a, *fill);
                    }
                }
            }
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// Discretize: equal-width binning of numeric attributes.
// ---------------------------------------------------------------------

/// Equal-width discretisation of numeric attributes into `bins` nominal
/// intervals (class attribute, if numeric, is left untouched).
#[derive(Debug, Clone)]
pub struct Discretize {
    bins: usize,
    cuts: Vec<Option<(f64, f64)>>,
}

impl Discretize {
    /// Learn per-attribute value ranges from `ds`.
    pub fn fit(ds: &Dataset, bins: usize) -> Result<Discretize> {
        if bins < 2 {
            return Err(DataError::InvalidParameter(format!(
                "bins = {bins}; need >= 2"
            )));
        }
        let class = ds.class_index();
        let mut cuts = Vec::with_capacity(ds.num_attributes());
        for a in 0..ds.num_attributes() {
            if !ds.attributes()[a].is_numeric() || class == Some(a) {
                cuts.push(None);
                continue;
            }
            cuts.push(numeric_range(ds, a));
        }
        Ok(Discretize { bins, cuts })
    }

    fn bin_of(&self, a: usize, v: f64) -> usize {
        let (min, max) = self.cuts[a].expect("checked by caller");
        if max == min {
            return 0;
        }
        let b = ((v - min) / (max - min) * self.bins as f64).floor() as usize;
        b.min(self.bins - 1)
    }
}

impl Filter for Discretize {
    fn apply(&self, ds: &Dataset) -> Result<Dataset> {
        if ds.num_attributes() != self.cuts.len() {
            return Err(DataError::Arity {
                got: ds.num_attributes(),
                expected: self.cuts.len(),
            });
        }
        // Rebuild the header with binned attributes replaced by nominal.
        let attributes: Vec<Attribute> = ds
            .attributes()
            .iter()
            .enumerate()
            .map(|(a, attr)| {
                if self.cuts[a].is_some() {
                    let labels: Vec<String> =
                        (0..self.bins).map(|b| format!("bin{}", b + 1)).collect();
                    Attribute::nominal(attr.name(), labels)
                } else {
                    attr.clone()
                }
            })
            .collect();
        let mut out = Dataset::new(ds.relation(), attributes);
        out.set_class_index(ds.class_index())?;
        for r in 0..ds.num_instances() {
            let row: Vec<f64> = (0..ds.num_attributes())
                .map(|a| {
                    let v = ds.value(r, a);
                    if Value::is_missing(v) || self.cuts[a].is_none() {
                        v
                    } else {
                        Value::from_index(self.bin_of(a, v))
                    }
                })
                .collect();
            out.push_row_weighted(row, ds.weight(r))?;
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// Supervised (Fayyad–Irani MDL) discretisation.
// ---------------------------------------------------------------------

/// Entropy-based supervised discretisation (Fayyad & Irani 1993),
/// WEKA's default supervised filter: each numeric attribute is split
/// recursively at the class-entropy-minimising cut point, accepting a
/// cut only when the MDL criterion says the information gain pays for
/// the extra model bits. Attributes where no cut is accepted collapse
/// to a single `'All'` bin.
#[derive(Debug, Clone)]
pub struct SupervisedDiscretize {
    /// Per-attribute sorted cut points (`None` = not discretised).
    cuts: Vec<Option<Vec<f64>>>,
}

impl SupervisedDiscretize {
    /// Learn cut points from `ds` (class attribute must be nominal).
    pub fn fit(ds: &Dataset) -> Result<SupervisedDiscretize> {
        let ci = ds.class_index().ok_or(DataError::NoClass)?;
        let k = ds.num_classes()?;
        let mut cuts = Vec::with_capacity(ds.num_attributes());
        for a in 0..ds.num_attributes() {
            if !ds.attributes()[a].is_numeric() || a == ci {
                cuts.push(None);
                continue;
            }
            let mut pairs: Vec<(f64, usize)> = (0..ds.num_instances())
                .filter_map(|r| {
                    let v = ds.value(r, a);
                    let c = ds.value(r, ci);
                    (!Value::is_missing(v) && !Value::is_missing(c))
                        .then(|| (v, Value::as_index(c)))
                })
                .collect();
            pairs.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("no NaN"));
            let mut attr_cuts = Vec::new();
            Self::split(&pairs, k, &mut attr_cuts);
            attr_cuts.sort_by(|x, y| x.partial_cmp(y).expect("finite cuts"));
            cuts.push(Some(attr_cuts));
        }
        Ok(SupervisedDiscretize { cuts })
    }

    /// The learned cut points of attribute `a` (empty if none accepted).
    pub fn cut_points(&self, a: usize) -> &[f64] {
        self.cuts.get(a).and_then(|c| c.as_deref()).unwrap_or(&[])
    }

    fn class_counts(pairs: &[(f64, usize)], k: usize) -> Vec<f64> {
        let mut counts = vec![0.0; k];
        for &(_, c) in pairs {
            counts[c] += 1.0;
        }
        counts
    }

    fn entropy(counts: &[f64]) -> f64 {
        let total: f64 = counts.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        counts
            .iter()
            .filter(|&&c| c > 0.0)
            .map(|&c| {
                let p = c / total;
                -p * p.log2()
            })
            .sum()
    }

    /// Recursive MDL splitting over a sorted slice.
    fn split(pairs: &[(f64, usize)], k: usize, out: &mut Vec<f64>) {
        let n = pairs.len();
        if n < 4 {
            return;
        }
        let total_counts = Self::class_counts(pairs, k);
        let total_entropy = Self::entropy(&total_counts);

        // Best boundary cut (class-boundary points only, as F&I prove
        // suffices).
        let mut left = vec![0.0f64; k];
        let mut right = total_counts.clone();
        let mut best: Option<(f64, usize, f64)> = None; // (weighted entropy, idx, cut)
        for i in 0..n - 1 {
            let (v, c) = pairs[i];
            left[c] += 1.0;
            right[c] -= 1.0;
            if pairs[i + 1].0 == v {
                continue;
            }
            let weighted = ((i + 1) as f64 * Self::entropy(&left)
                + (n - i - 1) as f64 * Self::entropy(&right))
                / n as f64;
            if best.is_none_or(|(w, ..)| weighted < w) {
                best = Some((weighted, i, (v + pairs[i + 1].0) / 2.0));
            }
        }
        let Some((weighted, idx, cut)) = best else {
            return;
        };

        // MDL acceptance criterion.
        let gain = total_entropy - weighted;
        let (l, r) = pairs.split_at(idx + 1);
        let k_total = total_counts.iter().filter(|&&c| c > 0.0).count() as f64;
        let lc = Self::class_counts(l, k);
        let rc = Self::class_counts(r, k);
        let k_left = lc.iter().filter(|&&c| c > 0.0).count() as f64;
        let k_right = rc.iter().filter(|&&c| c > 0.0).count() as f64;
        let delta = (3f64.powf(k_total) - 2.0).log2()
            - (k_total * total_entropy
                - k_left * Self::entropy(&lc)
                - k_right * Self::entropy(&rc));
        let threshold = ((n as f64 - 1.0).log2() + delta) / n as f64;
        if gain <= threshold {
            return;
        }
        out.push(cut);
        Self::split(l, k, out);
        Self::split(r, k, out);
    }
}

impl Filter for SupervisedDiscretize {
    fn apply(&self, ds: &Dataset) -> Result<Dataset> {
        if ds.num_attributes() != self.cuts.len() {
            return Err(DataError::Arity {
                got: ds.num_attributes(),
                expected: self.cuts.len(),
            });
        }
        let attributes: Vec<Attribute> = ds
            .attributes()
            .iter()
            .enumerate()
            .map(|(a, attr)| match &self.cuts[a] {
                None => attr.clone(),
                Some(cuts) if cuts.is_empty() => {
                    Attribute::nominal(attr.name(), ["'All'".to_string()])
                }
                Some(cuts) => {
                    let labels: Vec<String> = (0..=cuts.len())
                        .map(|b| {
                            if b == 0 {
                                format!("(-inf..{}]", cuts[0])
                            } else if b == cuts.len() {
                                format!("({}..inf)", cuts[b - 1])
                            } else {
                                format!("({}..{}]", cuts[b - 1], cuts[b])
                            }
                        })
                        .collect();
                    Attribute::nominal(attr.name(), labels)
                }
            })
            .collect();
        let mut out = Dataset::new(ds.relation(), attributes);
        out.set_class_index(ds.class_index())?;
        for r in 0..ds.num_instances() {
            let row: Vec<f64> = (0..ds.num_attributes())
                .map(|a| {
                    let v = ds.value(r, a);
                    match &self.cuts[a] {
                        None => v,
                        Some(_) if Value::is_missing(v) => v,
                        Some(cuts) => {
                            let bin = cuts.iter().take_while(|&&c| v > c).count();
                            Value::from_index(bin)
                        }
                    }
                })
                .collect();
            out.push_row_weighted(row, ds.weight(r))?;
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// Attribute removal / projection.
// ---------------------------------------------------------------------

/// Keep only the attributes at `keep` (in the given order); the class
/// index is remapped if the class attribute survives, cleared otherwise.
pub fn project(ds: &Dataset, keep: &[usize]) -> Result<Dataset> {
    for &k in keep {
        if k >= ds.num_attributes() {
            return Err(DataError::AttributeIndex {
                index: k,
                len: ds.num_attributes(),
            });
        }
    }
    let attributes: Vec<Attribute> = keep.iter().map(|&k| ds.attributes()[k].clone()).collect();
    let mut out = Dataset::new(ds.relation(), attributes);
    if let Some(ci) = ds.class_index() {
        if let Some(new_ci) = keep.iter().position(|&k| k == ci) {
            out.set_class_index(Some(new_ci))?;
        }
    }
    for r in 0..ds.num_instances() {
        let row: Vec<f64> = keep.iter().map(|&k| ds.value(r, k)).collect();
        out.push_row_weighted(row, ds.weight(r))?;
    }
    Ok(out)
}

/// Remove the attributes at `drop` (complement of [`project`]).
pub fn remove(ds: &Dataset, drop: &[usize]) -> Result<Dataset> {
    let keep: Vec<usize> = (0..ds.num_attributes())
        .filter(|i| !drop.contains(i))
        .collect();
    project(ds, &keep)
}

// ---------------------------------------------------------------------
// Resample.
// ---------------------------------------------------------------------

/// Random sample (without replacement if `fraction <= 1.0`; with
/// replacement otherwise) of a dataset, seeded.
pub fn resample(ds: &Dataset, fraction: f64, seed: u64) -> Result<Dataset> {
    if fraction <= 0.0 {
        return Err(DataError::InvalidParameter(format!(
            "fraction {fraction} must be > 0"
        )));
    }
    if ds.num_instances() == 0 {
        return Err(DataError::Empty);
    }
    let n = ds.num_instances();
    let target = (fraction * n as f64).round().max(1.0) as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<usize> = if target <= n {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        order.truncate(target);
        order
    } else {
        use rand::Rng;
        (0..target).map(|_| rng.random_range(0..n)).collect()
    };
    Ok(ds.select_rows(&rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut ds = Dataset::new(
            "toy",
            vec![
                Attribute::numeric("x"),
                Attribute::nominal("colour", ["red", "green"]),
                Attribute::nominal("class", ["p", "n"]),
            ],
        );
        ds.set_class_index(Some(2)).unwrap();
        ds.push_labels(&["10", "red", "p"]).unwrap();
        ds.push_labels(&["20", "red", "n"]).unwrap();
        ds.push_labels(&["?", "green", "p"]).unwrap();
        ds.push_labels(&["40", "?", "p"]).unwrap();
        ds
    }

    #[test]
    fn normalize_scales_to_unit_interval() {
        let ds = toy();
        let out = Normalize::fit(&ds).apply(&ds).unwrap();
        assert_eq!(out.value(0, 0), 0.0);
        assert!((out.value(1, 0) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(out.value(3, 0), 1.0);
        assert!(out.instance(2).is_missing(0)); // missing stays missing
        assert_eq!(out.value(0, 1), 0.0); // nominal untouched
    }

    #[test]
    fn normalize_fitted_on_train_replays_on_test() {
        let ds = toy();
        let f = Normalize::fit(&ds);
        let mut test = ds.header_clone();
        test.push_labels(&["25", "red", "p"]).unwrap();
        let out = f.apply(&test).unwrap();
        assert!((out.value(0, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn standardize_zero_mean() {
        let ds = toy();
        let out = Standardize::fit(&ds).apply(&ds).unwrap();
        let vals: Vec<f64> = (0..4)
            .map(|r| out.value(r, 0))
            .filter(|v| !v.is_nan())
            .collect();
        let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!(mean.abs() < 1e-12);
    }

    #[test]
    fn replace_missing_uses_mean_and_mode() {
        let ds = toy();
        let out = ReplaceMissing::fit(&ds).apply(&ds).unwrap();
        // Mean of 10,20,40 = 23.333...
        assert!((out.value(2, 0) - 70.0 / 3.0).abs() < 1e-9);
        // Mode of colour = red.
        assert_eq!(out.instance(3).label(1), Some("red"));
        assert!(!out.has_missing(0));
        assert!(!out.has_missing(1));
    }

    #[test]
    fn discretize_bins_numeric() {
        let ds = toy();
        let out = Discretize::fit(&ds, 3).unwrap().apply(&ds).unwrap();
        assert!(out.attribute(0).unwrap().is_nominal());
        assert_eq!(out.attribute(0).unwrap().num_labels(), 3);
        assert_eq!(out.instance(0).label(0), Some("bin1")); // 10 → first bin
        assert_eq!(out.instance(3).label(0), Some("bin3")); // 40 → last bin
        assert!(out.instance(2).is_missing(0));
        assert_eq!(out.class_index(), Some(2));
    }

    #[test]
    fn discretize_rejects_single_bin() {
        let ds = toy();
        assert!(Discretize::fit(&ds, 1).is_err());
    }

    #[test]
    fn supervised_discretize_finds_the_informative_cut() {
        // x < 50 → class p, x >= 50 → class n: one cut near 50.
        let mut ds = Dataset::new(
            "sep",
            vec![Attribute::numeric("x"), Attribute::nominal("c", ["p", "n"])],
        );
        ds.set_class_index(Some(1)).unwrap();
        for i in 0..40 {
            ds.push_row(vec![i as f64, 0.0]).unwrap();
            ds.push_row(vec![(60 + i) as f64, 1.0]).unwrap();
        }
        let f = SupervisedDiscretize::fit(&ds).unwrap();
        let cuts = f.cut_points(0);
        assert_eq!(cuts.len(), 1, "cuts: {cuts:?}");
        assert!((cuts[0] - 49.5).abs() < 5.0, "cut at {}", cuts[0]);
        let out = f.apply(&ds).unwrap();
        assert!(out.attribute(0).unwrap().is_nominal());
        assert_eq!(out.attribute(0).unwrap().num_labels(), 2);
        // The binned attribute perfectly predicts the class.
        for r in 0..out.num_instances() {
            let bin = out.value(r, 0) as usize;
            let class = out.value(r, 1) as usize;
            assert_eq!(bin, class);
        }
    }

    #[test]
    fn supervised_discretize_rejects_uninformative_cuts() {
        // Class independent of x → MDL accepts no cut → single bin.
        let mut ds = Dataset::new(
            "noise",
            vec![Attribute::numeric("x"), Attribute::nominal("c", ["p", "n"])],
        );
        ds.set_class_index(Some(1)).unwrap();
        for i in 0..60 {
            ds.push_row(vec![i as f64, (i % 2) as f64]).unwrap();
        }
        let f = SupervisedDiscretize::fit(&ds).unwrap();
        assert!(f.cut_points(0).is_empty(), "cuts: {:?}", f.cut_points(0));
        let out = f.apply(&ds).unwrap();
        assert_eq!(out.attribute(0).unwrap().num_labels(), 1);
    }

    #[test]
    fn supervised_discretize_multi_region() {
        // Three class regions → at least two cuts.
        let mut ds = Dataset::new(
            "tri",
            vec![Attribute::numeric("x"), Attribute::nominal("c", ["a", "b"])],
        );
        ds.set_class_index(Some(1)).unwrap();
        for i in 0..30 {
            ds.push_row(vec![i as f64, 0.0]).unwrap();
            ds.push_row(vec![(40 + i) as f64, 1.0]).unwrap();
            ds.push_row(vec![(80 + i) as f64, 0.0]).unwrap();
        }
        let f = SupervisedDiscretize::fit(&ds).unwrap();
        assert!(f.cut_points(0).len() >= 2, "cuts: {:?}", f.cut_points(0));
    }

    #[test]
    fn supervised_discretize_requires_class() {
        let mut ds = Dataset::new("x", vec![Attribute::numeric("x")]);
        ds.push_row(vec![1.0]).unwrap();
        assert!(matches!(
            SupervisedDiscretize::fit(&ds),
            Err(DataError::NoClass)
        ));
    }

    #[test]
    fn supervised_discretize_preserves_missing() {
        let mut ds = Dataset::new(
            "m",
            vec![Attribute::numeric("x"), Attribute::nominal("c", ["p", "n"])],
        );
        ds.set_class_index(Some(1)).unwrap();
        for i in 0..20 {
            ds.push_row(vec![i as f64, f64::from(u8::from(i >= 10))])
                .unwrap();
        }
        ds.push_row(vec![f64::NAN, 0.0]).unwrap();
        let f = SupervisedDiscretize::fit(&ds).unwrap();
        let out = f.apply(&ds).unwrap();
        assert!(out.instance(20).is_missing(0));
    }

    #[test]
    fn project_remaps_class() {
        let ds = toy();
        let out = project(&ds, &[1, 2]).unwrap();
        assert_eq!(out.num_attributes(), 2);
        assert_eq!(out.class_index(), Some(1));
        assert_eq!(out.instance(0).label(0), Some("red"));
    }

    #[test]
    fn project_drops_class_when_excluded() {
        let ds = toy();
        let out = project(&ds, &[0, 1]).unwrap();
        assert_eq!(out.class_index(), None);
    }

    #[test]
    fn remove_is_complement_of_project() {
        let ds = toy();
        let out = remove(&ds, &[0]).unwrap();
        assert_eq!(out.num_attributes(), 2);
        assert_eq!(out.attribute(0).unwrap().name(), "colour");
    }

    #[test]
    fn project_out_of_range_rejected() {
        let ds = toy();
        assert!(project(&ds, &[7]).is_err());
    }

    #[test]
    fn resample_without_replacement() {
        let ds = toy();
        let out = resample(&ds, 0.5, 1).unwrap();
        assert_eq!(out.num_instances(), 2);
    }

    #[test]
    fn resample_with_replacement_can_exceed() {
        let ds = toy();
        let out = resample(&ds, 2.0, 1).unwrap();
        assert_eq!(out.num_instances(), 8);
    }

    #[test]
    fn resample_rejects_bad_fraction() {
        let ds = toy();
        assert!(resample(&ds, 0.0, 1).is_err());
    }

    #[test]
    fn normalize_preserves_validity_bitmaps() {
        // Scaling must not disturb missingness accounting: every
        // attribute's bitmap-backed missing count survives apply().
        let ds = toy();
        let out = Normalize::fit(&ds).apply(&ds).unwrap();
        for a in 0..ds.num_attributes() {
            assert_eq!(out.missing_count(a), ds.missing_count(a), "attr {a}");
        }
        assert_eq!(out.missing_count(0), 1);
    }

    #[test]
    fn fit_reads_only_present_cells_from_bitmap() {
        // The min/max and moment scans must skip exactly the cells the
        // validity bitmap marks missing — the fill values stored under
        // cleared bits (0.0) must never leak into the statistics.
        let ds = toy(); // x present values: 10, 20, 40 (row 2 missing)
        let n = Normalize::fit(&ds);
        let out = n.apply(&ds).unwrap();
        // If the 0.0 filler leaked, min would be 0 and 10 would map to
        // 0.25 instead of 0.0.
        assert_eq!(out.value(0, 0), 0.0);
        assert_eq!(out.value(3, 0), 1.0);
        let s = Standardize::fit(&ds);
        let out = s.apply(&ds).unwrap();
        let mean = 70.0 / 3.0; // mean over present cells only
        let ss: f64 = [10.0f64, 20.0, 40.0]
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum();
        let sd = (ss / 3.0).sqrt();
        assert!((out.value(0, 0) - (10.0 - mean) / sd).abs() < 1e-12);
    }

    #[test]
    fn replace_missing_clears_validity_bitmaps() {
        // Imputation must flip the cleared bits: afterwards no column
        // with a learned fill value reports missing cells.
        let ds = toy();
        assert_eq!(ds.missing_count(0), 1);
        assert_eq!(ds.missing_count(1), 1);
        let out = ReplaceMissing::fit(&ds).apply(&ds).unwrap();
        for a in 0..out.num_attributes() {
            assert_eq!(out.missing_count(a), 0, "attr {a}");
        }
    }

    #[test]
    fn apply_arity_checked() {
        let ds = toy();
        let f = Normalize::fit(&ds);
        let other = Dataset::new("other", vec![Attribute::numeric("x")]);
        assert!(f.apply(&other).is_err());
    }
}
