//! Quinlan's 14-instance "play tennis" weather dataset — WEKA's
//! canonical example file, shipped here for docs, examples, and quick
//! experiments (the C4.5 literature's standard fixture: the tree splits
//! on `outlook` at the root).

use crate::attribute::Attribute;
use crate::dataset::Dataset;

/// The nominal weather dataset (`weather.nominal.arff`).
pub fn weather_nominal() -> Dataset {
    let mut ds = Dataset::new(
        "weather.symbolic",
        vec![
            Attribute::nominal("outlook", ["sunny", "overcast", "rainy"]),
            Attribute::nominal("temperature", ["hot", "mild", "cool"]),
            Attribute::nominal("humidity", ["high", "normal"]),
            Attribute::nominal("windy", ["TRUE", "FALSE"]),
            Attribute::nominal("play", ["yes", "no"]),
        ],
    );
    ds.set_class_index(Some(4)).expect("class index in range");
    let rows = [
        ["sunny", "hot", "high", "FALSE", "no"],
        ["sunny", "hot", "high", "TRUE", "no"],
        ["overcast", "hot", "high", "FALSE", "yes"],
        ["rainy", "mild", "high", "FALSE", "yes"],
        ["rainy", "cool", "normal", "FALSE", "yes"],
        ["rainy", "cool", "normal", "TRUE", "no"],
        ["overcast", "cool", "normal", "TRUE", "yes"],
        ["sunny", "mild", "high", "FALSE", "no"],
        ["sunny", "cool", "normal", "FALSE", "yes"],
        ["rainy", "mild", "normal", "FALSE", "yes"],
        ["sunny", "mild", "normal", "TRUE", "yes"],
        ["overcast", "mild", "high", "TRUE", "yes"],
        ["overcast", "hot", "normal", "FALSE", "yes"],
        ["rainy", "mild", "high", "TRUE", "no"],
    ];
    for r in rows {
        ds.push_labels(&r).expect("labels in domain");
    }
    ds
}

/// The numeric weather dataset (`weather.numeric.arff`): temperature
/// and humidity as real values.
pub fn weather_numeric() -> Dataset {
    let mut ds = Dataset::new(
        "weather",
        vec![
            Attribute::nominal("outlook", ["sunny", "overcast", "rainy"]),
            Attribute::numeric("temperature"),
            Attribute::numeric("humidity"),
            Attribute::nominal("windy", ["TRUE", "FALSE"]),
            Attribute::nominal("play", ["yes", "no"]),
        ],
    );
    ds.set_class_index(Some(4)).expect("class index in range");
    let rows = [
        ["sunny", "85", "85", "FALSE", "no"],
        ["sunny", "80", "90", "TRUE", "no"],
        ["overcast", "83", "86", "FALSE", "yes"],
        ["rainy", "70", "96", "FALSE", "yes"],
        ["rainy", "68", "80", "FALSE", "yes"],
        ["rainy", "65", "70", "TRUE", "no"],
        ["overcast", "64", "65", "TRUE", "yes"],
        ["sunny", "72", "95", "FALSE", "no"],
        ["sunny", "69", "70", "FALSE", "yes"],
        ["rainy", "75", "80", "FALSE", "yes"],
        ["sunny", "75", "70", "TRUE", "yes"],
        ["overcast", "72", "90", "TRUE", "yes"],
        ["overcast", "81", "75", "FALSE", "yes"],
        ["rainy", "71", "91", "TRUE", "no"],
    ];
    for r in rows {
        ds.push_labels(&r).expect("labels in domain");
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_shape() {
        let ds = weather_nominal();
        assert_eq!(ds.num_instances(), 14);
        assert_eq!(ds.num_attributes(), 5);
        assert_eq!(ds.class_counts().unwrap(), vec![9.0, 5.0]);
    }

    #[test]
    fn numeric_shape() {
        let ds = weather_numeric();
        assert_eq!(ds.num_instances(), 14);
        assert!(ds.attribute(1).unwrap().is_numeric());
        assert_eq!(ds.class_counts().unwrap(), vec![9.0, 5.0]);
    }

    #[test]
    fn arff_roundtrip() {
        for ds in [weather_nominal(), weather_numeric()] {
            let text = crate::arff::write_arff(&ds);
            let back = crate::arff::parse_arff(&text).unwrap();
            assert_eq!(back.num_instances(), 14);
        }
    }
}
