//! Deterministic reconstruction of the UCI breast-cancer dataset.
//!
//! Targets, all taken from Figure 3 of the paper (which is WEKA's
//! summary of the genuine dataset):
//!
//! * 286 instances, 10 attributes, all nominal ("Enum");
//! * class split 201 `no-recurrence-events` / 85 `recurrence-events`;
//! * 9 missing values (0.3% of cells): 8 on `node-caps`, 1 on
//!   `breast-quad`;
//! * observed distinct values per attribute:
//!   age 6, menopause 3, tumor-size 11, inv-nodes 7, node-caps 2,
//!   deg-malig 3, breast 2, breast-quad 5, irradiat 2, Class 2.
//!
//! The generator fixes, per class, the exact count of every attribute
//! value (tables below, chosen to match the genuine dataset's published
//! marginals where known and its qualitative structure otherwise), then
//! deals values to rows with a seeded shuffle. Because C4.5's split
//! selection depends only on per-attribute class-conditional counts,
//! fixing these tables pins the Figure-4 root split to `node-caps`.

use crate::arff::write_arff;
use crate::attribute::Attribute;
use crate::dataset::{Dataset, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Number of instances in the reconstructed dataset.
pub const NUM_INSTANCES: usize = 286;
/// Instances of the majority class (`no-recurrence-events`).
pub const NUM_NO_RECURRENCE: usize = 201;
/// Instances of the minority class (`recurrence-events`).
pub const NUM_RECURRENCE: usize = 85;

/// Seed for the row-assignment shuffles; changing it permutes rows but
/// leaves every statistic (and therefore E1/E2) unchanged.
const SEED: u64 = 0x1955_0706;

/// A per-attribute specification: label domain (as declared in the ARFF
/// header) plus, for each class, `(value_index_or_missing, count)`
/// pairs. `None` is a missing value.
struct Spec {
    name: &'static str,
    domain: &'static [&'static str],
    /// Counts for class 0 (`no-recurrence-events`); must sum to 201.
    no_recurrence: &'static [(Option<usize>, usize)],
    /// Counts for class 1 (`recurrence-events`); must sum to 85.
    recurrence: &'static [(Option<usize>, usize)],
}

/// The full ARFF domains mirror the genuine UCI header (some declared
/// labels are never observed, exactly as in the real data — e.g. ages
/// 10-19 and 80-99 are declared but absent, giving 6 observed distinct
/// values out of a 9-label domain).
const SPECS: &[Spec] = &[
    Spec {
        name: "age",
        domain: &[
            "10-19", "20-29", "30-39", "40-49", "50-59", "60-69", "70-79", "80-89", "90-99",
        ],
        no_recurrence: &[
            (Some(1), 1),
            (Some(2), 21),
            (Some(3), 63),
            (Some(4), 64),
            (Some(5), 44),
            (Some(6), 8),
        ],
        recurrence: &[
            (Some(2), 15),
            (Some(3), 27),
            (Some(4), 30),
            (Some(5), 11),
            (Some(6), 2),
        ],
    },
    Spec {
        name: "menopause",
        domain: &["lt40", "ge40", "premeno"],
        no_recurrence: &[(Some(0), 4), (Some(1), 94), (Some(2), 103)],
        recurrence: &[(Some(0), 3), (Some(1), 35), (Some(2), 47)],
    },
    Spec {
        name: "tumor-size",
        domain: &[
            "0-4", "5-9", "10-14", "15-19", "20-24", "25-29", "30-34", "35-39", "40-44", "45-49",
            "50-54", "55-59",
        ],
        no_recurrence: &[
            (Some(0), 7),
            (Some(1), 4),
            (Some(2), 27),
            (Some(3), 23),
            (Some(4), 34),
            (Some(5), 36),
            (Some(6), 35),
            (Some(7), 14),
            (Some(8), 15),
            (Some(9), 2),
            (Some(10), 4),
        ],
        recurrence: &[
            (Some(0), 1),
            (Some(2), 1),
            (Some(3), 7),
            (Some(4), 16),
            (Some(5), 18),
            (Some(6), 25),
            (Some(7), 5),
            (Some(8), 7),
            (Some(9), 1),
            (Some(10), 4),
        ],
    },
    Spec {
        name: "inv-nodes",
        domain: &[
            "0-2", "3-5", "6-8", "9-11", "12-14", "15-17", "18-20", "21-23", "24-26", "27-29",
            "30-32", "33-35", "36-39",
        ],
        no_recurrence: &[
            (Some(0), 167),
            (Some(1), 19),
            (Some(2), 7),
            (Some(3), 4),
            (Some(4), 2),
            (Some(5), 1),
            (Some(8), 1),
        ],
        recurrence: &[
            (Some(0), 46),
            (Some(1), 17),
            (Some(2), 10),
            (Some(3), 6),
            (Some(4), 1),
            (Some(5), 5),
        ],
    },
    Spec {
        name: "node-caps",
        domain: &["yes", "no"],
        no_recurrence: &[(Some(0), 25), (Some(1), 171), (None, 5)],
        recurrence: &[(Some(0), 31), (Some(1), 51), (None, 3)],
    },
    Spec {
        name: "deg-malig",
        domain: &["1", "2", "3"],
        no_recurrence: &[(Some(0), 59), (Some(1), 102), (Some(2), 40)],
        recurrence: &[(Some(0), 12), (Some(1), 28), (Some(2), 45)],
    },
    Spec {
        name: "breast",
        domain: &["left", "right"],
        no_recurrence: &[(Some(0), 103), (Some(1), 98)],
        recurrence: &[(Some(0), 49), (Some(1), 36)],
    },
    Spec {
        name: "breast-quad",
        domain: &["left_up", "left_low", "right_up", "right_low", "central"],
        no_recurrence: &[
            (Some(0), 60),
            (Some(1), 67),
            (Some(2), 30),
            (Some(3), 20),
            (Some(4), 23),
            (None, 1),
        ],
        recurrence: &[
            (Some(0), 20),
            (Some(1), 43),
            (Some(2), 12),
            (Some(3), 4),
            (Some(4), 6),
        ],
    },
    Spec {
        name: "irradiat",
        domain: &["yes", "no"],
        no_recurrence: &[(Some(0), 37), (Some(1), 164)],
        recurrence: &[(Some(0), 31), (Some(1), 54)],
    },
];

/// Build the reconstructed breast-cancer dataset (class attribute set
/// to `Class`, deterministic across calls).
///
/// ```
/// let ds = dm_data::corpus::breast_cancer();
/// assert_eq!(ds.num_instances(), 286);
/// assert_eq!(ds.class_counts().unwrap(), vec![201.0, 85.0]);
/// ```
pub fn breast_cancer() -> Dataset {
    let mut attributes: Vec<Attribute> = SPECS
        .iter()
        .map(|s| Attribute::nominal(s.name, s.domain.iter().copied()))
        .collect();
    attributes.push(Attribute::nominal(
        "Class",
        ["no-recurrence-events", "recurrence-events"],
    ));
    let mut ds = Dataset::new("breast-cancer", attributes);
    ds.set_class_index(Some(SPECS.len()))
        .expect("class index in range");

    let mut rng = StdRng::seed_from_u64(SEED);

    // Column-by-column assignment: for each attribute, expand the count
    // table into a value vector per class, shuffle it, and deal it to
    // the class's rows. Rows 0..201 are class 0, rows 201..286 class 1;
    // a final whole-row shuffle interleaves the classes.
    let ncols = SPECS.len() + 1;
    let mut matrix = vec![0.0f64; NUM_INSTANCES * ncols];
    for (r, cell) in matrix.iter_mut().enumerate() {
        let row = r / ncols;
        let col = r % ncols;
        if col == ncols - 1 {
            *cell = if row < NUM_NO_RECURRENCE { 0.0 } else { 1.0 };
        }
    }

    for (col, spec) in SPECS.iter().enumerate() {
        for (class, table, offset, len) in [
            (0usize, spec.no_recurrence, 0usize, NUM_NO_RECURRENCE),
            (1usize, spec.recurrence, NUM_NO_RECURRENCE, NUM_RECURRENCE),
        ] {
            let _ = class;
            let mut values: Vec<f64> = Vec::with_capacity(len);
            for &(v, count) in table {
                let encoded = match v {
                    Some(i) => Value::from_index(i),
                    None => Value::MISSING,
                };
                values.extend(std::iter::repeat_n(encoded, count));
            }
            assert_eq!(
                values.len(),
                len,
                "count table for {} class {class} must sum to {len}",
                spec.name
            );
            values.shuffle(&mut rng);
            for (i, v) in values.into_iter().enumerate() {
                matrix[(offset + i) * ncols + col] = v;
            }
        }
    }

    // Interleave classes with a row shuffle so folds and splits see a
    // mixed ordering, as the genuine file does.
    let mut order: Vec<usize> = (0..NUM_INSTANCES).collect();
    order.shuffle(&mut rng);
    for row in order {
        ds.push_row(matrix[row * ncols..(row + 1) * ncols].to_vec())
            .expect("row arity matches header");
    }
    ds
}

/// The reconstructed dataset rendered as ARFF text — what the paper's
/// URL-reader Web Service would fetch from the UCI repository.
pub fn breast_cancer_arff() -> String {
    write_arff(&breast_cancer())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::DatasetSummary;

    #[test]
    fn shape_matches_figure3_header() {
        let ds = breast_cancer();
        assert_eq!(ds.num_instances(), 286);
        assert_eq!(ds.num_attributes(), 10);
        let s = DatasetSummary::of(&ds);
        assert_eq!(s.num_discrete, 10);
        assert_eq!(s.num_continuous, 0);
        assert_eq!(s.missing_values, 9);
        assert_eq!(s.missing_pct, 0.3);
    }

    #[test]
    fn class_counts_match_paper() {
        let ds = breast_cancer();
        assert_eq!(ds.class_counts().unwrap(), vec![201.0, 85.0]);
    }

    #[test]
    fn distinct_counts_match_figure3() {
        let ds = breast_cancer();
        let s = DatasetSummary::of(&ds);
        let expected = [6, 3, 11, 7, 2, 3, 2, 5, 2, 2];
        for (row, want) in s.attributes.iter().zip(expected) {
            assert_eq!(row.distinct, want, "attribute {}", row.name);
        }
    }

    #[test]
    fn missing_counts_match_figure3() {
        let ds = breast_cancer();
        let s = DatasetSummary::of(&ds);
        let expected = [0, 0, 0, 0, 8, 0, 0, 1, 0, 0];
        for (row, want) in s.attributes.iter().zip(expected) {
            assert_eq!(row.missing, want, "attribute {}", row.name);
        }
        // node-caps present fraction rounds to 97%, as printed in Fig. 3.
        assert_eq!(s.attributes[4].nominal_pct, 97);
        assert_eq!(s.attributes[4].missing_pct, 3);
    }

    #[test]
    fn generator_is_deterministic() {
        assert_eq!(breast_cancer(), breast_cancer());
    }

    #[test]
    fn node_caps_class_table_is_pinned() {
        // The exact contingency table that makes node-caps the C4.5 root.
        let ds = breast_cancer();
        let nc = ds.attribute_index("node-caps").unwrap();
        let ci = ds.class_index().unwrap();
        let mut table = [[0usize; 2]; 2];
        let mut missing = 0;
        for r in 0..ds.num_instances() {
            let v = ds.value(r, nc);
            if Value::is_missing(v) {
                missing += 1;
            } else {
                table[Value::as_index(v)][Value::as_index(ds.value(r, ci))] += 1;
            }
        }
        assert_eq!(missing, 8);
        assert_eq!(table[0], [25, 31]); // yes: 56 total, 31 recur
        assert_eq!(table[1], [171, 51]); // no: 222 total, 51 recur
    }

    #[test]
    fn arff_roundtrip() {
        let text = breast_cancer_arff();
        let ds = crate::arff::parse_arff(&text).unwrap();
        assert_eq!(ds.num_instances(), 286);
        let s = DatasetSummary::of(&ds);
        assert_eq!(s.missing_values, 9);
    }

    #[test]
    fn classes_are_interleaved() {
        // The row shuffle must not leave all 201 majority rows first.
        let ds = breast_cancer();
        let ci = ds.class_index().unwrap();
        let first_50_minority = (0..50).filter(|&r| ds.value(r, ci) == 1.0).count();
        assert!(first_50_minority > 0, "row shuffle appears to be missing");
    }
}
