//! Synthetic dataset families for the clustering and association-rule
//! services and for the scaling benchmarks (E8, E10).

use crate::attribute::Attribute;
use crate::dataset::{Dataset, Value};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Specification of one Gaussian cluster for [`gaussian_blobs`].
#[derive(Debug, Clone)]
pub struct BlobSpec {
    /// Cluster centre, one coordinate per numeric attribute.
    pub center: Vec<f64>,
    /// Isotropic standard deviation.
    pub stddev: f64,
    /// Number of points drawn from this blob.
    pub count: usize,
}

/// Generate a numeric dataset of isotropic Gaussian blobs, with a
/// nominal `cluster` attribute recording the generating blob (set as
/// the class so clustering output can be scored against ground truth).
pub fn gaussian_blobs(blobs: &[BlobSpec], seed: u64) -> Dataset {
    let dims = blobs.first().map_or(0, |b| b.center.len());
    let mut attributes: Vec<Attribute> = (0..dims)
        .map(|d| Attribute::numeric(format!("x{d}")))
        .collect();
    attributes.push(Attribute::nominal(
        "cluster",
        (0..blobs.len()).map(|i| format!("c{i}")),
    ));
    let mut ds = Dataset::new("gaussian-blobs", attributes);
    ds.set_class_index(Some(dims)).expect("class in range");

    let mut rng = StdRng::seed_from_u64(seed);
    for (b, blob) in blobs.iter().enumerate() {
        assert_eq!(
            blob.center.len(),
            dims,
            "all blobs must share dimensionality"
        );
        for _ in 0..blob.count {
            let mut row: Vec<f64> = blob
                .center
                .iter()
                .map(|&c| c + blob.stddev * gaussian(&mut rng))
                .collect();
            row.push(Value::from_index(b));
            ds.push_row(row).expect("row arity matches header");
        }
    }
    ds
}

/// Standard normal via Box–Muller (avoids needing rand_distr).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Generate market-basket transactions for association-rule mining: a
/// binary dataset with one yes/no attribute per item. `patterns` are
/// itemsets planted with the given probability; remaining items fire
/// independently with `noise` probability.
pub fn market_baskets(
    num_items: usize,
    num_transactions: usize,
    patterns: &[(&[usize], f64)],
    noise: f64,
    seed: u64,
) -> Dataset {
    let attributes: Vec<Attribute> = (0..num_items)
        .map(|i| Attribute::nominal(format!("item{i}"), ["n", "y"]))
        .collect();
    let mut ds = Dataset::new("baskets", attributes);
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..num_transactions {
        let mut row = vec![0.0f64; num_items];
        for &(items, p) in patterns {
            if rng.random_bool(p) {
                for &i in items {
                    row[i] = 1.0;
                }
            }
        }
        for cell in row.iter_mut() {
            if *cell == 0.0 && rng.random_bool(noise) {
                *cell = 1.0;
            }
        }
        ds.push_row(row).expect("row arity matches header");
    }
    ds
}

/// Generate a large nominal classification dataset: `num_attrs` nominal
/// attributes with `arity` labels each, a nominal class with `classes`
/// labels, and a planted dependency — the class is a noisy function of
/// the first two attributes. Used by the scaling benches where the
/// 286-row case-study set is too small.
pub fn nominal_classification(
    num_rows: usize,
    num_attrs: usize,
    arity: usize,
    classes: usize,
    noise: f64,
    seed: u64,
) -> Dataset {
    assert!(num_attrs >= 2, "need at least two predictive attributes");
    assert!(arity >= 2 && classes >= 2);
    let mut attributes: Vec<Attribute> = (0..num_attrs)
        .map(|a| Attribute::nominal(format!("a{a}"), (0..arity).map(|v| format!("v{v}"))))
        .collect();
    attributes.push(Attribute::nominal(
        "class",
        (0..classes).map(|c| format!("k{c}")),
    ));
    let mut ds = Dataset::new("nominal-synthetic", attributes);
    ds.set_class_index(Some(num_attrs)).expect("class in range");

    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..num_rows {
        let mut row: Vec<f64> = (0..num_attrs)
            .map(|_| Value::from_index(rng.random_range(0..arity)))
            .collect();
        let signal = (Value::as_index(row[0]) + Value::as_index(row[1])) % classes;
        let label = if rng.random_bool(noise) {
            rng.random_range(0..classes)
        } else {
            signal
        };
        row.push(Value::from_index(label));
        ds.push_row(row).expect("row arity matches header");
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_have_expected_counts_and_centres() {
        let blobs = vec![
            BlobSpec {
                center: vec![0.0, 0.0],
                stddev: 0.5,
                count: 200,
            },
            BlobSpec {
                center: vec![10.0, 10.0],
                stddev: 0.5,
                count: 100,
            },
        ];
        let ds = gaussian_blobs(&blobs, 7);
        assert_eq!(ds.num_instances(), 300);
        assert_eq!(ds.num_attributes(), 3);
        assert_eq!(ds.class_counts().unwrap(), vec![200.0, 100.0]);
        // Empirical mean of the second blob should be near (10, 10).
        let mut sum = [0.0, 0.0];
        let mut n = 0.0;
        for r in 0..ds.num_instances() {
            if ds.value(r, 2) == 1.0 {
                sum[0] += ds.value(r, 0);
                sum[1] += ds.value(r, 1);
                n += 1.0;
            }
        }
        assert!((sum[0] / n - 10.0).abs() < 0.3);
        assert!((sum[1] / n - 10.0).abs() < 0.3);
    }

    #[test]
    fn blobs_deterministic_per_seed() {
        let spec = vec![BlobSpec {
            center: vec![1.0],
            stddev: 1.0,
            count: 50,
        }];
        assert_eq!(gaussian_blobs(&spec, 3), gaussian_blobs(&spec, 3));
        assert_ne!(gaussian_blobs(&spec, 3), gaussian_blobs(&spec, 4));
    }

    #[test]
    fn baskets_plant_patterns() {
        let ds = market_baskets(20, 500, &[(&[1, 2, 3], 0.4)], 0.02, 11);
        assert_eq!(ds.num_instances(), 500);
        // Support of the planted triple should be near 40%.
        let support = (0..500)
            .filter(|&r| ds.value(r, 1) == 1.0 && ds.value(r, 2) == 1.0 && ds.value(r, 3) == 1.0)
            .count() as f64
            / 500.0;
        assert!(support > 0.3, "planted support {support} too low");
        // An un-planted item fires rarely.
        let lone = (0..500).filter(|&r| ds.value(r, 10) == 1.0).count() as f64 / 500.0;
        assert!(lone < 0.1, "noise item support {lone} too high");
    }

    #[test]
    fn nominal_classification_is_learnable() {
        let ds = nominal_classification(1000, 5, 3, 3, 0.0, 9);
        assert_eq!(ds.num_instances(), 1000);
        // With zero noise the class is exactly (a0 + a1) mod 3.
        for r in 0..100 {
            let want = (Value::as_index(ds.value(r, 0)) + Value::as_index(ds.value(r, 1))) % 3;
            assert_eq!(Value::as_index(ds.value(r, 5)), want);
        }
    }

    #[test]
    fn nominal_classification_noise_perturbs() {
        let clean = nominal_classification(500, 4, 2, 2, 0.0, 5);
        let noisy = nominal_classification(500, 4, 2, 2, 0.5, 5);
        assert_ne!(clean, noisy);
    }
}
