//! Corpus generators: datasets used by the paper's case study and by the
//! benchmark harness.
//!
//! The headline member is [`breast_cancer`], a deterministic
//! reconstruction of the UCI *breast-cancer* dataset (Ljubljana) used in
//! §5 of the paper. The raw UCI rows are not redistributable and the
//! build environment is offline, so the generator reproduces the
//! dataset's published *statistics* exactly — the Figure-3 table — and
//! its class-conditional structure (the strong `node-caps`/`deg-malig`
//! association with recurrence) so that the Figure-4 decision tree
//! reproduces. See DESIGN.md §2 for the substitution rationale.

mod breast_cancer;
mod synthetic;
mod weather;

pub use breast_cancer::{breast_cancer, breast_cancer_arff};
pub use synthetic::{gaussian_blobs, market_baskets, nominal_classification, BlobSpec};
pub use weather::{weather_nominal, weather_numeric};
