//! CSV reader and writer with type inference.
//!
//! The paper's data-manipulation toolbox includes "a tool to convert CSV
//! file into ARFF format … particularly useful for using data sets
//! obtained from commercial software such as MS-Excel". This module
//! parses RFC-4180-style CSV (double-quoted fields, embedded commas and
//! quotes) and infers per-column types: a column is numeric when every
//! non-missing field parses as `f64`, otherwise it becomes nominal with
//! the distinct values (in order of first appearance) as its domain.

use crate::attribute::Attribute;
use crate::dataset::{Dataset, Value};
use crate::error::{DataError, Result};

/// Options controlling CSV parsing.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field separator (default `,`).
    pub separator: char,
    /// Whether the first row is a header of column names (default true).
    pub has_header: bool,
    /// Tokens treated as missing values (default `""` and `"?"`).
    pub missing_tokens: Vec<String>,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            separator: ',',
            has_header: true,
            missing_tokens: vec![String::new(), "?".to_string()],
        }
    }
}

/// Parse CSV text into a [`Dataset`] using default options.
pub fn parse_csv(text: &str) -> Result<Dataset> {
    parse_csv_with(text, &CsvOptions::default())
}

/// Parse CSV text with explicit [`CsvOptions`].
pub fn parse_csv_with(text: &str, opts: &CsvOptions) -> Result<Dataset> {
    let mut rows: Vec<Vec<Option<String>>> = Vec::new();
    let mut header: Option<Vec<String>> = None;

    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_quoted(line, opts.separator, lineno + 1)?;
        if opts.has_header && header.is_none() {
            header = Some(fields);
            continue;
        }
        let row: Vec<Option<String>> = fields
            .into_iter()
            .map(|f| {
                if opts.missing_tokens.contains(&f) {
                    None
                } else {
                    Some(f)
                }
            })
            .collect();
        rows.push(row);
    }

    let ncols = header
        .as_ref()
        .map(Vec::len)
        .or_else(|| rows.first().map(Vec::len))
        .ok_or(DataError::Parse {
            line: 0,
            message: "empty CSV input".into(),
        })?;

    for (i, row) in rows.iter().enumerate() {
        if row.len() != ncols {
            return Err(DataError::Parse {
                line: i + 1 + usize::from(opts.has_header),
                message: format!("row has {} fields, expected {ncols}", row.len()),
            });
        }
    }

    let names: Vec<String> = match header {
        Some(h) => h,
        None => (0..ncols).map(|i| format!("col{}", i + 1)).collect(),
    };

    // Infer column types. Non-finite literals ("NaN", "inf") do not
    // count as numeric: NaN aliases the MISSING sentinel and infinities
    // poison summary statistics, so such columns fall back to nominal
    // where the literal survives as an ordinary label.
    let mut attributes = Vec::with_capacity(ncols);
    for (c, name) in names.iter().enumerate() {
        let numeric = rows
            .iter()
            .filter_map(|r| r[c].as_deref())
            .all(|f| f.trim().parse::<f64>().is_ok_and(|v| v.is_finite()));
        let any_value = rows.iter().any(|r| r[c].is_some());
        if numeric && any_value {
            attributes.push(Attribute::numeric(name.clone()));
        } else {
            let mut labels: Vec<String> = Vec::new();
            for r in &rows {
                if let Some(f) = &r[c] {
                    if !labels.iter().any(|l| l == f) {
                        labels.push(f.clone());
                    }
                }
            }
            attributes.push(Attribute::nominal(name.clone(), labels));
        }
    }

    let mut ds = Dataset::new("csv-import", attributes);
    for (r, row) in rows.iter().enumerate() {
        let lineno = r + 1 + usize::from(opts.has_header);
        let encoded: Vec<f64> = row
            .iter()
            .enumerate()
            .map(|(c, f)| match f {
                None => Ok(Value::MISSING),
                Some(text) => {
                    let attr = ds.attribute(c)?;
                    if attr.is_numeric() {
                        text.trim()
                            .parse::<f64>()
                            .ok()
                            .filter(|v| v.is_finite())
                            .ok_or_else(|| DataError::Parse {
                                line: lineno,
                                message: format!("{text:?} is not a finite number"),
                            })
                    } else {
                        attr.label_index(text)
                            .map(Value::from_index)
                            .ok_or_else(|| DataError::UnknownLabel {
                                attribute: attr.name().to_string(),
                                label: text.clone(),
                            })
                    }
                }
            })
            .collect::<Result<_>>()?;
        ds.push_row(encoded)?;
    }
    Ok(ds)
}

/// Serialise a dataset to CSV text (header row + quoted fields).
pub fn write_csv(ds: &Dataset) -> String {
    let mut out = String::new();
    let mut first = true;
    for attr in ds.attributes() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&quote_csv(attr.name()));
    }
    out.push('\n');
    for row in 0..ds.num_instances() {
        let mut first = true;
        for attr in 0..ds.num_attributes() {
            if !first {
                out.push(',');
            }
            first = false;
            let text = ds.format_value(row, attr);
            if text == "?" {
                // Empty field denotes missing in CSV.
            } else {
                out.push_str(&quote_csv(&text));
            }
        }
        out.push('\n');
    }
    out
}

fn quote_csv(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

fn split_quoted(line: &str, sep: char, lineno: usize) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quote = false;
    while let Some(c) = chars.next() {
        if in_quote {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quote = false;
                }
            } else {
                cur.push(c);
            }
        } else if c == '"' {
            in_quote = true;
        } else if c == sep {
            fields.push(cur.trim().to_string());
            cur.clear();
        } else {
            cur.push(c);
        }
    }
    if in_quote {
        return Err(DataError::Parse {
            line: lineno,
            message: "unterminated quoted field".into(),
        });
    }
    fields.push(cur.trim().to_string());
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infers_numeric_and_nominal() {
        let text = "age,city,score\n34,Cardiff,1.5\n28,London,2\n,Cardiff,\n";
        let ds = parse_csv(text).unwrap();
        assert!(ds.attribute(0).unwrap().is_numeric());
        assert!(ds.attribute(1).unwrap().is_nominal());
        assert!(ds.attribute(2).unwrap().is_numeric());
        assert_eq!(ds.num_instances(), 3);
        assert!(ds.instance(2).is_missing(0));
        assert!(ds.instance(2).is_missing(2));
        assert_eq!(ds.instance(1).label(1), Some("London"));
    }

    #[test]
    fn quoted_fields_with_commas() {
        let text = "name,note\nalice,\"hello, world\"\nbob,\"say \"\"hi\"\"\"\n";
        let ds = parse_csv(text).unwrap();
        assert_eq!(ds.instance(0).label(1), Some("hello, world"));
        assert_eq!(ds.instance(1).label(1), Some("say \"hi\""));
    }

    #[test]
    fn headerless_mode_names_columns() {
        let opts = CsvOptions {
            has_header: false,
            ..CsvOptions::default()
        };
        let ds = parse_csv_with("1,2\n3,4\n", &opts).unwrap();
        assert_eq!(ds.attribute(0).unwrap().name(), "col1");
        assert_eq!(ds.num_instances(), 2);
    }

    #[test]
    fn custom_separator() {
        let opts = CsvOptions {
            separator: ';',
            ..CsvOptions::default()
        };
        let ds = parse_csv_with("a;b\n1;x\n", &opts).unwrap();
        assert_eq!(ds.num_attributes(), 2);
        assert_eq!(ds.instance(0).label(1), Some("x"));
    }

    #[test]
    fn ragged_rows_rejected() {
        assert!(parse_csv("a,b\n1\n").is_err());
    }

    #[test]
    fn empty_input_rejected() {
        assert!(parse_csv("").is_err());
    }

    #[test]
    fn write_roundtrip() {
        let text = "age,city\n34,Cardiff\n28,\"Lond,on\"\n,Cardiff\n";
        let ds = parse_csv(text).unwrap();
        let out = write_csv(&ds);
        let ds2 = parse_csv(&out).unwrap();
        assert_eq!(ds2.num_instances(), 3);
        assert_eq!(ds2.instance(1).label(1), Some("Lond,on"));
        assert!(ds2.instance(2).is_missing(0));
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert!(parse_csv("a\n\"oops\n").is_err());
    }

    #[test]
    fn all_missing_column_is_nominal() {
        let ds = parse_csv("a,b\n,1\n,2\n").unwrap();
        assert!(ds.attribute(0).unwrap().is_nominal());
        assert_eq!(ds.attribute(0).unwrap().num_labels(), 0);
    }

    #[test]
    fn non_finite_literals_do_not_infer_numeric() {
        // "NaN" parses as f64 but would silently alias the MISSING
        // sentinel; "inf" would poison summary statistics. Columns
        // containing them fall back to nominal, where the literal
        // survives as an ordinary label instead of corrupting data.
        let ds = parse_csv("a,b\nNaN,1\ninf,2\n").unwrap();
        let a = ds.attribute(0).unwrap();
        assert!(a.is_nominal(), "non-finite literals inferred as numeric");
        assert_eq!(ds.instance(0).label(0), Some("NaN"));
        assert_eq!(ds.instance(1).label(0), Some("inf"));
        assert!(ds.attribute(1).unwrap().is_numeric());
        assert_eq!(ds.value(1, 1), 2.0);
    }

    #[test]
    fn crlf_line_endings_are_tolerated() {
        let ds = parse_csv("a,b\r\n1,x\r\n2,y\r\n").unwrap();
        assert!(ds.attribute(0).unwrap().is_numeric());
        assert_eq!(ds.value(1, 0), 2.0);
        assert_eq!(ds.instance(0).label(1), Some("x"));
    }
}
