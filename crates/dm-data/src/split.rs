//! Train/test splitting and cross-validation folds.
//!
//! The paper's requirement "Testing the discovered knowledge" (§3) and
//! Grid WEKA's distributed cross-validation motivate this module: it
//! provides seeded shuffling, percentage splits, and (stratified)
//! k-fold cross-validation iterators used by the evaluation layer and
//! by the parallel-enactment experiment (E10).

use crate::dataset::{Dataset, Value};
use crate::error::{DataError, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Split `ds` into `(train, test)` with `train_fraction` of the rows
/// (after a seeded shuffle) in the training set.
///
/// ```
/// let ds = dm_data::corpus::breast_cancer();
/// let (train, test) = dm_data::split::train_test_split(&ds, 0.7, 42).unwrap();
/// assert_eq!(train.num_instances() + test.num_instances(), 286);
/// ```
pub fn train_test_split(
    ds: &Dataset,
    train_fraction: f64,
    seed: u64,
) -> Result<(Dataset, Dataset)> {
    if !(0.0..=1.0).contains(&train_fraction) {
        return Err(DataError::InvalidParameter(format!(
            "train_fraction {train_fraction} not in [0,1]"
        )));
    }
    if ds.num_instances() == 0 {
        return Err(DataError::Empty);
    }
    let mut order: Vec<usize> = (0..ds.num_instances()).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));
    let cut = (train_fraction * ds.num_instances() as f64).round() as usize;
    let (train_rows, test_rows) = order.split_at(cut.min(order.len()));
    Ok((ds.select_rows(train_rows), ds.select_rows(test_rows)))
}

/// A k-fold cross-validation plan over a dataset.
#[derive(Debug, Clone)]
pub struct CrossValidation {
    folds: Vec<Vec<usize>>,
}

impl CrossValidation {
    /// Build `k` folds with a seeded shuffle (unstratified).
    pub fn new(ds: &Dataset, k: usize, seed: u64) -> Result<CrossValidation> {
        if k < 2 {
            return Err(DataError::InvalidParameter(format!("k = {k}; need k >= 2")));
        }
        if ds.num_instances() < k {
            return Err(DataError::InvalidParameter(format!(
                "cannot make {k} folds from {} instances",
                ds.num_instances()
            )));
        }
        let mut order: Vec<usize> = (0..ds.num_instances()).collect();
        order.shuffle(&mut StdRng::seed_from_u64(seed));
        let mut folds = vec![Vec::new(); k];
        for (i, row) in order.into_iter().enumerate() {
            folds[i % k].push(row);
        }
        Ok(CrossValidation { folds })
    }

    /// Build `k` folds stratified by the class attribute: each fold gets
    /// approximately the dataset's class proportions (WEKA default).
    pub fn stratified(ds: &Dataset, k: usize, seed: u64) -> Result<CrossValidation> {
        if k < 2 {
            return Err(DataError::InvalidParameter(format!("k = {k}; need k >= 2")));
        }
        if ds.num_instances() < k {
            return Err(DataError::InvalidParameter(format!(
                "cannot make {k} folds from {} instances",
                ds.num_instances()
            )));
        }
        let ci = ds.class_index().ok_or(DataError::NoClass)?;
        let num_classes = ds.num_classes()?;
        let mut rng = StdRng::seed_from_u64(seed);

        // Bucket rows per class (missing class goes in its own bucket),
        // shuffle each bucket, then deal round-robin into folds.
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); num_classes + 1];
        for row in 0..ds.num_instances() {
            let v = ds.value(row, ci);
            if Value::is_missing(v) {
                buckets[num_classes].push(row);
            } else {
                buckets[Value::as_index(v)].push(row);
            }
        }
        let mut folds = vec![Vec::new(); k];
        let mut next = 0usize;
        for bucket in &mut buckets {
            bucket.shuffle(&mut rng);
            for &row in bucket.iter() {
                folds[next % k].push(row);
                next += 1;
            }
        }
        Ok(CrossValidation { folds })
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.folds.len()
    }

    /// Row indices of test fold `fold`.
    pub fn test_rows(&self, fold: usize) -> &[usize] {
        &self.folds[fold]
    }

    /// Materialise `(train, test)` datasets for fold `fold`.
    pub fn split(&self, ds: &Dataset, fold: usize) -> (Dataset, Dataset) {
        let test_rows = &self.folds[fold];
        let mut train_rows = Vec::with_capacity(ds.num_instances() - test_rows.len());
        for (i, f) in self.folds.iter().enumerate() {
            if i != fold {
                train_rows.extend_from_slice(f);
            }
        }
        (ds.select_rows(&train_rows), ds.select_rows(test_rows))
    }

    /// Iterate over `(train, test)` pairs for all folds.
    pub fn splits<'a>(&'a self, ds: &'a Dataset) -> impl Iterator<Item = (Dataset, Dataset)> + 'a {
        (0..self.k()).map(move |f| self.split(ds, f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;

    fn toy(n: usize) -> Dataset {
        let mut ds = Dataset::new(
            "toy",
            vec![Attribute::numeric("x"), Attribute::nominal("c", ["a", "b"])],
        );
        ds.set_class_index(Some(1)).unwrap();
        for i in 0..n {
            // 75% class a, 25% class b.
            let c = if i % 4 == 3 { 1.0 } else { 0.0 };
            ds.push_row(vec![i as f64, c]).unwrap();
        }
        ds
    }

    #[test]
    fn split_partitions_rows() {
        let ds = toy(100);
        let (tr, te) = train_test_split(&ds, 0.66, 7).unwrap();
        assert_eq!(tr.num_instances(), 66);
        assert_eq!(te.num_instances(), 34);
        // Every original x value appears exactly once across both parts.
        let mut seen = [false; 100];
        for d in [&tr, &te] {
            for r in 0..d.num_instances() {
                let x = d.value(r, 0) as usize;
                assert!(!seen[x], "row duplicated");
                seen[x] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn split_is_seed_deterministic() {
        let ds = toy(50);
        let (a1, _) = train_test_split(&ds, 0.5, 9).unwrap();
        let (a2, _) = train_test_split(&ds, 0.5, 9).unwrap();
        let (b1, _) = train_test_split(&ds, 0.5, 10).unwrap();
        assert_eq!(a1, a2);
        assert_ne!(a1, b1);
    }

    #[test]
    fn bad_fraction_rejected() {
        let ds = toy(10);
        assert!(train_test_split(&ds, 1.5, 0).is_err());
        assert!(train_test_split(&ds, -0.1, 0).is_err());
    }

    #[test]
    fn empty_dataset_rejected() {
        let ds = Dataset::new("e", vec![Attribute::numeric("x")]);
        assert!(train_test_split(&ds, 0.5, 0).is_err());
    }

    #[test]
    fn cv_folds_partition() {
        let ds = toy(103);
        let cv = CrossValidation::new(&ds, 10, 3).unwrap();
        let total: usize = (0..10).map(|f| cv.test_rows(f).len()).sum();
        assert_eq!(total, 103);
        let mut seen = [false; 103];
        for f in 0..10 {
            for &r in cv.test_rows(f) {
                assert!(!seen[r]);
                seen[r] = true;
            }
        }
    }

    #[test]
    fn cv_split_materialises_complement() {
        let ds = toy(20);
        let cv = CrossValidation::new(&ds, 4, 1).unwrap();
        let (tr, te) = cv.split(&ds, 0);
        assert_eq!(tr.num_instances() + te.num_instances(), 20);
        assert_eq!(te.num_instances(), 5);
    }

    #[test]
    fn stratified_folds_balance_classes() {
        let ds = toy(80); // 60 a, 20 b
        let cv = CrossValidation::stratified(&ds, 4, 5).unwrap();
        for f in 0..4 {
            let te = ds.select_rows(cv.test_rows(f));
            let counts = te.class_counts().unwrap();
            assert_eq!(counts[0] as usize, 15, "fold {f} class a");
            assert_eq!(counts[1] as usize, 5, "fold {f} class b");
        }
    }

    #[test]
    fn stratified_requires_class() {
        let mut ds = toy(20);
        ds.set_class_index(None).unwrap();
        assert!(matches!(
            CrossValidation::stratified(&ds, 2, 0),
            Err(DataError::NoClass)
        ));
    }

    #[test]
    fn k_must_be_sane() {
        let ds = toy(5);
        assert!(CrossValidation::new(&ds, 1, 0).is_err());
        assert!(CrossValidation::new(&ds, 6, 0).is_err());
    }

    #[test]
    fn splits_iterator_covers_all_folds() {
        let ds = toy(30);
        let cv = CrossValidation::new(&ds, 3, 0).unwrap();
        assert_eq!(cv.splits(&ds).count(), 3);
    }
}
