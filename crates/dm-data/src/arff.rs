//! ARFF (Attribute-Relation File Format) reader and writer.
//!
//! This is the native format of the paper's Web Services: the
//! `classifyInstance` operation of the general Classifier service
//! requires "a data set in ARFF format". The dialect implemented here
//! covers what WEKA 3.4 (the version the paper wrapped) emits:
//!
//! * `% comment` lines and blank lines anywhere;
//! * `@relation <name>` with optional quoting;
//! * `@attribute <name> numeric|real|integer|string|{l1,l2,...}`;
//! * dense `@data` rows with `?` for missing values and single-quoted
//!   tokens containing separators;
//! * sparse rows `{index value, index value, ...}`.

use crate::attribute::{Attribute, AttributeKind};
use crate::dataset::{Dataset, Value};
use crate::error::{DataError, Result};

/// Parse an ARFF document into a [`Dataset`].
///
/// ```
/// let text = "@relation toy\n@attribute a {x,y}\n@attribute b numeric\n@data\nx,1\ny,?\n";
/// let ds = dm_data::arff::parse_arff(text).unwrap();
/// assert_eq!(ds.num_instances(), 2);
/// assert!(ds.instance(1).is_missing(1));
/// ```
pub fn parse_arff(text: &str) -> Result<Dataset> {
    let mut relation = String::from("unnamed");
    let mut attributes: Vec<Attribute> = Vec::new();
    let mut dataset: Option<Dataset> = None;

    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let lower = line.to_ascii_lowercase();
        if let Some(ds) = dataset.as_mut() {
            // Data section.
            if line.starts_with('{') {
                parse_sparse_row(ds, line, lineno + 1)?;
            } else {
                let fields = split_csv_line(line);
                push_textual_row(ds, &fields, lineno + 1)?;
            }
        } else if lower.starts_with("@relation") {
            relation = unquote(line["@relation".len()..].trim()).to_string();
        } else if lower.starts_with("@attribute") {
            attributes.push(parse_attribute_decl(
                line["@attribute".len()..].trim(),
                lineno + 1,
            )?);
        } else if lower.starts_with("@data") {
            if attributes.is_empty() {
                return Err(DataError::Parse {
                    line: lineno + 1,
                    message: "@data before any @attribute declaration".into(),
                });
            }
            dataset = Some(Dataset::new(relation.clone(), attributes.clone()));
        } else {
            return Err(DataError::Parse {
                line: lineno + 1,
                message: format!("unrecognised header line: {line:?}"),
            });
        }
    }

    dataset.ok_or(DataError::Parse {
        line: 0,
        message: "no @data section".into(),
    })
}

fn push_textual_row(ds: &mut Dataset, fields: &[String], lineno: usize) -> Result<()> {
    if fields.len() != ds.num_attributes() {
        return Err(DataError::Parse {
            line: lineno,
            message: format!(
                "row has {} values, header declares {} attributes",
                fields.len(),
                ds.num_attributes()
            ),
        });
    }
    // String attributes need interning, which push_labels does not do;
    // encode manually.
    let mut row = Vec::with_capacity(fields.len());
    for (i, field) in fields.iter().enumerate() {
        let attr = ds.attribute(i)?.clone();
        let v = if field == "?" {
            Value::MISSING
        } else {
            match attr.kind() {
                AttributeKind::Nominal(_) => {
                    Value::from_index(attr.label_index(field).ok_or_else(|| DataError::Parse {
                        line: lineno,
                        message: format!(
                            "label {field:?} not in domain of attribute {:?}",
                            attr.name()
                        ),
                    })?)
                }
                AttributeKind::Numeric => parse_finite(field, lineno)?,
                AttributeKind::Str => Value::from_index(ds.intern_string(field.clone())),
            }
        };
        row.push(v);
    }
    ds.push_row(row)?;
    Ok(())
}

fn parse_sparse_row(ds: &mut Dataset, line: &str, lineno: usize) -> Result<()> {
    let inner = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| DataError::Parse {
            line: lineno,
            message: "unterminated sparse row".into(),
        })?;
    // Sparse rows default unlisted values to 0 (numeric) or first label.
    let mut row = vec![0.0; ds.num_attributes()];
    if !inner.trim().is_empty() {
        for part in split_csv_line(inner) {
            let mut it = part.splitn(2, char::is_whitespace);
            let idx: usize =
                it.next()
                    .unwrap_or("")
                    .trim()
                    .parse()
                    .map_err(|_| DataError::Parse {
                        line: lineno,
                        message: "bad sparse index".into(),
                    })?;
            let val = it.next().unwrap_or("").trim();
            if idx >= ds.num_attributes() {
                return Err(DataError::Parse {
                    line: lineno,
                    message: format!("sparse index {idx} out of range"),
                });
            }
            let attr = ds.attribute(idx)?.clone();
            row[idx] = if val == "?" {
                Value::MISSING
            } else {
                match attr.kind() {
                    AttributeKind::Nominal(_) => {
                        Value::from_index(attr.label_index(&unquote(val)).ok_or_else(|| {
                            DataError::Parse {
                                line: lineno,
                                message: format!("label {val:?} not in domain"),
                            }
                        })?)
                    }
                    AttributeKind::Numeric => parse_finite(val, lineno)?,
                    AttributeKind::Str => Value::from_index(ds.intern_string(unquote(val))),
                }
            };
        }
    }
    ds.push_row(row)?;
    Ok(())
}

/// Parse a numeric literal, rejecting non-finite values: `NaN` would
/// silently alias the missing-value sentinel and infinities poison
/// summary statistics, so both are malformed input here (WEKA's ARFF
/// has no non-finite literals either — `?` is the only missing marker).
fn parse_finite(field: &str, lineno: usize) -> Result<f64> {
    field
        .parse::<f64>()
        .ok()
        .filter(|v| v.is_finite())
        .ok_or_else(|| DataError::Parse {
            line: lineno,
            message: format!("{field:?} is not a finite number (use '?' for missing)"),
        })
}

fn parse_attribute_decl(decl: &str, lineno: usize) -> Result<Attribute> {
    // Name may be quoted and may contain spaces when quoted.
    let (name, rest) = take_token(decl);
    if name.is_empty() {
        return Err(DataError::Parse {
            line: lineno,
            message: "missing attribute name".into(),
        });
    }
    let rest = rest.trim();
    if rest.starts_with('{') {
        let inner = rest
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or_else(|| DataError::Parse {
                line: lineno,
                message: "unterminated nominal domain".into(),
            })?;
        let labels: Vec<String> = split_csv_line(inner);
        Ok(Attribute::nominal(name, labels))
    } else {
        match rest.to_ascii_lowercase().as_str() {
            "numeric" | "real" | "integer" => Ok(Attribute::numeric(name)),
            "string" => Ok(Attribute::string(name)),
            other if other.starts_with("date") => {
                // Dates are stored as numeric timestamps; format is ignored.
                Ok(Attribute::numeric(name))
            }
            other => Err(DataError::Parse {
                line: lineno,
                message: format!("unsupported attribute type {other:?}"),
            }),
        }
    }
}

/// Serialise a dataset to ARFF text.
pub fn write_arff(ds: &Dataset) -> String {
    let mut out = String::new();
    out.push_str(&format!("@relation {}\n\n", quote_if_needed(ds.relation())));
    for attr in ds.attributes() {
        out.push_str(&format!(
            "@attribute {} {}\n",
            quote_if_needed(attr.name()),
            attr.arff_type()
        ));
    }
    out.push_str("\n@data\n");
    for row in 0..ds.num_instances() {
        let mut first = true;
        for attr in 0..ds.num_attributes() {
            if !first {
                out.push(',');
            }
            first = false;
            let text = ds.format_value(row, attr);
            if text == "?" {
                out.push('?');
            } else {
                out.push_str(&quote_if_needed(&text));
            }
        }
        out.push('\n');
    }
    out
}

/// Quote a token with single quotes when it contains ARFF separators.
pub fn quote_if_needed(token: &str) -> String {
    if token.is_empty() || token.contains([' ', ',', '{', '}', '%', '\'', '"']) {
        format!("'{}'", token.replace('\'', "\\'"))
    } else {
        token.to_string()
    }
}

/// Remove a trailing `%` comment, honouring quoting.
fn strip_comment(line: &str) -> &str {
    let mut in_quote = false;
    for (i, c) in line.char_indices() {
        match c {
            '\'' => in_quote = !in_quote,
            '%' if !in_quote => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Split a comma-separated line, honouring single quotes, unquoting each
/// field and trimming surrounding whitespace.
pub(crate) fn split_csv_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quote = false;
    let mut escaped = false;
    for c in line.chars() {
        if escaped {
            cur.push(c);
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quote => escaped = true,
            '\'' => in_quote = !in_quote,
            ',' if !in_quote => {
                fields.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    fields.push(cur.trim().to_string());
    fields
}

/// Take the first (possibly quoted) whitespace-delimited token.
fn take_token(s: &str) -> (String, &str) {
    let s = s.trim_start();
    if let Some(rest) = s.strip_prefix('\'') {
        if let Some(end) = rest.find('\'') {
            return (rest[..end].to_string(), &rest[end + 1..]);
        }
    }
    match s.find(char::is_whitespace) {
        Some(end) => (s[..end].to_string(), &s[end..]),
        None => (s.to_string(), ""),
    }
}

fn unquote(s: &str) -> String {
    let s = s.trim();
    if s.len() >= 2 && s.starts_with('\'') && s.ends_with('\'') {
        s[1..s.len() - 1].replace("\\'", "'")
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOY: &str = "% a toy relation\n\
        @relation 'toy set'\n\
        @attribute outlook {sunny, overcast, rainy}\n\
        @attribute temperature real\n\
        @attribute 'play time' numeric\n\
        @attribute play {yes,no}\n\
        @data\n\
        sunny, 85, 5, no   % hot day\n\
        overcast, 83, 10, yes\n\
        rainy, ?, 0, yes\n";

    #[test]
    fn parse_toy() {
        let ds = parse_arff(TOY).unwrap();
        assert_eq!(ds.relation(), "toy set");
        assert_eq!(ds.num_attributes(), 4);
        assert_eq!(ds.num_instances(), 3);
        assert_eq!(ds.attribute(0).unwrap().labels().len(), 3);
        assert_eq!(ds.attribute(2).unwrap().name(), "play time");
        assert!(ds.instance(2).is_missing(1));
        assert_eq!(ds.instance(0).label(3), Some("no"));
    }

    #[test]
    fn roundtrip_preserves_values() {
        let ds = parse_arff(TOY).unwrap();
        let text = write_arff(&ds);
        let ds2 = parse_arff(&text).unwrap();
        assert_eq!(ds.num_instances(), ds2.num_instances());
        for r in 0..ds.num_instances() {
            for a in 0..ds.num_attributes() {
                let (x, y) = (ds.value(r, a), ds2.value(r, a));
                assert!(x.is_nan() == y.is_nan());
                if !x.is_nan() {
                    assert!((x - y).abs() < 1e-9, "mismatch at {r},{a}");
                }
            }
        }
    }

    #[test]
    fn sparse_rows() {
        let text = "@relation s\n@attribute a numeric\n@attribute b numeric\n@attribute c {u,v}\n@data\n{0 3, 2 v}\n{}\n";
        let ds = parse_arff(text).unwrap();
        assert_eq!(ds.num_instances(), 2);
        assert_eq!(ds.value(0, 0), 3.0);
        assert_eq!(ds.value(0, 1), 0.0);
        assert_eq!(ds.instance(0).label(2), Some("v"));
        assert_eq!(ds.value(1, 0), 0.0);
    }

    #[test]
    fn integer_and_date_types() {
        let text =
            "@relation t\n@attribute n integer\n@attribute d date yyyy-MM-dd\n@data\n4,100\n";
        let ds = parse_arff(text).unwrap();
        assert!(ds.attribute(0).unwrap().is_numeric());
        assert!(ds.attribute(1).unwrap().is_numeric());
    }

    #[test]
    fn string_attributes_interned() {
        let text = "@relation t\n@attribute note string\n@data\nhello\nhello\nworld\n";
        let ds = parse_arff(text).unwrap();
        assert_eq!(ds.value(0, 0), ds.value(1, 0));
        assert_ne!(ds.value(0, 0), ds.value(2, 0));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "@relation t\n@attribute a numeric\n@data\nnot_a_number\n";
        match parse_arff(text) {
            Err(DataError::Parse { line, .. }) => assert_eq!(line, 4),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn missing_data_section_is_error() {
        let text = "@relation t\n@attribute a numeric\n";
        assert!(parse_arff(text).is_err());
    }

    #[test]
    fn unknown_header_line_is_error() {
        let text = "@relation t\n@bogus x\n@data\n";
        assert!(parse_arff(text).is_err());
    }

    #[test]
    fn wrong_arity_row_is_error() {
        let text = "@relation t\n@attribute a numeric\n@attribute b numeric\n@data\n1\n";
        match parse_arff(text) {
            Err(DataError::Parse { line, .. }) => assert_eq!(line, 5),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_numeric_literals_rejected() {
        for literal in ["NaN", "nan", "inf", "-inf", "Infinity"] {
            let text = format!("@relation t\n@attribute a numeric\n@data\n{literal}\n");
            match parse_arff(&text) {
                Err(DataError::Parse { line, message }) => {
                    assert_eq!(line, 4, "{literal}");
                    assert!(message.contains("finite"), "{literal}: {message}");
                }
                other => panic!("{literal} accepted as numeric: {other:?}"),
            }
        }
        // Sparse rows run through the same guard.
        let sparse = "@relation t\n@attribute a numeric\n@data\n{0 NaN}\n";
        assert!(parse_arff(sparse).is_err());
        // The explicit missing marker still works in both forms.
        let ok = "@relation t\n@attribute a numeric\n@data\n?\n{0 ?}\n";
        let ds = parse_arff(ok).unwrap();
        assert!(ds.instance(0).is_missing(0));
        assert!(ds.instance(1).is_missing(0));
    }

    #[test]
    fn quoting_labels_with_spaces() {
        let a = Attribute::nominal("x", ["big label", "ok"]);
        let mut ds = Dataset::new("q", vec![a]);
        ds.push_labels(&["big label"]).unwrap();
        let text = write_arff(&ds);
        assert!(text.contains("'big label'"));
        let ds2 = parse_arff(&text).unwrap();
        assert_eq!(ds2.instance(0).label(0), Some("big label"));
    }
}
