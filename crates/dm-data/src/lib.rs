//! # dm-data — dataset substrate for `faehim-rs`
//!
//! This crate is the data layer of the FAEHIM reproduction: an
//! attribute-relation data model equivalent to WEKA's `Instances`,
//! readers and writers for the ARFF and CSV formats, format converters,
//! summary statistics (reproducing Figure 3 of the paper), dataset
//! filters (discretisation, normalisation, missing-value replacement,
//! attribute removal, resampling), train/test and cross-validation
//! splitting, record streaming for remote data sources, and corpus
//! generators — most importantly a deterministic reconstruction of the
//! UCI *breast-cancer* dataset used in the paper's case study.
//!
//! ## Representation
//!
//! A [`Dataset`] owns a vector of [`Attribute`] descriptors and a
//! **columnar** store: one contiguous buffer per attribute (numeric
//! cells as `Vec<f64>`, nominal cells as dense `u8`/`u16` codes,
//! string cells as interned-table ids) plus a validity bitmap per
//! column marking missing cells. At the API boundary rows still travel
//! as encoded `f64` cells — nominal values as the label's domain
//! index, missing as `f64::NAN` (tested through [`Value`] helpers
//! rather than raw comparison) — so parsers and filters see WEKA's
//! encoding, while the mining kernels in `dm-algorithms` scan the
//! cache-friendly column buffers directly through zero-copy
//! [`ColumnView`]/[`BlockView`] borrows.
//!
//! ## Quick example
//!
//! ```
//! use dm_data::prelude::*;
//!
//! let ds = dm_data::corpus::breast_cancer();
//! assert_eq!(ds.num_instances(), 286);
//! assert_eq!(ds.num_attributes(), 10);
//! let summary = DatasetSummary::of(&ds);
//! assert_eq!(summary.missing_values, 9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arff;
pub mod attribute;
pub mod column;
pub mod convert;
pub mod corpus;
pub mod csv;
pub mod dataset;
pub mod error;
pub mod filters;
pub mod split;
pub mod stream;
pub mod summary;

pub use attribute::{Attribute, AttributeKind};
pub use column::{Bitmap, Codes, CodesView, Column, ColumnView};
pub use dataset::{block_ranges, BlockView, Dataset, Instance, Value};
pub use error::{DataError, Result};
pub use stream::{chunk_dataset, record_stream, RecordBatch, StreamHeader};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::arff::{parse_arff, write_arff};
    pub use crate::attribute::{Attribute, AttributeKind};
    pub use crate::csv::{parse_csv, write_csv};
    pub use crate::dataset::{Dataset, Instance, Value};
    pub use crate::error::{DataError, Result};
    pub use crate::split::{train_test_split, CrossValidation};
    pub use crate::summary::DatasetSummary;
}
