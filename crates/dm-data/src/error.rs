//! Error type shared by all `dm-data` operations.

use std::fmt;

/// Result alias used throughout `dm-data`.
pub type Result<T> = std::result::Result<T, DataError>;

/// Errors raised while parsing, converting, or manipulating datasets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A file could not be parsed; carries a line number (1-based, 0 if
    /// unknown) and a human-readable message.
    Parse {
        /// 1-based line number of the offending input line (0 = unknown).
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// An attribute index was out of range for the dataset header.
    AttributeIndex {
        /// The requested index.
        index: usize,
        /// Number of attributes actually present.
        len: usize,
    },
    /// A nominal label was not found in an attribute's domain.
    UnknownLabel {
        /// The attribute name.
        attribute: String,
        /// The label that could not be resolved.
        label: String,
    },
    /// An attribute with the given name does not exist.
    UnknownAttribute(String),
    /// An instance had the wrong number of values for the header.
    Arity {
        /// Number of values supplied.
        got: usize,
        /// Number of values expected (one per attribute).
        expected: usize,
    },
    /// An operation required a class attribute but none was set.
    NoClass,
    /// An operation required a nominal (or numeric) attribute but found
    /// the other kind.
    KindMismatch {
        /// The attribute name.
        attribute: String,
        /// What the operation required, e.g. `"nominal"`.
        expected: &'static str,
    },
    /// An encoded nominal/string cell was outside its attribute's
    /// domain at insert time (out-of-range, negative, or non-integral
    /// code). Raised by `Dataset::push_row` instead of deferring to a
    /// later `label()` lookup failure.
    NominalRange {
        /// The attribute name.
        attribute: String,
        /// The offending encoded code, rendered as text.
        code: String,
        /// The attribute's domain size (string-table size for `Str`).
        arity: usize,
    },
    /// The dataset was empty where at least one instance was required.
    Empty,
    /// Invalid parameter to a filter or split (message).
    InvalidParameter(String),
    /// A streaming source terminated early or was disconnected.
    StreamClosed,
    /// A record batch arrived ragged: one of its parallel buffers does
    /// not cover the row count the batch declares. Raised at receive
    /// time so a malformed producer cannot panic the consumer.
    RaggedBatch {
        /// Which buffer is ragged (attribute name, or `"weights"`).
        column: String,
        /// Rows actually present in that buffer.
        len: usize,
        /// Rows the batch declares.
        expected: usize,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Parse { line, message } => {
                if *line == 0 {
                    write!(f, "parse error: {message}")
                } else {
                    write!(f, "parse error at line {line}: {message}")
                }
            }
            DataError::AttributeIndex { index, len } => {
                write!(
                    f,
                    "attribute index {index} out of range (dataset has {len})"
                )
            }
            DataError::UnknownLabel { attribute, label } => {
                write!(
                    f,
                    "label {label:?} not in domain of attribute {attribute:?}"
                )
            }
            DataError::UnknownAttribute(name) => write!(f, "no attribute named {name:?}"),
            DataError::Arity { got, expected } => {
                write!(f, "instance has {got} values, header expects {expected}")
            }
            DataError::NoClass => write!(f, "operation requires a class attribute but none is set"),
            DataError::KindMismatch {
                attribute,
                expected,
            } => {
                write!(f, "attribute {attribute:?} is not {expected}")
            }
            DataError::NominalRange {
                attribute,
                code,
                arity,
            } => {
                write!(
                    f,
                    "code {code} out of range for attribute {attribute:?} (domain size {arity})"
                )
            }
            DataError::Empty => write!(f, "dataset contains no instances"),
            DataError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            DataError::StreamClosed => write!(f, "record stream closed unexpectedly"),
            DataError::RaggedBatch {
                column,
                len,
                expected,
            } => {
                write!(
                    f,
                    "ragged record batch: buffer {column:?} holds {len} rows, batch declares {expected}"
                )
            }
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_with_line() {
        let e = DataError::Parse {
            line: 7,
            message: "bad token".into(),
        };
        assert_eq!(e.to_string(), "parse error at line 7: bad token");
    }

    #[test]
    fn display_parse_without_line() {
        let e = DataError::Parse {
            line: 0,
            message: "bad token".into(),
        };
        assert_eq!(e.to_string(), "parse error: bad token");
    }

    #[test]
    fn display_arity() {
        let e = DataError::Arity {
            got: 3,
            expected: 10,
        };
        assert_eq!(e.to_string(), "instance has 3 values, header expects 10");
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&DataError::NoClass);
    }
}
