//! The core data model: [`Dataset`] (WEKA `Instances` equivalent),
//! [`Instance`] row views, [`Value`] encoding helpers, and the
//! zero-copy [`BlockView`] scan windows over the columnar store.

use crate::attribute::{Attribute, AttributeKind};
use crate::column::{Column, ColumnView};
use crate::error::{DataError, Result};

/// Helpers for the `f64` value encoding used at the [`Dataset`] API
/// boundary (rows enter and leave as encoded `f64` cells even though
/// storage is columnar).
///
/// * numeric attributes store their value directly;
/// * nominal attributes store the label's domain index as `f64`;
/// * string attributes store an index into the dataset string table;
/// * a missing value (ARFF `?`) is `f64::NAN`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Value;

impl Value {
    /// The encoding of a missing value.
    pub const MISSING: f64 = f64::NAN;

    /// `true` if `v` encodes a missing value.
    #[inline]
    pub fn is_missing(v: f64) -> bool {
        v.is_nan()
    }

    /// Decode a nominal/string value to its domain index.
    ///
    /// Callers must have checked for missingness; a missing value maps to
    /// index 0 only by accident of `as` casting, so debug builds assert.
    #[inline]
    pub fn as_index(v: f64) -> usize {
        debug_assert!(!v.is_nan(), "as_index called on a missing value");
        v as usize
    }

    /// Encode a domain index as a stored value.
    #[inline]
    pub fn from_index(i: usize) -> f64 {
        i as f64
    }
}

/// A borrowed view of one row of a [`Dataset`].
#[derive(Debug, Clone, Copy)]
pub struct Instance<'a> {
    dataset: &'a Dataset,
    row: usize,
}

impl<'a> Instance<'a> {
    /// Raw encoded value at attribute `attr`.
    #[inline]
    pub fn value(&self, attr: usize) -> f64 {
        self.dataset.value(self.row, attr)
    }

    /// `true` if the value at `attr` is missing.
    #[inline]
    pub fn is_missing(&self, attr: usize) -> bool {
        self.dataset.is_missing(self.row, attr)
    }

    /// Nominal label at `attr`, or `None` if missing / not nominal.
    pub fn label(&self, attr: usize) -> Option<&'a str> {
        let v = self.value(attr);
        if Value::is_missing(v) {
            return None;
        }
        let a = self.dataset.attribute(attr).ok()?;
        a.labels().get(Value::as_index(v)).map(String::as_str)
    }

    /// The row index of this instance within its dataset.
    #[inline]
    pub fn row(&self) -> usize {
        self.row
    }

    /// The instance weight (1.0 unless reweighted by a filter).
    #[inline]
    pub fn weight(&self) -> f64 {
        self.dataset.weight(self.row)
    }

    /// Encoded class value (`NaN` when missing). Panics if the dataset
    /// has no class attribute.
    #[inline]
    pub fn class_value(&self) -> f64 {
        let c = self
            .dataset
            .class_index()
            .expect("dataset has no class attribute");
        self.value(c)
    }
}

/// A dataset: a relation name, an attribute header, per-attribute
/// columnar value buffers with validity bitmaps, per-row weights, and
/// an optional class attribute index.
///
/// Storage is columnar (see [`crate::column`]): numeric attributes are
/// contiguous `Vec<f64>`, nominal attributes dense `u8`/`u16` codes,
/// string attributes interned-id buffers, and missingness lives in one
/// validity bit per cell. Rows still enter and leave through the
/// encoded-`f64` API (`push_row`, `value`, [`Instance`]), so parsers,
/// filters, and services are unaffected by the layout.
///
/// ```
/// use dm_data::{Attribute, Dataset};
/// let mut ds = Dataset::new("weather", vec![
///     Attribute::nominal("outlook", ["sunny", "rainy"]),
///     Attribute::numeric("humidity"),
///     Attribute::nominal("play", ["yes", "no"]),
/// ]);
/// ds.set_class_index(Some(2)).unwrap();
/// ds.push_row(vec![0.0, 85.0, 1.0]).unwrap();
/// assert_eq!(ds.num_instances(), 1);
/// assert_eq!(ds.instance(0).label(0), Some("sunny"));
/// ```
#[derive(Debug, Clone)]
pub struct Dataset {
    relation: String,
    attributes: Vec<Attribute>,
    /// One columnar buffer per attribute; all share `num_rows`.
    columns: Vec<Column>,
    num_rows: usize,
    weights: Vec<f64>,
    class_index: Option<usize>,
    /// Interned values of string attributes (shared across columns).
    strings: Vec<String>,
}

impl PartialEq for Dataset {
    /// Structural equality with missing-value semantics: two missing
    /// cells compare equal (the columnar store keeps a deterministic
    /// zero filler under cleared validity bits, so derived column
    /// equality is exactly value-plus-missingness equality).
    fn eq(&self, other: &Self) -> bool {
        self.relation == other.relation
            && self.attributes == other.attributes
            && self.class_index == other.class_index
            && self.strings == other.strings
            && self.weights == other.weights
            && self.num_rows == other.num_rows
            && self.columns == other.columns
    }
}

impl Dataset {
    /// Create an empty dataset with the given relation name and header.
    pub fn new<N: Into<String>>(relation: N, attributes: Vec<Attribute>) -> Self {
        let columns = attributes.iter().map(Column::for_attribute).collect();
        Dataset {
            relation: relation.into(),
            attributes,
            columns,
            num_rows: 0,
            weights: Vec::new(),
            class_index: None,
            strings: Vec::new(),
        }
    }

    /// The relation name (ARFF `@relation`).
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// Rename the relation.
    pub fn set_relation<N: Into<String>>(&mut self, name: N) {
        self.relation = name.into();
    }

    /// Number of attributes (columns).
    #[inline]
    pub fn num_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// Number of instances (rows).
    #[inline]
    pub fn num_instances(&self) -> usize {
        self.num_rows
    }

    /// Attribute descriptor at `index`.
    pub fn attribute(&self, index: usize) -> Result<&Attribute> {
        self.attributes.get(index).ok_or(DataError::AttributeIndex {
            index,
            len: self.attributes.len(),
        })
    }

    /// All attribute descriptors.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Index of the attribute named `name`.
    pub fn attribute_index(&self, name: &str) -> Result<usize> {
        self.attributes
            .iter()
            .position(|a| a.name() == name)
            .ok_or_else(|| DataError::UnknownAttribute(name.to_string()))
    }

    /// The class attribute index, if set.
    #[inline]
    pub fn class_index(&self) -> Option<usize> {
        self.class_index
    }

    /// Set (or clear) the class attribute index.
    pub fn set_class_index(&mut self, index: Option<usize>) -> Result<()> {
        if let Some(i) = index {
            if i >= self.attributes.len() {
                return Err(DataError::AttributeIndex {
                    index: i,
                    len: self.attributes.len(),
                });
            }
        }
        self.class_index = index;
        Ok(())
    }

    /// Set the class attribute by name.
    pub fn set_class_by_name(&mut self, name: &str) -> Result<()> {
        let i = self.attribute_index(name)?;
        self.class_index = Some(i);
        Ok(())
    }

    /// The class attribute descriptor, or `Err(NoClass)`.
    pub fn class_attribute(&self) -> Result<&Attribute> {
        let i = self.class_index.ok_or(DataError::NoClass)?;
        self.attribute(i)
    }

    /// Number of class labels (errors if no class or class not nominal).
    pub fn num_classes(&self) -> Result<usize> {
        let a = self.class_attribute()?;
        if !a.is_nominal() {
            return Err(DataError::KindMismatch {
                attribute: a.name().to_string(),
                expected: "nominal",
            });
        }
        Ok(a.num_labels())
    }

    /// Append a row of encoded values (with weight 1.0).
    ///
    /// Nominal and string cells are validated against their domain at
    /// insert time: a non-integral or out-of-range code is rejected
    /// with [`DataError::NominalRange`] and the dataset is unchanged.
    pub fn push_row(&mut self, row: Vec<f64>) -> Result<()> {
        self.push_row_weighted(row, 1.0)
    }

    /// Append a row of encoded values with an explicit weight. Same
    /// insert-time validation as [`Dataset::push_row`].
    pub fn push_row_weighted(&mut self, row: Vec<f64>, weight: f64) -> Result<()> {
        if row.len() != self.attributes.len() {
            return Err(DataError::Arity {
                got: row.len(),
                expected: self.attributes.len(),
            });
        }
        // Validate the whole row first so a rejected cell leaves the
        // columns un-ragged.
        let num_strings = self.strings.len();
        for (a, &v) in row.iter().enumerate() {
            self.columns[a].validate_encoded(v, &self.attributes[a], num_strings)?;
        }
        for (a, &v) in row.iter().enumerate() {
            self.columns[a]
                .push_encoded(v, &self.attributes[a], num_strings)
                .expect("validated above");
        }
        self.num_rows += 1;
        self.weights.push(weight);
        Ok(())
    }

    /// Append a row given per-attribute textual values (`"?"` = missing).
    /// Nominal labels are resolved against each attribute's domain.
    pub fn push_labels<S: AsRef<str>>(&mut self, fields: &[S]) -> Result<()> {
        if fields.len() != self.attributes.len() {
            return Err(DataError::Arity {
                got: fields.len(),
                expected: self.attributes.len(),
            });
        }
        let mut row = Vec::with_capacity(fields.len());
        for (field, attr) in fields.iter().zip(&self.attributes) {
            row.push(self.encode_field(field.as_ref(), attr)?);
        }
        self.push_row(row)
    }

    fn encode_field(&self, field: &str, attr: &Attribute) -> Result<f64> {
        if field == "?" {
            return Ok(Value::MISSING);
        }
        match attr.kind() {
            AttributeKind::Nominal(_) => {
                attr.label_index(field)
                    .map(Value::from_index)
                    .ok_or_else(|| DataError::UnknownLabel {
                        attribute: attr.name().to_string(),
                        label: field.to_string(),
                    })
            }
            AttributeKind::Numeric => field.parse::<f64>().map_err(|_| DataError::Parse {
                line: 0,
                message: format!("{field:?} is not numeric (attribute {:?})", attr.name()),
            }),
            AttributeKind::Str => Err(DataError::KindMismatch {
                attribute: attr.name().to_string(),
                expected: "nominal or numeric (use push_string_row for string attributes)",
            }),
        }
    }

    /// Intern a string value and return its table index (for `Str`
    /// attributes).
    pub fn intern_string<S: Into<String>>(&mut self, s: S) -> usize {
        let s = s.into();
        if let Some(i) = self.strings.iter().position(|x| *x == s) {
            return i;
        }
        self.strings.push(s);
        self.strings.len() - 1
    }

    /// Resolve an interned string index.
    pub fn string_at(&self, index: usize) -> Option<&str> {
        self.strings.get(index).map(String::as_str)
    }

    /// The interned string pool; `Str` cells hold indices into this
    /// slice.
    pub fn strings(&self) -> &[String] {
        &self.strings
    }

    /// Encoded value at (`row`, `attr`) — `NaN` when missing.
    #[inline]
    pub fn value(&self, row: usize, attr: usize) -> f64 {
        self.columns[attr].get(row)
    }

    /// `true` when the cell at (`row`, `attr`) is missing (one validity
    /// bit probe; no `NaN` comparison).
    #[inline]
    pub fn is_missing(&self, row: usize, attr: usize) -> bool {
        self.columns[attr].is_missing(row)
    }

    /// Overwrite the encoded value at (`row`, `attr`). `NaN` clears the
    /// cell's validity bit (marks it missing). Panics when a nominal
    /// code is outside the attribute's domain — in-place rewrites come
    /// from fitted filters whose codes are constructed in range; the
    /// fallible insert path is [`Dataset::push_row`].
    #[inline]
    pub fn set_value(&mut self, row: usize, attr: usize, v: f64) {
        self.columns[attr].set_encoded(row, v);
    }

    /// The weight of `row`.
    #[inline]
    pub fn weight(&self, row: usize) -> f64 {
        self.weights[row]
    }

    /// Set the weight of `row`.
    pub fn set_weight(&mut self, row: usize, w: f64) {
        self.weights[row] = w;
    }

    /// Gather row `row` into a freshly allocated encoded-value vector
    /// (`NaN` = missing). For repeated gathers prefer
    /// [`Dataset::copy_row_into`] with a reused buffer.
    pub fn row_values(&self, row: usize) -> Vec<f64> {
        let mut buf = Vec::with_capacity(self.attributes.len());
        for col in &self.columns {
            buf.push(col.get(row));
        }
        buf
    }

    /// Gather row `row` into `buf` (cleared first).
    pub fn copy_row_into(&self, row: usize, buf: &mut Vec<f64>) {
        buf.clear();
        buf.reserve(self.attributes.len());
        for col in &self.columns {
            buf.push(col.get(row));
        }
    }

    /// Borrow row `row` as an [`Instance`] view.
    #[inline]
    pub fn instance(&self, row: usize) -> Instance<'_> {
        Instance { dataset: self, row }
    }

    /// Iterate over all instances.
    pub fn instances(&self) -> impl Iterator<Item = Instance<'_>> + '_ {
        (0..self.num_instances()).map(move |row| Instance { dataset: self, row })
    }

    /// Zero-copy borrow of column `attr`'s buffers — the accessor the
    /// vectorized kernels hoist out of their row loops.
    #[inline]
    pub fn column(&self, attr: usize) -> ColumnView<'_> {
        self.columns[attr].view()
    }

    /// A dataset with the same header (and class index) but no rows.
    pub fn header_clone(&self) -> Dataset {
        Dataset {
            relation: self.relation.clone(),
            attributes: self.attributes.clone(),
            columns: self.attributes.iter().map(Column::for_attribute).collect(),
            num_rows: 0,
            weights: Vec::new(),
            class_index: self.class_index,
            strings: self.strings.clone(),
        }
    }

    /// Copy row `row` of `src` into `self` (headers must agree in arity).
    pub fn push_instance_from(&mut self, src: &Dataset, row: usize) -> Result<()> {
        if src.num_attributes() != self.num_attributes() {
            return Err(DataError::Arity {
                got: src.num_attributes(),
                expected: self.num_attributes(),
            });
        }
        if self.attributes == src.attributes {
            // Same header: copy codes column-to-column, no f64 round trip.
            for (dst, s) in self.columns.iter_mut().zip(&src.columns) {
                dst.push_from(s, row);
            }
            self.num_rows += 1;
            self.weights.push(src.weight(row));
            Ok(())
        } else {
            self.push_row_weighted(src.row_values(row), src.weight(row))
        }
    }

    /// Build a sub-dataset from the given row indices.
    pub fn select_rows(&self, rows: &[usize]) -> Dataset {
        let mut out = self.header_clone();
        for &r in rows {
            for (dst, src) in out.columns.iter_mut().zip(&self.columns) {
                dst.push_from(src, r);
            }
            out.weights.push(self.weights[r]);
        }
        out.num_rows = rows.len();
        out
    }

    /// Split the row index space into up to `blocks` near-equal
    /// contiguous [`BlockView`] windows (no copying). Block boundaries
    /// depend only on `(num_instances, blocks)`, so partitioned scans
    /// that merge per-block results in block order are deterministic.
    pub fn block_views(&self, blocks: usize) -> Vec<BlockView<'_>> {
        block_ranges(self.num_instances(), blocks)
            .into_iter()
            .map(|range| BlockView {
                dataset: self,
                range,
            })
            .collect()
    }

    /// Class distribution (weighted counts per label). Errors if the
    /// class is unset or non-nominal. Missing classes are skipped.
    pub fn class_counts(&self) -> Result<Vec<f64>> {
        let ci = self.class_index.ok_or(DataError::NoClass)?;
        let k = self.num_classes()?;
        let mut counts = vec![0.0; k];
        let col = self.columns[ci].view();
        for row in 0..self.num_instances() {
            if let Some(c) = col.index_at(row) {
                counts[c] += self.weights[row];
            }
        }
        Ok(counts)
    }

    /// Total instance weight.
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// `true` if any value in column `attr` is missing (one bitmap
    /// sweep, no per-cell `NaN` tests).
    pub fn has_missing(&self, attr: usize) -> bool {
        self.columns[attr].validity().any_missing()
    }

    /// Number of missing cells in column `attr` (popcount over the
    /// validity bitmap).
    pub fn missing_count(&self, attr: usize) -> usize {
        self.columns[attr].missing_count()
    }

    /// Textual rendering of a value for display / ARFF writing.
    pub fn format_value(&self, row: usize, attr: usize) -> String {
        let v = self.value(row, attr);
        if Value::is_missing(v) {
            return "?".to_string();
        }
        match self.attributes[attr].kind() {
            AttributeKind::Nominal(labels) => labels
                .get(Value::as_index(v))
                .cloned()
                .unwrap_or_else(|| format!("#{}", Value::as_index(v))),
            AttributeKind::Numeric => format_numeric(v),
            AttributeKind::Str => self
                .string_at(Value::as_index(v))
                .map(str::to_string)
                .unwrap_or_else(|| format!("#{}", Value::as_index(v))),
        }
    }
}

/// Split `0..n` into up to `blocks` near-equal contiguous ranges (the
/// first `n % blocks` ranges are one longer). Never returns an empty
/// range: fewer than `blocks` ranges come back when `n < blocks`, and
/// `n == 0` yields none. Purely a function of `(n, blocks)`, so callers
/// that merge per-block results in block order stay deterministic at
/// any worker count.
pub fn block_ranges(n: usize, blocks: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 || blocks == 0 {
        return Vec::new();
    }
    let blocks = blocks.min(n);
    let base = n / blocks;
    let extra = n % blocks;
    let mut ranges = Vec::with_capacity(blocks);
    let mut start = 0;
    for b in 0..blocks {
        let len = base + usize::from(b < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// A zero-copy view of a contiguous run of dataset rows — the unit of
/// work the compute pool partitions scans over. Columns are borrowed
/// straight from the dataset (no row gather); row indices are in the
/// coordinates of the underlying [`Dataset`].
#[derive(Clone)]
pub struct BlockView<'a> {
    dataset: &'a Dataset,
    range: std::ops::Range<usize>,
}

impl<'a> BlockView<'a> {
    /// The underlying dataset.
    pub fn dataset(&self) -> &'a Dataset {
        self.dataset
    }

    /// The absolute row range this block covers.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.range.clone()
    }

    /// First absolute row index in the block.
    pub fn start(&self) -> usize {
        self.range.start
    }

    /// Number of rows in the block.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// `true` when the block covers no rows.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// Zero-copy borrow of column `attr` (absolute row coordinates).
    #[inline]
    pub fn column(&self, attr: usize) -> ColumnView<'a> {
        self.dataset.column(attr)
    }

    /// Iterate the block's absolute row indices.
    pub fn rows(&self) -> std::ops::Range<usize> {
        self.range.clone()
    }
}

/// Format a numeric value the way ARFF writers conventionally do: no
/// trailing `.0` for integral values.
pub(crate) fn format_numeric(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weather() -> Dataset {
        let mut ds = Dataset::new(
            "weather",
            vec![
                Attribute::nominal("outlook", ["sunny", "overcast", "rainy"]),
                Attribute::numeric("temperature"),
                Attribute::nominal("play", ["yes", "no"]),
            ],
        );
        ds.set_class_index(Some(2)).unwrap();
        ds.push_labels(&["sunny", "85", "no"]).unwrap();
        ds.push_labels(&["overcast", "83", "yes"]).unwrap();
        ds.push_labels(&["rainy", "?", "yes"]).unwrap();
        ds
    }

    #[test]
    fn counts_and_shapes() {
        let ds = weather();
        assert_eq!(ds.num_instances(), 3);
        assert_eq!(ds.num_attributes(), 3);
        assert_eq!(ds.num_classes().unwrap(), 2);
        assert_eq!(ds.class_counts().unwrap(), vec![2.0, 1.0]);
    }

    #[test]
    fn missing_values_roundtrip() {
        let ds = weather();
        assert!(ds.instance(2).is_missing(1));
        assert!(!ds.instance(0).is_missing(1));
        assert!(ds.has_missing(1));
        assert!(!ds.has_missing(0));
        assert_eq!(ds.missing_count(1), 1);
        assert_eq!(ds.missing_count(0), 0);
        assert_eq!(ds.format_value(2, 1), "?");
        assert!(ds.value(2, 1).is_nan());
    }

    #[test]
    fn label_lookup() {
        let ds = weather();
        assert_eq!(ds.instance(0).label(0), Some("sunny"));
        assert_eq!(ds.instance(1).label(2), Some("yes"));
        assert_eq!(ds.instance(2).label(1), None); // numeric attr
    }

    #[test]
    fn unknown_label_rejected() {
        let mut ds = weather();
        let err = ds.push_labels(&["snowy", "1", "yes"]).unwrap_err();
        assert!(matches!(err, DataError::UnknownLabel { .. }));
    }

    #[test]
    fn arity_enforced() {
        let mut ds = weather();
        assert!(matches!(
            ds.push_row(vec![0.0, 1.0]),
            Err(DataError::Arity {
                got: 2,
                expected: 3
            })
        ));
    }

    #[test]
    fn out_of_range_nominal_code_rejected_at_insert() {
        // Regression test (ISSUE 7 satellite 1): a nominal code beyond
        // the domain used to be stored silently and only blow up in a
        // later label() lookup; it must now fail at push_row time.
        let mut ds = weather();
        let before = ds.clone();
        let err = ds.push_row(vec![3.0, 70.0, 0.0]).unwrap_err();
        assert!(matches!(
            err,
            DataError::NominalRange {
                ref attribute,
                arity: 3,
                ..
            } if attribute == "outlook"
        ));
        // Non-integral codes are just as invalid.
        let err = ds.push_row(vec![0.5, 70.0, 0.0]).unwrap_err();
        assert!(matches!(err, DataError::NominalRange { .. }));
        // Negative codes too.
        let err = ds.push_row(vec![-1.0, 70.0, 0.0]).unwrap_err();
        assert!(matches!(err, DataError::NominalRange { .. }));
        // A failed insert leaves the dataset untouched, even when the
        // bad cell is not in the first column.
        let err = ds.push_row(vec![0.0, 70.0, 9.0]).unwrap_err();
        assert!(matches!(err, DataError::NominalRange { .. }));
        assert_eq!(ds, before);
    }

    #[test]
    fn select_rows_preserves_weights() {
        let mut ds = weather();
        ds.set_weight(1, 2.5);
        let sub = ds.select_rows(&[1, 2]);
        assert_eq!(sub.num_instances(), 2);
        assert_eq!(sub.weight(0), 2.5);
        assert_eq!(sub.instance(0).label(0), Some("overcast"));
        assert_eq!(sub.class_index(), Some(2));
        assert!(sub.instance(1).is_missing(1));
    }

    #[test]
    fn header_clone_is_empty() {
        let ds = weather();
        let h = ds.header_clone();
        assert_eq!(h.num_instances(), 0);
        assert_eq!(h.num_attributes(), 3);
        assert_eq!(h.class_index(), Some(2));
    }

    #[test]
    fn class_by_name() {
        let mut ds = weather();
        ds.set_class_by_name("outlook").unwrap();
        assert_eq!(ds.class_index(), Some(0));
        assert!(ds.set_class_by_name("nope").is_err());
    }

    #[test]
    fn string_interning() {
        let mut ds = Dataset::new("s", vec![Attribute::string("note")]);
        let i = ds.intern_string("hello");
        let j = ds.intern_string("hello");
        assert_eq!(i, j);
        assert_eq!(ds.string_at(i), Some("hello"));
    }

    #[test]
    fn numeric_formatting() {
        assert_eq!(format_numeric(85.0), "85");
        assert_eq!(format_numeric(0.25), "0.25");
        assert_eq!(format_numeric(-3.0), "-3");
    }

    #[test]
    fn total_weight_sums() {
        let mut ds = weather();
        ds.set_weight(0, 0.5);
        assert!((ds.total_weight() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn set_value_flips_missingness_both_ways() {
        let mut ds = weather();
        ds.set_value(0, 1, Value::MISSING);
        assert!(ds.is_missing(0, 1));
        assert_eq!(ds.missing_count(1), 2);
        ds.set_value(2, 1, 64.0);
        assert!(!ds.is_missing(2, 1));
        assert_eq!(ds.value(2, 1), 64.0);
        assert_eq!(ds.missing_count(1), 1);
    }

    #[test]
    fn row_gather_matches_cellwise_access() {
        let ds = weather();
        let mut buf = Vec::new();
        for r in 0..ds.num_instances() {
            ds.copy_row_into(r, &mut buf);
            let gathered = ds.row_values(r);
            assert!(buf
                .iter()
                .zip(&gathered)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
            for (a, &v) in buf.iter().enumerate() {
                let direct = ds.value(r, a);
                assert!(
                    v == direct || (v.is_nan() && direct.is_nan()),
                    "row {r} attr {a}"
                );
            }
        }
    }

    #[test]
    fn equality_treats_missing_as_equal() {
        let a = weather();
        let b = weather();
        assert_eq!(a, b);
        let mut c = weather();
        c.set_value(2, 1, 1.0);
        assert_ne!(a, c);
        c.set_value(2, 1, Value::MISSING);
        assert_eq!(a, c);
    }

    #[test]
    fn block_ranges_partition_exactly() {
        for n in [0usize, 1, 2, 7, 16, 100, 1001] {
            for blocks in [1usize, 2, 3, 8, 200] {
                let ranges = block_ranges(n, blocks);
                // Contiguous, in order, covering 0..n exactly once.
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "n={n} blocks={blocks}");
                    assert!(!r.is_empty(), "n={n} blocks={blocks}");
                    next = r.end;
                }
                assert_eq!(next, n, "n={n} blocks={blocks}");
                assert!(ranges.len() <= blocks.min(n.max(1)));
                // Near-equal: lengths differ by at most one.
                if let (Some(min), Some(max)) = (
                    ranges.iter().map(|r| r.len()).min(),
                    ranges.iter().map(|r| r.len()).max(),
                ) {
                    assert!(max - min <= 1, "n={n} blocks={blocks}");
                }
            }
        }
        assert!(block_ranges(5, 0).is_empty());
    }

    #[test]
    fn block_views_window_rows_without_copying() {
        let ds = weather();
        let blocks = ds.block_views(2);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].range(), 0..2);
        assert_eq!(blocks[1].range(), 2..3);
        assert_eq!(blocks[0].start(), 0);
        assert_eq!(blocks[1].len(), 1);
        assert!(!blocks[0].is_empty());
        let rows: Vec<usize> = blocks.iter().flat_map(|b| b.rows()).collect();
        assert_eq!(rows, vec![0, 1, 2]);
        // Column borrows agree with cellwise access, missing included.
        let temp = blocks[1].column(1);
        assert!(temp.is_missing(2));
        let outlook = blocks[0].column(0);
        assert_eq!(outlook.index_at(1), Some(1));
        assert!(std::ptr::eq(blocks[0].dataset(), &ds));
    }

    #[test]
    fn block_views_more_blocks_than_rows() {
        let ds = weather();
        let blocks = ds.block_views(10);
        assert_eq!(blocks.len(), 3);
        assert!(blocks.iter().all(|b| b.len() == 1));
    }

    #[test]
    fn push_instance_from_copies_columnar_state() {
        let ds = weather();
        let mut out = ds.header_clone();
        out.push_instance_from(&ds, 2).unwrap();
        out.push_instance_from(&ds, 0).unwrap();
        assert_eq!(out.num_instances(), 2);
        assert!(out.is_missing(0, 1));
        assert_eq!(out.instance(1).label(0), Some("sunny"));
        assert_eq!(out, ds.select_rows(&[2, 0]));
    }
}
