//! The core data model: [`Dataset`] (WEKA `Instances` equivalent),
//! [`Instance`] row views, and [`Value`] encoding helpers.

use crate::attribute::{Attribute, AttributeKind};
use crate::error::{DataError, Result};

/// Helpers for the dense `f64` value encoding used by [`Dataset`].
///
/// * numeric attributes store their value directly;
/// * nominal attributes store the label's domain index as `f64`;
/// * string attributes store an index into the dataset string table;
/// * a missing value (ARFF `?`) is `f64::NAN`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Value;

impl Value {
    /// The encoding of a missing value.
    pub const MISSING: f64 = f64::NAN;

    /// `true` if `v` encodes a missing value.
    #[inline]
    pub fn is_missing(v: f64) -> bool {
        v.is_nan()
    }

    /// Decode a nominal/string value to its domain index.
    ///
    /// Callers must have checked for missingness; a missing value maps to
    /// index 0 only by accident of `as` casting, so debug builds assert.
    #[inline]
    pub fn as_index(v: f64) -> usize {
        debug_assert!(!v.is_nan(), "as_index called on a missing value");
        v as usize
    }

    /// Encode a domain index as a stored value.
    #[inline]
    pub fn from_index(i: usize) -> f64 {
        i as f64
    }
}

/// A borrowed view of one row of a [`Dataset`].
#[derive(Debug, Clone, Copy)]
pub struct Instance<'a> {
    dataset: &'a Dataset,
    row: usize,
}

impl<'a> Instance<'a> {
    /// Raw encoded value at attribute `attr`.
    #[inline]
    pub fn value(&self, attr: usize) -> f64 {
        self.dataset.value(self.row, attr)
    }

    /// `true` if the value at `attr` is missing.
    #[inline]
    pub fn is_missing(&self, attr: usize) -> bool {
        Value::is_missing(self.value(attr))
    }

    /// Nominal label at `attr`, or `None` if missing / not nominal.
    pub fn label(&self, attr: usize) -> Option<&'a str> {
        let v = self.value(attr);
        if Value::is_missing(v) {
            return None;
        }
        let a = self.dataset.attribute(attr).ok()?;
        a.labels().get(Value::as_index(v)).map(String::as_str)
    }

    /// The row index of this instance within its dataset.
    #[inline]
    pub fn row(&self) -> usize {
        self.row
    }

    /// The instance weight (1.0 unless reweighted by a filter).
    #[inline]
    pub fn weight(&self) -> f64 {
        self.dataset.weight(self.row)
    }

    /// Encoded class value (`NaN` when missing). Panics if the dataset
    /// has no class attribute.
    #[inline]
    pub fn class_value(&self) -> f64 {
        let c = self
            .dataset
            .class_index()
            .expect("dataset has no class attribute");
        self.value(c)
    }

    /// All encoded values of this row as a slice.
    #[inline]
    pub fn values(&self) -> &'a [f64] {
        self.dataset.row(self.row)
    }
}

/// A dataset: a relation name, an attribute header, a dense row-major
/// value matrix, per-row weights, and an optional class attribute index.
///
/// ```
/// use dm_data::{Attribute, Dataset};
/// let mut ds = Dataset::new("weather", vec![
///     Attribute::nominal("outlook", ["sunny", "rainy"]),
///     Attribute::numeric("humidity"),
///     Attribute::nominal("play", ["yes", "no"]),
/// ]);
/// ds.set_class_index(Some(2)).unwrap();
/// ds.push_row(vec![0.0, 85.0, 1.0]).unwrap();
/// assert_eq!(ds.num_instances(), 1);
/// assert_eq!(ds.instance(0).label(0), Some("sunny"));
/// ```
#[derive(Debug, Clone)]
pub struct Dataset {
    relation: String,
    attributes: Vec<Attribute>,
    /// Row-major matrix: `values[row * num_attributes + attr]`.
    values: Vec<f64>,
    weights: Vec<f64>,
    class_index: Option<usize>,
    /// Interned values of string attributes (shared across columns).
    strings: Vec<String>,
}

impl PartialEq for Dataset {
    /// Structural equality with missing-value semantics: two `NaN`
    /// cells (both missing) compare equal, unlike raw `f64` equality.
    fn eq(&self, other: &Self) -> bool {
        self.relation == other.relation
            && self.attributes == other.attributes
            && self.class_index == other.class_index
            && self.strings == other.strings
            && self.weights == other.weights
            && self.values.len() == other.values.len()
            && self
                .values
                .iter()
                .zip(&other.values)
                .all(|(a, b)| (a.is_nan() && b.is_nan()) || a == b)
    }
}

impl Dataset {
    /// Create an empty dataset with the given relation name and header.
    pub fn new<N: Into<String>>(relation: N, attributes: Vec<Attribute>) -> Self {
        Dataset {
            relation: relation.into(),
            attributes,
            values: Vec::new(),
            weights: Vec::new(),
            class_index: None,
            strings: Vec::new(),
        }
    }

    /// The relation name (ARFF `@relation`).
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// Rename the relation.
    pub fn set_relation<N: Into<String>>(&mut self, name: N) {
        self.relation = name.into();
    }

    /// Number of attributes (columns).
    #[inline]
    pub fn num_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// Number of instances (rows).
    #[inline]
    pub fn num_instances(&self) -> usize {
        if self.attributes.is_empty() {
            0
        } else {
            self.values.len() / self.attributes.len()
        }
    }

    /// Attribute descriptor at `index`.
    pub fn attribute(&self, index: usize) -> Result<&Attribute> {
        self.attributes.get(index).ok_or(DataError::AttributeIndex {
            index,
            len: self.attributes.len(),
        })
    }

    /// All attribute descriptors.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Index of the attribute named `name`.
    pub fn attribute_index(&self, name: &str) -> Result<usize> {
        self.attributes
            .iter()
            .position(|a| a.name() == name)
            .ok_or_else(|| DataError::UnknownAttribute(name.to_string()))
    }

    /// The class attribute index, if set.
    #[inline]
    pub fn class_index(&self) -> Option<usize> {
        self.class_index
    }

    /// Set (or clear) the class attribute index.
    pub fn set_class_index(&mut self, index: Option<usize>) -> Result<()> {
        if let Some(i) = index {
            if i >= self.attributes.len() {
                return Err(DataError::AttributeIndex {
                    index: i,
                    len: self.attributes.len(),
                });
            }
        }
        self.class_index = index;
        Ok(())
    }

    /// Set the class attribute by name.
    pub fn set_class_by_name(&mut self, name: &str) -> Result<()> {
        let i = self.attribute_index(name)?;
        self.class_index = Some(i);
        Ok(())
    }

    /// The class attribute descriptor, or `Err(NoClass)`.
    pub fn class_attribute(&self) -> Result<&Attribute> {
        let i = self.class_index.ok_or(DataError::NoClass)?;
        self.attribute(i)
    }

    /// Number of class labels (errors if no class or class not nominal).
    pub fn num_classes(&self) -> Result<usize> {
        let a = self.class_attribute()?;
        if !a.is_nominal() {
            return Err(DataError::KindMismatch {
                attribute: a.name().to_string(),
                expected: "nominal",
            });
        }
        Ok(a.num_labels())
    }

    /// Append a row of encoded values (with weight 1.0).
    pub fn push_row(&mut self, row: Vec<f64>) -> Result<()> {
        self.push_row_weighted(row, 1.0)
    }

    /// Append a row of encoded values with an explicit weight.
    pub fn push_row_weighted(&mut self, row: Vec<f64>, weight: f64) -> Result<()> {
        if row.len() != self.attributes.len() {
            return Err(DataError::Arity {
                got: row.len(),
                expected: self.attributes.len(),
            });
        }
        self.values.extend_from_slice(&row);
        self.weights.push(weight);
        Ok(())
    }

    /// Append a row given per-attribute textual values (`"?"` = missing).
    /// Nominal labels are resolved against each attribute's domain.
    pub fn push_labels<S: AsRef<str>>(&mut self, fields: &[S]) -> Result<()> {
        if fields.len() != self.attributes.len() {
            return Err(DataError::Arity {
                got: fields.len(),
                expected: self.attributes.len(),
            });
        }
        let mut row = Vec::with_capacity(fields.len());
        for (field, attr) in fields.iter().zip(&self.attributes) {
            row.push(self.encode_field(field.as_ref(), attr)?);
        }
        self.values.extend_from_slice(&row);
        self.weights.push(1.0);
        Ok(())
    }

    fn encode_field(&self, field: &str, attr: &Attribute) -> Result<f64> {
        if field == "?" {
            return Ok(Value::MISSING);
        }
        match attr.kind() {
            AttributeKind::Nominal(_) => {
                attr.label_index(field)
                    .map(Value::from_index)
                    .ok_or_else(|| DataError::UnknownLabel {
                        attribute: attr.name().to_string(),
                        label: field.to_string(),
                    })
            }
            AttributeKind::Numeric => field.parse::<f64>().map_err(|_| DataError::Parse {
                line: 0,
                message: format!("{field:?} is not numeric (attribute {:?})", attr.name()),
            }),
            AttributeKind::Str => Err(DataError::KindMismatch {
                attribute: attr.name().to_string(),
                expected: "nominal or numeric (use push_string_row for string attributes)",
            }),
        }
    }

    /// Intern a string value and return its table index (for `Str`
    /// attributes).
    pub fn intern_string<S: Into<String>>(&mut self, s: S) -> usize {
        let s = s.into();
        if let Some(i) = self.strings.iter().position(|x| *x == s) {
            return i;
        }
        self.strings.push(s);
        self.strings.len() - 1
    }

    /// Resolve an interned string index.
    pub fn string_at(&self, index: usize) -> Option<&str> {
        self.strings.get(index).map(String::as_str)
    }

    /// Encoded value at (`row`, `attr`).
    #[inline]
    pub fn value(&self, row: usize, attr: usize) -> f64 {
        self.values[row * self.attributes.len() + attr]
    }

    /// Overwrite the encoded value at (`row`, `attr`).
    #[inline]
    pub fn set_value(&mut self, row: usize, attr: usize, v: f64) {
        let n = self.attributes.len();
        self.values[row * n + attr] = v;
    }

    /// The weight of `row`.
    #[inline]
    pub fn weight(&self, row: usize) -> f64 {
        self.weights[row]
    }

    /// Set the weight of `row`.
    pub fn set_weight(&mut self, row: usize, w: f64) {
        self.weights[row] = w;
    }

    /// Borrow row `row` as a value slice.
    #[inline]
    pub fn row(&self, row: usize) -> &[f64] {
        let n = self.attributes.len();
        &self.values[row * n..(row + 1) * n]
    }

    /// Borrow row `row` as an [`Instance`] view.
    #[inline]
    pub fn instance(&self, row: usize) -> Instance<'_> {
        Instance { dataset: self, row }
    }

    /// Iterate over all instances.
    pub fn instances(&self) -> impl Iterator<Item = Instance<'_>> + '_ {
        (0..self.num_instances()).map(move |row| Instance { dataset: self, row })
    }

    /// A dataset with the same header (and class index) but no rows.
    pub fn header_clone(&self) -> Dataset {
        Dataset {
            relation: self.relation.clone(),
            attributes: self.attributes.clone(),
            values: Vec::new(),
            weights: Vec::new(),
            class_index: self.class_index,
            strings: self.strings.clone(),
        }
    }

    /// Copy row `row` of `src` into `self` (headers must agree in arity).
    pub fn push_instance_from(&mut self, src: &Dataset, row: usize) -> Result<()> {
        if src.num_attributes() != self.num_attributes() {
            return Err(DataError::Arity {
                got: src.num_attributes(),
                expected: self.num_attributes(),
            });
        }
        self.values.extend_from_slice(src.row(row));
        self.weights.push(src.weight(row));
        Ok(())
    }

    /// Build a sub-dataset from the given row indices.
    pub fn select_rows(&self, rows: &[usize]) -> Dataset {
        let mut out = self.header_clone();
        for &r in rows {
            out.values.extend_from_slice(self.row(r));
            out.weights.push(self.weights[r]);
        }
        out
    }

    /// Split the row index space into up to `blocks` near-equal
    /// contiguous [`RowBlock`] views (no copying). Block boundaries
    /// depend only on `(num_instances, blocks)`, so partitioned scans
    /// that merge per-block results in block order are deterministic.
    pub fn row_blocks(&self, blocks: usize) -> Vec<RowBlock<'_>> {
        block_ranges(self.num_instances(), blocks)
            .into_iter()
            .map(|range| RowBlock {
                dataset: self,
                range,
            })
            .collect()
    }

    /// Class distribution (weighted counts per label). Errors if the
    /// class is unset or non-nominal. Missing classes are skipped.
    pub fn class_counts(&self) -> Result<Vec<f64>> {
        let ci = self.class_index.ok_or(DataError::NoClass)?;
        let k = self.num_classes()?;
        let mut counts = vec![0.0; k];
        for row in 0..self.num_instances() {
            let v = self.value(row, ci);
            if !Value::is_missing(v) {
                counts[Value::as_index(v)] += self.weights[row];
            }
        }
        Ok(counts)
    }

    /// Total instance weight.
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// `true` if any value in column `attr` is missing.
    pub fn has_missing(&self, attr: usize) -> bool {
        (0..self.num_instances()).any(|r| Value::is_missing(self.value(r, attr)))
    }

    /// Textual rendering of a value for display / ARFF writing.
    pub fn format_value(&self, row: usize, attr: usize) -> String {
        let v = self.value(row, attr);
        if Value::is_missing(v) {
            return "?".to_string();
        }
        match self.attributes[attr].kind() {
            AttributeKind::Nominal(labels) => labels
                .get(Value::as_index(v))
                .cloned()
                .unwrap_or_else(|| format!("#{}", Value::as_index(v))),
            AttributeKind::Numeric => format_numeric(v),
            AttributeKind::Str => self
                .string_at(Value::as_index(v))
                .map(str::to_string)
                .unwrap_or_else(|| format!("#{}", Value::as_index(v))),
        }
    }
}

/// Split `0..n` into up to `blocks` near-equal contiguous ranges (the
/// first `n % blocks` ranges are one longer). Never returns an empty
/// range: fewer than `blocks` ranges come back when `n < blocks`, and
/// `n == 0` yields none. Purely a function of `(n, blocks)`, so callers
/// that merge per-block results in block order stay deterministic at
/// any worker count.
pub fn block_ranges(n: usize, blocks: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 || blocks == 0 {
        return Vec::new();
    }
    let blocks = blocks.min(n);
    let base = n / blocks;
    let extra = n % blocks;
    let mut ranges = Vec::with_capacity(blocks);
    let mut start = 0;
    for b in 0..blocks {
        let len = base + usize::from(b < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// A borrowed view of a contiguous run of dataset rows — the unit of
/// work the compute pool partitions scans over. No row data is copied;
/// row indices are in the coordinates of the underlying [`Dataset`].
#[derive(Clone)]
pub struct RowBlock<'a> {
    dataset: &'a Dataset,
    range: std::ops::Range<usize>,
}

impl<'a> RowBlock<'a> {
    /// The underlying dataset.
    pub fn dataset(&self) -> &'a Dataset {
        self.dataset
    }

    /// The absolute row range this block covers.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.range.clone()
    }

    /// First absolute row index in the block.
    pub fn start(&self) -> usize {
        self.range.start
    }

    /// Number of rows in the block.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// `true` when the block covers no rows.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// Iterate the block's rows as `(absolute_row, values)` pairs.
    pub fn rows(&self) -> impl Iterator<Item = (usize, &'a [f64])> + '_ {
        let ds = self.dataset;
        self.range.clone().map(move |r| (r, ds.row(r)))
    }
}

/// Format a numeric value the way ARFF writers conventionally do: no
/// trailing `.0` for integral values.
pub(crate) fn format_numeric(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weather() -> Dataset {
        let mut ds = Dataset::new(
            "weather",
            vec![
                Attribute::nominal("outlook", ["sunny", "overcast", "rainy"]),
                Attribute::numeric("temperature"),
                Attribute::nominal("play", ["yes", "no"]),
            ],
        );
        ds.set_class_index(Some(2)).unwrap();
        ds.push_labels(&["sunny", "85", "no"]).unwrap();
        ds.push_labels(&["overcast", "83", "yes"]).unwrap();
        ds.push_labels(&["rainy", "?", "yes"]).unwrap();
        ds
    }

    #[test]
    fn counts_and_shapes() {
        let ds = weather();
        assert_eq!(ds.num_instances(), 3);
        assert_eq!(ds.num_attributes(), 3);
        assert_eq!(ds.num_classes().unwrap(), 2);
        assert_eq!(ds.class_counts().unwrap(), vec![2.0, 1.0]);
    }

    #[test]
    fn missing_values_roundtrip() {
        let ds = weather();
        assert!(ds.instance(2).is_missing(1));
        assert!(!ds.instance(0).is_missing(1));
        assert!(ds.has_missing(1));
        assert!(!ds.has_missing(0));
        assert_eq!(ds.format_value(2, 1), "?");
    }

    #[test]
    fn label_lookup() {
        let ds = weather();
        assert_eq!(ds.instance(0).label(0), Some("sunny"));
        assert_eq!(ds.instance(1).label(2), Some("yes"));
        assert_eq!(ds.instance(2).label(1), None); // numeric attr
    }

    #[test]
    fn unknown_label_rejected() {
        let mut ds = weather();
        let err = ds.push_labels(&["snowy", "1", "yes"]).unwrap_err();
        assert!(matches!(err, DataError::UnknownLabel { .. }));
    }

    #[test]
    fn arity_enforced() {
        let mut ds = weather();
        assert!(matches!(
            ds.push_row(vec![0.0, 1.0]),
            Err(DataError::Arity {
                got: 2,
                expected: 3
            })
        ));
    }

    #[test]
    fn select_rows_preserves_weights() {
        let mut ds = weather();
        ds.set_weight(1, 2.5);
        let sub = ds.select_rows(&[1, 2]);
        assert_eq!(sub.num_instances(), 2);
        assert_eq!(sub.weight(0), 2.5);
        assert_eq!(sub.instance(0).label(0), Some("overcast"));
        assert_eq!(sub.class_index(), Some(2));
    }

    #[test]
    fn header_clone_is_empty() {
        let ds = weather();
        let h = ds.header_clone();
        assert_eq!(h.num_instances(), 0);
        assert_eq!(h.num_attributes(), 3);
        assert_eq!(h.class_index(), Some(2));
    }

    #[test]
    fn class_by_name() {
        let mut ds = weather();
        ds.set_class_by_name("outlook").unwrap();
        assert_eq!(ds.class_index(), Some(0));
        assert!(ds.set_class_by_name("nope").is_err());
    }

    #[test]
    fn string_interning() {
        let mut ds = Dataset::new("s", vec![Attribute::string("note")]);
        let i = ds.intern_string("hello");
        let j = ds.intern_string("hello");
        assert_eq!(i, j);
        assert_eq!(ds.string_at(i), Some("hello"));
    }

    #[test]
    fn numeric_formatting() {
        assert_eq!(format_numeric(85.0), "85");
        assert_eq!(format_numeric(0.25), "0.25");
        assert_eq!(format_numeric(-3.0), "-3");
    }

    #[test]
    fn total_weight_sums() {
        let mut ds = weather();
        ds.set_weight(0, 0.5);
        assert!((ds.total_weight() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn block_ranges_partition_exactly() {
        for n in [0usize, 1, 2, 7, 16, 100, 1001] {
            for blocks in [1usize, 2, 3, 8, 200] {
                let ranges = block_ranges(n, blocks);
                // Contiguous, in order, covering 0..n exactly once.
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "n={n} blocks={blocks}");
                    assert!(!r.is_empty(), "n={n} blocks={blocks}");
                    next = r.end;
                }
                assert_eq!(next, n, "n={n} blocks={blocks}");
                assert!(ranges.len() <= blocks.min(n.max(1)));
                // Near-equal: lengths differ by at most one.
                if let (Some(min), Some(max)) = (
                    ranges.iter().map(|r| r.len()).min(),
                    ranges.iter().map(|r| r.len()).max(),
                ) {
                    assert!(max - min <= 1, "n={n} blocks={blocks}");
                }
            }
        }
        assert!(block_ranges(5, 0).is_empty());
    }

    #[test]
    fn row_blocks_view_rows_without_copying() {
        let ds = weather();
        let blocks = ds.row_blocks(2);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].range(), 0..2);
        assert_eq!(blocks[1].range(), 2..3);
        assert_eq!(blocks[0].start(), 0);
        assert_eq!(blocks[1].len(), 1);
        assert!(!blocks[0].is_empty());
        let collected: Vec<(usize, &[f64])> = blocks.iter().flat_map(|b| b.rows()).collect();
        assert_eq!(collected.len(), 3);
        for (r, values) in collected {
            // Bitwise comparison: the weather fixture has a missing
            // (NaN) temperature, and NaN != NaN under `==`.
            let expect = ds.row(r);
            assert_eq!(values.len(), expect.len());
            assert!(values
                .iter()
                .zip(expect)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
        assert!(std::ptr::eq(blocks[0].dataset(), &ds));
    }

    #[test]
    fn row_blocks_more_blocks_than_rows() {
        let ds = weather();
        let blocks = ds.row_blocks(10);
        assert_eq!(blocks.len(), 3);
        assert!(blocks.iter().all(|b| b.len() == 1));
    }
}
