//! A generic tree model: the "graph" output of the paper's `classify
//! graph` / `getCobwebGraph` operations.
//!
//! Decision trees (J48, stumps, random trees) and cluster hierarchies
//! (Cobweb, agglomerative) all export this structure; the visualisation
//! crate renders it as text or SVG, and the Web Service layer ships it
//! as the graph payload.

use crate::error::Result;
use crate::state::{StateReader, StateWriter};

/// One node of a [`TreeModel`].
#[derive(Debug, Clone, PartialEq)]
pub struct TreeNode {
    /// Node label: a split description (`node-caps`) or a leaf verdict
    /// (`recurrence-events (31.0/5.0)`).
    pub label: String,
    /// Label of the incoming edge (`= yes`, `<= 2.5`, ...); empty for
    /// the root.
    pub edge: String,
    /// Child node indices within the owning tree's arena.
    pub children: Vec<usize>,
    /// `true` for leaves (also implied by empty `children`, but kept
    /// explicit so pruned internal nodes can render distinctly).
    pub is_leaf: bool,
}

/// An arena-allocated rooted tree with labelled edges.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TreeModel {
    nodes: Vec<TreeNode>,
}

impl TreeModel {
    /// Create an empty tree.
    pub fn new() -> TreeModel {
        TreeModel { nodes: Vec::new() }
    }

    /// Add a node, returning its index. The first node added is the root.
    pub fn add_node<L: Into<String>, E: Into<String>>(
        &mut self,
        label: L,
        edge: E,
        is_leaf: bool,
    ) -> usize {
        self.nodes.push(TreeNode {
            label: label.into(),
            edge: edge.into(),
            children: Vec::new(),
            is_leaf,
        });
        self.nodes.len() - 1
    }

    /// Attach `child` under `parent`.
    pub fn add_child(&mut self, parent: usize, child: usize) {
        self.nodes[parent].children.push(child);
    }

    /// The root index (0), or `None` for an empty tree.
    pub fn root(&self) -> Option<usize> {
        (!self.nodes.is_empty()).then_some(0)
    }

    /// Borrow a node.
    pub fn node(&self, i: usize) -> &TreeNode {
        &self.nodes[i]
    }

    /// All nodes in arena order.
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf).count()
    }

    /// Depth of the tree (root = 1; 0 for an empty tree).
    pub fn depth(&self) -> usize {
        fn go(t: &TreeModel, i: usize) -> usize {
            1 + t.nodes[i]
                .children
                .iter()
                .map(|&c| go(t, c))
                .max()
                .unwrap_or(0)
        }
        self.root().map_or(0, |r| go(self, r))
    }

    /// Render in WEKA's indented text style:
    ///
    /// ```text
    /// node-caps = yes
    /// |   deg-malig = 3: recurrence-events (…)
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if let Some(root) = self.root() {
            let node = &self.nodes[root];
            if node.is_leaf {
                out.push_str(&format!(": {}\n", node.label));
            } else {
                for &c in &node.children {
                    self.render_edge(root, c, 0, &mut out);
                }
            }
        }
        out
    }

    fn render_edge(&self, parent: usize, child: usize, depth: usize, out: &mut String) {
        let indent = "|   ".repeat(depth);
        let p = &self.nodes[parent];
        let c = &self.nodes[child];
        if c.is_leaf {
            out.push_str(&format!("{indent}{} {}: {}\n", p.label, c.edge, c.label));
        } else {
            out.push_str(&format!("{indent}{} {}\n", p.label, c.edge));
            for &gc in &c.children {
                self.render_edge(child, gc, depth + 1, out);
            }
        }
    }

    /// GraphViz DOT rendering (the paper's `classify graph` result is "a
    /// graphical representation of the decision tree").
    pub fn to_dot(&self, name: &str) -> String {
        let mut out = format!("digraph {name} {{\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let shape = if n.is_leaf { "box" } else { "ellipse" };
            out.push_str(&format!("  n{i} [label={:?}, shape={shape}];\n", n.label));
        }
        for (i, n) in self.nodes.iter().enumerate() {
            for &c in &n.children {
                out.push_str(&format!(
                    "  n{i} -> n{} [label={:?}];\n",
                    c, self.nodes[c].edge
                ));
            }
        }
        out.push_str("}\n");
        out
    }

    /// Encode to bytes (used inside model state payloads).
    pub fn encode(&self, w: &mut StateWriter) {
        w.put_usize(self.nodes.len());
        for n in &self.nodes {
            w.put_str(&n.label);
            w.put_str(&n.edge);
            w.put_bool(n.is_leaf);
            w.put_usize_slice(&n.children);
        }
    }

    /// Decode from bytes written by [`TreeModel::encode`].
    pub fn decode(r: &mut StateReader<'_>) -> Result<TreeModel> {
        let len = r.get_usize()?;
        let mut nodes = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            let label = r.get_str()?;
            let edge = r.get_str()?;
            let is_leaf = r.get_bool()?;
            let children = r.get_usize_vec()?;
            nodes.push(TreeNode {
                label,
                edge,
                children,
                is_leaf,
            });
        }
        Ok(TreeModel { nodes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TreeModel {
        let mut t = TreeModel::new();
        let root = t.add_node("node-caps", "", false);
        let yes = t.add_node("deg-malig", "= yes", false);
        let no = t.add_node("no-recurrence-events (171.0/51.0)", "= no", true);
        t.add_child(root, yes);
        t.add_child(root, no);
        let l1 = t.add_node("recurrence-events (45.0)", "= 3", true);
        let l2 = t.add_node("no-recurrence-events (11.0)", "= 1", true);
        t.add_child(yes, l1);
        t.add_child(yes, l2);
        t
    }

    #[test]
    fn structure_queries() {
        let t = sample();
        assert_eq!(t.len(), 5);
        assert_eq!(t.num_leaves(), 3);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.root(), Some(0));
        assert!(TreeModel::new().is_empty());
        assert_eq!(TreeModel::new().depth(), 0);
    }

    #[test]
    fn weka_style_text() {
        let t = sample();
        let text = t.to_text();
        assert!(text.contains("node-caps = no: no-recurrence-events"));
        assert!(text.contains("|   deg-malig = 3: recurrence-events"));
    }

    #[test]
    fn single_leaf_tree_text() {
        let mut t = TreeModel::new();
        t.add_node("all-one-class (10.0)", "", true);
        assert_eq!(t.to_text(), ": all-one-class (10.0)\n");
    }

    #[test]
    fn dot_output_contains_nodes_and_edges() {
        let t = sample();
        let dot = t.to_dot("J48");
        assert!(dot.starts_with("digraph J48 {"));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("\"= yes\""));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let t = sample();
        let mut w = StateWriter::new();
        t.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        let t2 = TreeModel::decode(&mut r).unwrap();
        assert_eq!(t, t2);
        assert!(r.is_exhausted());
    }
}
