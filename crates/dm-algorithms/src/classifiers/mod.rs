//! Classification algorithms.
//!
//! Every classifier implements [`Classifier`]: train on a [`Dataset`]
//! whose class attribute is nominal, then produce a per-class
//! probability distribution for unseen instances. All classifiers also
//! implement [`crate::options::Configurable`] (WEKA-style options for
//! the `getOptions` Web Service operation) and
//! [`crate::state::Stateful`] (binary model state for the §4.5
//! lifecycle experiment).

mod adaboost;
mod bagging;
mod decision_stump;
mod hoeffding;
mod ibk;
mod j48;
mod logistic;
mod mlp;
mod naive_bayes;
mod one_r;
mod prism;
mod random_forest;
mod random_tree;
mod zero_r;

pub use adaboost::AdaBoostM1;
pub use bagging::Bagging;
pub use decision_stump::DecisionStump;
pub use hoeffding::HoeffdingTree;
pub use ibk::IBk;
pub use j48::J48;
pub use logistic::Logistic;
pub use mlp::MultilayerPerceptron;
pub use naive_bayes::NaiveBayes;
pub use one_r::OneR;
pub use prism::Prism;
pub use random_forest::RandomForest;
pub use random_tree::RandomTree;
pub use zero_r::ZeroR;

use crate::error::{AlgoError, Result};
use crate::options::Configurable;
use crate::state::Stateful;
use crate::tree::TreeModel;
use dm_data::Dataset;

/// Minimum ensemble width before per-member vote aggregation fans out
/// on the compute pool; a default 10-member forest stays inline, where
/// the per-member work is too small to pay batch setup.
pub(crate) const MIN_PARALLEL_MEMBERS: usize = 16;

/// Minimum batch size before [`Classifier::predict_batch`] fans rows
/// out on the compute pool; smaller batches score inline.
pub(crate) const MIN_PARALLEL_SCORE: usize = 256;

/// A trainable classification algorithm.
///
/// `Sync` is a supertrait so trained models can be scored from several
/// pool workers at once (batched `classifyInstances`, parallel
/// cross-validation); no classifier uses interior mutability.
pub trait Classifier: Configurable + Stateful + Send + Sync {
    /// Registry name, e.g. `"J48"`.
    fn name(&self) -> &'static str;

    /// Train on `data` (class attribute must be set and nominal).
    fn train(&mut self, data: &Dataset) -> Result<()>;

    /// Per-class probability distribution for row `row` of `data`
    /// (which must share the training header). Sums to 1 unless the
    /// model abstains entirely.
    fn distribution(&self, data: &Dataset, row: usize) -> Result<Vec<f64>>;

    /// Predicted class index (argmax of [`Classifier::distribution`]).
    fn predict(&self, data: &Dataset, row: usize) -> Result<usize> {
        let dist = self.distribution(data, row)?;
        argmax(&dist).ok_or(AlgoError::NotTrained)
    }

    /// Predicted class index for every row of `data`, fanning the
    /// per-row scoring out on the compute pool (the batched
    /// `classifyInstances` path). Deterministic: the result is the
    /// concatenation of per-row [`Classifier::predict`] calls
    /// regardless of pool width.
    fn predict_batch(&self, data: &Dataset) -> Result<Vec<usize>> {
        let results =
            crate::pool::parallel_map_min(data.num_instances(), MIN_PARALLEL_SCORE, |row| {
                self.predict(data, row)
            });
        results.into_iter().collect()
    }

    /// Human-readable model description (the paper's "textual output").
    fn describe(&self) -> String;

    /// Structured tree rendering, for tree-shaped models (the paper's
    /// `classify graph` operation). `None` for non-tree models.
    fn tree_model(&self) -> Option<TreeModel> {
        None
    }
}

/// Index of the maximum element (first on ties); `None` for empty input.
pub fn argmax(xs: &[f64]) -> Option<usize> {
    if xs.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    Some(best)
}

/// Validate that `data` has a nominal class and at least one instance;
/// returns `(class_index, num_classes)`.
pub(crate) fn check_trainable(data: &Dataset) -> Result<(usize, usize)> {
    let ci = data
        .class_index()
        .ok_or(AlgoError::Data(dm_data::DataError::NoClass))?;
    let k = data.num_classes()?;
    if data.num_instances() == 0 {
        return Err(AlgoError::Data(dm_data::DataError::Empty));
    }
    if k < 2 {
        return Err(AlgoError::Unsupported(format!(
            "class has {k} label(s); need >= 2"
        )));
    }
    Ok((ci, k))
}

/// Shannon entropy (bits) of a weighted count vector.
pub(crate) fn entropy(counts: &[f64]) -> f64 {
    let total: f64 = counts.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut h = 0.0;
    for &c in counts {
        if c > 0.0 {
            let p = c / total;
            h -= p * p.log2();
        }
    }
    h
}

/// Normalise a vector to sum to 1 in place; leaves all-zero input as a
/// uniform distribution.
pub(crate) fn normalize(dist: &mut [f64]) {
    let total: f64 = dist.iter().sum();
    if total > 0.0 {
        for d in dist.iter_mut() {
            *d /= total;
        }
    } else if !dist.is_empty() {
        let u = 1.0 / dist.len() as f64;
        for d in dist.iter_mut() {
            *d = u;
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Small datasets shared by classifier unit tests.

    use dm_data::{Attribute, Dataset};

    /// Quinlan's 14-row play-tennis ("weather") dataset, the canonical
    /// C4.5 test fixture. Root split must be `outlook`.
    pub fn weather_nominal() -> Dataset {
        let mut ds = Dataset::new(
            "weather.nominal",
            vec![
                Attribute::nominal("outlook", ["sunny", "overcast", "rainy"]),
                Attribute::nominal("temperature", ["hot", "mild", "cool"]),
                Attribute::nominal("humidity", ["high", "normal"]),
                Attribute::nominal("windy", ["true", "false"]),
                Attribute::nominal("play", ["yes", "no"]),
            ],
        );
        ds.set_class_index(Some(4)).unwrap();
        let rows = [
            ["sunny", "hot", "high", "false", "no"],
            ["sunny", "hot", "high", "true", "no"],
            ["overcast", "hot", "high", "false", "yes"],
            ["rainy", "mild", "high", "false", "yes"],
            ["rainy", "cool", "normal", "false", "yes"],
            ["rainy", "cool", "normal", "true", "no"],
            ["overcast", "cool", "normal", "true", "yes"],
            ["sunny", "mild", "high", "false", "no"],
            ["sunny", "cool", "normal", "false", "yes"],
            ["rainy", "mild", "normal", "false", "yes"],
            ["sunny", "mild", "normal", "true", "yes"],
            ["overcast", "mild", "high", "true", "yes"],
            ["overcast", "hot", "normal", "false", "yes"],
            ["rainy", "mild", "high", "true", "no"],
        ];
        for r in rows {
            ds.push_labels(&r).unwrap();
        }
        ds
    }

    /// Weather with numeric temperature/humidity (WEKA's weather.arff).
    pub fn weather_numeric() -> Dataset {
        let mut ds = Dataset::new(
            "weather.numeric",
            vec![
                Attribute::nominal("outlook", ["sunny", "overcast", "rainy"]),
                Attribute::numeric("temperature"),
                Attribute::numeric("humidity"),
                Attribute::nominal("windy", ["true", "false"]),
                Attribute::nominal("play", ["yes", "no"]),
            ],
        );
        ds.set_class_index(Some(4)).unwrap();
        let rows = [
            ["sunny", "85", "85", "false", "no"],
            ["sunny", "80", "90", "true", "no"],
            ["overcast", "83", "86", "false", "yes"],
            ["rainy", "70", "96", "false", "yes"],
            ["rainy", "68", "80", "false", "yes"],
            ["rainy", "65", "70", "true", "no"],
            ["overcast", "64", "65", "true", "yes"],
            ["sunny", "72", "95", "false", "no"],
            ["sunny", "69", "70", "false", "yes"],
            ["rainy", "75", "80", "false", "yes"],
            ["sunny", "75", "70", "true", "yes"],
            ["overcast", "72", "90", "true", "yes"],
            ["overcast", "81", "75", "false", "yes"],
            ["rainy", "71", "91", "true", "no"],
        ];
        for r in rows {
            ds.push_labels(&r).unwrap();
        }
        ds
    }

    /// A linearly separable two-class numeric set.
    pub fn separable_numeric(n_per_class: usize) -> Dataset {
        let mut ds = Dataset::new(
            "separable",
            vec![
                Attribute::numeric("x"),
                Attribute::numeric("y"),
                Attribute::nominal("c", ["neg", "pos"]),
            ],
        );
        ds.set_class_index(Some(2)).unwrap();
        for i in 0..n_per_class {
            let t = i as f64 / n_per_class as f64;
            ds.push_row(vec![t, t + 0.1, 0.0]).unwrap();
            ds.push_row(vec![t + 5.0, t + 5.1, 1.0]).unwrap();
        }
        ds
    }

    /// Training-set accuracy of a trained classifier.
    pub fn resubstitution_accuracy(c: &dyn super::Classifier, ds: &Dataset) -> f64 {
        let ci = ds.class_index().unwrap();
        let mut hits = 0usize;
        for r in 0..ds.num_instances() {
            if c.predict(ds, r).unwrap() == ds.value(r, ci) as usize {
                hits += 1;
            }
        }
        hits as f64 / ds.num_instances() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_behaviour() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[1.0]), Some(0));
        assert_eq!(argmax(&[0.2, 0.5, 0.3]), Some(1));
        assert_eq!(argmax(&[0.5, 0.5]), Some(0)); // first on ties
    }

    #[test]
    fn entropy_known_values() {
        assert_eq!(entropy(&[5.0, 0.0]), 0.0);
        assert!((entropy(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((entropy(&[9.0, 5.0]) - 0.9402859586706311).abs() < 1e-12);
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn normalize_behaviour() {
        let mut v = vec![2.0, 2.0];
        normalize(&mut v);
        assert_eq!(v, vec![0.5, 0.5]);
        let mut z = vec![0.0, 0.0, 0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.25; 4]);
    }

    #[test]
    fn trainable_checks() {
        use dm_data::{Attribute, Dataset};
        let mut ds = Dataset::new("t", vec![Attribute::nominal("c", ["a", "b"])]);
        assert!(check_trainable(&ds).is_err()); // no class set
        ds.set_class_index(Some(0)).unwrap();
        assert!(check_trainable(&ds).is_err()); // empty
        ds.push_labels(&["a"]).unwrap();
        assert_eq!(check_trainable(&ds).unwrap(), (0, 2));
    }
}
