//! OneR (Holte 1993): a one-attribute rule. For each attribute, build
//! the rule that maps each of its values to that value's majority class,
//! then keep the attribute whose rule makes the fewest training errors.
//! Numeric attributes are bucketed with OneR's minimum-bucket heuristic.

use super::{check_trainable, Classifier};
use crate::error::{AlgoError, Result};
use crate::options::{descriptor_for, Configurable, OptionDescriptor, OptionKind};
use crate::state::{StateReader, StateWriter, Stateful};
use dm_data::{Dataset, Value};

/// The rule learned for one attribute value bucket.
#[derive(Debug, Clone, PartialEq)]
struct Bucket {
    /// Inclusive numeric upper bound (`f64::INFINITY` for the last
    /// bucket); unused for nominal attributes.
    upper: f64,
    /// Predicted class index.
    class: usize,
}

/// The OneR classifier.
#[derive(Debug, Clone)]
pub struct OneR {
    /// `-B`: minimum instances per numeric bucket.
    min_bucket: usize,
    attr: Option<usize>,
    attr_name: String,
    nominal_rule: Vec<usize>,
    numeric_rule: Vec<Bucket>,
    default_class: usize,
    num_classes: usize,
    is_nominal: bool,
}

impl Default for OneR {
    fn default() -> Self {
        OneR {
            min_bucket: 6,
            attr: None,
            attr_name: String::new(),
            nominal_rule: Vec::new(),
            numeric_rule: Vec::new(),
            default_class: 0,
            num_classes: 0,
            is_nominal: true,
        }
    }
}

impl OneR {
    /// Create with WEKA defaults (`-B 6`).
    pub fn new() -> OneR {
        OneR::default()
    }

    /// Evaluate a nominal attribute: returns (errors, value→class rule).
    fn eval_nominal(data: &Dataset, a: usize, ci: usize, k: usize) -> (f64, Vec<usize>) {
        let arity = data.attributes()[a].num_labels();
        let mut table = vec![vec![0.0f64; k]; arity];
        let mut missing_class = vec![0.0f64; k];
        for r in 0..data.num_instances() {
            let v = data.value(r, a);
            let c = data.value(r, ci);
            if Value::is_missing(c) {
                continue;
            }
            let c = Value::as_index(c);
            if Value::is_missing(v) {
                missing_class[c] += data.weight(r);
            } else {
                table[Value::as_index(v)][c] += data.weight(r);
            }
        }
        let mut errors = 0.0;
        let mut rule = Vec::with_capacity(arity);
        for counts in &table {
            let best = super::argmax(counts).unwrap_or(0);
            rule.push(best);
            errors += counts.iter().sum::<f64>() - counts[best];
        }
        // Missing values are treated as errors unless they match the
        // overall majority (simplification of WEKA's missing bucket).
        let mbest = super::argmax(&missing_class).unwrap_or(0);
        errors += missing_class.iter().sum::<f64>() - missing_class[mbest];
        (errors, rule)
    }

    /// Evaluate a numeric attribute: returns (errors, bucket rule).
    fn eval_numeric(
        data: &Dataset,
        a: usize,
        ci: usize,
        k: usize,
        min_bucket: usize,
    ) -> (f64, Vec<Bucket>) {
        let mut pairs: Vec<(f64, usize, f64)> = Vec::new(); // (value, class, weight)
        let mut missing_errors = 0.0;
        let mut missing_class = vec![0.0f64; k];
        for r in 0..data.num_instances() {
            let v = data.value(r, a);
            let c = data.value(r, ci);
            if Value::is_missing(c) {
                continue;
            }
            let c = Value::as_index(c);
            if Value::is_missing(v) {
                missing_class[c] += data.weight(r);
            } else {
                pairs.push((v, c, data.weight(r)));
            }
        }
        let mbest = super::argmax(&missing_class).unwrap_or(0);
        missing_errors += missing_class.iter().sum::<f64>() - missing_class[mbest];

        pairs.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("no NaN"));
        let mut buckets: Vec<Bucket> = Vec::new();
        let mut errors = 0.0;
        let mut i = 0;
        while i < pairs.len() {
            // Grow a bucket until it has >= min_bucket of a majority
            // class and the next value differs (no split mid-value).
            let mut counts = vec![0.0f64; k];
            let mut j = i;
            loop {
                if j >= pairs.len() {
                    break;
                }
                counts[pairs[j].1] += pairs[j].2;
                j += 1;
                let max = counts.iter().cloned().fold(0.0, f64::max);
                if max >= min_bucket as f64 && (j >= pairs.len() || pairs[j].0 != pairs[j - 1].0) {
                    break;
                }
            }
            let best = super::argmax(&counts).unwrap_or(0);
            errors += counts.iter().sum::<f64>() - counts[best];
            let upper = if j >= pairs.len() {
                f64::INFINITY
            } else {
                (pairs[j - 1].0 + pairs[j].0) / 2.0
            };
            // Merge with the previous bucket when it predicts the same
            // class (keeps the rule minimal).
            if let Some(last) = buckets.last_mut() {
                if last.class == best {
                    last.upper = upper;
                } else {
                    buckets.push(Bucket { upper, class: best });
                }
            } else {
                buckets.push(Bucket { upper, class: best });
            }
            i = j;
        }
        (errors + missing_errors, buckets)
    }
}

impl Classifier for OneR {
    fn name(&self) -> &'static str {
        "OneR"
    }

    fn train(&mut self, data: &Dataset) -> Result<()> {
        let (ci, k) = check_trainable(data)?;
        self.num_classes = k;
        let counts = data.class_counts()?;
        self.default_class = super::argmax(&counts).expect("k >= 2");

        let mut best: Option<(f64, usize)> = None;
        for a in 0..data.num_attributes() {
            if a == ci {
                continue;
            }
            let errors = if data.attributes()[a].is_nominal() {
                Self::eval_nominal(data, a, ci, k).0
            } else if data.attributes()[a].is_numeric() {
                Self::eval_numeric(data, a, ci, k, self.min_bucket).0
            } else {
                continue;
            };
            if best.is_none_or(|(e, _)| errors < e) {
                best = Some((errors, a));
            }
        }
        let (_, a) = best.ok_or_else(|| {
            AlgoError::Unsupported("OneR needs at least one non-class attribute".into())
        })?;
        self.attr = Some(a);
        self.attr_name = data.attributes()[a].name().to_string();
        self.is_nominal = data.attributes()[a].is_nominal();
        if self.is_nominal {
            self.nominal_rule = Self::eval_nominal(data, a, ci, k).1;
            self.numeric_rule.clear();
        } else {
            self.numeric_rule = Self::eval_numeric(data, a, ci, k, self.min_bucket).1;
            self.nominal_rule.clear();
        }
        Ok(())
    }

    fn distribution(&self, data: &Dataset, row: usize) -> Result<Vec<f64>> {
        let a = self.attr.ok_or(AlgoError::NotTrained)?;
        let mut dist = vec![0.0; self.num_classes];
        let v = data.value(row, a);
        let class = if Value::is_missing(v) {
            self.default_class
        } else if self.is_nominal {
            self.nominal_rule
                .get(Value::as_index(v))
                .copied()
                .unwrap_or(self.default_class)
        } else {
            self.numeric_rule
                .iter()
                .find(|b| v <= b.upper)
                .map(|b| b.class)
                .unwrap_or(self.default_class)
        };
        dist[class] = 1.0;
        Ok(dist)
    }

    fn describe(&self) -> String {
        match self.attr {
            None => "OneR: not trained".to_string(),
            Some(_) => {
                let mut out = format!("{}:\n", self.attr_name);
                if self.is_nominal {
                    for (v, c) in self.nominal_rule.iter().enumerate() {
                        out.push_str(&format!("\tvalue #{v} -> class #{c}\n"));
                    }
                } else {
                    for b in &self.numeric_rule {
                        out.push_str(&format!("\t<= {} -> class #{}\n", b.upper, b.class));
                    }
                }
                out
            }
        }
    }
}

impl Configurable for OneR {
    fn option_descriptors(&self) -> Vec<OptionDescriptor> {
        vec![OptionDescriptor {
            flag: "-B",
            name: "minBucketSize",
            description: "minimum instances per bucket for numeric attributes",
            default: "6".into(),
            kind: OptionKind::Integer {
                min: 1,
                max: 1_000_000,
            },
        }]
    }

    fn set_option(&mut self, flag: &str, value: &str) -> Result<()> {
        let ds = self.option_descriptors();
        descriptor_for(&ds, flag)?.validate(value)?;
        match flag {
            "-B" => self.min_bucket = value.parse().expect("validated"),
            _ => unreachable!("descriptor_for rejects unknown flags"),
        }
        Ok(())
    }

    fn get_option(&self, flag: &str) -> Result<String> {
        match flag {
            "-B" => Ok(self.min_bucket.to_string()),
            _ => Err(AlgoError::BadOption {
                flag: flag.into(),
                message: "unknown option".into(),
            }),
        }
    }
}

impl Stateful for OneR {
    fn encode_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.put_usize(self.min_bucket);
        w.put_bool(self.attr.is_some());
        if let Some(a) = self.attr {
            w.put_usize(a);
            w.put_str(&self.attr_name);
            w.put_bool(self.is_nominal);
            w.put_usize_slice(&self.nominal_rule);
            w.put_usize(self.numeric_rule.len());
            for b in &self.numeric_rule {
                w.put_f64(b.upper);
                w.put_usize(b.class);
            }
            w.put_usize(self.default_class);
            w.put_usize(self.num_classes);
        }
        w.into_bytes()
    }

    fn decode_state(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = StateReader::new(bytes);
        self.min_bucket = r.get_usize()?;
        if r.get_bool()? {
            self.attr = Some(r.get_usize()?);
            self.attr_name = r.get_str()?;
            self.is_nominal = r.get_bool()?;
            self.nominal_rule = r.get_usize_vec()?;
            let n = r.get_usize()?;
            self.numeric_rule = (0..n)
                .map(|_| -> Result<Bucket> {
                    Ok(Bucket {
                        upper: r.get_f64()?,
                        class: r.get_usize()?,
                    })
                })
                .collect::<Result<_>>()?;
            self.default_class = r.get_usize()?;
            self.num_classes = r.get_usize()?;
        } else {
            self.attr = None;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{resubstitution_accuracy, weather_nominal, weather_numeric};
    use super::*;

    #[test]
    fn weather_rule_is_outlook() {
        // Known OneR result on play-tennis: outlook, 10/14 correct.
        let ds = weather_nominal();
        let mut c = OneR::new();
        c.train(&ds).unwrap();
        assert_eq!(c.attr_name, "outlook");
        let acc = resubstitution_accuracy(&c, &ds);
        assert!((acc - 10.0 / 14.0).abs() < 1e-12, "accuracy {acc}");
    }

    #[test]
    fn numeric_attributes_bucketed() {
        let ds = weather_numeric();
        let mut c = OneR::new();
        c.set_option("-B", "3").unwrap();
        c.train(&ds).unwrap();
        let acc = resubstitution_accuracy(&c, &ds);
        assert!(acc >= 0.5, "accuracy {acc}");
    }

    #[test]
    fn rule_beats_prior_on_separable_data() {
        let ds = super::super::test_support::separable_numeric(30);
        let mut c = OneR::new();
        c.train(&ds).unwrap();
        assert_eq!(resubstitution_accuracy(&c, &ds), 1.0);
    }

    #[test]
    fn state_roundtrip() {
        let ds = weather_nominal();
        let mut c = OneR::new();
        c.train(&ds).unwrap();
        let mut c2 = OneR::new();
        c2.decode_state(&c.encode_state()).unwrap();
        for r in 0..ds.num_instances() {
            assert_eq!(c.predict(&ds, r).unwrap(), c2.predict(&ds, r).unwrap());
        }
    }

    #[test]
    fn options_validated() {
        let mut c = OneR::new();
        assert!(c.set_option("-B", "0").is_err());
        assert!(c.set_option("-B", "abc").is_err());
        c.set_option("-B", "3").unwrap();
        assert_eq!(c.get_option("-B").unwrap(), "3");
    }

    #[test]
    fn untrained_distribution_errors() {
        let ds = weather_nominal();
        assert!(OneR::new().distribution(&ds, 0).is_err());
    }
}
