//! RandomTree: an unpruned decision tree that considers a random subset
//! of attributes at each node — the base learner of RandomForest.

use super::{argmax, check_trainable, entropy, normalize, Classifier};
use crate::error::{AlgoError, Result};
use crate::options::{descriptor_for, Configurable, OptionDescriptor, OptionKind};
use crate::state::{StateReader, StateWriter, Stateful};
use crate::tree::TreeModel;
use dm_data::{Dataset, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

#[derive(Debug, Clone, PartialEq)]
enum Split {
    Nominal { attr: usize },
    Numeric { attr: usize, threshold: f64 },
}

#[derive(Debug, Clone, PartialEq)]
struct Node {
    split: Option<Split>,
    children: Vec<Node>,
    counts: Vec<f64>,
    majority_branch: usize,
}

/// The random-subspace decision tree.
#[derive(Debug, Clone)]
pub struct RandomTree {
    /// `-K`: attributes considered per node (0 = `log2(n)+1`).
    k_attrs: usize,
    /// `-M`: minimum instances to keep splitting.
    min_instances: f64,
    /// `-S`: RNG seed.
    seed: u64,
    root: Option<Node>,
    num_classes: usize,
    attr_names: Vec<String>,
}

impl Default for RandomTree {
    fn default() -> Self {
        RandomTree {
            k_attrs: 0,
            min_instances: 1.0,
            seed: 1,
            root: None,
            num_classes: 0,
            attr_names: Vec::new(),
        }
    }
}

impl RandomTree {
    /// Create with defaults.
    pub fn new() -> RandomTree {
        RandomTree::default()
    }

    /// Create with an explicit seed (used by RandomForest).
    pub fn with_seed(seed: u64) -> RandomTree {
        RandomTree {
            seed,
            ..RandomTree::default()
        }
    }

    fn build(
        &self,
        data: &Dataset,
        rows: &[usize],
        ci: usize,
        k: usize,
        rng: &mut StdRng,
        depth: usize,
    ) -> Node {
        let mut counts = vec![0.0; k];
        for &r in rows {
            let cv = data.value(r, ci);
            if !Value::is_missing(cv) {
                counts[Value::as_index(cv)] += data.weight(r);
            }
        }
        let total: f64 = counts.iter().sum();
        let max = counts.iter().cloned().fold(0.0, f64::max);
        if total <= 0.0 || (total - max) < 1e-9 || total < 2.0 * self.min_instances || depth > 64 {
            return Node {
                split: None,
                children: Vec::new(),
                counts,
                majority_branch: 0,
            };
        }

        // Random attribute subset.
        let mut attrs: Vec<usize> = (0..data.num_attributes()).filter(|&a| a != ci).collect();
        attrs.shuffle(rng);
        let kk = if self.k_attrs == 0 {
            ((data.num_attributes() as f64).log2() as usize + 1).min(attrs.len())
        } else {
            self.k_attrs.min(attrs.len())
        };
        attrs.truncate(kk.max(1));

        let base_entropy = entropy(&counts);
        let mut best: Option<(f64, Split)> = None;
        for &a in &attrs {
            if data.attributes()[a].is_nominal() {
                let arity = data.attributes()[a].num_labels();
                if arity < 2 {
                    continue;
                }
                let mut branch = vec![vec![0.0f64; k]; arity];
                for &r in rows {
                    let v = data.value(r, a);
                    let cv = data.value(r, ci);
                    if !Value::is_missing(v) && !Value::is_missing(cv) {
                        branch[Value::as_index(v)][Value::as_index(cv)] += data.weight(r);
                    }
                }
                let bw: f64 = branch.iter().map(|b| b.iter().sum::<f64>()).sum();
                if bw <= 0.0 {
                    continue;
                }
                let populated = branch
                    .iter()
                    .filter(|b| b.iter().sum::<f64>() > 0.0)
                    .count();
                if populated < 2 {
                    continue;
                }
                let cond: f64 = branch
                    .iter()
                    .map(|b| b.iter().sum::<f64>() / bw * entropy(b))
                    .sum();
                let gain = base_entropy - cond;
                if gain > 1e-12 && best.as_ref().is_none_or(|(g, _)| gain > *g) {
                    best = Some((gain, Split::Nominal { attr: a }));
                }
            } else if data.attributes()[a].is_numeric() {
                let mut pairs: Vec<(f64, usize, f64)> = rows
                    .iter()
                    .filter_map(|&r| {
                        let v = data.value(r, a);
                        let cv = data.value(r, ci);
                        (!Value::is_missing(v) && !Value::is_missing(cv))
                            .then(|| (v, Value::as_index(cv), data.weight(r)))
                    })
                    .collect();
                if pairs.len() < 2 {
                    continue;
                }
                pairs.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("no NaN"));
                let total_w: f64 = pairs.iter().map(|p| p.2).sum();
                let mut left = vec![0.0f64; k];
                let mut right = vec![0.0f64; k];
                for &(_, c, w) in &pairs {
                    right[c] += w;
                }
                let mut lw = 0.0;
                for i in 0..pairs.len() - 1 {
                    let (v, c, w) = pairs[i];
                    left[c] += w;
                    right[c] -= w;
                    lw += w;
                    if pairs[i + 1].0 == v {
                        continue;
                    }
                    let rw = total_w - lw;
                    let cond = (lw * entropy(&left) + rw * entropy(&right)) / total_w;
                    let gain = base_entropy - cond;
                    if gain > 1e-12 && best.as_ref().is_none_or(|(g, _)| gain > *g) {
                        best = Some((
                            gain,
                            Split::Numeric {
                                attr: a,
                                threshold: (v + pairs[i + 1].0) / 2.0,
                            },
                        ));
                    }
                }
            }
        }

        let (_, split) = match best {
            Some(b) => b,
            None => {
                return Node {
                    split: None,
                    children: Vec::new(),
                    counts,
                    majority_branch: 0,
                }
            }
        };
        let num_branches = match &split {
            Split::Nominal { attr } => data.attributes()[*attr].num_labels(),
            Split::Numeric { .. } => 2,
        };
        let mut branch_rows: Vec<Vec<usize>> = vec![Vec::new(); num_branches];
        for &r in rows {
            let b = match &split {
                Split::Nominal { attr } => {
                    let v = data.value(r, *attr);
                    if Value::is_missing(v) {
                        continue;
                    }
                    Value::as_index(v)
                }
                Split::Numeric { attr, threshold } => {
                    let v = data.value(r, *attr);
                    if Value::is_missing(v) {
                        continue;
                    }
                    usize::from(v > *threshold)
                }
            };
            branch_rows[b].push(r);
        }
        let majority_branch = branch_rows
            .iter()
            .enumerate()
            .max_by_key(|(_, rs)| rs.len())
            .map(|(i, _)| i)
            .unwrap_or(0);
        let children: Vec<Node> = branch_rows
            .iter()
            .map(|rs| {
                if rs.is_empty() {
                    Node {
                        split: None,
                        children: Vec::new(),
                        counts: counts.clone(),
                        majority_branch: 0,
                    }
                } else {
                    self.build(data, rs, ci, k, rng, depth + 1)
                }
            })
            .collect();
        Node {
            split: Some(split),
            children,
            counts,
            majority_branch,
        }
    }

    fn node_distribution<'a>(&self, mut node: &'a Node, data: &Dataset, row: usize) -> &'a [f64] {
        loop {
            match &node.split {
                None => return &node.counts,
                Some(split) => {
                    let b = match split {
                        Split::Nominal { attr } => {
                            let v = data.value(row, *attr);
                            if Value::is_missing(v) {
                                node.majority_branch
                            } else {
                                Value::as_index(v).min(node.children.len() - 1)
                            }
                        }
                        Split::Numeric { attr, threshold } => {
                            let v = data.value(row, *attr);
                            if Value::is_missing(v) {
                                node.majority_branch
                            } else {
                                usize::from(v > *threshold)
                            }
                        }
                    };
                    node = &node.children[b];
                }
            }
        }
    }

    fn encode_node(node: &Node, w: &mut StateWriter) {
        match &node.split {
            None => w.put_u64(0),
            Some(Split::Nominal { attr }) => {
                w.put_u64(1);
                w.put_usize(*attr);
            }
            Some(Split::Numeric { attr, threshold }) => {
                w.put_u64(2);
                w.put_usize(*attr);
                w.put_f64(*threshold);
            }
        }
        w.put_f64_slice(&node.counts);
        w.put_usize(node.majority_branch);
        w.put_usize(node.children.len());
        for c in &node.children {
            Self::encode_node(c, w);
        }
    }

    fn decode_node(r: &mut StateReader<'_>, depth: usize) -> Result<Node> {
        if depth > 512 {
            return Err(AlgoError::BadState("tree nesting too deep".into()));
        }
        let split = match r.get_u64()? {
            0 => None,
            1 => Some(Split::Nominal {
                attr: r.get_usize()?,
            }),
            2 => Some(Split::Numeric {
                attr: r.get_usize()?,
                threshold: r.get_f64()?,
            }),
            tag => return Err(AlgoError::BadState(format!("bad split tag {tag}"))),
        };
        let counts = r.get_f64_vec()?;
        let majority_branch = r.get_usize()?;
        let n = r.get_usize()?;
        if n > 1 << 20 {
            return Err(AlgoError::BadState("absurd child count".into()));
        }
        let children = (0..n)
            .map(|_| Self::decode_node(r, depth + 1))
            .collect::<Result<_>>()?;
        Ok(Node {
            split,
            children,
            counts,
            majority_branch,
        })
    }

    fn tree_nodes(&self, node: &Node, edge: String, model: &mut TreeModel) -> usize {
        match &node.split {
            None => {
                let best = argmax(&node.counts).unwrap_or(0);
                model.add_node(format!("class #{best} {:?}", node.counts), edge, true)
            }
            Some(split) => {
                let (attr, labeler): (usize, Box<dyn Fn(usize) -> String>) = match split {
                    Split::Nominal { attr } => (*attr, Box::new(|b: usize| format!("= #{b}"))),
                    Split::Numeric { attr, threshold } => {
                        let t = *threshold;
                        (
                            *attr,
                            Box::new(move |b: usize| {
                                if b == 0 {
                                    format!("<= {t}")
                                } else {
                                    format!("> {t}")
                                }
                            }),
                        )
                    }
                };
                let id = model.add_node(self.attr_names[attr].clone(), edge, false);
                for (b, c) in node.children.iter().enumerate() {
                    let cid = self.tree_nodes(c, labeler(b), model);
                    model.add_child(id, cid);
                }
                id
            }
        }
    }
}

impl Classifier for RandomTree {
    fn name(&self) -> &'static str {
        "RandomTree"
    }

    fn train(&mut self, data: &Dataset) -> Result<()> {
        let (ci, k) = check_trainable(data)?;
        self.num_classes = k;
        self.attr_names = data
            .attributes()
            .iter()
            .map(|a| a.name().to_string())
            .collect();
        let rows: Vec<usize> = (0..data.num_instances()).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.root = Some(self.build(data, &rows, ci, k, &mut rng, 0));
        Ok(())
    }

    fn distribution(&self, data: &Dataset, row: usize) -> Result<Vec<f64>> {
        let root = self.root.as_ref().ok_or(AlgoError::NotTrained)?;
        let mut dist = self.node_distribution(root, data, row).to_vec();
        normalize(&mut dist);
        Ok(dist)
    }

    fn describe(&self) -> String {
        match &self.root {
            None => "RandomTree: not trained".to_string(),
            Some(_) => format!(
                "RandomTree (seed {}, K {}):\n{}",
                self.seed,
                self.k_attrs,
                self.tree_model().expect("trained").to_text()
            ),
        }
    }

    fn tree_model(&self) -> Option<TreeModel> {
        let root = self.root.as_ref()?;
        let mut model = TreeModel::new();
        self.tree_nodes(root, String::new(), &mut model);
        Some(model)
    }
}

impl Configurable for RandomTree {
    fn option_descriptors(&self) -> Vec<OptionDescriptor> {
        vec![
            OptionDescriptor {
                flag: "-K",
                name: "numAttributes",
                description: "attributes considered per node (0 = log2(n)+1)",
                default: "0".into(),
                kind: OptionKind::Integer {
                    min: 0,
                    max: 100_000,
                },
            },
            OptionDescriptor {
                flag: "-M",
                name: "minNum",
                description: "minimum instances to keep splitting",
                default: "1".into(),
                kind: OptionKind::Integer {
                    min: 1,
                    max: 1_000_000,
                },
            },
            OptionDescriptor {
                flag: "-S",
                name: "seed",
                description: "random seed",
                default: "1".into(),
                kind: OptionKind::Integer {
                    min: 0,
                    max: i64::MAX,
                },
            },
        ]
    }

    fn set_option(&mut self, flag: &str, value: &str) -> Result<()> {
        let ds = self.option_descriptors();
        descriptor_for(&ds, flag)?.validate(value)?;
        match flag {
            "-K" => self.k_attrs = value.parse().expect("validated"),
            "-M" => self.min_instances = value.parse::<i64>().expect("validated") as f64,
            "-S" => self.seed = value.parse().expect("validated"),
            _ => unreachable!("descriptor_for rejects unknown flags"),
        }
        Ok(())
    }

    fn get_option(&self, flag: &str) -> Result<String> {
        match flag {
            "-K" => Ok(self.k_attrs.to_string()),
            "-M" => Ok((self.min_instances as i64).to_string()),
            "-S" => Ok(self.seed.to_string()),
            _ => Err(AlgoError::BadOption {
                flag: flag.into(),
                message: "unknown option".into(),
            }),
        }
    }
}

impl Stateful for RandomTree {
    fn encode_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.put_usize(self.k_attrs);
        w.put_f64(self.min_instances);
        w.put_u64(self.seed);
        w.put_usize(self.num_classes);
        w.put_usize(self.attr_names.len());
        for n in &self.attr_names {
            w.put_str(n);
        }
        w.put_bool(self.root.is_some());
        if let Some(root) = &self.root {
            Self::encode_node(root, &mut w);
        }
        w.into_bytes()
    }

    fn decode_state(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = StateReader::new(bytes);
        self.k_attrs = r.get_usize()?;
        self.min_instances = r.get_f64()?;
        self.seed = r.get_u64()?;
        self.num_classes = r.get_usize()?;
        let n = r.get_usize()?;
        if n > 1 << 20 {
            return Err(AlgoError::BadState("absurd name count".into()));
        }
        self.attr_names = (0..n).map(|_| r.get_str()).collect::<Result<_>>()?;
        self.root = if r.get_bool()? {
            Some(Self::decode_node(&mut r, 0)?)
        } else {
            None
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{resubstitution_accuracy, separable_numeric, weather_nominal};
    use super::*;

    #[test]
    fn unpruned_tree_memorises() {
        let ds = weather_nominal();
        let mut t = RandomTree::new();
        t.set_option("-K", "4").unwrap(); // all attributes → deterministic gain
        t.train(&ds).unwrap();
        assert_eq!(resubstitution_accuracy(&t, &ds), 1.0);
    }

    #[test]
    fn numeric_split_works() {
        let ds = separable_numeric(20);
        let mut t = RandomTree::new();
        t.train(&ds).unwrap();
        assert_eq!(resubstitution_accuracy(&t, &ds), 1.0);
    }

    #[test]
    fn different_seeds_can_differ() {
        let ds = dm_data::corpus::breast_cancer();
        let mut a = RandomTree::with_seed(1);
        a.train(&ds).unwrap();
        let mut b = RandomTree::with_seed(2);
        b.train(&ds).unwrap();
        // Trees are random; at least the descriptions should exist and
        // the models almost surely differ on this dataset.
        assert_ne!(a.describe(), b.describe());
    }

    #[test]
    fn missing_values_follow_majority_branch() {
        let mut ds = weather_nominal();
        let mut t = RandomTree::new();
        t.set_option("-K", "4").unwrap();
        t.train(&ds).unwrap();
        ds.set_value(0, 0, f64::NAN);
        assert!(t.distribution(&ds, 0).is_ok());
    }

    #[test]
    fn state_roundtrip() {
        let ds = weather_nominal();
        let mut t = RandomTree::new();
        t.train(&ds).unwrap();
        let mut t2 = RandomTree::new();
        t2.decode_state(&t.encode_state()).unwrap();
        for r in 0..ds.num_instances() {
            assert_eq!(t.predict(&ds, r).unwrap(), t2.predict(&ds, r).unwrap());
        }
    }

    #[test]
    fn untrained_errors() {
        let ds = weather_nominal();
        assert!(RandomTree::new().distribution(&ds, 0).is_err());
    }
}
