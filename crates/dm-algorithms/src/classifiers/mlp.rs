//! A single-hidden-layer multilayer perceptron trained by stochastic
//! backpropagation. The paper names exactly this algorithm's run-time
//! options when describing `getOptions`: "in the case of a neural
//! network backpropagation algorithm such run-time options include the
//! number of neurons in the hidden layer, the momentum and the learning
//! rate" — so those are this model's `-H`, `-M` and `-L` options.

use super::{check_trainable, normalize, Classifier};
use crate::error::{AlgoError, Result};
use crate::options::{descriptor_for, Configurable, OptionDescriptor, OptionKind};
use crate::state::{StateReader, StateWriter, Stateful};
use dm_data::{Dataset, Value};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Backpropagation multilayer perceptron (one hidden sigmoid layer,
/// softmax output).
#[derive(Debug, Clone)]
pub struct MultilayerPerceptron {
    /// `-H`: hidden-layer size.
    hidden: usize,
    /// `-L`: learning rate.
    learning_rate: f64,
    /// `-M`: momentum.
    momentum: f64,
    /// `-N`: training epochs.
    epochs: usize,
    /// `-S`: RNG seed for weight init and row order.
    seed: u64,
    // Feature expansion (same scheme as Logistic).
    offsets: Vec<usize>,
    nominal_arity: Vec<usize>,
    scaler: Vec<(f64, f64)>,
    num_features: usize,
    class_index: usize,
    num_classes: usize,
    /// `w1[h][feature + 1]` (last = bias), `w2[c][h + 1]`.
    w1: Vec<Vec<f64>>,
    w2: Vec<Vec<f64>>,
    trained: bool,
}

impl Default for MultilayerPerceptron {
    fn default() -> Self {
        MultilayerPerceptron {
            hidden: 8,
            learning_rate: 0.3,
            momentum: 0.2,
            epochs: 200,
            seed: 1,
            offsets: Vec::new(),
            nominal_arity: Vec::new(),
            scaler: Vec::new(),
            num_features: 0,
            class_index: 0,
            num_classes: 0,
            w1: Vec::new(),
            w2: Vec::new(),
            trained: false,
        }
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl MultilayerPerceptron {
    /// Create with WEKA-ish defaults (`-L 0.3 -M 0.2 -H 8 -N 200`).
    pub fn new() -> MultilayerPerceptron {
        MultilayerPerceptron::default()
    }

    fn features(&self, data: &Dataset, row: usize, out: &mut [f64]) {
        out.fill(0.0);
        for a in 0..self.offsets.len() {
            if a == self.class_index {
                continue;
            }
            let v = data.value(row, a);
            if Value::is_missing(v) {
                continue;
            }
            let off = self.offsets[a];
            if self.nominal_arity[a] > 0 {
                let i = Value::as_index(v);
                if i < self.nominal_arity[a] {
                    out[off + i] = 1.0;
                }
            } else {
                let (mean, sd) = self.scaler[a];
                out[off] = if sd > 0.0 { (v - mean) / sd } else { 0.0 };
            }
        }
    }

    fn forward(&self, x: &[f64], hidden_out: &mut [f64]) -> Vec<f64> {
        for (h, w) in self.w1.iter().enumerate() {
            let mut s = w[self.num_features];
            for (wi, xi) in w[..self.num_features].iter().zip(x) {
                s += wi * xi;
            }
            hidden_out[h] = sigmoid(s);
        }
        let mut scores: Vec<f64> = self
            .w2
            .iter()
            .map(|w| {
                let mut s = w[self.hidden];
                for (wi, hi) in w[..self.hidden].iter().zip(hidden_out.iter()) {
                    s += wi * hi;
                }
                s
            })
            .collect();
        let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for s in scores.iter_mut() {
            *s = (*s - max).exp();
        }
        normalize(&mut scores);
        scores
    }
}

impl Classifier for MultilayerPerceptron {
    fn name(&self) -> &'static str {
        "MultilayerPerceptron"
    }

    fn train(&mut self, data: &Dataset) -> Result<()> {
        let (ci, k) = check_trainable(data)?;
        self.class_index = ci;
        self.num_classes = k;

        // Feature layout and scalers (identical scheme to Logistic).
        self.offsets = vec![0; data.num_attributes()];
        self.nominal_arity = vec![0; data.num_attributes()];
        self.scaler = vec![(0.0, 1.0); data.num_attributes()];
        let mut off = 0usize;
        for a in 0..data.num_attributes() {
            self.offsets[a] = off;
            if a == ci {
                continue;
            }
            let attr = &data.attributes()[a];
            if attr.is_nominal() {
                self.nominal_arity[a] = attr.num_labels();
                off += attr.num_labels();
            } else if attr.is_numeric() {
                let (mut sum, mut n) = (0.0, 0.0);
                for r in 0..data.num_instances() {
                    let v = data.value(r, a);
                    if !Value::is_missing(v) {
                        sum += v;
                        n += 1.0;
                    }
                }
                let mean = if n > 0.0 { sum / n } else { 0.0 };
                let mut ss = 0.0;
                for r in 0..data.num_instances() {
                    let v = data.value(r, a);
                    if !Value::is_missing(v) {
                        ss += (v - mean) * (v - mean);
                    }
                }
                let sd = if n > 0.0 { (ss / n).sqrt() } else { 1.0 };
                self.scaler[a] = (mean, if sd > 0.0 { sd } else { 1.0 });
                off += 1;
            }
        }
        self.num_features = off;

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut init =
            |n: usize| -> Vec<f64> { (0..n).map(|_| rng.random_range(-0.5..0.5)).collect() };
        self.w1 = (0..self.hidden).map(|_| init(off + 1)).collect();
        self.w2 = (0..k).map(|_| init(self.hidden + 1)).collect();
        self.trained = true;

        // Pre-expand features.
        let n = data.num_instances();
        let mut xs = vec![0.0f64; n * off];
        let mut ys = Vec::with_capacity(n);
        for r in 0..n {
            let cv = data.value(r, ci);
            ys.push(if Value::is_missing(cv) {
                usize::MAX
            } else {
                Value::as_index(cv)
            });
            let (s, e) = (r * off, (r + 1) * off);
            let out = &mut xs[s..e];
            self.features(data, r, out);
        }

        let mut hidden_out = vec![0.0; self.hidden];
        let mut prev_dw1 = vec![vec![0.0; off + 1]; self.hidden];
        let mut prev_dw2 = vec![vec![0.0; self.hidden + 1]; k];
        for _epoch in 0..self.epochs {
            for r in 0..n {
                let y = ys[r];
                if y == usize::MAX {
                    continue;
                }
                let x = &xs[r * off..(r + 1) * off];
                let p = self.forward(x, &mut hidden_out);
                // Output deltas (softmax + cross-entropy).
                let out_delta: Vec<f64> =
                    (0..k).map(|c| p[c] - f64::from(u8::from(c == y))).collect();
                // Hidden deltas.
                let mut hid_delta = vec![0.0; self.hidden];
                for (h, hd) in hid_delta.iter_mut().enumerate() {
                    let mut s = 0.0;
                    for (c, od) in out_delta.iter().enumerate() {
                        s += od * self.w2[c][h];
                    }
                    *hd = s * hidden_out[h] * (1.0 - hidden_out[h]);
                }
                // Update output layer.
                for (c, od) in out_delta.iter().enumerate() {
                    for h in 0..self.hidden {
                        let dw = -self.learning_rate * od * hidden_out[h]
                            + self.momentum * prev_dw2[c][h];
                        self.w2[c][h] += dw;
                        prev_dw2[c][h] = dw;
                    }
                    let dw = -self.learning_rate * od + self.momentum * prev_dw2[c][self.hidden];
                    self.w2[c][self.hidden] += dw;
                    prev_dw2[c][self.hidden] = dw;
                }
                // Update hidden layer.
                for (h, hd) in hid_delta.iter().enumerate() {
                    for (f, xi) in x.iter().enumerate() {
                        let dw = -self.learning_rate * hd * xi + self.momentum * prev_dw1[h][f];
                        self.w1[h][f] += dw;
                        prev_dw1[h][f] = dw;
                    }
                    let dw = -self.learning_rate * hd + self.momentum * prev_dw1[h][off];
                    self.w1[h][off] += dw;
                    prev_dw1[h][off] = dw;
                }
            }
        }
        Ok(())
    }

    fn distribution(&self, data: &Dataset, row: usize) -> Result<Vec<f64>> {
        if !self.trained {
            return Err(AlgoError::NotTrained);
        }
        let mut x = vec![0.0; self.num_features];
        self.features(data, row, &mut x);
        let mut hidden = vec![0.0; self.hidden];
        Ok(self.forward(&x, &mut hidden))
    }

    fn describe(&self) -> String {
        if !self.trained {
            return "MultilayerPerceptron: not trained".to_string();
        }
        format!(
            "MLP: {} inputs -> {} hidden (sigmoid) -> {} outputs (softmax), lr {}, momentum {}",
            self.num_features, self.hidden, self.num_classes, self.learning_rate, self.momentum
        )
    }
}

impl Configurable for MultilayerPerceptron {
    fn option_descriptors(&self) -> Vec<OptionDescriptor> {
        vec![
            OptionDescriptor {
                flag: "-H",
                name: "hiddenNeurons",
                description: "number of neurons in the hidden layer",
                default: "8".into(),
                kind: OptionKind::Integer { min: 1, max: 4096 },
            },
            OptionDescriptor {
                flag: "-L",
                name: "learningRate",
                description: "backpropagation learning rate",
                default: "0.3".into(),
                kind: OptionKind::Real {
                    min: 1e-9,
                    max: 1.0,
                },
            },
            OptionDescriptor {
                flag: "-M",
                name: "momentum",
                description: "backpropagation momentum",
                default: "0.2".into(),
                kind: OptionKind::Real {
                    min: 0.0,
                    max: 0.999,
                },
            },
            OptionDescriptor {
                flag: "-N",
                name: "epochs",
                description: "training epochs",
                default: "200".into(),
                kind: OptionKind::Integer {
                    min: 1,
                    max: 1_000_000,
                },
            },
            OptionDescriptor {
                flag: "-S",
                name: "seed",
                description: "random seed for weight initialisation",
                default: "1".into(),
                kind: OptionKind::Integer {
                    min: 0,
                    max: i64::MAX,
                },
            },
        ]
    }

    fn set_option(&mut self, flag: &str, value: &str) -> Result<()> {
        let ds = self.option_descriptors();
        descriptor_for(&ds, flag)?.validate(value)?;
        match flag {
            "-H" => self.hidden = value.parse().expect("validated"),
            "-L" => self.learning_rate = value.parse().expect("validated"),
            "-M" => self.momentum = value.parse().expect("validated"),
            "-N" => self.epochs = value.parse().expect("validated"),
            "-S" => self.seed = value.parse().expect("validated"),
            _ => unreachable!("descriptor_for rejects unknown flags"),
        }
        Ok(())
    }

    fn get_option(&self, flag: &str) -> Result<String> {
        match flag {
            "-H" => Ok(self.hidden.to_string()),
            "-L" => Ok(self.learning_rate.to_string()),
            "-M" => Ok(self.momentum.to_string()),
            "-N" => Ok(self.epochs.to_string()),
            "-S" => Ok(self.seed.to_string()),
            _ => Err(AlgoError::BadOption {
                flag: flag.into(),
                message: "unknown option".into(),
            }),
        }
    }
}

impl Stateful for MultilayerPerceptron {
    fn encode_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.put_usize(self.hidden);
        w.put_f64(self.learning_rate);
        w.put_f64(self.momentum);
        w.put_usize(self.epochs);
        w.put_u64(self.seed);
        w.put_bool(self.trained);
        if self.trained {
            w.put_usize_slice(&self.offsets);
            w.put_usize_slice(&self.nominal_arity);
            w.put_usize(self.scaler.len());
            for (m, s) in &self.scaler {
                w.put_f64(*m);
                w.put_f64(*s);
            }
            w.put_usize(self.num_features);
            w.put_usize(self.class_index);
            w.put_usize(self.num_classes);
            w.put_usize(self.w1.len());
            for row in &self.w1 {
                w.put_f64_slice(row);
            }
            w.put_usize(self.w2.len());
            for row in &self.w2 {
                w.put_f64_slice(row);
            }
        }
        w.into_bytes()
    }

    fn decode_state(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = StateReader::new(bytes);
        self.hidden = r.get_usize()?;
        self.learning_rate = r.get_f64()?;
        self.momentum = r.get_f64()?;
        self.epochs = r.get_usize()?;
        self.seed = r.get_u64()?;
        self.trained = r.get_bool()?;
        if self.trained {
            self.offsets = r.get_usize_vec()?;
            self.nominal_arity = r.get_usize_vec()?;
            let ns = r.get_usize()?;
            if ns > 1 << 20 {
                return Err(AlgoError::BadState("absurd scaler count".into()));
            }
            self.scaler = (0..ns)
                .map(|_| -> Result<(f64, f64)> { Ok((r.get_f64()?, r.get_f64()?)) })
                .collect::<Result<_>>()?;
            self.num_features = r.get_usize()?;
            self.class_index = r.get_usize()?;
            self.num_classes = r.get_usize()?;
            let h = r.get_usize()?;
            if h > 1 << 20 {
                return Err(AlgoError::BadState("absurd hidden count".into()));
            }
            self.w1 = (0..h).map(|_| r.get_f64_vec()).collect::<Result<_>>()?;
            let k = r.get_usize()?;
            if k > 1 << 20 {
                return Err(AlgoError::BadState("absurd class count".into()));
            }
            self.w2 = (0..k).map(|_| r.get_f64_vec()).collect::<Result<_>>()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{resubstitution_accuracy, separable_numeric, weather_nominal};
    use super::*;

    #[test]
    fn learns_separable_data() {
        let ds = separable_numeric(30);
        let mut c = MultilayerPerceptron::new();
        c.set_option("-N", "100").unwrap();
        c.train(&ds).unwrap();
        assert_eq!(resubstitution_accuracy(&c, &ds), 1.0);
    }

    #[test]
    fn learns_xor() {
        // The classic non-linear test a single perceptron cannot solve.
        use dm_data::{Attribute, Dataset};
        let mut ds = Dataset::new(
            "xor",
            vec![
                Attribute::numeric("a"),
                Attribute::numeric("b"),
                Attribute::nominal("c", ["0", "1"]),
            ],
        );
        ds.set_class_index(Some(2)).unwrap();
        for _ in 0..20 {
            ds.push_row(vec![0.0, 0.0, 0.0]).unwrap();
            ds.push_row(vec![0.0, 1.0, 1.0]).unwrap();
            ds.push_row(vec![1.0, 0.0, 1.0]).unwrap();
            ds.push_row(vec![1.0, 1.0, 0.0]).unwrap();
        }
        let mut c = MultilayerPerceptron::new();
        c.set_options(&[("-H", "6"), ("-N", "600"), ("-L", "0.5")])
            .unwrap();
        c.train(&ds).unwrap();
        assert_eq!(resubstitution_accuracy(&c, &ds), 1.0, "MLP failed XOR");
    }

    #[test]
    fn weather_nominal_one_hot() {
        let ds = weather_nominal();
        let mut c = MultilayerPerceptron::new();
        c.set_option("-N", "400").unwrap();
        c.train(&ds).unwrap();
        assert!(resubstitution_accuracy(&c, &ds) >= 12.0 / 14.0);
    }

    #[test]
    fn seed_determinism() {
        let ds = separable_numeric(10);
        let mut a = MultilayerPerceptron::new();
        a.train(&ds).unwrap();
        let mut b = MultilayerPerceptron::new();
        b.train(&ds).unwrap();
        for r in 0..ds.num_instances() {
            assert_eq!(
                a.distribution(&ds, r).unwrap(),
                b.distribution(&ds, r).unwrap()
            );
        }
    }

    #[test]
    fn state_roundtrip() {
        let ds = separable_numeric(10);
        let mut c = MultilayerPerceptron::new();
        c.set_option("-N", "50").unwrap();
        c.train(&ds).unwrap();
        let mut c2 = MultilayerPerceptron::new();
        c2.decode_state(&c.encode_state()).unwrap();
        for r in 0..ds.num_instances() {
            let (a, b) = (
                c.distribution(&ds, r).unwrap(),
                c2.distribution(&ds, r).unwrap(),
            );
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn paper_named_options_exist() {
        // §4.4: hidden neurons, momentum, learning rate.
        let c = MultilayerPerceptron::new();
        let flags: Vec<&str> = c.option_descriptors().iter().map(|d| d.flag).collect();
        assert!(flags.contains(&"-H"));
        assert!(flags.contains(&"-M"));
        assert!(flags.contains(&"-L"));
    }

    #[test]
    fn untrained_errors() {
        let ds = weather_nominal();
        assert!(MultilayerPerceptron::new().distribution(&ds, 0).is_err());
    }
}
