//! ZeroR: predicts the training-set class prior, ignoring attributes.
//! The baseline every other classifier must beat.

use super::{check_trainable, normalize, Classifier};
use crate::error::{AlgoError, Result};
use crate::options::{Configurable, OptionDescriptor};
use crate::state::{StateReader, StateWriter, Stateful};
use dm_data::Dataset;

/// The majority-class / prior-distribution baseline.
#[derive(Debug, Clone, Default)]
pub struct ZeroR {
    prior: Option<Vec<f64>>,
    class_name: String,
    majority_label: String,
}

impl ZeroR {
    /// Create an untrained ZeroR.
    pub fn new() -> ZeroR {
        ZeroR::default()
    }
}

impl Classifier for ZeroR {
    fn name(&self) -> &'static str {
        "ZeroR"
    }

    fn train(&mut self, data: &Dataset) -> Result<()> {
        check_trainable(data)?;
        let mut counts = data.class_counts()?;
        let best = super::argmax(&counts).expect("k >= 2");
        let attr = data.class_attribute()?;
        self.class_name = attr.name().to_string();
        self.majority_label = attr.label(best)?.to_string();
        normalize(&mut counts);
        self.prior = Some(counts);
        Ok(())
    }

    fn distribution(&self, _data: &Dataset, _row: usize) -> Result<Vec<f64>> {
        self.prior.clone().ok_or(AlgoError::NotTrained)
    }

    fn describe(&self) -> String {
        match &self.prior {
            None => "ZeroR: not trained".to_string(),
            Some(_) => format!("ZeroR predicts class value: {}", self.majority_label),
        }
    }
}

impl Configurable for ZeroR {
    fn option_descriptors(&self) -> Vec<OptionDescriptor> {
        Vec::new()
    }

    fn set_option(&mut self, flag: &str, _value: &str) -> Result<()> {
        Err(AlgoError::BadOption {
            flag: flag.to_string(),
            message: "ZeroR has no options".into(),
        })
    }

    fn get_option(&self, flag: &str) -> Result<String> {
        Err(AlgoError::BadOption {
            flag: flag.to_string(),
            message: "ZeroR has no options".into(),
        })
    }
}

impl Stateful for ZeroR {
    fn encode_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.put_bool(self.prior.is_some());
        if let Some(p) = &self.prior {
            w.put_f64_slice(p);
            w.put_str(&self.class_name);
            w.put_str(&self.majority_label);
        }
        w.into_bytes()
    }

    fn decode_state(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = StateReader::new(bytes);
        if r.get_bool()? {
            self.prior = Some(r.get_f64_vec()?);
            self.class_name = r.get_str()?;
            self.majority_label = r.get_str()?;
        } else {
            self.prior = None;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::weather_nominal;
    use super::*;

    #[test]
    fn predicts_prior() {
        let ds = weather_nominal();
        let mut z = ZeroR::new();
        z.train(&ds).unwrap();
        let d = z.distribution(&ds, 0).unwrap();
        assert!((d[0] - 9.0 / 14.0).abs() < 1e-12);
        assert!((d[1] - 5.0 / 14.0).abs() < 1e-12);
        assert_eq!(z.predict(&ds, 0).unwrap(), 0);
        assert!(z.describe().contains("yes"));
    }

    #[test]
    fn untrained_errors() {
        let ds = weather_nominal();
        let z = ZeroR::new();
        assert!(matches!(z.distribution(&ds, 0), Err(AlgoError::NotTrained)));
    }

    #[test]
    fn state_roundtrip() {
        let ds = weather_nominal();
        let mut z = ZeroR::new();
        z.train(&ds).unwrap();
        let bytes = z.encode_state();
        let mut z2 = ZeroR::new();
        z2.decode_state(&bytes).unwrap();
        assert_eq!(
            z.distribution(&ds, 0).unwrap(),
            z2.distribution(&ds, 0).unwrap()
        );
        assert_eq!(z.describe(), z2.describe());
    }

    #[test]
    fn no_options() {
        let mut z = ZeroR::new();
        assert!(z.option_descriptors().is_empty());
        assert!(z.set_option("-X", "1").is_err());
    }
}
