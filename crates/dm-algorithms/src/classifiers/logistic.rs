//! Multinomial logistic regression trained by batch gradient descent
//! with L2 regularisation (the paper's "statistical algorithms such as
//! regression"). Nominal attributes are one-hot encoded on the fly.

use super::{check_trainable, normalize, Classifier};
use crate::error::{AlgoError, Result};
use crate::options::{descriptor_for, Configurable, OptionDescriptor, OptionKind};
use crate::state::{StateReader, StateWriter, Stateful};
use dm_data::{Dataset, Value};

/// Multinomial logistic regression.
#[derive(Debug, Clone)]
pub struct Logistic {
    /// `-R`: L2 ridge coefficient.
    ridge: f64,
    /// `-I`: gradient-descent iterations.
    iterations: usize,
    /// `-L`: learning rate.
    learning_rate: f64,
    /// Feature expansion: offsets[a] = first feature index of attr a.
    offsets: Vec<usize>,
    nominal_arity: Vec<usize>,
    num_features: usize,
    class_index: usize,
    num_classes: usize,
    /// Weights: `[class][feature + bias]`.
    weights: Vec<Vec<f64>>,
    /// Per-numeric-feature (mean, sd) standardisation.
    scaler: Vec<(f64, f64)>,
    trained: bool,
}

impl Default for Logistic {
    fn default() -> Self {
        Logistic {
            ridge: 1e-8,
            iterations: 200,
            learning_rate: 0.1,
            offsets: Vec::new(),
            nominal_arity: Vec::new(),
            num_features: 0,
            class_index: 0,
            num_classes: 0,
            weights: Vec::new(),
            scaler: Vec::new(),
            trained: false,
        }
    }
}

impl Logistic {
    /// Create with defaults.
    pub fn new() -> Logistic {
        Logistic::default()
    }

    /// Expand row `row` of `data` into the dense feature vector
    /// (one-hot nominals, standardised numerics; missing → all-zero).
    fn features(&self, data: &Dataset, row: usize, out: &mut [f64]) {
        out.fill(0.0);
        for a in 0..self.offsets.len() {
            if a == self.class_index {
                continue;
            }
            let v = data.value(row, a);
            if Value::is_missing(v) {
                continue;
            }
            let off = self.offsets[a];
            if self.nominal_arity[a] > 0 {
                let i = Value::as_index(v);
                if i < self.nominal_arity[a] {
                    out[off + i] = 1.0;
                }
            } else {
                let (mean, sd) = self.scaler[a];
                out[off] = if sd > 0.0 { (v - mean) / sd } else { 0.0 };
            }
        }
    }

    fn scores(&self, x: &[f64]) -> Vec<f64> {
        self.weights
            .iter()
            .map(|w| {
                let mut s = w[self.num_features]; // bias
                for (wi, xi) in w[..self.num_features].iter().zip(x) {
                    s += wi * xi;
                }
                s
            })
            .collect()
    }

    fn softmax(mut scores: Vec<f64>) -> Vec<f64> {
        let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for s in scores.iter_mut() {
            *s = (*s - max).exp();
        }
        normalize(&mut scores);
        scores
    }
}

impl Classifier for Logistic {
    fn name(&self) -> &'static str {
        "Logistic"
    }

    fn train(&mut self, data: &Dataset) -> Result<()> {
        let (ci, k) = check_trainable(data)?;
        self.class_index = ci;
        self.num_classes = k;

        // Plan the feature layout and numeric scalers.
        self.offsets = vec![0; data.num_attributes()];
        self.nominal_arity = vec![0; data.num_attributes()];
        self.scaler = vec![(0.0, 1.0); data.num_attributes()];
        let mut off = 0usize;
        for a in 0..data.num_attributes() {
            self.offsets[a] = off;
            if a == ci {
                continue;
            }
            let attr = &data.attributes()[a];
            if attr.is_nominal() {
                self.nominal_arity[a] = attr.num_labels();
                off += attr.num_labels();
            } else if attr.is_numeric() {
                let mut sum = 0.0;
                let mut n = 0.0;
                for r in 0..data.num_instances() {
                    let v = data.value(r, a);
                    if !Value::is_missing(v) {
                        sum += v;
                        n += 1.0;
                    }
                }
                let mean = if n > 0.0 { sum / n } else { 0.0 };
                let mut ss = 0.0;
                for r in 0..data.num_instances() {
                    let v = data.value(r, a);
                    if !Value::is_missing(v) {
                        ss += (v - mean) * (v - mean);
                    }
                }
                let sd = if n > 0.0 { (ss / n).sqrt() } else { 1.0 };
                self.scaler[a] = (mean, if sd > 0.0 { sd } else { 1.0 });
                off += 1;
            }
        }
        self.num_features = off;
        self.weights = vec![vec![0.0; off + 1]; k];

        // Pre-expand the design matrix once (hot loop stays add/mul only).
        let n = data.num_instances();
        let mut xs = vec![0.0f64; n * off];
        let mut ys = Vec::with_capacity(n);
        // Temporarily mark trained so `features` can be used.
        self.trained = true;
        for r in 0..n {
            let cv = data.value(r, ci);
            if Value::is_missing(cv) {
                ys.push(usize::MAX);
                continue;
            }
            ys.push(Value::as_index(cv));
            let (a, b) = (r * off, (r + 1) * off);
            let row_out = &mut xs[a..b];
            self.features(data, r, row_out);
        }

        let lr = self.learning_rate;
        let mut grads = vec![vec![0.0f64; off + 1]; k];
        for _ in 0..self.iterations {
            for g in grads.iter_mut() {
                g.fill(0.0);
            }
            for r in 0..n {
                let y = ys[r];
                if y == usize::MAX {
                    continue;
                }
                let x = &xs[r * off..(r + 1) * off];
                let p = Self::softmax(self.scores(x));
                for (c, grad) in grads.iter_mut().enumerate() {
                    let err = p[c] - f64::from(u8::from(c == y));
                    for (gi, xi) in grad[..off].iter_mut().zip(x) {
                        *gi += err * xi;
                    }
                    grad[off] += err;
                }
            }
            let scale = lr / n as f64;
            for (c, grad) in grads.iter().enumerate() {
                for (w, g) in self.weights[c].iter_mut().zip(grad) {
                    *w -= scale * g + lr * self.ridge * *w;
                }
            }
        }
        Ok(())
    }

    fn distribution(&self, data: &Dataset, row: usize) -> Result<Vec<f64>> {
        if !self.trained {
            return Err(AlgoError::NotTrained);
        }
        let mut x = vec![0.0; self.num_features];
        self.features(data, row, &mut x);
        Ok(Self::softmax(self.scores(&x)))
    }

    fn describe(&self) -> String {
        if !self.trained {
            return "Logistic: not trained".to_string();
        }
        format!(
            "Multinomial logistic regression: {} classes, {} features, ridge {}",
            self.num_classes, self.num_features, self.ridge
        )
    }
}

impl Configurable for Logistic {
    fn option_descriptors(&self) -> Vec<OptionDescriptor> {
        vec![
            OptionDescriptor {
                flag: "-R",
                name: "ridge",
                description: "L2 regularisation coefficient",
                default: "1e-8".into(),
                kind: OptionKind::Real { min: 0.0, max: 1e3 },
            },
            OptionDescriptor {
                flag: "-I",
                name: "iterations",
                description: "gradient descent iterations",
                default: "200".into(),
                kind: OptionKind::Integer {
                    min: 1,
                    max: 1_000_000,
                },
            },
            OptionDescriptor {
                flag: "-L",
                name: "learningRate",
                description: "gradient descent step size",
                default: "0.1".into(),
                kind: OptionKind::Real {
                    min: 1e-9,
                    max: 10.0,
                },
            },
        ]
    }

    fn set_option(&mut self, flag: &str, value: &str) -> Result<()> {
        let ds = self.option_descriptors();
        descriptor_for(&ds, flag)?.validate(value)?;
        match flag {
            "-R" => self.ridge = value.parse().expect("validated"),
            "-I" => self.iterations = value.parse().expect("validated"),
            "-L" => self.learning_rate = value.parse().expect("validated"),
            _ => unreachable!("descriptor_for rejects unknown flags"),
        }
        Ok(())
    }

    fn get_option(&self, flag: &str) -> Result<String> {
        match flag {
            "-R" => Ok(self.ridge.to_string()),
            "-I" => Ok(self.iterations.to_string()),
            "-L" => Ok(self.learning_rate.to_string()),
            _ => Err(AlgoError::BadOption {
                flag: flag.into(),
                message: "unknown option".into(),
            }),
        }
    }
}

impl Stateful for Logistic {
    fn encode_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.put_f64(self.ridge);
        w.put_usize(self.iterations);
        w.put_f64(self.learning_rate);
        w.put_bool(self.trained);
        if self.trained {
            w.put_usize_slice(&self.offsets);
            w.put_usize_slice(&self.nominal_arity);
            w.put_usize(self.num_features);
            w.put_usize(self.class_index);
            w.put_usize(self.num_classes);
            w.put_usize(self.weights.len());
            for row in &self.weights {
                w.put_f64_slice(row);
            }
            w.put_usize(self.scaler.len());
            for (m, s) in &self.scaler {
                w.put_f64(*m);
                w.put_f64(*s);
            }
        }
        w.into_bytes()
    }

    fn decode_state(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = StateReader::new(bytes);
        self.ridge = r.get_f64()?;
        self.iterations = r.get_usize()?;
        self.learning_rate = r.get_f64()?;
        self.trained = r.get_bool()?;
        if self.trained {
            self.offsets = r.get_usize_vec()?;
            self.nominal_arity = r.get_usize_vec()?;
            self.num_features = r.get_usize()?;
            self.class_index = r.get_usize()?;
            self.num_classes = r.get_usize()?;
            let k = r.get_usize()?;
            if k > 1 << 16 {
                return Err(AlgoError::BadState("absurd class count".into()));
            }
            self.weights = (0..k).map(|_| r.get_f64_vec()).collect::<Result<_>>()?;
            let ns = r.get_usize()?;
            if ns > 1 << 20 {
                return Err(AlgoError::BadState("absurd scaler count".into()));
            }
            self.scaler = (0..ns)
                .map(|_| -> Result<(f64, f64)> { Ok((r.get_f64()?, r.get_f64()?)) })
                .collect::<Result<_>>()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{resubstitution_accuracy, separable_numeric, weather_nominal};
    use super::*;

    #[test]
    fn separable_numeric_converges() {
        let ds = separable_numeric(40);
        let mut c = Logistic::new();
        c.train(&ds).unwrap();
        assert_eq!(resubstitution_accuracy(&c, &ds), 1.0);
    }

    #[test]
    fn nominal_one_hot_learns_weather() {
        let ds = weather_nominal();
        let mut c = Logistic::new();
        c.set_option("-I", "500").unwrap();
        c.train(&ds).unwrap();
        assert!(resubstitution_accuracy(&c, &ds) >= 11.0 / 14.0);
    }

    #[test]
    fn distribution_sums_to_one() {
        let ds = separable_numeric(10);
        let mut c = Logistic::new();
        c.train(&ds).unwrap();
        let d = c.distribution(&ds, 0).unwrap();
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn missing_features_zeroed() {
        let mut ds = separable_numeric(10);
        let mut c = Logistic::new();
        c.train(&ds).unwrap();
        ds.set_value(0, 0, f64::NAN);
        assert!(c.distribution(&ds, 0).is_ok());
    }

    #[test]
    fn state_roundtrip() {
        let ds = separable_numeric(15);
        let mut c = Logistic::new();
        c.train(&ds).unwrap();
        let mut c2 = Logistic::new();
        c2.decode_state(&c.encode_state()).unwrap();
        for r in 0..ds.num_instances() {
            let a = c.distribution(&ds, r).unwrap();
            let b = c2.distribution(&ds, r).unwrap();
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn untrained_errors() {
        let ds = weather_nominal();
        assert!(Logistic::new().distribution(&ds, 0).is_err());
    }
}
