//! RandomForest (Breiman 2001): bagging of [`super::RandomTree`]s with
//! random attribute subsets at each node.

use super::{normalize, Classifier, RandomTree};
use crate::error::{AlgoError, Result};
use crate::options::{descriptor_for, Configurable, OptionDescriptor, OptionKind};
use crate::pool;
use crate::state::{StateReader, StateWriter, Stateful};
use dm_data::Dataset;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// The random-forest ensemble.
#[derive(Debug, Clone)]
pub struct RandomForest {
    /// `-I`: number of trees.
    num_trees: usize,
    /// `-K`: attributes per node (0 = `log2(n)+1`).
    k_attrs: usize,
    /// `-S`: RNG seed.
    seed: u64,
    trees: Vec<RandomTree>,
    num_classes: usize,
}

impl Default for RandomForest {
    fn default() -> Self {
        RandomForest {
            num_trees: 10,
            k_attrs: 0,
            seed: 1,
            trees: Vec::new(),
            num_classes: 0,
        }
    }
}

impl RandomForest {
    /// Create with defaults (10 trees).
    pub fn new() -> RandomForest {
        RandomForest::default()
    }

    /// Number of trained trees.
    pub fn num_members(&self) -> usize {
        self.trees.len()
    }
}

impl Classifier for RandomForest {
    fn name(&self) -> &'static str {
        "RandomForest"
    }

    fn train(&mut self, data: &Dataset) -> Result<()> {
        let (_, k) = super::check_trainable(data)?;
        self.num_classes = k;
        self.trees.clear();
        // Presample every bootstrap serially so the shared RNG stream is
        // identical to the historical one-loop implementation; member
        // training then fans out on the pool (each tree has its own
        // derived seed, so training order cannot matter).
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = data.num_instances();
        let bootstraps: Vec<Vec<usize>> = (0..self.num_trees)
            .map(|_| (0..n).map(|_| rng.random_range(0..n)).collect())
            .collect();
        let trained: Vec<Result<RandomTree>> = pool::parallel_map(self.num_trees, |i| {
            let sample = data.select_rows(&bootstraps[i]);
            let mut tree = RandomTree::with_seed(self.seed ^ (i as u64).wrapping_mul(0x9E37));
            tree.set_option("-K", &self.k_attrs.to_string())?;
            tree.train(&sample)?;
            Ok(tree)
        });
        for t in trained {
            self.trees.push(t?);
        }
        Ok(())
    }

    fn distribution(&self, data: &Dataset, row: usize) -> Result<Vec<f64>> {
        if self.trees.is_empty() {
            return Err(AlgoError::NotTrained);
        }
        // Member votes are computed in parallel (for wide ensembles) but
        // folded serially in member order, so the floating-point sums
        // match the old serial loop bit-for-bit.
        let votes: Vec<Result<Vec<f64>>> =
            pool::parallel_map_min(self.trees.len(), super::MIN_PARALLEL_MEMBERS, |i| {
                self.trees[i].distribution(data, row)
            });
        let mut dist = vec![0.0; self.num_classes];
        for d in votes {
            for (acc, x) in dist.iter_mut().zip(&d?) {
                *acc += x;
            }
        }
        normalize(&mut dist);
        Ok(dist)
    }

    fn describe(&self) -> String {
        if self.trees.is_empty() {
            return "RandomForest: not trained".to_string();
        }
        format!(
            "Random forest of {} trees (K = {})",
            self.trees.len(),
            self.k_attrs
        )
    }
}

impl Configurable for RandomForest {
    fn option_descriptors(&self) -> Vec<OptionDescriptor> {
        vec![
            OptionDescriptor {
                flag: "-I",
                name: "numTrees",
                description: "number of trees in the forest",
                default: "10".into(),
                kind: OptionKind::Integer {
                    min: 1,
                    max: 10_000,
                },
            },
            OptionDescriptor {
                flag: "-K",
                name: "numAttributes",
                description: "attributes considered per node (0 = log2(n)+1)",
                default: "0".into(),
                kind: OptionKind::Integer {
                    min: 0,
                    max: 100_000,
                },
            },
            OptionDescriptor {
                flag: "-S",
                name: "seed",
                description: "random seed",
                default: "1".into(),
                kind: OptionKind::Integer {
                    min: 0,
                    max: i64::MAX,
                },
            },
        ]
    }

    fn set_option(&mut self, flag: &str, value: &str) -> Result<()> {
        let ds = self.option_descriptors();
        descriptor_for(&ds, flag)?.validate(value)?;
        match flag {
            "-I" => self.num_trees = value.parse().expect("validated"),
            "-K" => self.k_attrs = value.parse().expect("validated"),
            "-S" => self.seed = value.parse().expect("validated"),
            _ => unreachable!("descriptor_for rejects unknown flags"),
        }
        Ok(())
    }

    fn get_option(&self, flag: &str) -> Result<String> {
        match flag {
            "-I" => Ok(self.num_trees.to_string()),
            "-K" => Ok(self.k_attrs.to_string()),
            "-S" => Ok(self.seed.to_string()),
            _ => Err(AlgoError::BadOption {
                flag: flag.into(),
                message: "unknown option".into(),
            }),
        }
    }
}

impl Stateful for RandomForest {
    fn encode_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.put_usize(self.num_trees);
        w.put_usize(self.k_attrs);
        w.put_u64(self.seed);
        w.put_usize(self.num_classes);
        w.put_usize(self.trees.len());
        for t in &self.trees {
            w.put_bytes(&t.encode_state());
        }
        w.into_bytes()
    }

    fn decode_state(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = StateReader::new(bytes);
        self.num_trees = r.get_usize()?;
        self.k_attrs = r.get_usize()?;
        self.seed = r.get_u64()?;
        self.num_classes = r.get_usize()?;
        let n = r.get_usize()?;
        if n > 1 << 16 {
            return Err(AlgoError::BadState("absurd tree count".into()));
        }
        self.trees.clear();
        for _ in 0..n {
            let payload = r.get_bytes()?;
            let mut t = RandomTree::new();
            t.decode_state(&payload)?;
            self.trees.push(t);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{resubstitution_accuracy, weather_nominal};
    use super::*;

    #[test]
    fn forest_fits_weather() {
        let ds = weather_nominal();
        let mut f = RandomForest::new();
        f.set_option("-I", "15").unwrap();
        f.train(&ds).unwrap();
        assert_eq!(f.num_members(), 15);
        assert!(resubstitution_accuracy(&f, &ds) >= 12.0 / 14.0);
    }

    #[test]
    fn forest_beats_prior_on_breast_cancer() {
        let ds = dm_data::corpus::breast_cancer();
        let mut f = RandomForest::new();
        f.train(&ds).unwrap();
        let acc = resubstitution_accuracy(&f, &ds);
        assert!(acc > 201.0 / 286.0, "accuracy {acc}");
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = weather_nominal();
        let mut a = RandomForest::new();
        a.train(&ds).unwrap();
        let mut b = RandomForest::new();
        b.train(&ds).unwrap();
        for r in 0..ds.num_instances() {
            assert_eq!(
                a.distribution(&ds, r).unwrap(),
                b.distribution(&ds, r).unwrap()
            );
        }
    }

    #[test]
    fn state_roundtrip() {
        let ds = weather_nominal();
        let mut f = RandomForest::new();
        f.set_option("-I", "4").unwrap();
        f.train(&ds).unwrap();
        let mut f2 = RandomForest::new();
        f2.decode_state(&f.encode_state()).unwrap();
        assert_eq!(f2.num_members(), 4);
        for r in 0..ds.num_instances() {
            assert_eq!(f.predict(&ds, r).unwrap(), f2.predict(&ds, r).unwrap());
        }
    }

    #[test]
    fn untrained_errors() {
        let ds = weather_nominal();
        assert!(RandomForest::new().distribution(&ds, 0).is_err());
    }
}
