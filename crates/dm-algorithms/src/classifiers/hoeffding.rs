//! Hoeffding-tree-style incremental classifier (VFDT, Domingos &
//! Hulten) for streamed ingest.
//!
//! Rows are absorbed one at a time into leaf statistics; a leaf splits
//! on the nominal attribute whose information gain beats the runner-up
//! by the Hoeffding bound `ε = sqrt(R² ln(1/δ) / 2n)` (`R = log₂ k`),
//! or when `ε` falls under the tie threshold. The model therefore
//! answers `classifyInstances` at any moment while training never
//! stops — the long-lived model-serving behaviour DAME motivates.
//!
//! Scope: splits are evaluated on nominal non-class attributes only;
//! numeric attributes are carried but never split on (no numeric
//! discretisation), so purely numeric datasets yield a single
//! majority-class leaf. Rows with a missing class are skipped; a
//! missing split-attribute value routes down the first branch.
//!
//! Determinism and chunk invariance: absorption is strictly
//! sequential per row and split checks fire on exact row-count
//! boundaries (`-G`), so feeding the same rows in any chunking — or
//! all at once via `train` — produces byte-identical state (the E18
//! streamed-vs-migrate contract).

use super::{check_trainable, entropy, normalize, Classifier};
use crate::error::{AlgoError, Result};
use crate::options::{descriptor_for, Configurable, OptionDescriptor, OptionKind};
use crate::state::{StateReader, StateWriter, Stateful};
use dm_data::{Dataset, Value};

/// One arena node: a growing leaf or an internal nominal split.
#[derive(Debug, Clone)]
enum Node {
    /// A leaf accumulating sufficient statistics.
    Leaf {
        /// Per-class instance weight at this leaf.
        counts: Vec<f64>,
        /// Attributes still available to split on at this leaf.
        candidates: Vec<usize>,
        /// Per-candidate statistics, parallel to `candidates`:
        /// flattened `[value * k + class]` weights.
        stats: Vec<Vec<f64>>,
        /// Rows absorbed since the last split check.
        seen: u64,
    },
    /// An internal split on a nominal attribute, one child per label.
    Split {
        /// Attribute index the node splits on.
        attr: usize,
        /// Child node ids, indexed by the attribute's label code.
        children: Vec<usize>,
    },
}

/// The incremental Hoeffding-tree classifier.
#[derive(Debug, Clone)]
pub struct HoeffdingTree {
    /// `-G`: rows between split checks at a leaf.
    grace: u64,
    /// `-D`: Hoeffding bound confidence δ.
    delta: f64,
    /// `-T`: tie-break threshold τ.
    tau: f64,
    class_index: usize,
    num_classes: usize,
    /// Domain size per attribute (0 = not splittable: numeric, string,
    /// or the class itself).
    arities: Vec<usize>,
    nodes: Vec<Node>,
    rows_seen: u64,
    trained: bool,
}

impl Default for HoeffdingTree {
    fn default() -> Self {
        HoeffdingTree {
            grace: 50,
            delta: 1e-6,
            tau: 0.05,
            class_index: 0,
            num_classes: 0,
            arities: Vec::new(),
            nodes: Vec::new(),
            rows_seen: 0,
            trained: false,
        }
    }
}

impl HoeffdingTree {
    /// Create with defaults (grace 50, δ = 1e-6, τ = 0.05).
    pub fn new() -> HoeffdingTree {
        HoeffdingTree::default()
    }

    /// Initialise the tree from a schema-bearing dataset (resets any
    /// previous model). Called implicitly by the first
    /// [`HoeffdingTree::absorb`].
    pub fn init_schema(&mut self, data: &Dataset) -> Result<()> {
        let (ci, k) = check_trainable(data)?;
        self.class_index = ci;
        self.num_classes = k;
        self.arities = (0..data.num_attributes())
            .map(|a| {
                if a == ci {
                    0
                } else {
                    let attr = &data.attributes()[a];
                    if attr.is_nominal() {
                        attr.num_labels()
                    } else {
                        0
                    }
                }
            })
            .collect();
        let candidates: Vec<usize> = (0..self.arities.len())
            .filter(|&a| self.arities[a] > 0)
            .collect();
        self.nodes = vec![self.fresh_leaf(candidates, vec![0.0; k])];
        self.rows_seen = 0;
        self.trained = true;
        Ok(())
    }

    fn fresh_leaf(&self, candidates: Vec<usize>, counts: Vec<f64>) -> Node {
        let stats = candidates
            .iter()
            .map(|&a| vec![0.0; self.arities[a] * self.num_classes])
            .collect();
        Node::Leaf {
            counts,
            candidates,
            stats,
            seen: 0,
        }
    }

    /// Walk a stored row down to its leaf node id.
    fn route(&self, data: &Dataset, row: usize) -> usize {
        let mut id = 0;
        loop {
            match &self.nodes[id] {
                Node::Leaf { .. } => return id,
                Node::Split { attr, children } => {
                    let v = data.value(row, *attr);
                    let branch = if Value::is_missing(v) {
                        0
                    } else {
                        (v as usize).min(children.len() - 1)
                    };
                    id = children[branch];
                }
            }
        }
    }

    /// Absorb one row into its leaf; maybe split.
    fn absorb_row(&mut self, data: &Dataset, row: usize) {
        let class = data.value(row, self.class_index);
        if Value::is_missing(class) {
            return;
        }
        let c = class as usize;
        if c >= self.num_classes {
            return;
        }
        let w = data.weight(row);
        self.rows_seen += 1;
        let id = self.route(data, row);
        let due = {
            let k = self.num_classes;
            let Node::Leaf {
                counts,
                candidates,
                stats,
                seen,
            } = &mut self.nodes[id]
            else {
                unreachable!("route returns a leaf")
            };
            counts[c] += w;
            for (slot, &a) in candidates.iter().enumerate() {
                let v = data.value(row, a);
                if !Value::is_missing(v) {
                    let code = (v as usize).min(self.arities[a] - 1);
                    stats[slot][code * k + c] += w;
                }
            }
            *seen += 1;
            *seen >= self.grace
        };
        if due {
            self.try_split(id);
        }
    }

    /// Evaluate the Hoeffding split test at leaf `id`.
    fn try_split(&mut self, id: usize) {
        let k = self.num_classes;
        let (best, runner_up, total) = {
            let Node::Leaf {
                counts,
                candidates,
                stats,
                seen,
            } = &mut self.nodes[id]
            else {
                return;
            };
            *seen = 0;
            let total: f64 = counts.iter().sum();
            if total <= 0.0 || candidates.is_empty() {
                return;
            }
            // A pure leaf cannot gain from splitting.
            if counts.iter().filter(|&&n| n > 0.0).count() <= 1 {
                return;
            }
            let base = entropy(counts);
            let mut best: Option<(usize, f64)> = None;
            let mut second = 0.0f64;
            for (slot, &a) in candidates.iter().enumerate() {
                let arity = stats[slot].len() / k;
                let mut remainder = 0.0;
                let mut covered = 0.0;
                for v in 0..arity {
                    let branch = &stats[slot][v * k..(v + 1) * k];
                    let n_v: f64 = branch.iter().sum();
                    if n_v > 0.0 {
                        remainder += n_v / total * entropy(branch);
                        covered += n_v;
                    }
                }
                // Rows whose value was missing saw no branch; charge
                // them the parent entropy so sparse stats don't look
                // artificially pure.
                remainder += (total - covered).max(0.0) / total * base;
                let gain = base - remainder;
                match best {
                    Some((_, g)) if gain <= g => second = second.max(gain),
                    _ => {
                        if let Some((_, g)) = best {
                            second = second.max(g);
                        }
                        best = Some((a, gain));
                    }
                }
            }
            let Some((attr, g1)) = best else { return };
            let range = (k as f64).log2().max(1.0);
            let eps = (range * range * (1.0 / self.delta).ln() / (2.0 * total)).sqrt();
            if g1 > 0.0 && (g1 - second > eps || eps < self.tau) {
                (attr, second, total)
            } else {
                return;
            }
        };
        let _ = (runner_up, total);
        self.split_leaf(id, best);
    }

    /// Replace leaf `id` with a split on `attr`, warm-starting each
    /// child's class counts from the parent's per-value statistics.
    fn split_leaf(&mut self, id: usize, attr: usize) {
        let k = self.num_classes;
        let Node::Leaf {
            candidates, stats, ..
        } = &self.nodes[id]
        else {
            return;
        };
        let slot = candidates
            .iter()
            .position(|&a| a == attr)
            .expect("split attr is a candidate");
        let child_candidates: Vec<usize> =
            candidates.iter().copied().filter(|&a| a != attr).collect();
        let per_value: Vec<Vec<f64>> = (0..self.arities[attr])
            .map(|v| stats[slot][v * k..(v + 1) * k].to_vec())
            .collect();
        let mut children = Vec::with_capacity(per_value.len());
        for counts in per_value {
            let child = self.fresh_leaf(child_candidates.clone(), counts);
            self.nodes.push(child);
            children.push(self.nodes.len() - 1);
        }
        self.nodes[id] = Node::Split { attr, children };
    }

    /// Absorb a chunk of rows (the streaming entry point). The first
    /// call fixes the schema from `data`; later chunks must share it.
    pub fn absorb(&mut self, data: &Dataset) -> Result<()> {
        if !self.trained {
            self.init_schema(data)?;
        }
        if data.num_attributes() != self.arities.len() {
            return Err(AlgoError::Data(dm_data::DataError::Arity {
                got: data.num_attributes(),
                expected: self.arities.len(),
            }));
        }
        for row in 0..data.num_instances() {
            self.absorb_row(data, row);
        }
        Ok(())
    }

    /// Total class-labelled rows absorbed so far.
    pub fn rows_seen(&self) -> u64 {
        self.rows_seen
    }

    fn leaf_stats(&self) -> (usize, usize) {
        let mut leaves = 0;
        let mut splits = 0;
        for n in &self.nodes {
            match n {
                Node::Leaf { .. } => leaves += 1,
                Node::Split { .. } => splits += 1,
            }
        }
        (leaves, splits)
    }
}

impl Classifier for HoeffdingTree {
    fn name(&self) -> &'static str {
        "HoeffdingTree"
    }

    fn train(&mut self, data: &Dataset) -> Result<()> {
        self.trained = false; // reset: train() is batch semantics
        self.init_schema(data)?;
        self.absorb(data)
    }

    fn distribution(&self, data: &Dataset, row: usize) -> Result<Vec<f64>> {
        if !self.trained {
            return Err(AlgoError::NotTrained);
        }
        let id = self.route(data, row);
        let Node::Leaf { counts, .. } = &self.nodes[id] else {
            unreachable!("route returns a leaf")
        };
        let mut dist = counts.clone();
        normalize(&mut dist);
        Ok(dist)
    }

    fn describe(&self) -> String {
        if !self.trained {
            return "HoeffdingTree: not trained".to_string();
        }
        let (leaves, splits) = self.leaf_stats();
        format!(
            "Hoeffding tree: {splits} splits, {leaves} leaves, {} rows absorbed \
             (grace {}, delta {:e}, tie {})",
            self.rows_seen, self.grace, self.delta, self.tau
        )
    }
}

impl Configurable for HoeffdingTree {
    fn option_descriptors(&self) -> Vec<OptionDescriptor> {
        vec![
            OptionDescriptor {
                flag: "-G",
                name: "gracePeriod",
                description: "rows between split checks at a leaf",
                default: "50".into(),
                kind: OptionKind::Integer {
                    min: 1,
                    max: 1_000_000,
                },
            },
            OptionDescriptor {
                flag: "-D",
                name: "delta",
                description: "Hoeffding bound confidence",
                default: "1e-6".into(),
                kind: OptionKind::Real {
                    min: f64::MIN_POSITIVE,
                    max: 0.5,
                },
            },
            OptionDescriptor {
                flag: "-T",
                name: "tieThreshold",
                description: "split anyway when the bound falls below this",
                default: "0.05".into(),
                kind: OptionKind::Real { min: 0.0, max: 1.0 },
            },
        ]
    }

    fn set_option(&mut self, flag: &str, value: &str) -> Result<()> {
        let ds = self.option_descriptors();
        descriptor_for(&ds, flag)?.validate(value)?;
        match flag {
            "-G" => self.grace = value.parse().expect("validated"),
            "-D" => self.delta = value.parse().expect("validated"),
            "-T" => self.tau = value.parse().expect("validated"),
            _ => unreachable!("descriptor_for rejects unknown flags"),
        }
        Ok(())
    }

    fn get_option(&self, flag: &str) -> Result<String> {
        match flag {
            "-G" => Ok(self.grace.to_string()),
            "-D" => Ok(self.delta.to_string()),
            "-T" => Ok(self.tau.to_string()),
            _ => Err(AlgoError::BadOption {
                flag: flag.into(),
                message: "unknown option".into(),
            }),
        }
    }
}

impl Stateful for HoeffdingTree {
    fn encode_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.put_u64(self.grace);
        w.put_f64(self.delta);
        w.put_f64(self.tau);
        w.put_bool(self.trained);
        if self.trained {
            w.put_usize(self.class_index);
            w.put_usize(self.num_classes);
            w.put_usize_slice(&self.arities);
            w.put_u64(self.rows_seen);
            w.put_usize(self.nodes.len());
            for node in &self.nodes {
                match node {
                    Node::Leaf {
                        counts,
                        candidates,
                        stats,
                        seen,
                    } => {
                        w.put_bool(true);
                        w.put_f64_slice(counts);
                        w.put_usize_slice(candidates);
                        for s in stats {
                            w.put_f64_slice(s);
                        }
                        w.put_u64(*seen);
                    }
                    Node::Split { attr, children } => {
                        w.put_bool(false);
                        w.put_usize(*attr);
                        w.put_usize_slice(children);
                    }
                }
            }
        }
        w.into_bytes()
    }

    fn decode_state(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = StateReader::new(bytes);
        self.grace = r.get_u64()?;
        self.delta = r.get_f64()?;
        self.tau = r.get_f64()?;
        self.trained = r.get_bool()?;
        self.nodes = Vec::new();
        self.rows_seen = 0;
        if self.trained {
            self.class_index = r.get_usize()?;
            self.num_classes = r.get_usize()?;
            self.arities = r.get_usize_vec()?;
            self.rows_seen = r.get_u64()?;
            let n = r.get_usize()?;
            if n > 1 << 24 {
                return Err(AlgoError::BadState("absurd node count".into()));
            }
            for _ in 0..n {
                self.nodes.push(if r.get_bool()? {
                    let counts = r.get_f64_vec()?;
                    let candidates = r.get_usize_vec()?;
                    let stats = candidates
                        .iter()
                        .map(|_| r.get_f64_vec())
                        .collect::<Result<Vec<_>>>()?;
                    Node::Leaf {
                        counts,
                        candidates,
                        stats,
                        seen: r.get_u64()?,
                    }
                } else {
                    Node::Split {
                        attr: r.get_usize()?,
                        children: r.get_usize_vec()?,
                    }
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::resubstitution_accuracy;
    use super::*;
    use dm_data::corpus::{breast_cancer, nominal_classification, weather_nominal};

    #[test]
    fn trains_on_weather() {
        let ds = weather_nominal();
        let mut ht = HoeffdingTree::new();
        ht.train(&ds).unwrap();
        let d = ht.distribution(&ds, 0).unwrap();
        assert_eq!(d.len(), 2);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn grows_splits_on_planted_dependency() {
        // Class = (a0 + a1) mod 2, so a0 and a1 have near-identical
        // marginal gains and the split must come from the tie-break
        // rule (ε < τ needs ≈2800 rows at the defaults); children then
        // split fast on the now-decisive remaining attribute.
        let ds = nominal_classification(4000, 4, 3, 2, 0.1, 11);
        let mut ht = HoeffdingTree::new();
        ht.train(&ds).unwrap();
        let (_, splits) = ht.leaf_stats();
        assert!(splits >= 1, "no splits grown: {}", ht.describe());
        let acc = resubstitution_accuracy(&ht, &ds);
        assert!(acc > 0.8, "accuracy {acc}");
    }

    #[test]
    fn chunked_absorb_equals_batch_train() {
        // Strictly sequential absorption ⇒ the model is independent of
        // chunk boundaries — the E18 determinism contract.
        let ds = nominal_classification(500, 4, 3, 2, 0.15, 3);
        let mut whole = HoeffdingTree::new();
        whole.train(&ds).unwrap();
        for chunk_rows in [1usize, 7, 64] {
            let mut streamed = HoeffdingTree::new();
            let mut start = 0;
            while start < ds.num_instances() {
                let end = (start + chunk_rows).min(ds.num_instances());
                let rows: Vec<usize> = (start..end).collect();
                streamed.absorb(&ds.select_rows(&rows)).unwrap();
                start = end;
            }
            assert_eq!(
                streamed.encode_state(),
                whole.encode_state(),
                "chunk_rows {chunk_rows}"
            );
        }
    }

    #[test]
    fn state_roundtrip_preserves_predictions() {
        let ds = breast_cancer();
        let mut ht = HoeffdingTree::new();
        ht.train(&ds).unwrap();
        let mut ht2 = HoeffdingTree::new();
        ht2.decode_state(&ht.encode_state()).unwrap();
        for r in 0..ds.num_instances() {
            assert_eq!(ht.predict(&ds, r).unwrap(), ht2.predict(&ds, r).unwrap());
        }
        // And absorption continues seamlessly after a restore.
        ht2.absorb(&ds).unwrap();
        assert_eq!(ht2.rows_seen(), 2 * ht.rows_seen());
    }

    #[test]
    fn missing_class_rows_skipped() {
        let mut ds = weather_nominal();
        let ci = ds.class_index().unwrap();
        ds.set_value(0, ci, f64::NAN);
        let mut ht = HoeffdingTree::new();
        ht.train(&ds).unwrap();
        assert_eq!(ht.rows_seen(), 13);
    }

    #[test]
    fn untrained_errors() {
        let ds = weather_nominal();
        assert!(HoeffdingTree::new().distribution(&ds, 0).is_err());
    }
}
