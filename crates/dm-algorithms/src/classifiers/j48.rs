//! J48 — the C4.5 decision-tree learner (Quinlan 1993), WEKA's `J48`.
//!
//! This is the algorithm of the paper's case study: "a J48 Web Service
//! that implements a decision tree classifier based on the C4.5
//! algorithm", whose output on the breast-cancer dataset is Figure 4
//! (root split on `node-caps`). The implementation covers:
//!
//! * **Split selection** — information gain ratio, with C4.5's guard
//!   that a split's gain must reach the average gain of all viable
//!   candidate splits before its ratio is compared;
//! * **Nominal attributes** — one branch per label;
//! * **Numeric attributes** — binary `<=`/`>` splits, thresholds midway
//!   between adjacent observed values, with the MDL correction
//!   `log2(distinct − 1)/|D|` subtracted from the gain;
//! * **Missing values** — fractional instances: a training instance
//!   whose split value is missing descends every branch with weight
//!   proportional to the branch's observed weight, and prediction on a
//!   missing value averages child distributions the same way;
//! * **Pruning** — C4.5 pessimistic subtree replacement using the
//!   binomial upper confidence bound (`-C`, default 0.25); subtree
//!   raising is not implemented (documented divergence, rarely changes
//!   the root structure);
//! * **Stopping** — a split must produce at least two branches carrying
//!   `-M` (default 2) instances.

use super::{argmax, check_trainable, entropy, normalize, Classifier};
use crate::error::{AlgoError, Result};
use crate::options::{descriptor_for, Configurable, OptionDescriptor, OptionKind};
use crate::state::{StateReader, StateWriter, Stateful};
use crate::tree::TreeModel;
use dm_data::{Dataset, Value};

/// The split test at an internal node.
#[derive(Debug, Clone, PartialEq)]
enum Split {
    /// Multiway split on a nominal attribute (one child per label).
    Nominal {
        /// Attribute index.
        attr: usize,
    },
    /// Binary split `attr <= threshold` / `attr > threshold`.
    Numeric {
        /// Attribute index.
        attr: usize,
        /// Threshold (midpoint between adjacent training values).
        threshold: f64,
    },
}

/// One node of the learned tree.
#[derive(Debug, Clone, PartialEq)]
struct Node {
    split: Option<Split>,
    children: Vec<Node>,
    /// Fraction of (non-missing) training weight per branch; used to
    /// route instances with missing split values.
    branch_fracs: Vec<f64>,
    /// Training class counts that reached this node.
    counts: Vec<f64>,
}

impl Node {
    fn leaf(counts: Vec<f64>) -> Node {
        Node {
            split: None,
            children: Vec::new(),
            branch_fracs: Vec::new(),
            counts,
        }
    }

    fn is_leaf(&self) -> bool {
        self.split.is_none()
    }

    fn weight(&self) -> f64 {
        self.counts.iter().sum()
    }

    fn training_errors(&self) -> f64 {
        let best = argmax(&self.counts).unwrap_or(0);
        self.weight() - self.counts[best]
    }

    fn num_leaves(&self) -> usize {
        if self.is_leaf() {
            1
        } else {
            self.children.iter().map(Node::num_leaves).sum()
        }
    }

    fn size(&self) -> usize {
        1 + self.children.iter().map(Node::size).sum::<usize>()
    }
}

/// Header metadata captured at training time so the model can be
/// described and serialised independently of the training dataset.
#[derive(Debug, Clone, PartialEq, Default)]
struct Header {
    attr_names: Vec<String>,
    attr_labels: Vec<Vec<String>>,
    class_labels: Vec<String>,
    class_index: usize,
}

/// The J48 / C4.5 classifier.
#[derive(Debug, Clone)]
pub struct J48 {
    /// `-C`: pruning confidence factor.
    confidence: f64,
    /// `-M`: minimum instances per (two) branches.
    min_instances: f64,
    /// `-U`: build an unpruned tree.
    unpruned: bool,
    root: Option<Node>,
    header: Header,
}

impl Default for J48 {
    fn default() -> Self {
        J48 {
            confidence: 0.25,
            min_instances: 2.0,
            unpruned: false,
            root: None,
            header: Header::default(),
        }
    }
}

/// A candidate split with its statistics.
struct Candidate {
    split: Split,
    gain: f64,
    ratio: f64,
}

impl J48 {
    /// Create with WEKA defaults (`-C 0.25 -M 2`).
    pub fn new() -> J48 {
        J48::default()
    }

    /// The split attribute at the root, if the tree has an internal root
    /// (used by the Figure-4 reproduction test).
    pub fn root_attribute(&self) -> Option<&str> {
        match &self.root.as_ref()?.split {
            Some(Split::Nominal { attr }) | Some(Split::Numeric { attr, .. }) => {
                Some(&self.header.attr_names[*attr])
            }
            None => None,
        }
    }

    /// Number of leaves of the trained tree.
    pub fn num_leaves(&self) -> Option<usize> {
        self.root.as_ref().map(Node::num_leaves)
    }

    /// Total node count of the trained tree.
    pub fn tree_size(&self) -> Option<usize> {
        self.root.as_ref().map(Node::size)
    }

    // -- training ------------------------------------------------------

    fn class_counts(data: &Dataset, items: &[(usize, f64)], ci: usize, k: usize) -> Vec<f64> {
        let mut counts = vec![0.0; k];
        // Hoist the class column view out of the item loop: one match
        // on the storage kind per call instead of per cell.
        let ccol = data.column(ci);
        for &(r, w) in items {
            if let Some(c) = ccol.index_at(r) {
                counts[c] += w;
            }
        }
        counts
    }

    /// Evaluate a nominal split. Returns `None` when not viable.
    fn eval_nominal(
        &self,
        data: &Dataset,
        items: &[(usize, f64)],
        a: usize,
        ci: usize,
        k: usize,
    ) -> Option<Candidate> {
        let arity = data.attributes()[a].num_labels();
        if arity < 2 {
            return None;
        }
        let mut branch = vec![vec![0.0f64; k]; arity];
        let mut missing_w = 0.0;
        let mut total_w = 0.0;
        // Contingency counting over hoisted column views: the per-cell
        // work is a code load plus a validity bit probe.
        let acol = data.column(a);
        let ccol = data.column(ci);
        for &(r, w) in items {
            total_w += w;
            match acol.index_at(r) {
                None => missing_w += w,
                Some(vi) => {
                    if let Some(c) = ccol.index_at(r) {
                        branch[vi][c] += w;
                    }
                    // Present attribute but missing class contributes
                    // nothing to the table (the old code added 0.0).
                }
            }
        }
        let branch_weights: Vec<f64> = branch.iter().map(|b| b.iter().sum()).collect();
        let present_w: f64 = branch_weights.iter().sum();
        if present_w <= 0.0 {
            return None;
        }
        // Viability: at least 2 branches with >= min_instances.
        let populated = branch_weights
            .iter()
            .filter(|&&w| w >= self.min_instances)
            .count();
        if populated < 2 {
            return None;
        }
        let mut present_counts = vec![0.0; k];
        for b in &branch {
            for (c, &x) in b.iter().enumerate() {
                present_counts[c] += x;
            }
        }
        let info_present = entropy(&present_counts);
        let mut info_split = 0.0;
        for (b, &bw) in branch.iter().zip(&branch_weights) {
            if bw > 0.0 {
                info_split += bw / present_w * entropy(b);
            }
        }
        let gain = present_w / total_w * (info_present - info_split);
        if gain <= 1e-12 {
            return None;
        }
        // Split info over branch weights plus the missing bucket.
        let mut si_weights = branch_weights.clone();
        if missing_w > 0.0 {
            si_weights.push(missing_w);
        }
        let split_info = entropy(&si_weights);
        if split_info <= 1e-12 {
            return None;
        }
        Some(Candidate {
            split: Split::Nominal { attr: a },
            gain,
            ratio: gain / split_info,
        })
    }

    /// Evaluate the best numeric threshold for attribute `a`.
    fn eval_numeric(
        &self,
        data: &Dataset,
        items: &[(usize, f64)],
        a: usize,
        ci: usize,
        k: usize,
    ) -> Option<Candidate> {
        let mut pairs: Vec<(f64, usize, f64)> = Vec::new();
        let mut missing_w = 0.0;
        let mut total_w = 0.0;
        let acol = data.column(a);
        let ccol = data.column(ci);
        for &(r, w) in items {
            total_w += w;
            if acol.is_missing(r) {
                missing_w += w;
                continue;
            }
            let Some(c) = ccol.index_at(r) else { continue };
            pairs.push((acol.get(r), c, w));
        }
        if pairs.len() < 2 {
            return None;
        }
        pairs.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("no NaN"));
        let present_w: f64 = pairs.iter().map(|p| p.2).sum();
        let mut present_counts = vec![0.0; k];
        for &(_, c, w) in &pairs {
            present_counts[c] += w;
        }
        let info_present = entropy(&present_counts);

        let distinct = {
            let mut d = 1;
            for i in 1..pairs.len() {
                if pairs[i].0 != pairs[i - 1].0 {
                    d += 1;
                }
            }
            d
        };
        if distinct < 2 {
            return None;
        }

        let mut left = vec![0.0f64; k];
        let mut right = present_counts.clone();
        let mut best: Option<(f64, f64, f64, f64)> = None; // (gain_raw, threshold, lw, rw)
        let mut lw = 0.0;
        for i in 0..pairs.len() - 1 {
            let (v, c, w) = pairs[i];
            left[c] += w;
            right[c] -= w;
            lw += w;
            if pairs[i + 1].0 == v {
                continue;
            }
            let rw = present_w - lw;
            if lw < self.min_instances || rw < self.min_instances {
                continue;
            }
            let info_split = (lw * entropy(&left) + rw * entropy(&right)) / present_w;
            let gain_raw = info_present - info_split;
            if best.is_none_or(|(g, ..)| gain_raw > g) {
                best = Some((gain_raw, (v + pairs[i + 1].0) / 2.0, lw, rw));
            }
        }
        let (gain_raw, threshold, lw, rw) = best?;
        // C4.5 MDL correction for choosing among `distinct - 1` cuts.
        let corrected = gain_raw - ((distinct - 1) as f64).log2() / present_w;
        let gain = present_w / total_w * corrected;
        if gain <= 1e-12 {
            return None;
        }
        let mut si_weights = vec![lw, rw];
        if missing_w > 0.0 {
            si_weights.push(missing_w);
        }
        let split_info = entropy(&si_weights);
        if split_info <= 1e-12 {
            return None;
        }
        Some(Candidate {
            split: Split::Numeric { attr: a, threshold },
            gain,
            ratio: gain / split_info,
        })
    }

    fn build(
        &self,
        data: &Dataset,
        items: &[(usize, f64)],
        ci: usize,
        k: usize,
        depth: usize,
    ) -> Node {
        let counts = Self::class_counts(data, items, ci, k);
        let total: f64 = counts.iter().sum();
        let max = counts.iter().cloned().fold(0.0, f64::max);

        // Stop: pure, too small, or too deep (defensive cap).
        if total <= 0.0 || (total - max) < 1e-9 || total < 2.0 * self.min_instances || depth > 64 {
            return Node::leaf(counts);
        }

        // Gather viable candidates.
        let mut candidates: Vec<Candidate> = Vec::new();
        for a in 0..data.num_attributes() {
            if a == ci {
                continue;
            }
            let cand = if data.attributes()[a].is_nominal() {
                self.eval_nominal(data, items, a, ci, k)
            } else if data.attributes()[a].is_numeric() {
                self.eval_numeric(data, items, a, ci, k)
            } else {
                None
            };
            if let Some(c) = cand {
                candidates.push(c);
            }
        }
        if candidates.is_empty() {
            return Node::leaf(counts);
        }
        let avg_gain: f64 =
            candidates.iter().map(|c| c.gain).sum::<f64>() / candidates.len() as f64;
        let chosen = candidates
            .iter()
            .filter(|c| c.gain >= avg_gain - 1e-12)
            .max_by(|x, y| x.ratio.partial_cmp(&y.ratio).expect("finite ratios"));
        let chosen = match chosen {
            Some(c) => c,
            None => return Node::leaf(counts),
        };

        // Partition items into branches with fractional missing weights.
        let (attr, num_branches, branch_of): (usize, usize, Box<dyn Fn(f64) -> usize>) =
            match &chosen.split {
                Split::Nominal { attr } => {
                    let arity = data.attributes()[*attr].num_labels();
                    (*attr, arity, Box::new(Value::as_index))
                }
                Split::Numeric { attr, threshold } => {
                    let t = *threshold;
                    (*attr, 2, Box::new(move |v| usize::from(v > t)))
                }
            };

        let mut branch_items: Vec<Vec<(usize, f64)>> = vec![Vec::new(); num_branches];
        let mut branch_weights = vec![0.0f64; num_branches];
        let mut missing_items: Vec<(usize, f64)> = Vec::new();
        for &(r, w) in items {
            let v = data.value(r, attr);
            if Value::is_missing(v) {
                missing_items.push((r, w));
            } else {
                let b = branch_of(v);
                branch_items[b].push((r, w));
                branch_weights[b] += w;
            }
        }
        let present_w: f64 = branch_weights.iter().sum();
        let branch_fracs: Vec<f64> = if present_w > 0.0 {
            branch_weights.iter().map(|&w| w / present_w).collect()
        } else {
            vec![1.0 / num_branches as f64; num_branches]
        };
        // Fractional distribution of missing-valued instances.
        for &(r, w) in &missing_items {
            for (b, items_b) in branch_items.iter_mut().enumerate() {
                let frac = branch_fracs[b];
                if frac > 0.0 {
                    items_b.push((r, w * frac));
                }
            }
        }

        let children: Vec<Node> = branch_items
            .iter()
            .map(|bi| {
                if bi.is_empty() {
                    // Empty branch: leaf predicting the parent majority.
                    Node::leaf(counts.clone())
                } else {
                    self.build(data, bi, ci, k, depth + 1)
                }
            })
            .collect();

        Node {
            split: Some(chosen.split.clone()),
            children,
            branch_fracs,
            counts,
        }
    }

    // -- pruning -------------------------------------------------------

    fn prune(node: &mut Node, cf: f64) {
        if node.is_leaf() {
            return;
        }
        for c in &mut node.children {
            Self::prune(c, cf);
        }
        let leaf_estimate = pessimistic_errors(node.weight(), node.training_errors(), cf);
        let subtree_estimate: f64 = node
            .children
            .iter()
            .map(|c| Self::subtree_error_estimate(c, cf))
            .sum();
        if leaf_estimate <= subtree_estimate + 0.1 {
            node.split = None;
            node.children.clear();
            node.branch_fracs.clear();
        }
    }

    fn subtree_error_estimate(node: &Node, cf: f64) -> f64 {
        if node.is_leaf() {
            pessimistic_errors(node.weight(), node.training_errors(), cf)
        } else {
            node.children
                .iter()
                .map(|c| Self::subtree_error_estimate(c, cf))
                .sum()
        }
    }

    // -- prediction ----------------------------------------------------

    fn node_distribution(&self, node: &Node, data: &Dataset, row: usize, out: &mut [f64], w: f64) {
        match &node.split {
            None => {
                let total = node.weight();
                if total > 0.0 {
                    for (c, &x) in node.counts.iter().enumerate() {
                        out[c] += w * x / total;
                    }
                } else {
                    let u = w / out.len() as f64;
                    for o in out.iter_mut() {
                        *o += u;
                    }
                }
            }
            Some(split) => {
                let (attr, branch) = match split {
                    Split::Nominal { attr } => {
                        let v = data.value(row, *attr);
                        if Value::is_missing(v) {
                            (*attr, None)
                        } else {
                            (*attr, Some(Value::as_index(v)))
                        }
                    }
                    Split::Numeric { attr, threshold } => {
                        let v = data.value(row, *attr);
                        if Value::is_missing(v) {
                            (*attr, None)
                        } else {
                            (*attr, Some(usize::from(v > *threshold)))
                        }
                    }
                };
                let _ = attr;
                match branch {
                    Some(b) if b < node.children.len() => {
                        self.node_distribution(&node.children[b], data, row, out, w)
                    }
                    _ => {
                        // Missing (or out-of-domain): fractional descent.
                        for (b, child) in node.children.iter().enumerate() {
                            let frac = node.branch_fracs[b];
                            if frac > 0.0 {
                                self.node_distribution(child, data, row, out, w * frac);
                            }
                        }
                    }
                }
            }
        }
    }

    // -- rendering -----------------------------------------------------

    fn edge_text(&self, node: &Node, b: usize) -> String {
        match node.split.as_ref().expect("internal node") {
            Split::Nominal { attr } => format!("= {}", self.header.attr_labels[*attr][b]),
            Split::Numeric { attr: _, threshold } => {
                if b == 0 {
                    format!("<= {threshold}")
                } else {
                    format!("> {threshold}")
                }
            }
        }
    }

    fn leaf_text(&self, node: &Node) -> String {
        let best = argmax(&node.counts).unwrap_or(0);
        let total = node.weight();
        let errors = total - node.counts[best];
        let label = self
            .header
            .class_labels
            .get(best)
            .cloned()
            .unwrap_or_else(|| format!("#{best}"));
        if errors > 0.005 {
            format!("{label} ({total:.1}/{errors:.1})")
        } else {
            format!("{label} ({total:.1})")
        }
    }

    fn split_attr_name(&self, node: &Node) -> &str {
        match node.split.as_ref().expect("internal node") {
            Split::Nominal { attr } | Split::Numeric { attr, .. } => &self.header.attr_names[*attr],
        }
    }

    fn build_tree_model(&self, node: &Node, edge: String, model: &mut TreeModel) -> usize {
        if node.is_leaf() {
            model.add_node(self.leaf_text(node), edge, true)
        } else {
            let id = model.add_node(self.split_attr_name(node).to_string(), edge, false);
            for (b, child) in node.children.iter().enumerate() {
                let cid = self.build_tree_model(child, self.edge_text(node, b), model);
                model.add_child(id, cid);
            }
            id
        }
    }

    fn encode_node(node: &Node, w: &mut StateWriter) {
        match &node.split {
            None => w.put_u64(0),
            Some(Split::Nominal { attr }) => {
                w.put_u64(1);
                w.put_usize(*attr);
            }
            Some(Split::Numeric { attr, threshold }) => {
                w.put_u64(2);
                w.put_usize(*attr);
                w.put_f64(*threshold);
            }
        }
        w.put_f64_slice(&node.counts);
        w.put_f64_slice(&node.branch_fracs);
        w.put_usize(node.children.len());
        for c in &node.children {
            Self::encode_node(c, w);
        }
    }

    fn decode_node(r: &mut StateReader<'_>, depth: usize) -> Result<Node> {
        if depth > 512 {
            return Err(AlgoError::BadState("tree nesting too deep".into()));
        }
        let split = match r.get_u64()? {
            0 => None,
            1 => Some(Split::Nominal {
                attr: r.get_usize()?,
            }),
            2 => Some(Split::Numeric {
                attr: r.get_usize()?,
                threshold: r.get_f64()?,
            }),
            tag => return Err(AlgoError::BadState(format!("bad split tag {tag}"))),
        };
        let counts = r.get_f64_vec()?;
        let branch_fracs = r.get_f64_vec()?;
        let n = r.get_usize()?;
        if n > 1 << 20 {
            return Err(AlgoError::BadState(format!("absurd child count {n}")));
        }
        let children = (0..n)
            .map(|_| Self::decode_node(r, depth + 1))
            .collect::<Result<_>>()?;
        Ok(Node {
            split,
            children,
            branch_fracs,
            counts,
        })
    }
}

/// WEKA's `Stats.addErrs`: the number of *additional* errors predicted
/// by the upper confidence bound of a binomial with `e` observed errors
/// in `n` trials at confidence factor `cf`. Returns the total
/// pessimistic error count `e + added`.
fn pessimistic_errors(n: f64, e: f64, cf: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    e + added_errors(n, e, cf)
}

fn added_errors(n: f64, e: f64, cf: f64) -> f64 {
    if cf > 0.5 {
        return 0.0;
    }
    if e < 1.0 {
        let base = n * (1.0 - cf.powf(1.0 / n));
        if e < 1e-12 {
            return base;
        }
        return base + e * (added_errors(n, 1.0, cf) - base);
    }
    if e + 0.5 >= n {
        return (n - e).max(0.0);
    }
    let z = normal_inverse(1.0 - cf);
    let f = (e + 0.5) / n;
    let r = (f + z * z / (2.0 * n) + z * (f / n - f * f / n + z * z / (4.0 * n * n)).sqrt())
        / (1.0 + z * z / n);
    r * n - e
}

/// Acklam's rational approximation to the standard normal quantile.
fn normal_inverse(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_inverse(1.0 - p)
    }
}

impl Classifier for J48 {
    fn name(&self) -> &'static str {
        "J48"
    }

    fn train(&mut self, data: &Dataset) -> Result<()> {
        let (ci, k) = check_trainable(data)?;
        self.header = Header {
            attr_names: data
                .attributes()
                .iter()
                .map(|a| a.name().to_string())
                .collect(),
            attr_labels: data
                .attributes()
                .iter()
                .map(|a| a.labels().to_vec())
                .collect(),
            class_labels: data.class_attribute()?.labels().to_vec(),
            class_index: ci,
        };
        let items: Vec<(usize, f64)> = (0..data.num_instances())
            .map(|r| (r, data.weight(r)))
            .collect();
        let mut root = self.build(data, &items, ci, k, 0);
        if !self.unpruned {
            Self::prune(&mut root, self.confidence);
        }
        self.root = Some(root);
        Ok(())
    }

    fn distribution(&self, data: &Dataset, row: usize) -> Result<Vec<f64>> {
        let root = self.root.as_ref().ok_or(AlgoError::NotTrained)?;
        let mut out = vec![0.0; self.header.class_labels.len()];
        self.node_distribution(root, data, row, &mut out, 1.0);
        normalize(&mut out);
        Ok(out)
    }

    fn describe(&self) -> String {
        let root = match &self.root {
            None => return "J48: not trained".to_string(),
            Some(r) => r,
        };
        let mut out = String::from("J48 ");
        out.push_str(if self.unpruned {
            "unpruned tree\n"
        } else {
            "pruned tree\n"
        });
        out.push_str("------------------\n\n");
        out.push_str(&self.tree_model().expect("trained").to_text());
        out.push_str(&format!(
            "\nNumber of Leaves  : \t{}\n\nSize of the tree : \t{}\n",
            root.num_leaves(),
            root.size()
        ));
        out
    }

    fn tree_model(&self) -> Option<TreeModel> {
        let root = self.root.as_ref()?;
        let mut model = TreeModel::new();
        self.build_tree_model(root, String::new(), &mut model);
        Some(model)
    }
}

impl Configurable for J48 {
    fn option_descriptors(&self) -> Vec<OptionDescriptor> {
        vec![
            OptionDescriptor {
                flag: "-C",
                name: "confidenceFactor",
                description: "confidence factor used for pessimistic pruning",
                default: "0.25".into(),
                kind: OptionKind::Real {
                    min: 1e-6,
                    max: 0.5,
                },
            },
            OptionDescriptor {
                flag: "-M",
                name: "minNumObj",
                description: "minimum number of instances per leaf",
                default: "2".into(),
                kind: OptionKind::Integer {
                    min: 1,
                    max: 1_000_000,
                },
            },
            OptionDescriptor {
                flag: "-U",
                name: "unpruned",
                description: "use an unpruned tree",
                default: "false".into(),
                kind: OptionKind::Flag,
            },
        ]
    }

    fn set_option(&mut self, flag: &str, value: &str) -> Result<()> {
        let ds = self.option_descriptors();
        descriptor_for(&ds, flag)?.validate(value)?;
        match flag {
            "-C" => self.confidence = value.parse().expect("validated"),
            "-M" => self.min_instances = value.parse::<i64>().expect("validated") as f64,
            "-U" => self.unpruned = value == "true",
            _ => unreachable!("descriptor_for rejects unknown flags"),
        }
        Ok(())
    }

    fn get_option(&self, flag: &str) -> Result<String> {
        match flag {
            "-C" => Ok(self.confidence.to_string()),
            "-M" => Ok((self.min_instances as i64).to_string()),
            "-U" => Ok(self.unpruned.to_string()),
            _ => Err(AlgoError::BadOption {
                flag: flag.into(),
                message: "unknown option".into(),
            }),
        }
    }
}

impl Stateful for J48 {
    fn encode_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.put_f64(self.confidence);
        w.put_f64(self.min_instances);
        w.put_bool(self.unpruned);
        w.put_bool(self.root.is_some());
        if let Some(root) = &self.root {
            w.put_usize(self.header.attr_names.len());
            for (name, labels) in self.header.attr_names.iter().zip(&self.header.attr_labels) {
                w.put_str(name);
                w.put_usize(labels.len());
                for l in labels {
                    w.put_str(l);
                }
            }
            w.put_usize(self.header.class_labels.len());
            for l in &self.header.class_labels {
                w.put_str(l);
            }
            w.put_usize(self.header.class_index);
            Self::encode_node(root, &mut w);
        }
        w.into_bytes()
    }

    fn decode_state(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = StateReader::new(bytes);
        self.confidence = r.get_f64()?;
        self.min_instances = r.get_f64()?;
        self.unpruned = r.get_bool()?;
        if r.get_bool()? {
            let n = r.get_usize()?;
            if n > 1 << 20 {
                return Err(AlgoError::BadState(format!("absurd attribute count {n}")));
            }
            let mut names = Vec::with_capacity(n);
            let mut labels = Vec::with_capacity(n);
            for _ in 0..n {
                names.push(r.get_str()?);
                let ln = r.get_usize()?;
                if ln > 1 << 20 {
                    return Err(AlgoError::BadState(format!("absurd label count {ln}")));
                }
                labels.push((0..ln).map(|_| r.get_str()).collect::<Result<Vec<_>>>()?);
            }
            let cn = r.get_usize()?;
            if cn > 1 << 20 {
                return Err(AlgoError::BadState(format!("absurd class count {cn}")));
            }
            let class_labels = (0..cn).map(|_| r.get_str()).collect::<Result<Vec<_>>>()?;
            let class_index = r.get_usize()?;
            self.header = Header {
                attr_names: names,
                attr_labels: labels,
                class_labels,
                class_index,
            };
            self.root = Some(Self::decode_node(&mut r, 0)?);
        } else {
            self.root = None;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{resubstitution_accuracy, weather_nominal, weather_numeric};
    use super::*;

    #[test]
    fn weather_root_is_outlook() {
        // The canonical C4.5 result on play-tennis.
        let ds = weather_nominal();
        let mut j = J48::new();
        j.train(&ds).unwrap();
        assert_eq!(j.root_attribute(), Some("outlook"));
        assert_eq!(resubstitution_accuracy(&j, &ds), 1.0);
        // Known structure: 5 leaves, size 8.
        assert_eq!(j.num_leaves(), Some(5));
        assert_eq!(j.tree_size(), Some(8));
    }

    #[test]
    fn weather_text_matches_weka_shape() {
        let ds = weather_nominal();
        let mut j = J48::new();
        j.train(&ds).unwrap();
        let text = j.describe();
        assert!(
            text.contains("outlook = overcast: yes (4.0)"),
            "got:\n{text}"
        );
        assert!(
            text.contains("|   humidity = high: no (3.0)"),
            "got:\n{text}"
        );
        assert!(text.contains("Number of Leaves  : \t5"), "got:\n{text}");
    }

    #[test]
    fn numeric_weather_trains() {
        let ds = weather_numeric();
        let mut j = J48::new();
        j.train(&ds).unwrap();
        assert_eq!(j.root_attribute(), Some("outlook"));
        assert!(resubstitution_accuracy(&j, &ds) >= 12.0 / 14.0);
    }

    #[test]
    fn breast_cancer_root_is_node_caps() {
        // Figure 4 of the paper: "the attribute node-caps has been
        // chosen to lie at the root of the tree".
        let ds = dm_data::corpus::breast_cancer();
        let mut j = J48::new();
        j.train(&ds).unwrap();
        assert_eq!(j.root_attribute(), Some("node-caps"));
    }

    #[test]
    fn breast_cancer_beats_prior() {
        let ds = dm_data::corpus::breast_cancer();
        let mut j = J48::new();
        j.train(&ds).unwrap();
        let acc = resubstitution_accuracy(&j, &ds);
        assert!(acc > 201.0 / 286.0, "accuracy {acc} not above prior");
    }

    #[test]
    fn missing_values_fractional_prediction() {
        let ds = dm_data::corpus::breast_cancer();
        let mut j = J48::new();
        j.train(&ds).unwrap();
        // Find a row with missing node-caps: prediction must still be a
        // proper distribution.
        let nc = ds.attribute_index("node-caps").unwrap();
        let row = (0..ds.num_instances())
            .find(|&r| ds.instance(r).is_missing(nc))
            .expect("corpus has missing node-caps");
        let d = j.distribution(&ds, row).unwrap();
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(d.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn unpruned_tree_is_at_least_as_large() {
        let ds = dm_data::corpus::breast_cancer();
        let mut pruned = J48::new();
        pruned.train(&ds).unwrap();
        let mut unpruned = J48::new();
        unpruned.set_option("-U", "true").unwrap();
        unpruned.train(&ds).unwrap();
        assert!(unpruned.tree_size().unwrap() >= pruned.tree_size().unwrap());
    }

    #[test]
    fn higher_min_instances_shrinks_tree() {
        let ds = dm_data::corpus::breast_cancer();
        let mut small = J48::new();
        small.train(&ds).unwrap();
        let mut coarse = J48::new();
        coarse.set_option("-M", "30").unwrap();
        coarse.train(&ds).unwrap();
        assert!(coarse.tree_size().unwrap() <= small.tree_size().unwrap());
    }

    #[test]
    fn state_roundtrip_preserves_tree() {
        let ds = dm_data::corpus::breast_cancer();
        let mut j = J48::new();
        j.train(&ds).unwrap();
        let mut j2 = J48::new();
        j2.decode_state(&j.encode_state()).unwrap();
        assert_eq!(j.describe(), j2.describe());
        for r in 0..ds.num_instances() {
            assert_eq!(j.predict(&ds, r).unwrap(), j2.predict(&ds, r).unwrap());
        }
    }

    #[test]
    fn pessimistic_error_bounds() {
        // Zero observed errors still predict some: n(1 - cf^(1/n)).
        let e0 = pessimistic_errors(10.0, 0.0, 0.25);
        assert!((e0 - 10.0 * (1.0 - 0.25f64.powf(0.1))).abs() < 1e-9);
        // More observed errors → more pessimistic errors.
        assert!(pessimistic_errors(20.0, 5.0, 0.25) > pessimistic_errors(20.0, 2.0, 0.25));
        // Lower confidence factor → larger bound.
        assert!(added_errors(20.0, 5.0, 0.1) > added_errors(20.0, 5.0, 0.4));
    }

    #[test]
    fn normal_inverse_sane() {
        assert!((normal_inverse(0.5)).abs() < 1e-9);
        assert!((normal_inverse(0.75) - 0.6744897).abs() < 1e-4);
        assert!((normal_inverse(0.975) - 1.959964).abs() < 1e-4);
        assert!((normal_inverse(0.025) + 1.959964).abs() < 1e-4);
    }

    #[test]
    fn tree_model_and_dot() {
        let ds = weather_nominal();
        let mut j = J48::new();
        j.train(&ds).unwrap();
        let t = j.tree_model().unwrap();
        assert_eq!(t.num_leaves(), 5);
        let dot = t.to_dot("J48");
        assert!(dot.contains("outlook"));
    }

    #[test]
    fn untrained_errors() {
        let ds = weather_nominal();
        let j = J48::new();
        assert!(j.distribution(&ds, 0).is_err());
        assert!(j.tree_model().is_none());
        assert_eq!(j.root_attribute(), None);
    }

    #[test]
    fn options_validated() {
        let mut j = J48::new();
        assert!(j.set_option("-C", "0.9").is_err()); // > 0.5
        assert!(j.set_option("-M", "0").is_err());
        j.set_option("-C", "0.1").unwrap();
        assert_eq!(j.get_option("-C").unwrap(), "0.1");
    }
}
