//! DecisionStump: a one-level decision tree. Picks the single split
//! (nominal value-vs-rest or numeric threshold) with the lowest weighted
//! Gini impurity — the standard weak learner for AdaBoost.

use super::{check_trainable, normalize, Classifier};
use crate::error::{AlgoError, Result};
use crate::options::{Configurable, OptionDescriptor};
use crate::state::{StateReader, StateWriter, Stateful};
use crate::tree::TreeModel;
use dm_data::{Dataset, Value};

/// The split test of a trained stump.
#[derive(Debug, Clone, PartialEq)]
enum Test {
    /// `attr == value` (nominal one-vs-rest).
    NominalEq {
        /// Attribute index.
        attr: usize,
        /// Matched label index.
        value: usize,
    },
    /// `attr <= threshold` (numeric).
    NumericLe {
        /// Attribute index.
        attr: usize,
        /// Split threshold.
        threshold: f64,
    },
}

/// A single-split decision tree.
#[derive(Debug, Clone, Default)]
pub struct DecisionStump {
    test: Option<Test>,
    /// Class distributions for the two branches and for missing values.
    left: Vec<f64>,
    right: Vec<f64>,
    missing: Vec<f64>,
    attr_name: String,
}

fn gini(counts: &[f64]) -> f64 {
    let total: f64 = counts.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    1.0 - counts
        .iter()
        .map(|&c| (c / total) * (c / total))
        .sum::<f64>()
}

impl DecisionStump {
    /// Create an untrained stump.
    pub fn new() -> DecisionStump {
        DecisionStump::default()
    }

    fn split_score(left: &[f64], right: &[f64]) -> f64 {
        let lw: f64 = left.iter().sum();
        let rw: f64 = right.iter().sum();
        let total = lw + rw;
        if total == 0.0 {
            return f64::INFINITY;
        }
        (lw * gini(left) + rw * gini(right)) / total
    }
}

impl Classifier for DecisionStump {
    fn name(&self) -> &'static str {
        "DecisionStump"
    }

    fn train(&mut self, data: &Dataset) -> Result<()> {
        let (ci, k) = check_trainable(data)?;
        let mut best: Option<(f64, Test, Vec<f64>, Vec<f64>)> = None;

        for a in 0..data.num_attributes() {
            if a == ci {
                continue;
            }
            let attr = &data.attributes()[a];
            if attr.is_nominal() {
                for v in 0..attr.num_labels() {
                    let mut left = vec![0.0; k];
                    let mut right = vec![0.0; k];
                    for r in 0..data.num_instances() {
                        let av = data.value(r, a);
                        let cv = data.value(r, ci);
                        if Value::is_missing(av) || Value::is_missing(cv) {
                            continue;
                        }
                        let c = Value::as_index(cv);
                        if Value::as_index(av) == v {
                            left[c] += data.weight(r);
                        } else {
                            right[c] += data.weight(r);
                        }
                    }
                    let score = Self::split_score(&left, &right);
                    if best.as_ref().is_none_or(|(s, ..)| score < *s) {
                        best = Some((score, Test::NominalEq { attr: a, value: v }, left, right));
                    }
                }
            } else if attr.is_numeric() {
                let mut pairs: Vec<(f64, usize, f64)> = Vec::new();
                for r in 0..data.num_instances() {
                    let av = data.value(r, a);
                    let cv = data.value(r, ci);
                    if !Value::is_missing(av) && !Value::is_missing(cv) {
                        pairs.push((av, Value::as_index(cv), data.weight(r)));
                    }
                }
                pairs.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("no NaN"));
                let mut left = vec![0.0; k];
                let mut right = vec![0.0; k];
                for &(_, c, w) in &pairs {
                    right[c] += w;
                }
                for i in 0..pairs.len().saturating_sub(1) {
                    let (v, c, w) = pairs[i];
                    left[c] += w;
                    right[c] -= w;
                    if pairs[i + 1].0 == v {
                        continue;
                    }
                    let score = Self::split_score(&left, &right);
                    if best.as_ref().is_none_or(|(s, ..)| score < *s) {
                        let threshold = (v + pairs[i + 1].0) / 2.0;
                        best = Some((
                            score,
                            Test::NumericLe { attr: a, threshold },
                            left.clone(),
                            right.clone(),
                        ));
                    }
                }
            }
        }

        let (_, test, mut left, mut right) = best
            .ok_or_else(|| AlgoError::Unsupported("DecisionStump found no usable split".into()))?;
        let attr_index = match &test {
            Test::NominalEq { attr, .. } | Test::NumericLe { attr, .. } => *attr,
        };
        self.attr_name = data.attributes()[attr_index].name().to_string();
        let mut missing = data.class_counts()?;
        normalize(&mut left);
        normalize(&mut right);
        normalize(&mut missing);
        self.test = Some(test);
        self.left = left;
        self.right = right;
        self.missing = missing;
        Ok(())
    }

    fn distribution(&self, data: &Dataset, row: usize) -> Result<Vec<f64>> {
        let test = self.test.as_ref().ok_or(AlgoError::NotTrained)?;
        let (attr, goes_left) = match test {
            Test::NominalEq { attr, value } => {
                let v = data.value(row, *attr);
                if Value::is_missing(v) {
                    return Ok(self.missing.clone());
                }
                (*attr, Value::as_index(v) == *value)
            }
            Test::NumericLe { attr, threshold } => {
                let v = data.value(row, *attr);
                if Value::is_missing(v) {
                    return Ok(self.missing.clone());
                }
                (*attr, v <= *threshold)
            }
        };
        let _ = attr;
        Ok(if goes_left {
            self.left.clone()
        } else {
            self.right.clone()
        })
    }

    fn describe(&self) -> String {
        match &self.test {
            None => "DecisionStump: not trained".to_string(),
            Some(Test::NominalEq { value, .. }) => format!(
                "Decision Stump: {} = #{value} ? {:?} : {:?}",
                self.attr_name, self.left, self.right
            ),
            Some(Test::NumericLe { threshold, .. }) => format!(
                "Decision Stump: {} <= {threshold} ? {:?} : {:?}",
                self.attr_name, self.left, self.right
            ),
        }
    }

    fn tree_model(&self) -> Option<TreeModel> {
        let test = self.test.as_ref()?;
        let mut t = TreeModel::new();
        let root = t.add_node(self.attr_name.clone(), "", false);
        let (le, re) = match test {
            Test::NominalEq { value, .. } => (format!("= #{value}"), "!=".to_string()),
            Test::NumericLe { threshold, .. } => {
                (format!("<= {threshold}"), format!("> {threshold}"))
            }
        };
        let l = t.add_node(format!("{:?}", self.left), le, true);
        let r = t.add_node(format!("{:?}", self.right), re, true);
        t.add_child(root, l);
        t.add_child(root, r);
        Some(t)
    }
}

impl Configurable for DecisionStump {
    fn option_descriptors(&self) -> Vec<OptionDescriptor> {
        Vec::new()
    }

    fn set_option(&mut self, flag: &str, _value: &str) -> Result<()> {
        Err(AlgoError::BadOption {
            flag: flag.into(),
            message: "DecisionStump has no options".into(),
        })
    }

    fn get_option(&self, flag: &str) -> Result<String> {
        Err(AlgoError::BadOption {
            flag: flag.into(),
            message: "DecisionStump has no options".into(),
        })
    }
}

impl Stateful for DecisionStump {
    fn encode_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        match &self.test {
            None => w.put_u64(0),
            Some(Test::NominalEq { attr, value }) => {
                w.put_u64(1);
                w.put_usize(*attr);
                w.put_usize(*value);
            }
            Some(Test::NumericLe { attr, threshold }) => {
                w.put_u64(2);
                w.put_usize(*attr);
                w.put_f64(*threshold);
            }
        }
        if self.test.is_some() {
            w.put_f64_slice(&self.left);
            w.put_f64_slice(&self.right);
            w.put_f64_slice(&self.missing);
            w.put_str(&self.attr_name);
        }
        w.into_bytes()
    }

    fn decode_state(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = StateReader::new(bytes);
        self.test = match r.get_u64()? {
            0 => None,
            1 => Some(Test::NominalEq {
                attr: r.get_usize()?,
                value: r.get_usize()?,
            }),
            2 => Some(Test::NumericLe {
                attr: r.get_usize()?,
                threshold: r.get_f64()?,
            }),
            tag => return Err(AlgoError::BadState(format!("bad test tag {tag}"))),
        };
        if self.test.is_some() {
            self.left = r.get_f64_vec()?;
            self.right = r.get_f64_vec()?;
            self.missing = r.get_f64_vec()?;
            self.attr_name = r.get_str()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{resubstitution_accuracy, separable_numeric, weather_nominal};
    use super::*;

    #[test]
    fn splits_on_outlook_overcast() {
        // outlook=overcast is the purest one-vs-rest nominal split.
        let ds = weather_nominal();
        let mut s = DecisionStump::new();
        s.train(&ds).unwrap();
        assert_eq!(s.attr_name, "outlook");
        assert!(resubstitution_accuracy(&s, &ds) >= 9.0 / 14.0);
    }

    #[test]
    fn numeric_split_perfect_on_separable() {
        let ds = separable_numeric(20);
        let mut s = DecisionStump::new();
        s.train(&ds).unwrap();
        assert_eq!(resubstitution_accuracy(&s, &ds), 1.0);
        assert!(matches!(s.test, Some(Test::NumericLe { .. })));
    }

    #[test]
    fn missing_value_uses_prior() {
        let mut ds = weather_nominal();
        let mut s = DecisionStump::new();
        s.train(&ds).unwrap();
        ds.set_value(0, 0, f64::NAN);
        let d = s.distribution(&ds, 0).unwrap();
        assert!((d[0] - 9.0 / 14.0).abs() < 1e-9);
    }

    #[test]
    fn tree_model_has_three_nodes() {
        let ds = weather_nominal();
        let mut s = DecisionStump::new();
        s.train(&ds).unwrap();
        let t = s.tree_model().unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.num_leaves(), 2);
    }

    #[test]
    fn state_roundtrip() {
        let ds = separable_numeric(10);
        let mut s = DecisionStump::new();
        s.train(&ds).unwrap();
        let mut s2 = DecisionStump::new();
        s2.decode_state(&s.encode_state()).unwrap();
        for r in 0..ds.num_instances() {
            assert_eq!(s.predict(&ds, r).unwrap(), s2.predict(&ds, r).unwrap());
        }
    }

    #[test]
    fn untrained_errors() {
        let ds = weather_nominal();
        assert!(DecisionStump::new().distribution(&ds, 0).is_err());
        assert!(DecisionStump::new().tree_model().is_none());
    }
}
