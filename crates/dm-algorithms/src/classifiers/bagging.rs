//! Bagging (Breiman 1996): train the base learner on bootstrap
//! resamples and average the member distributions.

use super::{normalize, Classifier};
use crate::error::{AlgoError, Result};
use crate::options::{descriptor_for, Configurable, OptionDescriptor, OptionKind};
use crate::pool;
use crate::state::{StateReader, StateWriter, Stateful};
use dm_data::Dataset;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Bootstrap-aggregating meta classifier. The base learner is chosen by
/// registry name (`-W`, default `"J48"`), so any registered classifier
/// can be bagged — mirroring WEKA's `weka.classifiers.meta.Bagging`.
pub struct Bagging {
    /// `-I`: ensemble size.
    iterations: usize,
    /// `-S`: RNG seed.
    seed: u64,
    /// `-W`: base classifier registry name.
    base_name: String,
    members: Vec<Box<dyn Classifier>>,
    num_classes: usize,
}

impl Default for Bagging {
    fn default() -> Self {
        Bagging {
            iterations: 10,
            seed: 1,
            base_name: "J48".to_string(),
            members: Vec::new(),
            num_classes: 0,
        }
    }
}

impl std::fmt::Debug for Bagging {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bagging")
            .field("iterations", &self.iterations)
            .field("seed", &self.seed)
            .field("base_name", &self.base_name)
            .field("members", &self.members.len())
            .finish()
    }
}

impl Bagging {
    /// Create with defaults (10 × J48).
    pub fn new() -> Bagging {
        Bagging::default()
    }

    /// Create over an explicit base algorithm.
    pub fn with_base(base_name: &str) -> Bagging {
        Bagging {
            base_name: base_name.to_string(),
            ..Bagging::default()
        }
    }

    /// Ensemble size after training.
    pub fn num_members(&self) -> usize {
        self.members.len()
    }

    fn bootstrap(data: &Dataset, rng: &mut StdRng) -> Dataset {
        let n = data.num_instances();
        let rows: Vec<usize> = (0..n).map(|_| rng.random_range(0..n)).collect();
        data.select_rows(&rows)
    }
}

impl Classifier for Bagging {
    fn name(&self) -> &'static str {
        "Bagging"
    }

    fn train(&mut self, data: &Dataset) -> Result<()> {
        let (_, k) = super::check_trainable(data)?;
        self.num_classes = k;
        self.members.clear();
        // Draw all bootstrap resamples from the shared RNG first (stream
        // identical to the old serial loop), then train members on the
        // pool — each member's own seed is derived from its index, so
        // training order is immaterial.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let samples: Vec<Dataset> = (0..self.iterations)
            .map(|_| Self::bootstrap(data, &mut rng))
            .collect();
        let trained: Vec<Result<Box<dyn Classifier>>> = pool::parallel_map(self.iterations, |i| {
            let mut member = crate::registry::make_classifier(&self.base_name)?;
            // Give seeded members distinct streams where supported.
            let _ = member.set_option("-S", &(self.seed + i as u64 + 1).to_string());
            member.train(&samples[i])?;
            Ok(member)
        });
        for m in trained {
            self.members.push(m?);
        }
        Ok(())
    }

    fn distribution(&self, data: &Dataset, row: usize) -> Result<Vec<f64>> {
        if self.members.is_empty() {
            return Err(AlgoError::NotTrained);
        }
        // Parallel member votes, serial member-order fold: identical
        // floating-point accumulation to the old loop.
        let votes: Vec<Result<Vec<f64>>> =
            pool::parallel_map_min(self.members.len(), super::MIN_PARALLEL_MEMBERS, |i| {
                self.members[i].distribution(data, row)
            });
        let mut dist = vec![0.0; self.num_classes];
        for d in votes {
            for (acc, x) in dist.iter_mut().zip(&d?) {
                *acc += x;
            }
        }
        normalize(&mut dist);
        Ok(dist)
    }

    fn describe(&self) -> String {
        if self.members.is_empty() {
            return "Bagging: not trained".to_string();
        }
        format!("Bagging of {} x {}", self.members.len(), self.base_name)
    }
}

impl Configurable for Bagging {
    fn option_descriptors(&self) -> Vec<OptionDescriptor> {
        vec![
            OptionDescriptor {
                flag: "-I",
                name: "numIterations",
                description: "number of bagged members",
                default: "10".into(),
                kind: OptionKind::Integer {
                    min: 1,
                    max: 10_000,
                },
            },
            OptionDescriptor {
                flag: "-S",
                name: "seed",
                description: "bootstrap random seed",
                default: "1".into(),
                kind: OptionKind::Integer {
                    min: 0,
                    max: i64::MAX,
                },
            },
            OptionDescriptor {
                flag: "-W",
                name: "baseClassifier",
                description: "registry name of the base classifier",
                default: "J48".into(),
                kind: OptionKind::Text,
            },
        ]
    }

    fn set_option(&mut self, flag: &str, value: &str) -> Result<()> {
        let ds = self.option_descriptors();
        descriptor_for(&ds, flag)?.validate(value)?;
        match flag {
            "-I" => self.iterations = value.parse().expect("validated"),
            "-S" => self.seed = value.parse().expect("validated"),
            "-W" => {
                crate::registry::make_classifier(value)?; // validate name
                self.base_name = value.to_string();
            }
            _ => unreachable!("descriptor_for rejects unknown flags"),
        }
        Ok(())
    }

    fn get_option(&self, flag: &str) -> Result<String> {
        match flag {
            "-I" => Ok(self.iterations.to_string()),
            "-S" => Ok(self.seed.to_string()),
            "-W" => Ok(self.base_name.clone()),
            _ => Err(AlgoError::BadOption {
                flag: flag.into(),
                message: "unknown option".into(),
            }),
        }
    }
}

impl Stateful for Bagging {
    fn encode_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.put_usize(self.iterations);
        w.put_u64(self.seed);
        w.put_str(&self.base_name);
        w.put_usize(self.num_classes);
        w.put_usize(self.members.len());
        for m in &self.members {
            w.put_bytes(&m.encode_state());
        }
        w.into_bytes()
    }

    fn decode_state(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = StateReader::new(bytes);
        self.iterations = r.get_usize()?;
        self.seed = r.get_u64()?;
        self.base_name = r.get_str()?;
        self.num_classes = r.get_usize()?;
        let n = r.get_usize()?;
        if n > 1 << 16 {
            return Err(AlgoError::BadState("absurd member count".into()));
        }
        self.members.clear();
        for _ in 0..n {
            let payload = r.get_bytes()?;
            let mut m = crate::registry::make_classifier(&self.base_name)?;
            m.decode_state(&payload)?;
            self.members.push(m);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{resubstitution_accuracy, weather_nominal};
    use super::*;

    #[test]
    fn bags_j48_on_weather() {
        let ds = weather_nominal();
        let mut b = Bagging::new();
        b.set_option("-I", "5").unwrap();
        b.train(&ds).unwrap();
        assert_eq!(b.num_members(), 5);
        assert!(resubstitution_accuracy(&b, &ds) >= 12.0 / 14.0);
    }

    #[test]
    fn base_swappable() {
        let ds = weather_nominal();
        let mut b = Bagging::with_base("NaiveBayes");
        b.set_option("-I", "3").unwrap();
        b.train(&ds).unwrap();
        assert!(b.describe().contains("NaiveBayes"));
    }

    #[test]
    fn unknown_base_rejected() {
        let mut b = Bagging::new();
        assert!(b.set_option("-W", "NoSuchAlgorithm").is_err());
    }

    #[test]
    fn seed_determinism() {
        let ds = weather_nominal();
        let mut a = Bagging::new();
        a.set_option("-I", "3").unwrap();
        a.train(&ds).unwrap();
        let mut b = Bagging::new();
        b.set_option("-I", "3").unwrap();
        b.train(&ds).unwrap();
        for r in 0..ds.num_instances() {
            assert_eq!(
                a.distribution(&ds, r).unwrap(),
                b.distribution(&ds, r).unwrap()
            );
        }
    }

    #[test]
    fn state_roundtrip() {
        let ds = weather_nominal();
        let mut b = Bagging::new();
        b.set_option("-I", "3").unwrap();
        b.train(&ds).unwrap();
        let mut b2 = Bagging::new();
        b2.decode_state(&b.encode_state()).unwrap();
        assert_eq!(b2.num_members(), 3);
        for r in 0..ds.num_instances() {
            assert_eq!(b.predict(&ds, r).unwrap(), b2.predict(&ds, r).unwrap());
        }
    }

    #[test]
    fn untrained_errors() {
        let ds = weather_nominal();
        assert!(Bagging::new().distribution(&ds, 0).is_err());
    }
}
