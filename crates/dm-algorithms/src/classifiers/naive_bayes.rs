//! Naive Bayes with Laplace-smoothed nominal likelihoods and Gaussian
//! numeric likelihoods (WEKA's `NaiveBayes` defaults).
//!
//! The model stores sufficient statistics (counts / sums / squared
//! sums) rather than finalised parameters, so it is a true
//! **incremental learner**: [`NaiveBayes::partial_train`] absorbs
//! additional instances — including [`dm_data::stream::RecordBatch`]es
//! arriving from a remote stream (the paper's "provided the algorithm
//! being used has support for streaming", §1) — and yields exactly the
//! model batch training would.

use super::{check_trainable, normalize, Classifier};
use crate::error::{AlgoError, Result};
use crate::options::{descriptor_for, Configurable, OptionDescriptor, OptionKind};
use crate::state::{StateReader, StateWriter, Stateful};
use dm_data::stream::RecordBatch;
use dm_data::{Dataset, Value};

/// Per-attribute conditional sufficient statistics.
#[derive(Debug, Clone, PartialEq)]
enum AttrModel {
    /// `counts[class][value]`, Laplace-smoothed at query time.
    Nominal(Vec<Vec<f64>>),
    /// Per-class `(sum, sum of squares, count)` accumulators.
    Gaussian(Vec<(f64, f64, f64)>),
    /// Class attribute or unsupported kind — ignored.
    Skip,
}

/// The Naive Bayes classifier.
#[derive(Debug, Clone, Default)]
pub struct NaiveBayes {
    /// `-D`: recognised WEKA flag (discretisation handled by the
    /// Preprocess service in this toolkit).
    use_supervised_discretization: bool,
    priors: Vec<f64>,
    models: Vec<AttrModel>,
    class_index: usize,
    trained: bool,
}

/// Minimum standard deviation, as in WEKA (avoids zero-variance spikes).
const MIN_STDDEV: f64 = 1e-6;

impl NaiveBayes {
    /// Create with default options.
    pub fn new() -> NaiveBayes {
        NaiveBayes::default()
    }

    /// Initialise empty sufficient statistics for `data`'s header.
    fn init(&mut self, data: &Dataset) -> Result<()> {
        let (ci, k) = check_trainable(data)?;
        self.class_index = ci;
        self.priors = vec![0.0; k];
        self.models = (0..data.num_attributes())
            .map(|a| {
                if a == ci {
                    AttrModel::Skip
                } else {
                    let attr = &data.attributes()[a];
                    if attr.is_nominal() {
                        AttrModel::Nominal(vec![vec![0.0; attr.num_labels()]; k])
                    } else if attr.is_numeric() {
                        AttrModel::Gaussian(vec![(0.0, 0.0, 0.0); k])
                    } else {
                        AttrModel::Skip
                    }
                }
            })
            .collect();
        self.trained = true;
        Ok(())
    }

    /// Absorb one encoded row (same layout as the training header).
    fn absorb_row(&mut self, row: &[f64], weight: f64) {
        let cv = row[self.class_index];
        if Value::is_missing(cv) {
            return;
        }
        let c = Value::as_index(cv);
        if c >= self.priors.len() {
            return;
        }
        self.priors[c] += weight;
        for (a, model) in self.models.iter_mut().enumerate() {
            let v = row[a];
            if Value::is_missing(v) {
                continue;
            }
            match model {
                AttrModel::Nominal(table) => {
                    let vi = Value::as_index(v);
                    if vi < table[c].len() {
                        table[c][vi] += weight;
                    }
                }
                AttrModel::Gaussian(acc) => {
                    let e = &mut acc[c];
                    e.0 += weight * v;
                    e.1 += weight * v * v;
                    e.2 += weight;
                }
                AttrModel::Skip => {}
            }
        }
    }

    /// Columnar absorption: one pass per attribute over its contiguous
    /// buffer instead of a per-row gather. Every scalar accumulator
    /// (prior, count cell, Gaussian sum) still receives its
    /// contributions in row order, so the sufficient statistics are
    /// bit-identical to row-at-a-time [`NaiveBayes::absorb_row`].
    fn absorb_columnar(&mut self, data: &Dataset) {
        let n = data.num_instances();
        let k = self.priors.len();
        let class_col = data.column(self.class_index);
        // Per-row class code with the same guards absorb_row applies
        // (missing class or out-of-range code → row contributes nothing).
        let cls: Vec<Option<u32>> = (0..n)
            .map(|r| class_col.index_at(r).filter(|&c| c < k).map(|c| c as u32))
            .collect();
        for (r, c) in cls.iter().enumerate() {
            if let Some(c) = c {
                self.priors[*c as usize] += data.weight(r);
            }
        }
        for (a, model) in self.models.iter_mut().enumerate() {
            match model {
                AttrModel::Nominal(table) => {
                    let Some((codes, valid)) = data.column(a).nominal() else {
                        continue;
                    };
                    for (r, c) in cls.iter().enumerate() {
                        let Some(c) = c else { continue };
                        if valid.get(r) {
                            let vi = codes.get(r);
                            let row_counts = &mut table[*c as usize];
                            if vi < row_counts.len() {
                                row_counts[vi] += data.weight(r);
                            }
                        }
                    }
                }
                AttrModel::Gaussian(acc) => {
                    let Some((values, valid)) = data.column(a).numeric() else {
                        continue;
                    };
                    for (r, c) in cls.iter().enumerate() {
                        let Some(c) = c else { continue };
                        if valid.get(r) {
                            let v = values[r];
                            let weight = data.weight(r);
                            let e = &mut acc[*c as usize];
                            e.0 += weight * v;
                            e.1 += weight * v * v;
                            e.2 += weight;
                        }
                    }
                }
                AttrModel::Skip => {}
            }
        }
    }

    /// Incrementally absorb more instances (header must match the
    /// dataset used to initialise training).
    pub fn partial_train(&mut self, data: &Dataset) -> Result<()> {
        if !self.trained {
            return self.train(data);
        }
        if data.num_attributes() != self.models.len() {
            return Err(AlgoError::Data(dm_data::DataError::Arity {
                got: data.num_attributes(),
                expected: self.models.len(),
            }));
        }
        self.absorb_columnar(data);
        Ok(())
    }

    /// Absorb a streamed [`RecordBatch`] (rows in the training header's
    /// encoding, weight 1 each) — the streaming-consumer entry point.
    pub fn update_batch(&mut self, batch: &RecordBatch) -> Result<()> {
        if !self.trained {
            return Err(AlgoError::NotTrained);
        }
        if batch.num_columns() != self.models.len() {
            return Err(AlgoError::Data(dm_data::DataError::Arity {
                got: batch.num_columns(),
                expected: self.models.len(),
            }));
        }
        let mut buf = Vec::with_capacity(batch.num_columns());
        for i in 0..batch.num_rows() {
            batch.copy_row_into(i, &mut buf);
            self.absorb_row(&buf, 1.0);
        }
        Ok(())
    }

    /// Total weight of absorbed (class-labelled) instances.
    pub fn observed_weight(&self) -> f64 {
        self.priors.iter().sum()
    }
}

impl Classifier for NaiveBayes {
    fn name(&self) -> &'static str {
        "NaiveBayes"
    }

    fn train(&mut self, data: &Dataset) -> Result<()> {
        self.init(data)?;
        self.absorb_columnar(data);
        Ok(())
    }

    fn distribution(&self, data: &Dataset, row: usize) -> Result<Vec<f64>> {
        if !self.trained {
            return Err(AlgoError::NotTrained);
        }
        let k = self.priors.len();
        let total_prior: f64 = self.priors.iter().sum();
        // Work in log space for numeric stability.
        let mut logp: Vec<f64> = self
            .priors
            .iter()
            .map(|&p| ((p + 1.0) / (total_prior + k as f64)).ln())
            .collect();
        for (a, model) in self.models.iter().enumerate() {
            let v = data.value(row, a);
            if Value::is_missing(v) {
                continue;
            }
            match model {
                AttrModel::Nominal(table) => {
                    let vi = Value::as_index(v);
                    for (c, lp) in logp.iter_mut().enumerate() {
                        let row_counts = &table[c];
                        if vi >= row_counts.len() {
                            continue;
                        }
                        let total: f64 = row_counts.iter().sum();
                        let p = (row_counts[vi] + 1.0) / (total + row_counts.len() as f64);
                        *lp += p.ln();
                    }
                }
                AttrModel::Gaussian(acc) => {
                    for (c, lp) in logp.iter_mut().enumerate() {
                        let (sum, sumsq, n) = acc[c];
                        let (mean, sd) = if n > 0.0 {
                            let mean = sum / n;
                            let var = (sumsq / n - mean * mean).max(0.0);
                            (mean, var.sqrt().max(MIN_STDDEV))
                        } else {
                            (0.0, MIN_STDDEV)
                        };
                        let z = (v - mean) / sd;
                        *lp += -0.5 * z * z - sd.ln();
                    }
                }
                AttrModel::Skip => {}
            }
        }
        let max = logp.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut dist: Vec<f64> = logp.iter().map(|&lp| (lp - max).exp()).collect();
        normalize(&mut dist);
        Ok(dist)
    }

    fn describe(&self) -> String {
        if !self.trained {
            return "NaiveBayes: not trained".to_string();
        }
        let mut out = String::from("Naive Bayes classifier (incremental)\n");
        out.push_str(&format!(
            "Observed weight: {}; class priors: {:?}\n",
            self.observed_weight(),
            self.priors
        ));
        for (a, m) in self.models.iter().enumerate() {
            match m {
                AttrModel::Nominal(t) => {
                    out.push_str(&format!("attr #{a}: nominal, {} classes\n", t.len()))
                }
                AttrModel::Gaussian(acc) => {
                    out.push_str(&format!("attr #{a}: gaussian accumulators {acc:?}\n"))
                }
                AttrModel::Skip => {}
            }
        }
        out
    }
}

impl Configurable for NaiveBayes {
    fn option_descriptors(&self) -> Vec<OptionDescriptor> {
        vec![OptionDescriptor {
            flag: "-D",
            name: "useSupervisedDiscretization",
            description:
                "discretize numeric attributes before training (recognised, off by default)",
            default: "false".into(),
            kind: OptionKind::Flag,
        }]
    }

    fn set_option(&mut self, flag: &str, value: &str) -> Result<()> {
        let ds = self.option_descriptors();
        descriptor_for(&ds, flag)?.validate(value)?;
        self.use_supervised_discretization = value == "true";
        Ok(())
    }

    fn get_option(&self, flag: &str) -> Result<String> {
        match flag {
            "-D" => Ok(self.use_supervised_discretization.to_string()),
            _ => Err(AlgoError::BadOption {
                flag: flag.into(),
                message: "unknown option".into(),
            }),
        }
    }
}

impl Stateful for NaiveBayes {
    fn encode_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.put_bool(self.trained);
        if self.trained {
            w.put_usize(self.class_index);
            w.put_f64_slice(&self.priors);
            w.put_usize(self.models.len());
            for m in &self.models {
                match m {
                    AttrModel::Skip => w.put_u64(0),
                    AttrModel::Nominal(t) => {
                        w.put_u64(1);
                        w.put_usize(t.len());
                        for row in t {
                            w.put_f64_slice(row);
                        }
                    }
                    AttrModel::Gaussian(acc) => {
                        w.put_u64(2);
                        w.put_usize(acc.len());
                        for (sum, sumsq, n) in acc {
                            w.put_f64(*sum);
                            w.put_f64(*sumsq);
                            w.put_f64(*n);
                        }
                    }
                }
            }
        }
        w.into_bytes()
    }

    fn decode_state(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = StateReader::new(bytes);
        self.trained = r.get_bool()?;
        if self.trained {
            self.class_index = r.get_usize()?;
            self.priors = r.get_f64_vec()?;
            let n = r.get_usize()?;
            if n > 1 << 20 {
                return Err(AlgoError::BadState("absurd attribute count".into()));
            }
            let mut models = Vec::with_capacity(n);
            for _ in 0..n {
                models.push(match r.get_u64()? {
                    0 => AttrModel::Skip,
                    1 => {
                        let rows = r.get_usize()?;
                        if rows > 1 << 16 {
                            return Err(AlgoError::BadState("absurd class count".into()));
                        }
                        let mut t = Vec::with_capacity(rows);
                        for _ in 0..rows {
                            t.push(r.get_f64_vec()?);
                        }
                        AttrModel::Nominal(t)
                    }
                    2 => {
                        let len = r.get_usize()?;
                        if len > 1 << 16 {
                            return Err(AlgoError::BadState("absurd class count".into()));
                        }
                        let mut acc = Vec::with_capacity(len);
                        for _ in 0..len {
                            acc.push((r.get_f64()?, r.get_f64()?, r.get_f64()?));
                        }
                        AttrModel::Gaussian(acc)
                    }
                    tag => return Err(AlgoError::BadState(format!("bad model tag {tag}"))),
                });
            }
            self.models = models;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{
        resubstitution_accuracy, separable_numeric, weather_nominal, weather_numeric,
    };
    use super::*;

    #[test]
    fn learns_weather_nominal() {
        let ds = weather_nominal();
        let mut nb = NaiveBayes::new();
        nb.train(&ds).unwrap();
        let acc = resubstitution_accuracy(&nb, &ds);
        assert!(acc >= 12.0 / 14.0, "accuracy {acc}");
        let d = nb.distribution(&ds, 0).unwrap();
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gaussian_handles_numeric() {
        let ds = weather_numeric();
        let mut nb = NaiveBayes::new();
        nb.train(&ds).unwrap();
        assert!(resubstitution_accuracy(&nb, &ds) >= 0.7);
    }

    #[test]
    fn separable_data_is_perfect() {
        let ds = separable_numeric(50);
        let mut nb = NaiveBayes::new();
        nb.train(&ds).unwrap();
        assert_eq!(resubstitution_accuracy(&nb, &ds), 1.0);
    }

    #[test]
    fn missing_attribute_values_skipped() {
        let mut ds = weather_nominal();
        ds.set_value(0, 0, f64::NAN);
        let mut nb = NaiveBayes::new();
        nb.train(&ds).unwrap();
        let d = nb.distribution(&ds, 0).unwrap();
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn incremental_equals_batch() {
        // Streaming the data in chunks must give the exact batch model.
        let ds = weather_numeric();
        let mut batch = NaiveBayes::new();
        batch.train(&ds).unwrap();

        let first = ds.select_rows(&(0..5).collect::<Vec<_>>());
        let second = ds.select_rows(&(5..14).collect::<Vec<_>>());
        let mut incremental = NaiveBayes::new();
        incremental.train(&first).unwrap();
        incremental.partial_train(&second).unwrap();

        for r in 0..ds.num_instances() {
            let a = batch.distribution(&ds, r).unwrap();
            let b = incremental.distribution(&ds, r).unwrap();
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-12);
            }
        }
        assert_eq!(incremental.observed_weight(), 14.0);
    }

    #[test]
    fn record_batch_streaming_consumer() {
        // The full streaming path: chunk → update_batch per chunk.
        let ds = dm_data::corpus::breast_cancer();
        let mut batch_model = NaiveBayes::new();
        batch_model.train(&ds).unwrap();

        let header = ds.header_clone();
        let mut streaming = NaiveBayes::new();
        // Initialise the statistics from the empty header... an empty
        // dataset cannot initialise (check_trainable rejects it), so
        // seed with the first chunk as a Dataset, then stream the rest.
        let chunks = dm_data::stream::chunk_dataset(&ds, 64).unwrap();
        let mut seed = header.clone();
        for i in 0..chunks[0].num_rows() {
            seed.push_row(chunks[0].row_values(i)).unwrap();
        }
        streaming.train(&seed).unwrap();
        for chunk in &chunks[1..] {
            streaming.update_batch(chunk).unwrap();
        }

        assert_eq!(streaming.observed_weight(), 286.0);
        for r in 0..20 {
            assert_eq!(
                batch_model.predict(&ds, r).unwrap(),
                streaming.predict(&ds, r).unwrap()
            );
        }
    }

    #[test]
    fn update_batch_requires_training_and_arity() {
        let mut nb = NaiveBayes::new();
        let three = dm_data::Dataset::new(
            "three",
            vec![
                dm_data::Attribute::numeric("a"),
                dm_data::Attribute::numeric("b"),
                dm_data::Attribute::numeric("c"),
            ],
        );
        let batch = RecordBatch::from_rows(&three, 0..0);
        assert!(matches!(
            nb.update_batch(&batch),
            Err(AlgoError::NotTrained)
        ));
        let ds = weather_nominal();
        nb.train(&ds).unwrap();
        assert!(nb.update_batch(&batch).is_err()); // width 3 != 5
    }

    #[test]
    fn state_roundtrip_preserves_predictions() {
        let ds = weather_numeric();
        let mut nb = NaiveBayes::new();
        nb.train(&ds).unwrap();
        let mut nb2 = NaiveBayes::new();
        nb2.decode_state(&nb.encode_state()).unwrap();
        for r in 0..ds.num_instances() {
            let a = nb.distribution(&ds, r).unwrap();
            let b = nb2.distribution(&ds, r).unwrap();
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-12);
            }
        }
        // And the restored model keeps learning incrementally.
        nb2.partial_train(&ds).unwrap();
        assert_eq!(nb2.observed_weight(), 28.0);
    }

    #[test]
    fn untrained_errors() {
        let ds = weather_nominal();
        assert!(NaiveBayes::new().distribution(&ds, 0).is_err());
    }

    #[test]
    fn corrupted_state_rejected() {
        let mut nb = NaiveBayes::new();
        assert!(nb.decode_state(&[1, 2, 3]).is_err());
    }
}
