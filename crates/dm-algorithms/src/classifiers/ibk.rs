//! IBk: k-nearest-neighbour classification (WEKA's `IBk`).
//!
//! Distance is heterogeneous-Euclidean/overlap: numeric attributes are
//! range-normalised and compared by squared difference; nominal
//! attributes contribute 0/1 overlap; missing values contribute the
//! maximal difference (1), as in WEKA. Votes may be distance-weighted.
//!
//! The training store is **columnar**: per-attribute buffers with
//! pre-normalised numeric values, dense nominal codes, and validity
//! bitmaps. The distance scan accumulates per-attribute columns into a
//! block of per-row accumulators instead of gathering one row at a
//! time, which keeps the inner loops branch-light and cache-friendly
//! while producing bit-identical sums (each accumulator still receives
//! its contributions in attribute order 0..n, exactly like the old
//! row-wise loop).

use super::{check_trainable, normalize, Classifier};
use crate::error::{AlgoError, Result};
use crate::options::{descriptor_for, Configurable, OptionDescriptor, OptionKind};
use crate::pool;
use crate::state::{StateReader, StateWriter, Stateful};
use dm_data::{block_ranges, Bitmap, Dataset, Value};
use std::collections::BinaryHeap;

/// Minimum stored-instance count before the distance scan is
/// partitioned across the pool; below this the per-row work cannot
/// amortise batch setup.
const MIN_PARALLEL_ROWS: usize = 1024;

/// A candidate neighbour under the total order `(distance, stored
/// index)`. The index tiebreak makes k-selection deterministic (the old
/// `select_nth_unstable` left ties at the k-boundary arbitrary) and
/// lets per-block results merge into the same global k-set no matter
/// how the scan was partitioned.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Neighbour {
    d: f64,
    idx: usize,
}

impl Eq for Neighbour {}

impl Ord for Neighbour {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.d
            .partial_cmp(&other.d)
            .expect("no NaN distances")
            .then(self.idx.cmp(&other.idx))
    }
}

impl PartialOrd for Neighbour {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Distance weighting schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistanceWeighting {
    /// All neighbours vote equally.
    None,
    /// Votes weighted by `1/d`.
    Inverse,
    /// Votes weighted by `1 - d`.
    Similarity,
}

/// One attribute of the columnar training store. `raw` keeps the
/// original encoded cells (`NaN` = missing) so the wire format of
/// [`Stateful::encode_state`] is unchanged from the row-major store.
#[derive(Debug, Clone)]
struct StoreColumn {
    raw: Vec<f64>,
    valid: Bitmap,
    kind: StoreKind,
}

#[derive(Debug, Clone)]
enum StoreKind {
    /// Numeric attribute with a usable range: values pre-normalised
    /// with the same `((v - min) / (max - min)).clamp(0.0, 1.0)`
    /// expression the scan applies to queries (missing cells hold 0.0).
    Numeric { norm: Vec<f64> },
    /// Nominal attribute: dense codes (missing cells hold 0).
    Nominal { codes: Vec<u32> },
    /// String attributes, degenerate-range numerics, and the class
    /// column: only missingness contributes to distance.
    Inert,
}

impl StoreColumn {
    fn push(&mut self, v: f64, range: Option<(f64, f64)>) {
        let missing = Value::is_missing(v);
        self.raw.push(if missing { Value::MISSING } else { v });
        self.valid.push(!missing);
        match &mut self.kind {
            StoreKind::Numeric { norm } => {
                let (min, max) = range.expect("numeric store column has a range");
                norm.push(if missing {
                    0.0
                } else {
                    ((v - min) / (max - min)).clamp(0.0, 1.0)
                });
            }
            StoreKind::Nominal { codes } => {
                codes.push(if missing {
                    0
                } else {
                    Value::as_index(v) as u32
                });
            }
            StoreKind::Inert => {}
        }
    }
}

/// The per-query scan plan for one attribute: what the query holds
/// there, pre-resolved so the block scan never re-inspects the query.
enum AttrPlan<'a> {
    /// The class attribute — skipped entirely.
    Skip,
    /// Query missing here: every stored row contributes 1.0.
    AllOnes,
    /// Numeric attribute, query present: pre-normalised query value
    /// against the pre-normalised stored column.
    Numeric {
        nq: f64,
        norm: &'a [f64],
        valid: &'a Bitmap,
    },
    /// Nominal attribute, query present: 0/1 overlap against codes.
    Nominal {
        qc: u32,
        codes: &'a [u32],
        valid: &'a Bitmap,
    },
    /// Inert attribute, query present: only stored-missing rows add 1.0.
    Inert { valid: &'a Bitmap },
}

/// The k-nearest-neighbour classifier.
#[derive(Debug, Clone)]
pub struct IBk {
    /// `-K`: neighbourhood size.
    k: usize,
    /// `-I` / `-F`: distance weighting.
    weighting: DistanceWeighting,
    // Training store: the instance-based model *is* the data, held as
    // per-attribute columns.
    store: Vec<StoreColumn>,
    n_stored: usize,
    classes: Vec<usize>,
    ranges: Vec<Option<(f64, f64)>>,
    nominal: Vec<bool>,
    class_index: usize,
    num_classes: usize,
    trained: bool,
}

impl Default for IBk {
    fn default() -> Self {
        IBk {
            k: 1,
            weighting: DistanceWeighting::None,
            store: Vec::new(),
            n_stored: 0,
            classes: Vec::new(),
            ranges: Vec::new(),
            nominal: Vec::new(),
            class_index: 0,
            num_classes: 0,
            trained: false,
        }
    }
}

impl IBk {
    /// Create a 1-NN classifier (WEKA default).
    pub fn new() -> IBk {
        IBk::default()
    }

    /// Create with an explicit `k`.
    pub fn with_k(k: usize) -> IBk {
        IBk {
            k: k.max(1),
            ..IBk::default()
        }
    }

    /// Empty store columns for the current `ranges`/`nominal` metadata.
    fn empty_store(&self) -> Vec<StoreColumn> {
        (0..self.nominal.len())
            .map(|a| {
                let kind = if self.nominal[a] {
                    StoreKind::Nominal { codes: Vec::new() }
                } else if matches!(self.ranges[a], Some((min, max)) if max > min) {
                    StoreKind::Numeric { norm: Vec::new() }
                } else {
                    StoreKind::Inert
                };
                StoreColumn {
                    raw: Vec::new(),
                    valid: Bitmap::new(),
                    kind,
                }
            })
            .collect()
    }

    /// Append one encoded row to the columnar store.
    fn store_row(&mut self, row: &[f64]) {
        for (a, &v) in row.iter().enumerate() {
            let range = self.ranges[a];
            self.store[a].push(v, range);
        }
        self.n_stored += 1;
    }

    /// Gather stored row `idx` back to its encoded form (`NaN` =
    /// missing) — the state-encoding and test-reference path.
    fn stored_row(&self, idx: usize) -> Vec<f64> {
        self.store.iter().map(|col| col.raw[idx]).collect()
    }

    /// Build the per-attribute scan plan for one query row.
    fn plan<'a>(&'a self, query: &[f64]) -> Vec<AttrPlan<'a>> {
        query
            .iter()
            .enumerate()
            .map(|(a, &q)| {
                if a == self.class_index {
                    return AttrPlan::Skip;
                }
                if Value::is_missing(q) {
                    return AttrPlan::AllOnes;
                }
                let col = &self.store[a];
                match &col.kind {
                    StoreKind::Numeric { norm } => {
                        let (min, max) = self.ranges[a].expect("numeric column has range");
                        AttrPlan::Numeric {
                            nq: ((q - min) / (max - min)).clamp(0.0, 1.0),
                            norm,
                            valid: &col.valid,
                        }
                    }
                    StoreKind::Nominal { codes } => AttrPlan::Nominal {
                        qc: Value::as_index(q) as u32,
                        codes,
                        valid: &col.valid,
                    },
                    StoreKind::Inert => AttrPlan::Inert { valid: &col.valid },
                }
            })
            .collect()
    }

    /// Vectorized distance scan: accumulate squared diffs column by
    /// column into per-row accumulators for `range`, then take square
    /// roots. Each accumulator receives its contributions in attribute
    /// order, so the per-row sums are bit-identical to the old
    /// row-at-a-time gather (skipped zero contributions add exactly
    /// `0.0` and are elided).
    fn scan_block(&self, plan: &[AttrPlan<'_>], range: std::ops::Range<usize>) -> Vec<f64> {
        let start = range.start;
        let mut acc = vec![0.0f64; range.len()];
        for ap in plan {
            match ap {
                AttrPlan::Skip => {}
                AttrPlan::AllOnes => {
                    for d in acc.iter_mut() {
                        *d += 1.0;
                    }
                }
                AttrPlan::Numeric { nq, norm, valid } => {
                    let col = &norm[range.clone()];
                    if valid.all_valid() {
                        for (d, &ns) in acc.iter_mut().zip(col) {
                            let diff = nq - ns;
                            *d += diff * diff;
                        }
                    } else {
                        for (i, (d, &ns)) in acc.iter_mut().zip(col).enumerate() {
                            if valid.get(start + i) {
                                let diff = nq - ns;
                                *d += diff * diff;
                            } else {
                                *d += 1.0;
                            }
                        }
                    }
                }
                AttrPlan::Nominal { qc, codes, valid } => {
                    let col = &codes[range.clone()];
                    if valid.all_valid() {
                        for (d, &c) in acc.iter_mut().zip(col) {
                            *d += f64::from(c != *qc);
                        }
                    } else {
                        for (i, (d, &c)) in acc.iter_mut().zip(col).enumerate() {
                            *d += f64::from(!valid.get(start + i) || c != *qc);
                        }
                    }
                }
                AttrPlan::Inert { valid } => {
                    if !valid.all_valid() {
                        for (i, d) in acc.iter_mut().enumerate() {
                            if !valid.get(start + i) {
                                *d += 1.0;
                            }
                        }
                    }
                }
            }
        }
        for d in acc.iter_mut() {
            *d = d.sqrt();
        }
        acc
    }

    /// The `kk` nearest stored rows to the planned query within
    /// `range`: one columnar scan for the distances, then a bounded
    /// max-heap (O(len log kk)) over `(distance, index)`.
    fn k_nearest_in_block(
        &self,
        plan: &[AttrPlan<'_>],
        range: std::ops::Range<usize>,
        kk: usize,
    ) -> Vec<Neighbour> {
        let start = range.start;
        let distances = self.scan_block(plan, range);
        let mut heap: BinaryHeap<Neighbour> = BinaryHeap::with_capacity(kk + 1);
        for (i, &d) in distances.iter().enumerate() {
            let cand = Neighbour { d, idx: start + i };
            if heap.len() < kk {
                heap.push(cand);
            } else if cand < *heap.peek().expect("kk >= 1") {
                heap.pop();
                heap.push(cand);
            }
        }
        heap.into_vec()
    }

    /// The global `kk` nearest neighbours of `query`, sorted ascending
    /// by `(distance, index)`. Large stores are scanned as parallel row
    /// blocks; because the order is total, the merged global k-set (and
    /// therefore the vote) is identical for any partitioning, including
    /// the serial single-block scan.
    fn k_nearest(&self, query: &[f64], kk: usize) -> Vec<Neighbour> {
        let n = self.n_stored;
        let plan = self.plan(query);
        let threads = pool::current_threads();
        let mut candidates = if n >= MIN_PARALLEL_ROWS && threads > 1 {
            let blocks = block_ranges(n, threads);
            pool::parallel_map(blocks.len(), |b| {
                self.k_nearest_in_block(&plan, blocks[b].clone(), kk)
            })
            .into_iter()
            .flatten()
            .collect::<Vec<Neighbour>>()
        } else {
            self.k_nearest_in_block(&plan, 0..n, kk)
        };
        candidates.sort_unstable();
        candidates.truncate(kk);
        candidates
    }

    /// Vote over a sorted neighbour set.
    fn vote(&self, neighbours: &[Neighbour]) -> Vec<f64> {
        let mut dist = vec![0.0; self.num_classes];
        for nb in neighbours {
            let w = match self.weighting {
                DistanceWeighting::None => 1.0,
                DistanceWeighting::Inverse => 1.0 / (nb.d + 1e-9),
                DistanceWeighting::Similarity => (1.0 - nb.d).max(0.0),
            };
            dist[self.classes[nb.idx]] += w;
        }
        normalize(&mut dist);
        dist
    }
}

impl Classifier for IBk {
    fn name(&self) -> &'static str {
        "IBk"
    }

    fn train(&mut self, data: &Dataset) -> Result<()> {
        let (ci, k) = check_trainable(data)?;
        self.class_index = ci;
        self.num_classes = k;
        self.nominal = data.attributes().iter().map(|a| a.is_nominal()).collect();
        self.ranges = (0..data.num_attributes())
            .map(|a| {
                if !data.attributes()[a].is_numeric() {
                    return None;
                }
                let mut min = f64::INFINITY;
                let mut max = f64::NEG_INFINITY;
                if let Some((values, valid)) = data.column(a).numeric() {
                    for (r, &v) in values.iter().enumerate() {
                        if valid.get(r) {
                            min = min.min(v);
                            max = max.max(v);
                        }
                    }
                }
                (min <= max).then_some((min, max))
            })
            .collect();
        self.store = self.empty_store();
        self.n_stored = 0;
        self.classes.clear();
        let class_col = data.column(ci);
        let mut scratch = Vec::with_capacity(data.num_attributes());
        for r in 0..data.num_instances() {
            let Some(cv) = class_col.index_at(r) else {
                continue;
            };
            data.copy_row_into(r, &mut scratch);
            self.store_row(&scratch);
            self.classes.push(cv);
        }
        if self.n_stored == 0 {
            return Err(AlgoError::Unsupported(
                "no instances with a class value".into(),
            ));
        }
        self.trained = true;
        Ok(())
    }

    fn distribution(&self, data: &Dataset, row: usize) -> Result<Vec<f64>> {
        if !self.trained {
            return Err(AlgoError::NotTrained);
        }
        let query = data.row_values(row);
        let kk = self.k.min(self.n_stored);
        // Bounded k-selection (O(n log k)), then votes accumulated in
        // (distance, index) order — the same order serial and pooled
        // scans produce, so the distribution is byte-identical.
        let neighbours = self.k_nearest(&query, kk);
        Ok(self.vote(&neighbours))
    }

    fn describe(&self) -> String {
        if !self.trained {
            return "IBk: not trained".to_string();
        }
        format!(
            "IB{} instance-based classifier ({} stored instances, weighting {:?})",
            self.k, self.n_stored, self.weighting
        )
    }
}

impl Configurable for IBk {
    fn option_descriptors(&self) -> Vec<OptionDescriptor> {
        vec![
            OptionDescriptor {
                flag: "-K",
                name: "numNeighbours",
                description: "number of nearest neighbours",
                default: "1".into(),
                kind: OptionKind::Integer {
                    min: 1,
                    max: 10_000,
                },
            },
            OptionDescriptor {
                flag: "-W",
                name: "distanceWeighting",
                description: "neighbour vote weighting",
                default: "none".into(),
                kind: OptionKind::Choice(vec![
                    "none".into(),
                    "inverse".into(),
                    "similarity".into(),
                ]),
            },
        ]
    }

    fn set_option(&mut self, flag: &str, value: &str) -> Result<()> {
        let ds = self.option_descriptors();
        descriptor_for(&ds, flag)?.validate(value)?;
        match flag {
            "-K" => self.k = value.parse().expect("validated"),
            "-W" => {
                self.weighting = match value {
                    "none" => DistanceWeighting::None,
                    "inverse" => DistanceWeighting::Inverse,
                    _ => DistanceWeighting::Similarity,
                }
            }
            _ => unreachable!("descriptor_for rejects unknown flags"),
        }
        Ok(())
    }

    fn get_option(&self, flag: &str) -> Result<String> {
        match flag {
            "-K" => Ok(self.k.to_string()),
            "-W" => Ok(match self.weighting {
                DistanceWeighting::None => "none",
                DistanceWeighting::Inverse => "inverse",
                DistanceWeighting::Similarity => "similarity",
            }
            .to_string()),
            _ => Err(AlgoError::BadOption {
                flag: flag.into(),
                message: "unknown option".into(),
            }),
        }
    }
}

impl Stateful for IBk {
    fn encode_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.put_usize(self.k);
        w.put_u64(match self.weighting {
            DistanceWeighting::None => 0,
            DistanceWeighting::Inverse => 1,
            DistanceWeighting::Similarity => 2,
        });
        w.put_bool(self.trained);
        if self.trained {
            w.put_usize(self.class_index);
            w.put_usize(self.num_classes);
            // Rows travel in their encoded row-major form: the wire
            // format predates the columnar store and stays stable.
            w.put_usize(self.n_stored);
            for idx in 0..self.n_stored {
                w.put_f64_slice(&self.stored_row(idx));
            }
            w.put_usize_slice(&self.classes);
            w.put_usize(self.ranges.len());
            for range in &self.ranges {
                match range {
                    None => w.put_bool(false),
                    Some((min, max)) => {
                        w.put_bool(true);
                        w.put_f64(*min);
                        w.put_f64(*max);
                    }
                }
            }
            w.put_usize(self.nominal.len());
            for &b in &self.nominal {
                w.put_bool(b);
            }
        }
        w.into_bytes()
    }

    fn decode_state(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = StateReader::new(bytes);
        self.k = r.get_usize()?;
        self.weighting = match r.get_u64()? {
            0 => DistanceWeighting::None,
            1 => DistanceWeighting::Inverse,
            2 => DistanceWeighting::Similarity,
            tag => return Err(AlgoError::BadState(format!("bad weighting tag {tag}"))),
        };
        self.trained = r.get_bool()?;
        if self.trained {
            self.class_index = r.get_usize()?;
            self.num_classes = r.get_usize()?;
            let n = r.get_usize()?;
            let rows: Vec<Vec<f64>> = (0..n.min(1 << 24))
                .map(|_| r.get_f64_vec())
                .collect::<Result<_>>()?;
            self.classes = r.get_usize_vec()?;
            let nr = r.get_usize()?;
            self.ranges = (0..nr.min(1 << 16))
                .map(|_| -> Result<Option<(f64, f64)>> {
                    Ok(if r.get_bool()? {
                        Some((r.get_f64()?, r.get_f64()?))
                    } else {
                        None
                    })
                })
                .collect::<Result<_>>()?;
            let nn = r.get_usize()?;
            self.nominal = (0..nn.min(1 << 16))
                .map(|_| r.get_bool())
                .collect::<Result<_>>()?;
            // Rebuild the columnar store from the wire rows.
            self.store = self.empty_store();
            self.n_stored = 0;
            for row in &rows {
                if row.len() != self.nominal.len() {
                    return Err(AlgoError::BadState(format!(
                        "stored row has {} cells, header expects {}",
                        row.len(),
                        self.nominal.len()
                    )));
                }
                self.store_row(row);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{resubstitution_accuracy, separable_numeric, weather_nominal};
    use super::*;

    #[test]
    fn one_nn_memorises_training_data() {
        let ds = weather_nominal();
        let mut c = IBk::new();
        c.train(&ds).unwrap();
        assert_eq!(resubstitution_accuracy(&c, &ds), 1.0);
    }

    #[test]
    fn k3_on_separable_data() {
        let ds = separable_numeric(20);
        let mut c = IBk::with_k(3);
        c.train(&ds).unwrap();
        assert_eq!(resubstitution_accuracy(&c, &ds), 1.0);
    }

    #[test]
    fn inverse_weighting_votes() {
        let ds = separable_numeric(20);
        let mut c = IBk::with_k(5);
        c.set_option("-W", "inverse").unwrap();
        c.train(&ds).unwrap();
        assert_eq!(resubstitution_accuracy(&c, &ds), 1.0);
    }

    #[test]
    fn missing_values_maximal_distance() {
        let ds = weather_nominal();
        let mut c = IBk::new();
        c.train(&ds).unwrap();
        let mut q = ds.clone();
        for a in 0..4 {
            q.set_value(0, a, f64::NAN);
        }
        // All distances equal → first stored instance wins; should not
        // panic and must return a valid distribution.
        let d = c.distribution(&q, 0).unwrap();
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn options_roundtrip() {
        let mut c = IBk::new();
        c.set_option("-K", "7").unwrap();
        assert_eq!(c.get_option("-K").unwrap(), "7");
        assert!(c.set_option("-K", "0").is_err());
        assert!(c.set_option("-W", "bogus").is_err());
    }

    #[test]
    fn state_roundtrip() {
        let ds = separable_numeric(10);
        let mut c = IBk::with_k(3);
        c.train(&ds).unwrap();
        let bytes = c.encode_state();
        let mut c2 = IBk::new();
        c2.decode_state(&bytes).unwrap();
        // The rebuilt columnar store re-encodes to the same bytes.
        assert_eq!(bytes, c2.encode_state());
        for r in 0..ds.num_instances() {
            assert_eq!(c.predict(&ds, r).unwrap(), c2.predict(&ds, r).unwrap());
        }
    }

    #[test]
    fn untrained_errors() {
        let ds = weather_nominal();
        assert!(IBk::new().distribution(&ds, 0).is_err());
    }

    /// Scalar row-at-a-time reference distance — the pre-columnar
    /// kernel, kept verbatim so the vectorized scan is pinned to it.
    fn reference_distance(c: &IBk, query: &[f64], stored: &[f64]) -> f64 {
        let mut d = 0.0;
        for a in 0..stored.len() {
            if a == c.class_index {
                continue;
            }
            let (q, s) = (query[a], stored[a]);
            let diff = if Value::is_missing(q) || Value::is_missing(s) {
                1.0
            } else if c.nominal[a] {
                if Value::as_index(q) == Value::as_index(s) {
                    0.0
                } else {
                    1.0
                }
            } else {
                match c.ranges[a] {
                    Some((min, max)) if max > min => {
                        let nq = ((q - min) / (max - min)).clamp(0.0, 1.0);
                        let ns = ((s - min) / (max - min)).clamp(0.0, 1.0);
                        nq - ns
                    }
                    _ => 0.0,
                }
            };
            d += diff * diff;
        }
        d.sqrt()
    }

    /// Reference k-selection: full stable sort by `(distance, index)`.
    fn full_sort_k_nearest(c: &IBk, query: &[f64], kk: usize) -> Vec<(f64, usize)> {
        let mut all: Vec<(f64, usize)> = (0..c.n_stored)
            .map(|i| (reference_distance(c, query, &c.stored_row(i)), i))
            .collect();
        all.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        all.truncate(kk);
        all
    }

    #[test]
    fn columnar_scan_bitwise_matches_row_reference() {
        // The columnar accumulation must reproduce the old row-wise
        // distance bit for bit, missing values and all.
        let ds = dm_data::corpus::breast_cancer();
        let mut c = IBk::new();
        c.train(&ds).unwrap();
        for r in (0..ds.num_instances()).step_by(13) {
            let query = ds.row_values(r);
            let plan = c.plan(&query);
            let scanned = c.scan_block(&plan, 0..c.n_stored);
            for (i, &d) in scanned.iter().enumerate() {
                let want = reference_distance(&c, &query, &c.stored_row(i));
                assert_eq!(d.to_bits(), want.to_bits(), "query {r} stored {i}");
            }
        }
    }

    #[test]
    fn bounded_heap_matches_full_sort() {
        let ds = dm_data::corpus::breast_cancer();
        for k in [1usize, 3, 7, 25] {
            let mut c = IBk::with_k(k);
            c.train(&ds).unwrap();
            let kk = k.min(c.n_stored);
            for r in (0..ds.num_instances()).step_by(29) {
                let query = ds.row_values(r);
                let heap: Vec<(f64, usize)> = c
                    .k_nearest(&query, kk)
                    .into_iter()
                    .map(|nb| (nb.d, nb.idx))
                    .collect();
                assert_eq!(heap, full_sort_k_nearest(&c, &query, kk), "k={k} row={r}");
            }
        }
    }

    #[test]
    fn breast_cancer_predictions_pinned_against_reference() {
        // The bounded-heap scan must leave predictions exactly where
        // the full-sort reference puts them, on the paper's case study.
        let ds = dm_data::corpus::breast_cancer();
        let mut c = IBk::with_k(5);
        c.train(&ds).unwrap();
        let ci = ds.class_index().unwrap();
        let mut correct = 0usize;
        for r in 0..ds.num_instances() {
            let kk = 5.min(c.n_stored);
            let reference = full_sort_k_nearest(&c, &ds.row_values(r), kk);
            let mut dist = vec![0.0; c.num_classes];
            for &(_, i) in &reference {
                dist[c.classes[i]] += 1.0;
            }
            let expected = crate::classifiers::argmax(&dist).unwrap();
            let got = c.predict(&ds, r).unwrap();
            assert_eq!(got, expected, "row {r}");
            if Value::as_index(ds.value(r, ci)) == got {
                correct += 1;
            }
        }
        // Absolute pin: 236 of 286 under the (distance, index) total
        // order. The old unstable selection landed on an arbitrary tie
        // subset at the k-boundary (230 on this corpus, where all-nominal
        // attributes make tied distances common); the bounded heap pins
        // the deterministic lowest-index tie-break instead.
        assert_eq!(correct, 236, "5-NN correct count moved");
    }

    #[test]
    fn parallel_scan_identical_to_serial() {
        // Force the pooled block scan (store >= MIN_PARALLEL_ROWS is
        // not reachable with the small corpora, so drop the threshold
        // by duplicating rows) and compare with the 1-thread path.
        let base = separable_numeric(40);
        let rows: Vec<usize> = (0..MIN_PARALLEL_ROWS + 50).map(|i| i % 40).collect();
        let big = base.select_rows(&rows);
        let mut c = IBk::with_k(9);
        c.set_option("-W", "inverse").unwrap();
        c.train(&big).unwrap();
        for r in (0..40).step_by(7) {
            let serial = crate::pool::with_threads(1, || c.distribution(&base, r).unwrap());
            for threads in [2, 8] {
                let pooled =
                    crate::pool::with_threads(threads, || c.distribution(&base, r).unwrap());
                let same = serial
                    .iter()
                    .zip(&pooled)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "threads={threads} row={r}");
            }
        }
    }
}
