//! IBk: k-nearest-neighbour classification (WEKA's `IBk`).
//!
//! Distance is heterogeneous-Euclidean/overlap: numeric attributes are
//! range-normalised and compared by squared difference; nominal
//! attributes contribute 0/1 overlap; missing values contribute the
//! maximal difference (1), as in WEKA. Votes may be distance-weighted.

use super::{check_trainable, normalize, Classifier};
use crate::error::{AlgoError, Result};
use crate::options::{descriptor_for, Configurable, OptionDescriptor, OptionKind};
use crate::pool;
use crate::state::{StateReader, StateWriter, Stateful};
use dm_data::{block_ranges, Dataset, Value};
use std::collections::BinaryHeap;

/// Minimum stored-instance count before the distance scan is
/// partitioned across the pool; below this the per-row work cannot
/// amortise batch setup.
const MIN_PARALLEL_ROWS: usize = 1024;

/// A candidate neighbour under the total order `(distance, stored
/// index)`. The index tiebreak makes k-selection deterministic (the old
/// `select_nth_unstable` left ties at the k-boundary arbitrary) and
/// lets per-block results merge into the same global k-set no matter
/// how the scan was partitioned.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Neighbour {
    d: f64,
    idx: usize,
}

impl Eq for Neighbour {}

impl Ord for Neighbour {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.d
            .partial_cmp(&other.d)
            .expect("no NaN distances")
            .then(self.idx.cmp(&other.idx))
    }
}

impl PartialOrd for Neighbour {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Distance weighting schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistanceWeighting {
    /// All neighbours vote equally.
    None,
    /// Votes weighted by `1/d`.
    Inverse,
    /// Votes weighted by `1 - d`.
    Similarity,
}

/// The k-nearest-neighbour classifier.
#[derive(Debug, Clone)]
pub struct IBk {
    /// `-K`: neighbourhood size.
    k: usize,
    /// `-I` / `-F`: distance weighting.
    weighting: DistanceWeighting,
    // Training store: the instance-based model *is* the data.
    rows: Vec<Vec<f64>>,
    classes: Vec<usize>,
    ranges: Vec<Option<(f64, f64)>>,
    nominal: Vec<bool>,
    class_index: usize,
    num_classes: usize,
    trained: bool,
}

impl Default for IBk {
    fn default() -> Self {
        IBk {
            k: 1,
            weighting: DistanceWeighting::None,
            rows: Vec::new(),
            classes: Vec::new(),
            ranges: Vec::new(),
            nominal: Vec::new(),
            class_index: 0,
            num_classes: 0,
            trained: false,
        }
    }
}

impl IBk {
    /// Create a 1-NN classifier (WEKA default).
    pub fn new() -> IBk {
        IBk::default()
    }

    /// Create with an explicit `k`.
    pub fn with_k(k: usize) -> IBk {
        IBk {
            k: k.max(1),
            ..IBk::default()
        }
    }

    fn distance(&self, query: &[f64], stored: &[f64]) -> f64 {
        let mut d = 0.0;
        for a in 0..stored.len() {
            if a == self.class_index {
                continue;
            }
            let (q, s) = (query[a], stored[a]);
            let diff = if Value::is_missing(q) || Value::is_missing(s) {
                1.0
            } else if self.nominal[a] {
                if Value::as_index(q) == Value::as_index(s) {
                    0.0
                } else {
                    1.0
                }
            } else {
                match self.ranges[a] {
                    Some((min, max)) if max > min => {
                        let nq = ((q - min) / (max - min)).clamp(0.0, 1.0);
                        let ns = ((s - min) / (max - min)).clamp(0.0, 1.0);
                        nq - ns
                    }
                    _ => 0.0,
                }
            };
            d += diff * diff;
        }
        d.sqrt()
    }

    /// The `kk` nearest stored rows to `query` within `range`, via a
    /// bounded max-heap: O(len log kk) instead of sorting the block.
    fn k_nearest_in_block(
        &self,
        query: &[f64],
        range: std::ops::Range<usize>,
        kk: usize,
    ) -> Vec<Neighbour> {
        let mut heap: BinaryHeap<Neighbour> = BinaryHeap::with_capacity(kk + 1);
        for idx in range {
            let cand = Neighbour {
                d: self.distance(query, &self.rows[idx]),
                idx,
            };
            if heap.len() < kk {
                heap.push(cand);
            } else if cand < *heap.peek().expect("kk >= 1") {
                heap.pop();
                heap.push(cand);
            }
        }
        heap.into_vec()
    }

    /// The global `kk` nearest neighbours of `query`, sorted ascending
    /// by `(distance, index)`. Large stores are scanned as parallel row
    /// blocks; because the order is total, the merged global k-set (and
    /// therefore the vote) is identical for any partitioning, including
    /// the serial single-block scan.
    fn k_nearest(&self, query: &[f64], kk: usize) -> Vec<Neighbour> {
        let n = self.rows.len();
        let threads = pool::current_threads();
        let mut candidates = if n >= MIN_PARALLEL_ROWS && threads > 1 {
            let blocks = block_ranges(n, threads);
            pool::parallel_map(blocks.len(), |b| {
                self.k_nearest_in_block(query, blocks[b].clone(), kk)
            })
            .into_iter()
            .flatten()
            .collect::<Vec<Neighbour>>()
        } else {
            self.k_nearest_in_block(query, 0..n, kk)
        };
        candidates.sort_unstable();
        candidates.truncate(kk);
        candidates
    }
}

impl Classifier for IBk {
    fn name(&self) -> &'static str {
        "IBk"
    }

    fn train(&mut self, data: &Dataset) -> Result<()> {
        let (ci, k) = check_trainable(data)?;
        self.class_index = ci;
        self.num_classes = k;
        self.nominal = data.attributes().iter().map(|a| a.is_nominal()).collect();
        self.ranges = (0..data.num_attributes())
            .map(|a| {
                if !data.attributes()[a].is_numeric() {
                    return None;
                }
                let mut min = f64::INFINITY;
                let mut max = f64::NEG_INFINITY;
                for r in 0..data.num_instances() {
                    let v = data.value(r, a);
                    if !Value::is_missing(v) {
                        min = min.min(v);
                        max = max.max(v);
                    }
                }
                (min <= max).then_some((min, max))
            })
            .collect();
        self.rows.clear();
        self.classes.clear();
        for r in 0..data.num_instances() {
            let cv = data.value(r, ci);
            if Value::is_missing(cv) {
                continue;
            }
            self.rows.push(data.row(r).to_vec());
            self.classes.push(Value::as_index(cv));
        }
        if self.rows.is_empty() {
            return Err(AlgoError::Unsupported(
                "no instances with a class value".into(),
            ));
        }
        self.trained = true;
        Ok(())
    }

    fn distribution(&self, data: &Dataset, row: usize) -> Result<Vec<f64>> {
        if !self.trained {
            return Err(AlgoError::NotTrained);
        }
        let query = data.row(row);
        let kk = self.k.min(self.rows.len());
        // Bounded k-selection (O(n log k)), then votes accumulated in
        // (distance, index) order — the same order serial and pooled
        // scans produce, so the distribution is byte-identical.
        let neighbours = self.k_nearest(query, kk);
        let mut dist = vec![0.0; self.num_classes];
        for nb in neighbours {
            let w = match self.weighting {
                DistanceWeighting::None => 1.0,
                DistanceWeighting::Inverse => 1.0 / (nb.d + 1e-9),
                DistanceWeighting::Similarity => (1.0 - nb.d).max(0.0),
            };
            dist[self.classes[nb.idx]] += w;
        }
        normalize(&mut dist);
        Ok(dist)
    }

    fn describe(&self) -> String {
        if !self.trained {
            return "IBk: not trained".to_string();
        }
        format!(
            "IB{} instance-based classifier ({} stored instances, weighting {:?})",
            self.k,
            self.rows.len(),
            self.weighting
        )
    }
}

impl Configurable for IBk {
    fn option_descriptors(&self) -> Vec<OptionDescriptor> {
        vec![
            OptionDescriptor {
                flag: "-K",
                name: "numNeighbours",
                description: "number of nearest neighbours",
                default: "1".into(),
                kind: OptionKind::Integer {
                    min: 1,
                    max: 10_000,
                },
            },
            OptionDescriptor {
                flag: "-W",
                name: "distanceWeighting",
                description: "neighbour vote weighting",
                default: "none".into(),
                kind: OptionKind::Choice(vec![
                    "none".into(),
                    "inverse".into(),
                    "similarity".into(),
                ]),
            },
        ]
    }

    fn set_option(&mut self, flag: &str, value: &str) -> Result<()> {
        let ds = self.option_descriptors();
        descriptor_for(&ds, flag)?.validate(value)?;
        match flag {
            "-K" => self.k = value.parse().expect("validated"),
            "-W" => {
                self.weighting = match value {
                    "none" => DistanceWeighting::None,
                    "inverse" => DistanceWeighting::Inverse,
                    _ => DistanceWeighting::Similarity,
                }
            }
            _ => unreachable!("descriptor_for rejects unknown flags"),
        }
        Ok(())
    }

    fn get_option(&self, flag: &str) -> Result<String> {
        match flag {
            "-K" => Ok(self.k.to_string()),
            "-W" => Ok(match self.weighting {
                DistanceWeighting::None => "none",
                DistanceWeighting::Inverse => "inverse",
                DistanceWeighting::Similarity => "similarity",
            }
            .to_string()),
            _ => Err(AlgoError::BadOption {
                flag: flag.into(),
                message: "unknown option".into(),
            }),
        }
    }
}

impl Stateful for IBk {
    fn encode_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.put_usize(self.k);
        w.put_u64(match self.weighting {
            DistanceWeighting::None => 0,
            DistanceWeighting::Inverse => 1,
            DistanceWeighting::Similarity => 2,
        });
        w.put_bool(self.trained);
        if self.trained {
            w.put_usize(self.class_index);
            w.put_usize(self.num_classes);
            w.put_usize(self.rows.len());
            for row in &self.rows {
                w.put_f64_slice(row);
            }
            w.put_usize_slice(&self.classes);
            w.put_usize(self.ranges.len());
            for range in &self.ranges {
                match range {
                    None => w.put_bool(false),
                    Some((min, max)) => {
                        w.put_bool(true);
                        w.put_f64(*min);
                        w.put_f64(*max);
                    }
                }
            }
            w.put_usize(self.nominal.len());
            for &b in &self.nominal {
                w.put_bool(b);
            }
        }
        w.into_bytes()
    }

    fn decode_state(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = StateReader::new(bytes);
        self.k = r.get_usize()?;
        self.weighting = match r.get_u64()? {
            0 => DistanceWeighting::None,
            1 => DistanceWeighting::Inverse,
            2 => DistanceWeighting::Similarity,
            tag => return Err(AlgoError::BadState(format!("bad weighting tag {tag}"))),
        };
        self.trained = r.get_bool()?;
        if self.trained {
            self.class_index = r.get_usize()?;
            self.num_classes = r.get_usize()?;
            let n = r.get_usize()?;
            self.rows = (0..n.min(1 << 24))
                .map(|_| r.get_f64_vec())
                .collect::<Result<_>>()?;
            self.classes = r.get_usize_vec()?;
            let nr = r.get_usize()?;
            self.ranges = (0..nr.min(1 << 16))
                .map(|_| -> Result<Option<(f64, f64)>> {
                    Ok(if r.get_bool()? {
                        Some((r.get_f64()?, r.get_f64()?))
                    } else {
                        None
                    })
                })
                .collect::<Result<_>>()?;
            let nn = r.get_usize()?;
            self.nominal = (0..nn.min(1 << 16))
                .map(|_| r.get_bool())
                .collect::<Result<_>>()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{resubstitution_accuracy, separable_numeric, weather_nominal};
    use super::*;

    #[test]
    fn one_nn_memorises_training_data() {
        let ds = weather_nominal();
        let mut c = IBk::new();
        c.train(&ds).unwrap();
        assert_eq!(resubstitution_accuracy(&c, &ds), 1.0);
    }

    #[test]
    fn k3_on_separable_data() {
        let ds = separable_numeric(20);
        let mut c = IBk::with_k(3);
        c.train(&ds).unwrap();
        assert_eq!(resubstitution_accuracy(&c, &ds), 1.0);
    }

    #[test]
    fn inverse_weighting_votes() {
        let ds = separable_numeric(20);
        let mut c = IBk::with_k(5);
        c.set_option("-W", "inverse").unwrap();
        c.train(&ds).unwrap();
        assert_eq!(resubstitution_accuracy(&c, &ds), 1.0);
    }

    #[test]
    fn missing_values_maximal_distance() {
        let ds = weather_nominal();
        let mut c = IBk::new();
        c.train(&ds).unwrap();
        let mut q = ds.clone();
        for a in 0..4 {
            q.set_value(0, a, f64::NAN);
        }
        // All distances equal → first stored instance wins; should not
        // panic and must return a valid distribution.
        let d = c.distribution(&q, 0).unwrap();
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn options_roundtrip() {
        let mut c = IBk::new();
        c.set_option("-K", "7").unwrap();
        assert_eq!(c.get_option("-K").unwrap(), "7");
        assert!(c.set_option("-K", "0").is_err());
        assert!(c.set_option("-W", "bogus").is_err());
    }

    #[test]
    fn state_roundtrip() {
        let ds = separable_numeric(10);
        let mut c = IBk::with_k(3);
        c.train(&ds).unwrap();
        let mut c2 = IBk::new();
        c2.decode_state(&c.encode_state()).unwrap();
        for r in 0..ds.num_instances() {
            assert_eq!(c.predict(&ds, r).unwrap(), c2.predict(&ds, r).unwrap());
        }
    }

    #[test]
    fn untrained_errors() {
        let ds = weather_nominal();
        assert!(IBk::new().distribution(&ds, 0).is_err());
    }

    /// Reference k-selection: full stable sort by `(distance, index)`.
    fn full_sort_k_nearest(c: &IBk, query: &[f64], kk: usize) -> Vec<(f64, usize)> {
        let mut all: Vec<(f64, usize)> = c
            .rows
            .iter()
            .enumerate()
            .map(|(i, stored)| (c.distance(query, stored), i))
            .collect();
        all.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        all.truncate(kk);
        all
    }

    #[test]
    fn bounded_heap_matches_full_sort() {
        let ds = dm_data::corpus::breast_cancer();
        for k in [1usize, 3, 7, 25] {
            let mut c = IBk::with_k(k);
            c.train(&ds).unwrap();
            let kk = k.min(c.rows.len());
            for r in (0..ds.num_instances()).step_by(29) {
                let query = ds.row(r);
                let heap: Vec<(f64, usize)> = c
                    .k_nearest(query, kk)
                    .into_iter()
                    .map(|nb| (nb.d, nb.idx))
                    .collect();
                assert_eq!(heap, full_sort_k_nearest(&c, query, kk), "k={k} row={r}");
            }
        }
    }

    #[test]
    fn breast_cancer_predictions_pinned_against_reference() {
        // The bounded-heap scan must leave predictions exactly where
        // the full-sort reference puts them, on the paper's case study.
        let ds = dm_data::corpus::breast_cancer();
        let mut c = IBk::with_k(5);
        c.train(&ds).unwrap();
        let ci = ds.class_index().unwrap();
        let mut correct = 0usize;
        for r in 0..ds.num_instances() {
            let kk = 5.min(c.rows.len());
            let reference = full_sort_k_nearest(&c, ds.row(r), kk);
            let mut dist = vec![0.0; c.num_classes];
            for &(_, i) in &reference {
                dist[c.classes[i]] += 1.0;
            }
            let expected = crate::classifiers::argmax(&dist).unwrap();
            let got = c.predict(&ds, r).unwrap();
            assert_eq!(got, expected, "row {r}");
            if Value::as_index(ds.value(r, ci)) == got {
                correct += 1;
            }
        }
        // Absolute pin: 236 of 286 under the (distance, index) total
        // order. The old unstable selection landed on an arbitrary tie
        // subset at the k-boundary (230 on this corpus, where all-nominal
        // attributes make tied distances common); the bounded heap pins
        // the deterministic lowest-index tie-break instead.
        assert_eq!(correct, 236, "5-NN correct count moved");
    }

    #[test]
    fn parallel_scan_identical_to_serial() {
        // Force the pooled block scan (store >= MIN_PARALLEL_ROWS is
        // not reachable with the small corpora, so drop the threshold
        // by duplicating rows) and compare with the 1-thread path.
        let base = separable_numeric(40);
        let rows: Vec<usize> = (0..MIN_PARALLEL_ROWS + 50).map(|i| i % 40).collect();
        let big = base.select_rows(&rows);
        let mut c = IBk::with_k(9);
        c.set_option("-W", "inverse").unwrap();
        c.train(&big).unwrap();
        for r in (0..40).step_by(7) {
            let serial = crate::pool::with_threads(1, || c.distribution(&base, r).unwrap());
            for threads in [2, 8] {
                let pooled =
                    crate::pool::with_threads(threads, || c.distribution(&base, r).unwrap());
                let same = serial
                    .iter()
                    .zip(&pooled)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "threads={threads} row={r}");
            }
        }
    }
}
