//! AdaBoost.M1 (Freund & Schapire 1996): sequentially reweight the
//! training set toward the base learner's mistakes and combine members
//! by log-odds vote.

use super::{normalize, Classifier};
use crate::error::{AlgoError, Result};
use crate::options::{descriptor_for, Configurable, OptionDescriptor, OptionKind};
use crate::state::{StateReader, StateWriter, Stateful};
use dm_data::{Dataset, Value};

/// The AdaBoost.M1 meta classifier. Base learner is chosen by registry
/// name (`-W`, default `"DecisionStump"`) and must honour instance
/// weights (the count-based learners here do).
pub struct AdaBoostM1 {
    /// `-I`: maximum boosting rounds.
    iterations: usize,
    /// `-W`: base classifier registry name.
    base_name: String,
    members: Vec<(Box<dyn Classifier>, f64)>,
    num_classes: usize,
}

impl Default for AdaBoostM1 {
    fn default() -> Self {
        AdaBoostM1 {
            iterations: 10,
            base_name: "DecisionStump".to_string(),
            members: Vec::new(),
            num_classes: 0,
        }
    }
}

impl std::fmt::Debug for AdaBoostM1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaBoostM1")
            .field("iterations", &self.iterations)
            .field("base_name", &self.base_name)
            .field("members", &self.members.len())
            .finish()
    }
}

impl AdaBoostM1 {
    /// Create with defaults (10 × DecisionStump).
    pub fn new() -> AdaBoostM1 {
        AdaBoostM1::default()
    }

    /// Number of boosted members actually kept.
    pub fn num_members(&self) -> usize {
        self.members.len()
    }
}

impl Classifier for AdaBoostM1 {
    fn name(&self) -> &'static str {
        "AdaBoostM1"
    }

    fn train(&mut self, data: &Dataset) -> Result<()> {
        let (ci, k) = super::check_trainable(data)?;
        self.num_classes = k;
        self.members.clear();

        let n = data.num_instances();
        let mut working = data.clone();
        for r in 0..n {
            working.set_weight(r, 1.0 / n as f64);
        }

        for _round in 0..self.iterations {
            let mut member = crate::registry::make_classifier(&self.base_name)?;
            member.train(&working)?;
            // Weighted error.
            let mut err = 0.0;
            let mut wrong = vec![false; n];
            for r in 0..n {
                let cv = working.value(r, ci);
                if Value::is_missing(cv) {
                    continue;
                }
                let pred = member.predict(&working, r)?;
                if pred != Value::as_index(cv) {
                    err += working.weight(r);
                    wrong[r] = true;
                }
            }
            if err >= 0.5 {
                // Worse than chance: stop (keep at least one member).
                if self.members.is_empty() {
                    self.members.push((member, 1.0));
                }
                break;
            }
            let beta = if err <= 1e-12 {
                1e-12 / (1.0 - 1e-12)
            } else {
                err / (1.0 - err)
            };
            let alpha = (1.0 / beta).ln();
            self.members.push((member, alpha));
            if err <= 1e-12 {
                break; // perfect member dominates; further rounds are no-ops
            }
            // Reweight: multiply correct instances by beta, renormalise.
            let mut total = 0.0;
            for r in 0..n {
                let w = working.weight(r) * if wrong[r] { 1.0 } else { beta };
                working.set_weight(r, w);
                total += w;
            }
            for r in 0..n {
                working.set_weight(r, working.weight(r) / total);
            }
        }
        if self.members.is_empty() {
            return Err(AlgoError::Unsupported(
                "boosting produced no members".into(),
            ));
        }
        Ok(())
    }

    fn distribution(&self, data: &Dataset, row: usize) -> Result<Vec<f64>> {
        if self.members.is_empty() {
            return Err(AlgoError::NotTrained);
        }
        let mut votes = vec![0.0; self.num_classes];
        for (m, alpha) in &self.members {
            let pred = m.predict(data, row)?;
            if pred < votes.len() {
                votes[pred] += alpha;
            }
        }
        normalize(&mut votes);
        Ok(votes)
    }

    fn describe(&self) -> String {
        if self.members.is_empty() {
            return "AdaBoostM1: not trained".to_string();
        }
        let weights: Vec<String> = self
            .members
            .iter()
            .map(|(_, a)| format!("{a:.3}"))
            .collect();
        format!(
            "AdaBoostM1: {} x {} with vote weights [{}]",
            self.members.len(),
            self.base_name,
            weights.join(", ")
        )
    }
}

impl Configurable for AdaBoostM1 {
    fn option_descriptors(&self) -> Vec<OptionDescriptor> {
        vec![
            OptionDescriptor {
                flag: "-I",
                name: "numIterations",
                description: "maximum boosting rounds",
                default: "10".into(),
                kind: OptionKind::Integer {
                    min: 1,
                    max: 10_000,
                },
            },
            OptionDescriptor {
                flag: "-W",
                name: "baseClassifier",
                description: "registry name of the (weight-aware) base classifier",
                default: "DecisionStump".into(),
                kind: OptionKind::Text,
            },
        ]
    }

    fn set_option(&mut self, flag: &str, value: &str) -> Result<()> {
        let ds = self.option_descriptors();
        descriptor_for(&ds, flag)?.validate(value)?;
        match flag {
            "-I" => self.iterations = value.parse().expect("validated"),
            "-W" => {
                crate::registry::make_classifier(value)?; // validate name
                self.base_name = value.to_string();
            }
            _ => unreachable!("descriptor_for rejects unknown flags"),
        }
        Ok(())
    }

    fn get_option(&self, flag: &str) -> Result<String> {
        match flag {
            "-I" => Ok(self.iterations.to_string()),
            "-W" => Ok(self.base_name.clone()),
            _ => Err(AlgoError::BadOption {
                flag: flag.into(),
                message: "unknown option".into(),
            }),
        }
    }
}

impl Stateful for AdaBoostM1 {
    fn encode_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.put_usize(self.iterations);
        w.put_str(&self.base_name);
        w.put_usize(self.num_classes);
        w.put_usize(self.members.len());
        for (m, alpha) in &self.members {
            w.put_f64(*alpha);
            w.put_bytes(&m.encode_state());
        }
        w.into_bytes()
    }

    fn decode_state(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = StateReader::new(bytes);
        self.iterations = r.get_usize()?;
        self.base_name = r.get_str()?;
        self.num_classes = r.get_usize()?;
        let n = r.get_usize()?;
        if n > 1 << 16 {
            return Err(AlgoError::BadState("absurd member count".into()));
        }
        self.members.clear();
        for _ in 0..n {
            let alpha = r.get_f64()?;
            let payload = r.get_bytes()?;
            let mut m = crate::registry::make_classifier(&self.base_name)?;
            m.decode_state(&payload)?;
            self.members.push((m, alpha));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{resubstitution_accuracy, weather_nominal};
    use super::*;

    #[test]
    fn boosting_improves_on_single_stump() {
        let ds = weather_nominal();
        let mut stump = crate::registry::make_classifier("DecisionStump").unwrap();
        stump.train(&ds).unwrap();
        let stump_acc = resubstitution_accuracy(stump.as_ref(), &ds);
        let mut boost = AdaBoostM1::new();
        boost.set_option("-I", "20").unwrap();
        boost.train(&ds).unwrap();
        let boost_acc = resubstitution_accuracy(&boost, &ds);
        assert!(
            boost_acc >= stump_acc,
            "boosted {boost_acc} should be >= stump {stump_acc}"
        );
        assert!(boost.num_members() > 1);
    }

    #[test]
    fn breast_cancer_boosting_trains() {
        let ds = dm_data::corpus::breast_cancer();
        let mut boost = AdaBoostM1::new();
        boost.train(&ds).unwrap();
        let acc = resubstitution_accuracy(&boost, &ds);
        assert!(acc > 0.7, "accuracy {acc}");
    }

    #[test]
    fn state_roundtrip() {
        let ds = weather_nominal();
        let mut b = AdaBoostM1::new();
        b.train(&ds).unwrap();
        let mut b2 = AdaBoostM1::new();
        b2.decode_state(&b.encode_state()).unwrap();
        for r in 0..ds.num_instances() {
            assert_eq!(b.predict(&ds, r).unwrap(), b2.predict(&ds, r).unwrap());
        }
    }

    #[test]
    fn unknown_base_rejected() {
        let mut b = AdaBoostM1::new();
        assert!(b.set_option("-W", "Nope").is_err());
    }

    #[test]
    fn untrained_errors() {
        let ds = weather_nominal();
        assert!(AdaBoostM1::new().distribution(&ds, 0).is_err());
    }
}
