//! PRISM (Cendrowska 1987): a covering rule learner for nominal data.
//! For each class, repeatedly build a maximally precise conjunctive rule
//! and remove the instances it covers, until the class is covered.

use super::{check_trainable, Classifier};
use crate::error::{AlgoError, Result};
use crate::options::{Configurable, OptionDescriptor};
use crate::state::{StateReader, StateWriter, Stateful};
use dm_data::{Dataset, Value};

/// One `attr = value` condition.
#[derive(Debug, Clone, PartialEq)]
struct Condition {
    attr: usize,
    value: usize,
}

/// A conjunctive rule predicting `class`.
#[derive(Debug, Clone, PartialEq)]
struct Rule {
    class: usize,
    conditions: Vec<Condition>,
}

impl Rule {
    fn covers(&self, data: &Dataset, row: usize) -> bool {
        self.conditions.iter().all(|c| {
            let v = data.value(row, c.attr);
            !Value::is_missing(v) && Value::as_index(v) == c.value
        })
    }
}

/// The PRISM rule learner. Requires all-nominal attributes without
/// missing values in the predictive attributes (WEKA's PRISM has the
/// same restriction); instances with missing values are skipped during
/// training and fall through to the default class at prediction time.
#[derive(Debug, Clone, Default)]
pub struct Prism {
    rules: Vec<Rule>,
    default_class: usize,
    num_classes: usize,
    attr_names: Vec<String>,
    trained: bool,
}

impl Prism {
    /// Create an untrained PRISM.
    pub fn new() -> Prism {
        Prism::default()
    }

    /// Number of learned rules.
    pub fn num_rules(&self) -> usize {
        self.rules.len()
    }
}

impl Classifier for Prism {
    fn name(&self) -> &'static str {
        "Prism"
    }

    fn train(&mut self, data: &Dataset) -> Result<()> {
        let (ci, k) = check_trainable(data)?;
        for a in 0..data.num_attributes() {
            if a != ci && !data.attributes()[a].is_nominal() {
                return Err(AlgoError::Unsupported(
                    "Prism requires nominal attributes (discretize first)".into(),
                ));
            }
        }
        self.attr_names = data
            .attributes()
            .iter()
            .map(|a| a.name().to_string())
            .collect();
        self.num_classes = k;
        let counts = data.class_counts()?;
        self.default_class = super::argmax(&counts).expect("k >= 2");
        self.rules.clear();

        // Usable training rows: complete in all predictive attributes.
        let complete: Vec<usize> = (0..data.num_instances())
            .filter(|&r| (0..data.num_attributes()).all(|a| !Value::is_missing(data.value(r, a))))
            .collect();

        for class in 0..k {
            // PRISM builds each rule against the instances not yet
            // covered by this class's earlier rules (Cendrowska's E).
            let mut remaining: Vec<usize> = complete.clone();
            let mut uncovered: Vec<usize> = complete
                .iter()
                .copied()
                .filter(|&r| Value::as_index(data.value(r, ci)) == class)
                .collect();
            let mut guard = 0usize;
            while !uncovered.is_empty() && guard < 10_000 {
                guard += 1;
                // Build one rule against the remaining set.
                let mut pool: Vec<usize> = remaining.clone();
                let mut conditions: Vec<Condition> = Vec::new();
                loop {
                    // Is the rule already perfect?
                    let positives = pool
                        .iter()
                        .filter(|&&r| Value::as_index(data.value(r, ci)) == class)
                        .count();
                    if positives == pool.len() || conditions.len() >= data.num_attributes() - 1 {
                        break;
                    }
                    // Choose the condition with the best precision
                    // (ties broken by coverage, as in PRISM).
                    let mut best: Option<(f64, usize, Condition)> = None;
                    for a in 0..data.num_attributes() {
                        if a == ci || conditions.iter().any(|c| c.attr == a) {
                            continue;
                        }
                        let arity = data.attributes()[a].num_labels();
                        for v in 0..arity {
                            let mut pos = 0usize;
                            let mut tot = 0usize;
                            for &r in &pool {
                                if Value::as_index(data.value(r, a)) == v {
                                    tot += 1;
                                    if Value::as_index(data.value(r, ci)) == class {
                                        pos += 1;
                                    }
                                }
                            }
                            if tot == 0 {
                                continue;
                            }
                            let p = pos as f64 / tot as f64;
                            let better = match &best {
                                None => true,
                                Some((bp, btot, _)) => {
                                    p > *bp + 1e-12 || ((p - *bp).abs() <= 1e-12 && tot > *btot)
                                }
                            };
                            if better {
                                best = Some((p, tot, Condition { attr: a, value: v }));
                            }
                        }
                    }
                    match best {
                        None => break,
                        Some((_, _, cond)) => {
                            pool.retain(|&r| {
                                Value::as_index(data.value(r, cond.attr)) == cond.value
                            });
                            conditions.push(cond);
                        }
                    }
                }
                if conditions.is_empty() {
                    break; // cannot refine further; avoid an empty rule
                }
                let rule = Rule { class, conditions };
                let before = uncovered.len();
                uncovered.retain(|&r| !rule.covers(data, r));
                if uncovered.len() == before {
                    break; // rule made no progress
                }
                remaining.retain(|&r| !rule.covers(data, r));
                self.rules.push(rule);
            }
        }
        self.trained = true;
        Ok(())
    }

    fn distribution(&self, data: &Dataset, row: usize) -> Result<Vec<f64>> {
        if !self.trained {
            return Err(AlgoError::NotTrained);
        }
        let mut dist = vec![0.0; self.num_classes];
        let class = self
            .rules
            .iter()
            .find(|r| r.covers(data, row))
            .map(|r| r.class)
            .unwrap_or(self.default_class);
        dist[class] = 1.0;
        Ok(dist)
    }

    fn describe(&self) -> String {
        if !self.trained {
            return "Prism: not trained".to_string();
        }
        let mut out = String::from("Prism rules\n----------\n");
        for r in &self.rules {
            let conds: Vec<String> = r
                .conditions
                .iter()
                .map(|c| format!("{} = #{}", self.attr_names[c.attr], c.value))
                .collect();
            out.push_str(&format!(
                "If {} then class #{}\n",
                conds.join(" and "),
                r.class
            ));
        }
        out.push_str(&format!("Otherwise class #{}\n", self.default_class));
        out
    }
}

impl Configurable for Prism {
    fn option_descriptors(&self) -> Vec<OptionDescriptor> {
        Vec::new()
    }

    fn set_option(&mut self, flag: &str, _value: &str) -> Result<()> {
        Err(AlgoError::BadOption {
            flag: flag.into(),
            message: "Prism has no options".into(),
        })
    }

    fn get_option(&self, flag: &str) -> Result<String> {
        Err(AlgoError::BadOption {
            flag: flag.into(),
            message: "Prism has no options".into(),
        })
    }
}

impl Stateful for Prism {
    fn encode_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.put_bool(self.trained);
        if self.trained {
            w.put_usize(self.num_classes);
            w.put_usize(self.default_class);
            w.put_usize(self.attr_names.len());
            for n in &self.attr_names {
                w.put_str(n);
            }
            w.put_usize(self.rules.len());
            for r in &self.rules {
                w.put_usize(r.class);
                w.put_usize(r.conditions.len());
                for c in &r.conditions {
                    w.put_usize(c.attr);
                    w.put_usize(c.value);
                }
            }
        }
        w.into_bytes()
    }

    fn decode_state(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = StateReader::new(bytes);
        self.trained = r.get_bool()?;
        if self.trained {
            self.num_classes = r.get_usize()?;
            self.default_class = r.get_usize()?;
            let n = r.get_usize()?;
            if n > 1 << 20 {
                return Err(AlgoError::BadState("absurd name count".into()));
            }
            self.attr_names = (0..n).map(|_| r.get_str()).collect::<Result<_>>()?;
            let nr = r.get_usize()?;
            if nr > 1 << 20 {
                return Err(AlgoError::BadState("absurd rule count".into()));
            }
            self.rules = (0..nr)
                .map(|_| -> Result<Rule> {
                    let class = r.get_usize()?;
                    let nc = r.get_usize()?;
                    if nc > 1 << 16 {
                        return Err(AlgoError::BadState("absurd condition count".into()));
                    }
                    let conditions = (0..nc)
                        .map(|_| -> Result<Condition> {
                            Ok(Condition {
                                attr: r.get_usize()?,
                                value: r.get_usize()?,
                            })
                        })
                        .collect::<Result<_>>()?;
                    Ok(Rule { class, conditions })
                })
                .collect::<Result<_>>()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{resubstitution_accuracy, weather_nominal};
    use super::*;

    #[test]
    fn covers_weather_perfectly() {
        // Play-tennis is noise-free; PRISM should reach 100% resub.
        let ds = weather_nominal();
        let mut p = Prism::new();
        p.train(&ds).unwrap();
        assert_eq!(resubstitution_accuracy(&p, &ds), 1.0);
        assert!(p.num_rules() >= 2);
    }

    #[test]
    fn rejects_numeric_attributes() {
        let ds = super::super::test_support::weather_numeric();
        let mut p = Prism::new();
        assert!(matches!(p.train(&ds), Err(AlgoError::Unsupported(_))));
    }

    #[test]
    fn describe_lists_rules() {
        let ds = weather_nominal();
        let mut p = Prism::new();
        p.train(&ds).unwrap();
        let text = p.describe();
        assert!(text.contains("If "));
        assert!(text.contains("Otherwise"));
    }

    #[test]
    fn state_roundtrip() {
        let ds = weather_nominal();
        let mut p = Prism::new();
        p.train(&ds).unwrap();
        let mut p2 = Prism::new();
        p2.decode_state(&p.encode_state()).unwrap();
        for r in 0..ds.num_instances() {
            assert_eq!(p.predict(&ds, r).unwrap(), p2.predict(&ds, r).unwrap());
        }
    }

    #[test]
    fn missing_values_fall_to_default() {
        let mut ds = weather_nominal();
        let mut p = Prism::new();
        p.train(&ds).unwrap();
        for a in 0..4 {
            ds.set_value(0, a, f64::NAN);
        }
        let c = p.predict(&ds, 0).unwrap();
        assert_eq!(c, 0); // majority class: yes
    }

    #[test]
    fn untrained_errors() {
        let ds = weather_nominal();
        assert!(Prism::new().distribution(&ds, 0).is_err());
    }
}
