//! Signal processing: "Use of the Triana workflow engine also allows us
//! to utilize the Signal Processing toolbox available with algorithms
//! such as Fast Fourier Transform and various spectral analysis
//! algorithms" (§2). This module is that toolbox's computational core:
//! a radix-2 FFT (with zero-padding for arbitrary lengths), inverse
//! FFT, window functions, power-spectrum estimation, and spectral peak
//! detection.

use crate::error::{AlgoError, Result};

/// A complex number as `(re, im)` — kept as a plain tuple struct so the
/// FFT inner loop stays allocation- and abstraction-free.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Construct from parts.
    pub fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// Squared magnitude.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }

    fn mul(self, other: Complex) -> Complex {
        Complex {
            re: self.re * other.re - self.im * other.im,
            im: self.re * other.im + self.im * other.re,
        }
    }

    fn add(self, other: Complex) -> Complex {
        Complex {
            re: self.re + other.re,
            im: self.im + other.im,
        }
    }

    fn sub(self, other: Complex) -> Complex {
        Complex {
            re: self.re - other.re,
            im: self.im - other.im,
        }
    }
}

/// Next power of two ≥ `n` (and ≥ 1).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place iterative radix-2 Cooley–Tukey FFT. `data.len()` must be a
/// power of two. `inverse` selects the inverse transform (including the
/// 1/N normalisation).
pub fn fft_in_place(data: &mut [Complex], inverse: bool) -> Result<()> {
    let n = data.len();
    if n == 0 || !n.is_power_of_two() {
        return Err(AlgoError::Unsupported(format!(
            "FFT length {n} is not a power of two (zero-pad via fft())"
        )));
    }
    if n == 1 {
        return Ok(()); // the transform of a single sample is itself
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let angle = sign * std::f64::consts::TAU / len as f64;
        let w_len = Complex::new(angle.cos(), angle.sin());
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let a = data[start + k];
                let b = data[start + k + len / 2].mul(w);
                data[start + k] = a.add(b);
                data[start + k + len / 2] = a.sub(b);
                w = w.mul(w_len);
            }
        }
        len <<= 1;
    }
    if inverse {
        let scale = 1.0 / n as f64;
        for x in data.iter_mut() {
            x.re *= scale;
            x.im *= scale;
        }
    }
    Ok(())
}

/// FFT of a real signal, zero-padded to the next power of two. Returns
/// the full complex spectrum (length = padded size).
pub fn fft(signal: &[f64]) -> Result<Vec<Complex>> {
    if signal.is_empty() {
        return Err(AlgoError::Unsupported("FFT of an empty signal".into()));
    }
    let n = next_pow2(signal.len());
    let mut data: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
    data.resize(n, Complex::default());
    fft_in_place(&mut data, false)?;
    Ok(data)
}

/// Inverse FFT back to (complex) time domain.
pub fn ifft(spectrum: &[Complex]) -> Result<Vec<Complex>> {
    let mut data = spectrum.to_vec();
    fft_in_place(&mut data, true)?;
    Ok(data)
}

/// Window functions for spectral estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Window {
    /// No tapering.
    Rectangular,
    /// Hann (raised cosine).
    Hann,
    /// Hamming.
    Hamming,
    /// Blackman.
    Blackman,
}

impl Window {
    /// Window coefficient at sample `i` of `n`.
    pub fn coefficient(self, i: usize, n: usize) -> f64 {
        if n <= 1 {
            return 1.0;
        }
        let x = std::f64::consts::TAU * i as f64 / (n - 1) as f64;
        match self {
            Window::Rectangular => 1.0,
            Window::Hann => 0.5 * (1.0 - x.cos()),
            Window::Hamming => 0.54 - 0.46 * x.cos(),
            Window::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
        }
    }

    /// Apply in place.
    pub fn apply(self, signal: &mut [f64]) {
        let n = signal.len();
        for (i, x) in signal.iter_mut().enumerate() {
            *x *= self.coefficient(i, n);
        }
    }
}

/// One bin of a power spectrum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectrumBin {
    /// Frequency in Hz (given the sample rate passed to
    /// [`power_spectrum`]).
    pub frequency: f64,
    /// Power (|X|² / N).
    pub power: f64,
}

/// Single-sided power spectrum of a real signal: window, FFT, fold.
/// Returns `padded/2 + 1` bins.
pub fn power_spectrum(
    signal: &[f64],
    sample_rate: f64,
    window: Window,
) -> Result<Vec<SpectrumBin>> {
    if sample_rate <= 0.0 {
        return Err(AlgoError::Unsupported(format!(
            "sample rate {sample_rate} must be > 0"
        )));
    }
    let mut windowed = signal.to_vec();
    window.apply(&mut windowed);
    let spectrum = fft(&windowed)?;
    let n = spectrum.len();
    let bins = n / 2 + 1;
    Ok((0..bins)
        .map(|k| {
            // Fold the negative frequencies into the positive bins
            // (except DC and Nyquist).
            let mut power = spectrum[k].norm_sq() / n as f64;
            if k != 0 && k != n / 2 {
                power *= 2.0;
            }
            SpectrumBin {
                frequency: k as f64 * sample_rate / n as f64,
                power,
            }
        })
        .collect())
}

/// Frequencies of local maxima in a power spectrum exceeding
/// `threshold × max_power`, strongest first.
pub fn spectral_peaks(spectrum: &[SpectrumBin], threshold: f64) -> Vec<SpectrumBin> {
    let max_power = spectrum.iter().map(|b| b.power).fold(0.0, f64::max);
    let mut peaks: Vec<SpectrumBin> = spectrum
        .windows(3)
        .filter(|w| {
            w[1].power > w[0].power
                && w[1].power >= w[2].power
                && w[1].power >= threshold * max_power
        })
        .map(|w| w[1])
        .collect();
    peaks.sort_by(|a, b| b.power.partial_cmp(&a.power).expect("finite power"));
    peaks
}

/// Autocorrelation of a real signal via the Wiener–Khinchin theorem
/// (FFT → |X|² → IFFT), normalised so lag 0 equals 1.
pub fn autocorrelation(signal: &[f64]) -> Result<Vec<f64>> {
    let n = signal.len();
    if n == 0 {
        return Err(AlgoError::Unsupported(
            "autocorrelation of an empty signal".into(),
        ));
    }
    // Zero-pad to 2n to avoid circular wrap-around.
    let padded = next_pow2(2 * n);
    let mut data: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
    data.resize(padded, Complex::default());
    fft_in_place(&mut data, false)?;
    for x in data.iter_mut() {
        let p = x.norm_sq();
        *x = Complex::new(p, 0.0);
    }
    fft_in_place(&mut data, true)?;
    let r0 = data[0].re.max(1e-300);
    Ok((0..n).map(|lag| data[lag].re / r0).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(freq: f64, sample_rate: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (std::f64::consts::TAU * freq * i as f64 / sample_rate).sin())
            .collect()
    }

    #[test]
    fn fft_roundtrip() {
        let signal: Vec<f64> = (0..64)
            .map(|i| (i as f64 * 0.37).sin() + 0.2 * i as f64)
            .collect();
        let spectrum = fft(&signal).unwrap();
        let back = ifft(&spectrum).unwrap();
        for (orig, rec) in signal.iter().zip(&back) {
            assert!((orig - rec.re).abs() < 1e-9);
            assert!(rec.im.abs() < 1e-9);
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut signal = vec![0.0; 16];
        signal[0] = 1.0;
        let spectrum = fft(&signal).unwrap();
        for bin in &spectrum {
            assert!((bin.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_linearity() {
        let a: Vec<f64> = (0..32).map(|i| (i as f64).cos()).collect();
        let b: Vec<f64> = (0..32).map(|i| (i as f64 * 2.0).sin()).collect();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let fa = fft(&a).unwrap();
        let fb = fft(&b).unwrap();
        let fs = fft(&sum).unwrap();
        for i in 0..32 {
            assert!((fs[i].re - fa[i].re - fb[i].re).abs() < 1e-9);
            assert!((fs[i].im - fa[i].im - fb[i].im).abs() < 1e-9);
        }
    }

    #[test]
    fn non_pow2_lengths_zero_padded() {
        let signal = vec![1.0; 100];
        let spectrum = fft(&signal).unwrap();
        assert_eq!(spectrum.len(), 128);
    }

    #[test]
    fn in_place_rejects_bad_lengths() {
        let mut data = vec![Complex::default(); 12];
        assert!(fft_in_place(&mut data, false).is_err());
        assert!(fft(&[]).is_err());
    }

    #[test]
    fn power_spectrum_finds_tone() {
        // 50 Hz tone sampled at 1 kHz.
        let signal = sine(50.0, 1000.0, 512);
        let spectrum = power_spectrum(&signal, 1000.0, Window::Hann).unwrap();
        let peak = spectrum
            .iter()
            .max_by(|a, b| a.power.partial_cmp(&b.power).unwrap())
            .unwrap();
        assert!(
            (peak.frequency - 50.0).abs() < 2.0,
            "peak at {}",
            peak.frequency
        );
    }

    #[test]
    fn spectral_peaks_separate_two_tones() {
        let mut signal = sine(50.0, 1000.0, 1024);
        for (i, x) in signal.iter_mut().enumerate() {
            *x += 0.5 * (std::f64::consts::TAU * 180.0 * i as f64 / 1000.0).sin();
        }
        let spectrum = power_spectrum(&signal, 1000.0, Window::Hann).unwrap();
        let peaks = spectral_peaks(&spectrum, 0.05);
        assert!(peaks.len() >= 2, "found {} peaks", peaks.len());
        assert!((peaks[0].frequency - 50.0).abs() < 2.0);
        assert!((peaks[1].frequency - 180.0).abs() < 2.0);
    }

    #[test]
    fn windows_taper_edges() {
        for w in [Window::Hann, Window::Hamming, Window::Blackman] {
            assert!(w.coefficient(0, 64) < 0.1, "{w:?} start");
            assert!(w.coefficient(32, 65) > 0.9, "{w:?} centre");
        }
        assert_eq!(Window::Rectangular.coefficient(0, 64), 1.0);
        assert_eq!(Window::Hann.coefficient(0, 1), 1.0); // degenerate n
    }

    #[test]
    fn autocorrelation_of_periodic_signal() {
        // Period-20 square-ish wave: autocorrelation peaks near lag 20.
        let signal: Vec<f64> = (0..400)
            .map(|i| if (i / 10) % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let ac = autocorrelation(&signal).unwrap();
        assert!((ac[0] - 1.0).abs() < 1e-9);
        assert!(ac[20] > 0.8, "lag-20 autocorrelation {}", ac[20]);
        assert!(ac[10] < -0.8, "lag-10 (half period) {}", ac[10]);
    }

    #[test]
    fn bad_sample_rate_rejected() {
        assert!(power_spectrum(&[1.0, 2.0], 0.0, Window::Hann).is_err());
    }
}
