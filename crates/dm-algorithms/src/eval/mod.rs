//! Model evaluation: confusion matrices, accuracy/kappa, hold-out and
//! k-fold cross-validation — the paper's "testing the discovered
//! knowledge" requirement (§3) and the Grid-WEKA-style distributed
//! cross-validation used by the parallel-enactment experiment (E10).

use crate::classifiers::Classifier;
use crate::error::{AlgoError, Result};
use crate::pool;
use dm_data::split::CrossValidation;
use dm_data::{Dataset, Value};

/// Accumulated evaluation results for a nominal-class classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// `matrix[actual][predicted]` (weighted counts).
    matrix: Vec<Vec<f64>>,
    class_labels: Vec<String>,
    total: f64,
}

impl Evaluation {
    /// Create an empty evaluation for `k` classes.
    pub fn new(class_labels: Vec<String>) -> Evaluation {
        let k = class_labels.len();
        Evaluation {
            matrix: vec![vec![0.0; k]; k],
            class_labels,
            total: 0.0,
        }
    }

    /// Record one prediction.
    pub fn record(&mut self, actual: usize, predicted: usize, weight: f64) {
        self.matrix[actual][predicted] += weight;
        self.total += weight;
    }

    /// Evaluate `classifier` on every row of `test` and accumulate.
    pub fn evaluate(&mut self, classifier: &dyn Classifier, test: &Dataset) -> Result<()> {
        let ci = test
            .class_index()
            .ok_or(AlgoError::Data(dm_data::DataError::NoClass))?;
        for r in 0..test.num_instances() {
            let cv = test.value(r, ci);
            if Value::is_missing(cv) {
                continue;
            }
            let predicted = classifier.predict(test, r)?;
            self.record(Value::as_index(cv), predicted, test.weight(r));
        }
        Ok(())
    }

    /// The confusion matrix (`[actual][predicted]`).
    pub fn confusion_matrix(&self) -> &[Vec<f64>] {
        &self.matrix
    }

    /// Total weight of evaluated instances.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Correctly classified weight.
    pub fn correct(&self) -> f64 {
        (0..self.matrix.len()).map(|i| self.matrix[i][i]).sum()
    }

    /// Classification accuracy in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        if self.total <= 0.0 {
            0.0
        } else {
            self.correct() / self.total
        }
    }

    /// Error rate (`1 − accuracy`).
    pub fn error_rate(&self) -> f64 {
        1.0 - self.accuracy()
    }

    /// Cohen's kappa statistic.
    pub fn kappa(&self) -> f64 {
        if self.total <= 0.0 {
            return 0.0;
        }
        let k = self.matrix.len();
        let po = self.accuracy();
        let mut pe = 0.0;
        for c in 0..k {
            let row: f64 = self.matrix[c].iter().sum();
            let col: f64 = (0..k).map(|r| self.matrix[r][c]).sum();
            pe += (row / self.total) * (col / self.total);
        }
        if (1.0 - pe).abs() < 1e-12 {
            0.0
        } else {
            (po - pe) / (1.0 - pe)
        }
    }

    /// Recall of class `c` (true positives / actual positives).
    pub fn recall(&self, c: usize) -> f64 {
        let row: f64 = self.matrix[c].iter().sum();
        if row <= 0.0 {
            0.0
        } else {
            self.matrix[c][c] / row
        }
    }

    /// Precision of class `c` (true positives / predicted positives).
    pub fn precision(&self, c: usize) -> f64 {
        let col: f64 = (0..self.matrix.len()).map(|r| self.matrix[r][c]).sum();
        if col <= 0.0 {
            0.0
        } else {
            self.matrix[c][c] / col
        }
    }

    /// F1 score of class `c`.
    pub fn f1(&self, c: usize) -> f64 {
        let (p, r) = (self.precision(c), self.recall(c));
        if p + r <= 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// WEKA-style textual summary with the confusion matrix.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Correctly Classified Instances    {:.1}  ({:.4} %)\n",
            self.correct(),
            100.0 * self.accuracy()
        ));
        out.push_str(&format!(
            "Incorrectly Classified Instances  {:.1}  ({:.4} %)\n",
            self.total() - self.correct(),
            100.0 * self.error_rate()
        ));
        out.push_str(&format!(
            "Kappa statistic                   {:.4}\n",
            self.kappa()
        ));
        out.push_str("\n=== Confusion Matrix ===\n");
        for (actual, row) in self.matrix.iter().enumerate() {
            let cells: Vec<String> = row.iter().map(|x| format!("{x:6.1}")).collect();
            out.push_str(&format!(
                "{} | <- classified as {}\n",
                cells.join(" "),
                self.class_labels[actual]
            ));
        }
        out
    }
}

/// Train/test evaluation: train `make()` on `train`, evaluate on `test`.
pub fn evaluate_split<F>(make: F, train: &Dataset, test: &Dataset) -> Result<Evaluation>
where
    F: FnOnce() -> Result<Box<dyn Classifier>>,
{
    let labels = train.class_attribute()?.labels().to_vec();
    let mut c = make()?;
    c.train(train)?;
    let mut eval = Evaluation::new(labels);
    eval.evaluate(c.as_ref(), test)?;
    Ok(eval)
}

/// Stratified k-fold cross-validation: returns the pooled evaluation
/// over all folds (WEKA's default protocol).
pub fn cross_validate<F>(make: F, data: &Dataset, folds: usize, seed: u64) -> Result<Evaluation>
where
    F: Fn() -> Result<Box<dyn Classifier>>,
{
    let labels = data.class_attribute()?.labels().to_vec();
    let cv = CrossValidation::stratified(data, folds, seed)?;
    let mut eval = Evaluation::new(labels);
    for fold in 0..cv.k() {
        let (train, test) = cv.split(data, fold);
        let mut c = make()?;
        c.train(&train)?;
        eval.evaluate(c.as_ref(), &test)?;
    }
    Ok(eval)
}

/// Fold-parallel stratified cross-validation — the distribution Grid
/// WEKA is built around ("cross-validation … distributed across several
/// computers", §2 of the paper). Folds train and test concurrently on
/// the shared compute pool ([`crate::pool`]), so CV over an ensemble
/// cannot oversubscribe the host: member training inside a fold runs
/// inline on that fold's worker. Fold results are folded in fold order,
/// making the pooled result *identical* to [`cross_validate`] with the
/// same seed. A panicking fold (factory or classifier) re-raises its
/// panic payload on the caller — it no longer aborts the process the
/// way the old `join().expect("fold thread panicked")` did.
pub fn cross_validate_parallel<F>(
    make: F,
    data: &Dataset,
    folds: usize,
    seed: u64,
) -> Result<Evaluation>
where
    F: Fn() -> Result<Box<dyn Classifier>> + Sync,
{
    let labels = data.class_attribute()?.labels().to_vec();
    let cv = CrossValidation::stratified(data, folds, seed)?;
    let fold_labels = &labels;
    let results: Vec<Result<Evaluation>> = pool::parallel_map(cv.k(), |fold| {
        let (train, test) = cv.split(data, fold);
        let mut c = make()?;
        c.train(&train)?;
        let mut eval = Evaluation::new(fold_labels.clone());
        eval.evaluate(c.as_ref(), &test)?;
        Ok(eval)
    });

    let mut pooled = Evaluation::new(labels);
    for result in results {
        let fold_eval = result?;
        for (actual, row) in fold_eval.matrix.iter().enumerate() {
            for (predicted, &w) in row.iter().enumerate() {
                if w > 0.0 {
                    pooled.record(actual, predicted, w);
                }
            }
        }
    }
    Ok(pooled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifiers::test_support::weather_nominal;
    use crate::registry::make_classifier;

    #[test]
    fn confusion_matrix_accumulates() {
        let mut e = Evaluation::new(vec!["a".into(), "b".into()]);
        e.record(0, 0, 1.0);
        e.record(0, 1, 1.0);
        e.record(1, 1, 2.0);
        assert_eq!(e.total(), 4.0);
        assert_eq!(e.correct(), 3.0);
        assert!((e.accuracy() - 0.75).abs() < 1e-12);
        assert!((e.recall(0) - 0.5).abs() < 1e-12);
        assert!((e.precision(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!(e.f1(1) > 0.0);
    }

    #[test]
    fn kappa_zero_for_chance() {
        // A classifier predicting only class 0 on a 50/50 set.
        let mut e = Evaluation::new(vec!["a".into(), "b".into()]);
        e.record(0, 0, 50.0);
        e.record(1, 0, 50.0);
        assert!(e.kappa().abs() < 1e-12);
    }

    #[test]
    fn kappa_one_for_perfect() {
        let mut e = Evaluation::new(vec!["a".into(), "b".into()]);
        e.record(0, 0, 60.0);
        e.record(1, 1, 40.0);
        assert!((e.kappa() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn split_evaluation_runs() {
        let ds = weather_nominal();
        let (train, test) = dm_data::split::train_test_split(&ds, 0.7, 1).unwrap();
        let eval = evaluate_split(|| make_classifier("NaiveBayes"), &train, &test).unwrap();
        assert_eq!(eval.total() as usize, test.num_instances());
    }

    #[test]
    fn cross_validation_covers_every_instance() {
        let ds = dm_data::corpus::breast_cancer();
        let eval = cross_validate(|| make_classifier("ZeroR"), &ds, 10, 42).unwrap();
        assert_eq!(eval.total() as usize, 286);
        // ZeroR's CV accuracy equals the majority prior.
        assert!((eval.accuracy() - 201.0 / 286.0).abs() < 1e-9);
    }

    #[test]
    fn j48_cv_beats_zero_r_on_breast_cancer() {
        let ds = dm_data::corpus::breast_cancer();
        let zero = cross_validate(|| make_classifier("ZeroR"), &ds, 10, 1).unwrap();
        let j48 = cross_validate(|| make_classifier("J48"), &ds, 10, 1).unwrap();
        assert!(
            j48.accuracy() >= zero.accuracy() - 0.02,
            "J48 {} vs ZeroR {}",
            j48.accuracy(),
            zero.accuracy()
        );
    }

    #[test]
    fn parallel_cv_identical_to_serial() {
        let ds = dm_data::corpus::breast_cancer();
        for name in ["ZeroR", "NaiveBayes", "J48"] {
            let serial = cross_validate(|| make_classifier(name), &ds, 10, 7).unwrap();
            let parallel = cross_validate_parallel(|| make_classifier(name), &ds, 10, 7).unwrap();
            assert_eq!(
                serial.confusion_matrix(),
                parallel.confusion_matrix(),
                "{name} diverged"
            );
        }
    }

    #[test]
    fn parallel_cv_propagates_errors() {
        let ds = dm_data::corpus::breast_cancer();
        let err = cross_validate_parallel(|| make_classifier("NoSuch"), &ds, 3, 1);
        assert!(err.is_err());
    }

    #[test]
    fn parallel_cv_propagates_panic_payload() {
        // Regression: a panicking fold used to die inside the fold
        // thread and surface as `join().expect("fold thread panicked")`
        // — losing the original payload. It must now unwind the caller
        // with the payload intact.
        let ds = weather_nominal();
        for threads in [1, 4] {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                crate::pool::with_threads(threads, || {
                    cross_validate_parallel(
                        || -> Result<Box<dyn Classifier>> { panic!("fold bomb") },
                        &ds,
                        3,
                        1,
                    )
                })
            }));
            let payload = caught.expect_err("panic must propagate");
            assert_eq!(
                payload.downcast_ref::<&str>().copied(),
                Some("fold bomb"),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_cv_identical_across_pool_sizes() {
        let ds = dm_data::corpus::breast_cancer();
        let serial = cross_validate(|| make_classifier("NaiveBayes"), &ds, 10, 7).unwrap();
        for threads in [1, 2, 8] {
            let pooled = crate::pool::with_threads(threads, || {
                cross_validate_parallel(|| make_classifier("NaiveBayes"), &ds, 10, 7).unwrap()
            });
            assert_eq!(serial, pooled, "threads={threads}");
        }
    }

    #[test]
    fn summary_contains_matrix() {
        let ds = weather_nominal();
        let eval = cross_validate(|| make_classifier("NaiveBayes"), &ds, 2, 3).unwrap();
        let text = eval.summary();
        assert!(text.contains("Confusion Matrix"));
        assert!(text.contains("Kappa"));
    }
}
