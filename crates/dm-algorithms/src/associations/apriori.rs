//! Apriori (Agrawal & Srikant 1994): level-wise frequent-itemset mining
//! with candidate generation and the downward-closure prune.

use super::{rules_from_itemsets, transactions, AssociationRule, Associator, Item, ItemSet};
use crate::error::{AlgoError, Result};
use crate::options::{descriptor_for, Configurable, OptionDescriptor, OptionKind};
use dm_data::Dataset;
use std::collections::{HashMap, HashSet};

/// The Apriori association-rule miner.
#[derive(Debug, Clone)]
pub struct Apriori {
    /// `-M`: minimum support (fraction of transactions).
    min_support: f64,
    /// `-C`: minimum rule confidence.
    min_confidence: f64,
    /// `-N`: maximum number of rules reported.
    max_rules: usize,
    /// `-Z`: treat a nominal attribute's first label as "absent".
    skip_first_label: bool,
    /// Statistics of the last run.
    last_itemsets: usize,
    last_rules: usize,
    last_levels: usize,
}

impl Default for Apriori {
    fn default() -> Self {
        Apriori {
            min_support: 0.1,
            min_confidence: 0.9,
            max_rules: 10,
            skip_first_label: false,
            last_itemsets: 0,
            last_rules: 0,
            last_levels: 0,
        }
    }
}

impl Apriori {
    /// Create with WEKA-like defaults (`-M 0.1 -C 0.9 -N 10`).
    pub fn new() -> Apriori {
        Apriori::default()
    }

    /// Mine the frequent itemsets only (used by tests and by FP-Growth
    /// cross-validation).
    pub fn frequent_itemsets(&mut self, data: &Dataset) -> Result<Vec<ItemSet>> {
        let txns = transactions(data, self.skip_first_label)?;
        let n = txns.len();
        let min_count = (self.min_support * n as f64).ceil().max(1.0) as usize;

        // Level 1.
        let mut counts: HashMap<Vec<Item>, usize> = HashMap::new();
        for t in &txns {
            for &i in t {
                *counts.entry(vec![i]).or_insert(0) += 1;
            }
        }
        let mut frequent: Vec<ItemSet> = counts
            .into_iter()
            .filter(|(_, c)| *c >= min_count)
            .map(|(items, support)| ItemSet { items, support })
            .collect();
        frequent.sort_by(|a, b| a.items.cmp(&b.items));

        let mut all = frequent.clone();
        self.last_levels = 1;

        // Transaction sets as hash sets for fast subset checks.
        let txn_sets: Vec<HashSet<Item>> =
            txns.iter().map(|t| t.iter().copied().collect()).collect();

        while !frequent.is_empty() {
            // Candidate generation: join sets sharing a (k-1)-prefix.
            let prev: HashSet<&[Item]> = frequent.iter().map(|s| s.items.as_slice()).collect();
            let mut candidates: Vec<Vec<Item>> = Vec::new();
            for i in 0..frequent.len() {
                for j in (i + 1)..frequent.len() {
                    let a = &frequent[i].items;
                    let b = &frequent[j].items;
                    if a[..a.len() - 1] == b[..b.len() - 1] && a.last() < b.last() {
                        let mut cand = a.clone();
                        cand.push(*b.last().expect("non-empty"));
                        // Downward-closure prune: all (k-1)-subsets frequent.
                        let prunable = (0..cand.len()).all(|skip| {
                            let sub: Vec<Item> = cand
                                .iter()
                                .enumerate()
                                .filter(|(x, _)| *x != skip)
                                .map(|(_, &i)| i)
                                .collect();
                            prev.contains(sub.as_slice())
                        });
                        if prunable {
                            candidates.push(cand);
                        }
                    }
                }
            }
            if candidates.is_empty() {
                break;
            }
            // Count candidates.
            let mut level: Vec<ItemSet> = Vec::new();
            for cand in candidates {
                let support = txn_sets
                    .iter()
                    .filter(|t| cand.iter().all(|i| t.contains(i)))
                    .count();
                if support >= min_count {
                    level.push(ItemSet {
                        items: cand,
                        support,
                    });
                }
            }
            if level.is_empty() {
                break;
            }
            level.sort_by(|a, b| a.items.cmp(&b.items));
            all.extend(level.iter().cloned());
            frequent = level;
            self.last_levels += 1;
        }
        self.last_itemsets = all.len();
        Ok(all)
    }
}

impl Associator for Apriori {
    fn name(&self) -> &'static str {
        "Apriori"
    }

    fn mine(&mut self, data: &Dataset) -> Result<Vec<AssociationRule>> {
        let itemsets = self.frequent_itemsets(data)?;
        let n = data.num_instances();
        let rules = rules_from_itemsets(&itemsets, n, self.min_confidence, self.max_rules);
        self.last_rules = rules.len();
        Ok(rules)
    }

    fn describe(&self) -> String {
        format!(
            "Apriori: minSup {}, minConf {}; last run: {} frequent itemsets over {} levels, {} rules",
            self.min_support, self.min_confidence, self.last_itemsets, self.last_levels, self.last_rules
        )
    }
}

impl Configurable for Apriori {
    fn option_descriptors(&self) -> Vec<OptionDescriptor> {
        vec![
            OptionDescriptor {
                flag: "-M",
                name: "minSupport",
                description: "minimum itemset support (fraction)",
                default: "0.1".into(),
                kind: OptionKind::Real {
                    min: 1e-9,
                    max: 1.0,
                },
            },
            OptionDescriptor {
                flag: "-C",
                name: "minConfidence",
                description: "minimum rule confidence",
                default: "0.9".into(),
                kind: OptionKind::Real { min: 0.0, max: 1.0 },
            },
            OptionDescriptor {
                flag: "-N",
                name: "numRules",
                description: "maximum number of rules reported",
                default: "10".into(),
                kind: OptionKind::Integer {
                    min: 1,
                    max: 1_000_000,
                },
            },
            OptionDescriptor {
                flag: "-Z",
                name: "treatFirstLabelAsAbsent",
                description: "skip items whose value is the attribute's first label",
                default: "false".into(),
                kind: OptionKind::Flag,
            },
        ]
    }

    fn set_option(&mut self, flag: &str, value: &str) -> Result<()> {
        let ds = self.option_descriptors();
        descriptor_for(&ds, flag)?.validate(value)?;
        match flag {
            "-M" => self.min_support = value.parse().expect("validated"),
            "-C" => self.min_confidence = value.parse().expect("validated"),
            "-N" => self.max_rules = value.parse().expect("validated"),
            "-Z" => self.skip_first_label = value == "true",
            _ => unreachable!("descriptor_for rejects unknown flags"),
        }
        Ok(())
    }

    fn get_option(&self, flag: &str) -> Result<String> {
        match flag {
            "-M" => Ok(self.min_support.to_string()),
            "-C" => Ok(self.min_confidence.to_string()),
            "-N" => Ok(self.max_rules.to_string()),
            "-Z" => Ok(self.skip_first_label.to_string()),
            _ => Err(AlgoError::BadOption {
                flag: flag.into(),
                message: "unknown option".into(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::baskets;
    use super::*;

    fn market_miner() -> Apriori {
        let mut a = Apriori::new();
        a.set_options(&[("-Z", "true"), ("-M", "0.2"), ("-C", "0.7"), ("-N", "50")])
            .unwrap();
        a
    }

    #[test]
    fn finds_planted_pair() {
        let ds = baskets();
        let mut miner = market_miner();
        let rules = miner.mine(&ds).unwrap();
        assert!(!rules.is_empty());
        // Expect a rule between item0 and item1 (planted together).
        let found = rules.iter().any(|r| {
            let attrs: Vec<usize> = r
                .antecedent
                .iter()
                .chain(&r.consequent)
                .map(|i| i.attr)
                .collect();
            attrs.contains(&0) && attrs.contains(&1)
        });
        assert!(found, "no rule over the planted pair:\n{:#?}", rules);
    }

    #[test]
    fn planted_triple_is_frequent() {
        let ds = baskets();
        let mut miner = market_miner();
        let sets = miner.frequent_itemsets(&ds).unwrap();
        let triple = sets
            .iter()
            .find(|s| s.items.len() == 3 && s.items.iter().all(|i| [2, 3, 4].contains(&i.attr)));
        assert!(triple.is_some(), "planted triple not found");
        assert!(triple.unwrap().support as f64 / 300.0 > 0.25);
    }

    #[test]
    fn higher_support_threshold_finds_fewer_sets() {
        let ds = baskets();
        let mut low = market_miner();
        low.set_option("-M", "0.05").unwrap();
        let nl = low.frequent_itemsets(&ds).unwrap().len();
        let mut high = market_miner();
        high.set_option("-M", "0.4").unwrap();
        let nh = high.frequent_itemsets(&ds).unwrap().len();
        assert!(nh < nl, "{nh} !< {nl}");
    }

    #[test]
    fn rule_confidences_above_threshold() {
        let ds = baskets();
        let mut miner = market_miner();
        for r in miner.mine(&ds).unwrap() {
            assert!(r.confidence >= 0.7);
            assert!(r.support > 0.0 && r.support <= 1.0);
            assert!(r.lift > 0.0);
        }
    }

    #[test]
    fn max_rules_respected() {
        let ds = baskets();
        let mut miner = market_miner();
        miner.set_option("-N", "3").unwrap();
        assert!(miner.mine(&ds).unwrap().len() <= 3);
    }

    #[test]
    fn describe_reports_stats() {
        let ds = baskets();
        let mut miner = market_miner();
        miner.mine(&ds).unwrap();
        assert!(miner.describe().contains("frequent itemsets"));
    }
}
