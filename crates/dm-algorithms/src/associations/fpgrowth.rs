//! FP-Growth (Han, Pei & Yin 2000): frequent-itemset mining without
//! candidate generation, via recursive conditional FP-trees.

use super::{rules_from_itemsets, transactions, AssociationRule, Associator, Item, ItemSet};
use crate::error::{AlgoError, Result};
use crate::options::{descriptor_for, Configurable, OptionDescriptor, OptionKind};
use dm_data::Dataset;
use std::collections::HashMap;

/// One FP-tree node.
#[derive(Debug)]
struct FpNode {
    item: Item,
    count: usize,
    parent: usize,
    children: Vec<usize>,
}

/// An FP-tree arena with a header table of per-item node lists.
#[derive(Debug, Default)]
struct FpTree {
    nodes: Vec<FpNode>,
    header: HashMap<Item, Vec<usize>>,
}

impl FpTree {
    fn new() -> FpTree {
        let mut t = FpTree::default();
        // Sentinel root.
        t.nodes.push(FpNode {
            item: Item {
                attr: usize::MAX,
                value: usize::MAX,
            },
            count: 0,
            parent: usize::MAX,
            children: Vec::new(),
        });
        t
    }

    fn insert(&mut self, path: &[Item], count: usize) {
        let mut cur = 0usize;
        for &item in path {
            let child = self.nodes[cur]
                .children
                .iter()
                .copied()
                .find(|&c| self.nodes[c].item == item);
            cur = match child {
                Some(c) => {
                    self.nodes[c].count += count;
                    c
                }
                None => {
                    let id = self.nodes.len();
                    self.nodes.push(FpNode {
                        item,
                        count,
                        parent: cur,
                        children: Vec::new(),
                    });
                    self.nodes[cur].children.push(id);
                    self.header.entry(item).or_default().push(id);
                    id
                }
            };
        }
    }

    /// Prefix path (excluding the node itself and the root) of node `id`.
    fn prefix_path(&self, id: usize) -> Vec<Item> {
        let mut path = Vec::new();
        let mut cur = self.nodes[id].parent;
        while cur != usize::MAX && cur != 0 {
            path.push(self.nodes[cur].item);
            cur = self.nodes[cur].parent;
        }
        path.reverse();
        path
    }
}

/// The FP-Growth miner.
#[derive(Debug, Clone)]
pub struct FPGrowth {
    /// `-M`: minimum support (fraction).
    min_support: f64,
    /// `-C`: minimum rule confidence.
    min_confidence: f64,
    /// `-N`: maximum rules reported.
    max_rules: usize,
    /// `-Z`: treat each attribute's first label as "absent".
    skip_first_label: bool,
    last_itemsets: usize,
}

impl Default for FPGrowth {
    fn default() -> Self {
        FPGrowth {
            min_support: 0.1,
            min_confidence: 0.9,
            max_rules: 10,
            skip_first_label: false,
            last_itemsets: 0,
        }
    }
}

impl FPGrowth {
    /// Create with defaults matching [`super::Apriori`].
    pub fn new() -> FPGrowth {
        FPGrowth::default()
    }

    /// Mine the frequent itemsets.
    pub fn frequent_itemsets(&mut self, data: &Dataset) -> Result<Vec<ItemSet>> {
        let txns = transactions(data, self.skip_first_label)?;
        let n = txns.len();
        let min_count = (self.min_support * n as f64).ceil().max(1.0) as usize;

        let mut out = Vec::new();
        let weighted: Vec<(Vec<Item>, usize)> = txns.into_iter().map(|t| (t, 1usize)).collect();
        Self::grow(&weighted, min_count, &mut Vec::new(), &mut out, 0)?;
        out.sort_by(|a, b| a.items.cmp(&b.items));
        self.last_itemsets = out.len();
        Ok(out)
    }

    /// Recursive FP-growth over weighted transactions.
    fn grow(
        txns: &[(Vec<Item>, usize)],
        min_count: usize,
        suffix: &mut Vec<Item>,
        out: &mut Vec<ItemSet>,
        depth: usize,
    ) -> Result<()> {
        if depth > 64 {
            return Err(AlgoError::Unsupported(
                "FP-growth recursion too deep".into(),
            ));
        }
        // Count items in this conditional database.
        let mut counts: HashMap<Item, usize> = HashMap::new();
        for (t, w) in txns {
            for &i in t {
                *counts.entry(i).or_insert(0) += w;
            }
        }
        let mut frequent: Vec<(Item, usize)> = counts
            .into_iter()
            .filter(|(_, c)| *c >= min_count)
            .collect();
        // Order by descending count (stable tie-break by item).
        frequent.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let rank: HashMap<Item, usize> = frequent
            .iter()
            .enumerate()
            .map(|(r, (i, _))| (*i, r))
            .collect();

        // Build the conditional FP-tree.
        let mut tree = FpTree::new();
        for (t, w) in txns {
            let mut path: Vec<Item> = t.iter().copied().filter(|i| rank.contains_key(i)).collect();
            path.sort_by_key(|i| rank[i]);
            if !path.is_empty() {
                tree.insert(&path, *w);
            }
        }

        // For each frequent item (bottom-up), emit the itemset and
        // recurse into its conditional pattern base.
        for &(item, count) in frequent.iter().rev() {
            suffix.push(item);
            let mut items = suffix.clone();
            items.sort();
            out.push(ItemSet {
                items,
                support: count,
            });

            let mut conditional: Vec<(Vec<Item>, usize)> = Vec::new();
            if let Some(node_ids) = tree.header.get(&item) {
                for &id in node_ids {
                    let path = tree.prefix_path(id);
                    if !path.is_empty() {
                        conditional.push((path, tree.nodes[id].count));
                    }
                }
            }
            if !conditional.is_empty() {
                Self::grow(&conditional, min_count, suffix, out, depth + 1)?;
            }
            suffix.pop();
        }
        Ok(())
    }
}

impl Associator for FPGrowth {
    fn name(&self) -> &'static str {
        "FPGrowth"
    }

    fn mine(&mut self, data: &Dataset) -> Result<Vec<AssociationRule>> {
        let itemsets = self.frequent_itemsets(data)?;
        Ok(rules_from_itemsets(
            &itemsets,
            data.num_instances(),
            self.min_confidence,
            self.max_rules,
        ))
    }

    fn describe(&self) -> String {
        format!(
            "FPGrowth: minSup {}, minConf {}; last run: {} frequent itemsets",
            self.min_support, self.min_confidence, self.last_itemsets
        )
    }
}

impl Configurable for FPGrowth {
    fn option_descriptors(&self) -> Vec<OptionDescriptor> {
        vec![
            OptionDescriptor {
                flag: "-M",
                name: "minSupport",
                description: "minimum itemset support (fraction)",
                default: "0.1".into(),
                kind: OptionKind::Real {
                    min: 1e-9,
                    max: 1.0,
                },
            },
            OptionDescriptor {
                flag: "-C",
                name: "minConfidence",
                description: "minimum rule confidence",
                default: "0.9".into(),
                kind: OptionKind::Real { min: 0.0, max: 1.0 },
            },
            OptionDescriptor {
                flag: "-N",
                name: "numRules",
                description: "maximum number of rules reported",
                default: "10".into(),
                kind: OptionKind::Integer {
                    min: 1,
                    max: 1_000_000,
                },
            },
            OptionDescriptor {
                flag: "-Z",
                name: "treatFirstLabelAsAbsent",
                description: "skip items whose value is the attribute's first label",
                default: "false".into(),
                kind: OptionKind::Flag,
            },
        ]
    }

    fn set_option(&mut self, flag: &str, value: &str) -> Result<()> {
        let ds = self.option_descriptors();
        descriptor_for(&ds, flag)?.validate(value)?;
        match flag {
            "-M" => self.min_support = value.parse().expect("validated"),
            "-C" => self.min_confidence = value.parse().expect("validated"),
            "-N" => self.max_rules = value.parse().expect("validated"),
            "-Z" => self.skip_first_label = value == "true",
            _ => unreachable!("descriptor_for rejects unknown flags"),
        }
        Ok(())
    }

    fn get_option(&self, flag: &str) -> Result<String> {
        match flag {
            "-M" => Ok(self.min_support.to_string()),
            "-C" => Ok(self.min_confidence.to_string()),
            "-N" => Ok(self.max_rules.to_string()),
            "-Z" => Ok(self.skip_first_label.to_string()),
            _ => Err(AlgoError::BadOption {
                flag: flag.into(),
                message: "unknown option".into(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::baskets;
    use super::super::Apriori;
    use super::*;

    fn market_miner() -> FPGrowth {
        let mut m = FPGrowth::new();
        m.set_options(&[("-Z", "true"), ("-M", "0.2"), ("-C", "0.7"), ("-N", "50")])
            .unwrap();
        m
    }

    #[test]
    fn agrees_with_apriori_on_itemsets() {
        // The two miners must produce the same frequent itemsets with
        // the same supports — the strongest correctness check available.
        let ds = baskets();
        let mut fp = market_miner();
        let mut ap = Apriori::new();
        ap.set_options(&[("-Z", "true"), ("-M", "0.2")]).unwrap();
        let mut a = fp.frequent_itemsets(&ds).unwrap();
        let mut b = ap.frequent_itemsets(&ds).unwrap();
        a.sort_by(|x, y| x.items.cmp(&y.items));
        b.sort_by(|x, y| x.items.cmp(&y.items));
        assert_eq!(a, b);
    }

    #[test]
    fn agrees_with_apriori_on_rules() {
        let ds = baskets();
        let mut fp = market_miner();
        let mut ap = Apriori::new();
        ap.set_options(&[("-Z", "true"), ("-M", "0.2"), ("-C", "0.7"), ("-N", "50")])
            .unwrap();
        let a = fp.mine(&ds).unwrap();
        let b = ap.mine(&ds).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn finds_planted_triple() {
        let ds = baskets();
        let mut fp = market_miner();
        let sets = fp.frequent_itemsets(&ds).unwrap();
        assert!(sets
            .iter()
            .any(|s| s.items.len() == 3 && s.items.iter().all(|i| [2, 3, 4].contains(&i.attr))));
    }

    #[test]
    fn empty_result_below_any_support() {
        let ds = baskets();
        let mut fp = market_miner();
        fp.set_option("-M", "0.999").unwrap();
        assert!(fp.frequent_itemsets(&ds).unwrap().is_empty());
    }

    #[test]
    fn describe_mentions_itemsets() {
        let ds = baskets();
        let mut fp = market_miner();
        fp.mine(&ds).unwrap();
        assert!(fp.describe().contains("frequent itemsets"));
    }
}
