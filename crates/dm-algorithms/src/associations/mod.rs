//! Association-rule mining — the third of the paper's three Web Service
//! families ("1 classifiers, 2 clustering algorithms and 3 association
//! rules").
//!
//! Items are `attribute = value` pairs over nominal datasets, exactly as
//! in WEKA's `Apriori`. Both miners produce the same
//! [`AssociationRule`] output: frequent itemsets above a minimum
//! support, expanded into rules above a minimum confidence, ranked by
//! confidence then lift.

mod apriori;
mod fpgrowth;

pub use apriori::Apriori;
pub use fpgrowth::FPGrowth;

use crate::error::{AlgoError, Result};
use crate::options::Configurable;
use dm_data::{Dataset, Value};

/// One item: a `(attribute, value)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Item {
    /// Attribute index.
    pub attr: usize,
    /// Nominal value index.
    pub value: usize,
}

/// A frequent itemset with its (absolute) support count.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemSet {
    /// Sorted items.
    pub items: Vec<Item>,
    /// Number of supporting transactions.
    pub support: usize,
}

/// An association rule `antecedent ⇒ consequent`.
#[derive(Debug, Clone, PartialEq)]
pub struct AssociationRule {
    /// Left-hand-side items.
    pub antecedent: Vec<Item>,
    /// Right-hand-side items.
    pub consequent: Vec<Item>,
    /// Support of antecedent ∪ consequent (fraction of transactions).
    pub support: f64,
    /// `support(A ∪ C) / support(A)`.
    pub confidence: f64,
    /// `confidence / support(C)`.
    pub lift: f64,
}

impl AssociationRule {
    /// Render against a dataset header, e.g.
    /// `item1=y item2=y ==> item3=y  conf 0.95 lift 2.1 sup 0.40`.
    pub fn render(&self, data: &Dataset) -> String {
        let side = |items: &[Item]| -> String {
            items
                .iter()
                .map(|i| {
                    let attr = &data.attributes()[i.attr];
                    format!(
                        "{}={}",
                        attr.name(),
                        attr.labels()
                            .get(i.value)
                            .map(String::as_str)
                            .unwrap_or("?")
                    )
                })
                .collect::<Vec<_>>()
                .join(" ")
        };
        format!(
            "{} ==> {}  (sup {:.3}, conf {:.3}, lift {:.3})",
            side(&self.antecedent),
            side(&self.consequent),
            self.support,
            self.confidence,
            self.lift
        )
    }
}

/// An association-rule miner.
pub trait Associator: Configurable + Send {
    /// Registry name, e.g. `"Apriori"`.
    fn name(&self) -> &'static str;

    /// Mine rules from `data` (all-nominal).
    fn mine(&mut self, data: &Dataset) -> Result<Vec<AssociationRule>>;

    /// Human-readable summary of the last run.
    fn describe(&self) -> String;
}

/// Extract the transaction view of a nominal dataset: for each row, the
/// sorted list of items. `skip_first_label` drops items whose value is
/// label 0 — the convention for market-basket data where the first
/// label means "absent".
pub(crate) fn transactions(data: &Dataset, skip_first_label: bool) -> Result<Vec<Vec<Item>>> {
    if data.num_instances() == 0 {
        return Err(AlgoError::Data(dm_data::DataError::Empty));
    }
    for a in 0..data.num_attributes() {
        if !data.attributes()[a].is_nominal() {
            return Err(AlgoError::Unsupported(format!(
                "association mining needs nominal attributes; {:?} is not",
                data.attributes()[a].name()
            )));
        }
    }
    let mut out = Vec::with_capacity(data.num_instances());
    for r in 0..data.num_instances() {
        let mut t = Vec::new();
        for a in 0..data.num_attributes() {
            let v = data.value(r, a);
            if Value::is_missing(v) {
                continue;
            }
            let value = Value::as_index(v);
            if skip_first_label && value == 0 {
                continue;
            }
            t.push(Item { attr: a, value });
        }
        out.push(t);
    }
    Ok(out)
}

/// Expand frequent itemsets into rules above `min_confidence`,
/// computing support/confidence/lift from the supplied support lookup.
pub(crate) fn rules_from_itemsets(
    itemsets: &[ItemSet],
    num_transactions: usize,
    min_confidence: f64,
    max_rules: usize,
) -> Vec<AssociationRule> {
    use std::collections::HashMap;
    let support_of: HashMap<&[Item], usize> = itemsets
        .iter()
        .map(|s| (s.items.as_slice(), s.support))
        .collect();
    let n = num_transactions as f64;

    let mut rules = Vec::new();
    for set in itemsets {
        if set.items.len() < 2 {
            continue;
        }
        // Enumerate non-empty proper subsets as antecedents.
        let k = set.items.len();
        for mask in 1..((1usize << k) - 1) {
            let mut ante = Vec::new();
            let mut cons = Vec::new();
            for (i, item) in set.items.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    ante.push(*item);
                } else {
                    cons.push(*item);
                }
            }
            let (Some(&sa), Some(&sc)) = (
                support_of.get(ante.as_slice()),
                support_of.get(cons.as_slice()),
            ) else {
                continue; // subset below min support: confidence undefined here
            };
            let confidence = set.support as f64 / sa as f64;
            if confidence < min_confidence {
                continue;
            }
            let lift = confidence / (sc as f64 / n);
            rules.push(AssociationRule {
                antecedent: ante,
                consequent: cons,
                support: set.support as f64 / n,
                confidence,
                lift,
            });
        }
    }
    rules.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .expect("finite")
            .then(b.lift.partial_cmp(&a.lift).expect("finite"))
            .then(b.support.partial_cmp(&a.support).expect("finite"))
            // Total-order tie-break: without it, equal-metric rules keep
            // whatever order the miner enumerated itemsets in, and the
            // two miners enumerate differently.
            .then_with(|| a.antecedent.cmp(&b.antecedent))
            .then_with(|| a.consequent.cmp(&b.consequent))
    });
    rules.truncate(max_rules);
    rules
}

#[cfg(test)]
pub(crate) mod test_support {
    use dm_data::corpus::market_baskets;
    use dm_data::Dataset;

    /// 300 baskets over 8 items with a planted {0,1} pair and a planted
    /// {2,3,4} triple.
    pub fn baskets() -> Dataset {
        market_baskets(8, 300, &[(&[0, 1], 0.5), (&[2, 3, 4], 0.35)], 0.02, 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_data::{Attribute, Dataset};

    #[test]
    fn transactions_skip_missing_and_first_label() {
        let mut ds = Dataset::new(
            "t",
            vec![
                Attribute::nominal("a", ["n", "y"]),
                Attribute::nominal("b", ["n", "y"]),
            ],
        );
        ds.push_labels(&["y", "n"]).unwrap();
        ds.push_labels(&["?", "y"]).unwrap();
        let all = transactions(&ds, false).unwrap();
        assert_eq!(all[0].len(), 2);
        assert_eq!(all[1].len(), 1);
        let present = transactions(&ds, true).unwrap();
        assert_eq!(present[0], vec![Item { attr: 0, value: 1 }]);
        assert_eq!(present[1], vec![Item { attr: 1, value: 1 }]);
    }

    #[test]
    fn numeric_attributes_rejected() {
        let mut ds = Dataset::new("t", vec![Attribute::numeric("x")]);
        ds.push_row(vec![1.0]).unwrap();
        assert!(transactions(&ds, false).is_err());
    }

    #[test]
    fn rule_generation_math() {
        // Itemsets over 100 transactions: {A}=60, {B}=50, {A,B}=45.
        let a = Item { attr: 0, value: 1 };
        let b = Item { attr: 1, value: 1 };
        let sets = vec![
            ItemSet {
                items: vec![a],
                support: 60,
            },
            ItemSet {
                items: vec![b],
                support: 50,
            },
            ItemSet {
                items: vec![a, b],
                support: 45,
            },
        ];
        let rules = rules_from_itemsets(&sets, 100, 0.7, 10);
        // A→B: conf 0.75, lift 1.5. B→A: conf 0.9, lift 1.5.
        assert_eq!(rules.len(), 2);
        assert!((rules[0].confidence - 0.9).abs() < 1e-12);
        assert_eq!(rules[0].antecedent, vec![b]);
        assert!((rules[0].lift - 1.5).abs() < 1e-12);
        assert!((rules[1].confidence - 0.75).abs() < 1e-12);
    }

    #[test]
    fn min_confidence_filters() {
        let a = Item { attr: 0, value: 1 };
        let b = Item { attr: 1, value: 1 };
        let sets = vec![
            ItemSet {
                items: vec![a],
                support: 60,
            },
            ItemSet {
                items: vec![b],
                support: 50,
            },
            ItemSet {
                items: vec![a, b],
                support: 45,
            },
        ];
        let rules = rules_from_itemsets(&sets, 100, 0.8, 10);
        assert_eq!(rules.len(), 1);
    }

    #[test]
    fn render_names_items() {
        let ds = {
            let mut d = Dataset::new(
                "t",
                vec![
                    Attribute::nominal("bread", ["n", "y"]),
                    Attribute::nominal("milk", ["n", "y"]),
                ],
            );
            d.push_labels(&["y", "y"]).unwrap();
            d
        };
        let rule = AssociationRule {
            antecedent: vec![Item { attr: 0, value: 1 }],
            consequent: vec![Item { attr: 1, value: 1 }],
            support: 0.4,
            confidence: 0.9,
            lift: 1.5,
        };
        let text = rule.render(&ds);
        assert!(text.contains("bread=y ==> milk=y"));
    }
}
