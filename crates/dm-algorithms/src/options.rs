//! WEKA-style option descriptors.
//!
//! The paper's general Classifier Web Service exposes a `getOptions`
//! operation that "return\[s\] a list of the required and optional
//! properties that the user should pass to the Web Service" so the
//! workflow's OptionSelector tool can present them generically. This
//! module defines that metadata and the [`Configurable`] trait every
//! algorithm implements.

use crate::error::{AlgoError, Result};

/// The kind (and constraint) of an option's value.
#[derive(Debug, Clone, PartialEq)]
pub enum OptionKind {
    /// Boolean flag; value is `"true"`/`"false"`.
    Flag,
    /// Integer within an inclusive range.
    Integer {
        /// Minimum accepted value.
        min: i64,
        /// Maximum accepted value.
        max: i64,
    },
    /// Real number within an inclusive range.
    Real {
        /// Minimum accepted value.
        min: f64,
        /// Maximum accepted value.
        max: f64,
    },
    /// One of a fixed set of choices.
    Choice(Vec<String>),
    /// Free-form text.
    Text,
}

/// Metadata for one algorithm option, as returned by `getOptions`.
#[derive(Debug, Clone, PartialEq)]
pub struct OptionDescriptor {
    /// Command-line-style flag, e.g. `-C` (WEKA convention).
    pub flag: &'static str,
    /// Human-readable name, e.g. `confidence`.
    pub name: &'static str,
    /// One-line description for the OptionSelector tool.
    pub description: &'static str,
    /// Default value rendered as text.
    pub default: String,
    /// Value kind/constraint.
    pub kind: OptionKind,
}

impl OptionDescriptor {
    /// Validate a textual value against this descriptor's kind.
    pub fn validate(&self, value: &str) -> Result<()> {
        let bad = |message: String| AlgoError::BadOption {
            flag: self.flag.to_string(),
            message,
        };
        match &self.kind {
            OptionKind::Flag => match value {
                "true" | "false" => Ok(()),
                _ => Err(bad(format!("expected true/false, got {value:?}"))),
            },
            OptionKind::Integer { min, max } => {
                let v: i64 = value
                    .parse()
                    .map_err(|_| bad(format!("{value:?} is not an integer")))?;
                if v < *min || v > *max {
                    Err(bad(format!("{v} outside [{min}, {max}]")))
                } else {
                    Ok(())
                }
            }
            OptionKind::Real { min, max } => {
                let v: f64 = value
                    .parse()
                    .map_err(|_| bad(format!("{value:?} is not a number")))?;
                if v < *min || v > *max {
                    Err(bad(format!("{v} outside [{min}, {max}]")))
                } else {
                    Ok(())
                }
            }
            OptionKind::Choice(choices) => {
                if choices.iter().any(|c| c == value) {
                    Ok(())
                } else {
                    Err(bad(format!("{value:?} not one of {choices:?}")))
                }
            }
            OptionKind::Text => Ok(()),
        }
    }
}

/// An algorithm with WEKA-style runtime options.
pub trait Configurable {
    /// Descriptors of every supported option.
    fn option_descriptors(&self) -> Vec<OptionDescriptor>;

    /// Set an option by flag; implementations should parse and validate.
    fn set_option(&mut self, flag: &str, value: &str) -> Result<()>;

    /// Current value of an option by flag, rendered as text.
    fn get_option(&self, flag: &str) -> Result<String>;

    /// Apply many options at once (`(flag, value)` pairs).
    fn set_options(&mut self, options: &[(&str, &str)]) -> Result<()> {
        for (flag, value) in options {
            self.set_option(flag, value)?;
        }
        Ok(())
    }

    /// Render the current configuration as a WEKA-style option string,
    /// e.g. `-C 0.25 -M 2`.
    fn options_string(&self) -> String {
        let mut out = String::new();
        for d in self.option_descriptors() {
            let value = self.get_option(d.flag).unwrap_or_default();
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(&format!("{} {}", d.flag, value));
        }
        out
    }
}

/// Helper for implementations: find a descriptor by flag.
pub fn descriptor_for<'a>(
    descriptors: &'a [OptionDescriptor],
    flag: &str,
) -> Result<&'a OptionDescriptor> {
    descriptors
        .iter()
        .find(|d| d.flag == flag)
        .ok_or_else(|| AlgoError::BadOption {
            flag: flag.to_string(),
            message: "unknown option".to_string(),
        })
}

/// Parse a WEKA-style option string (`-C 0.25 -U true`) into pairs.
pub fn parse_options_string(s: &str) -> Vec<(String, String)> {
    let tokens: Vec<&str> = s.split_whitespace().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].starts_with('-') && i + 1 < tokens.len() {
            out.push((tokens[i].to_string(), tokens[i + 1].to_string()));
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn real_opt() -> OptionDescriptor {
        OptionDescriptor {
            flag: "-C",
            name: "confidence",
            description: "pruning confidence",
            default: "0.25".into(),
            kind: OptionKind::Real { min: 0.0, max: 1.0 },
        }
    }

    #[test]
    fn real_validation() {
        let d = real_opt();
        assert!(d.validate("0.1").is_ok());
        assert!(d.validate("1.5").is_err());
        assert!(d.validate("abc").is_err());
    }

    #[test]
    fn integer_validation() {
        let d = OptionDescriptor {
            flag: "-K",
            name: "k",
            description: "neighbours",
            default: "1".into(),
            kind: OptionKind::Integer { min: 1, max: 100 },
        };
        assert!(d.validate("5").is_ok());
        assert!(d.validate("0").is_err());
        assert!(d.validate("5.5").is_err());
    }

    #[test]
    fn flag_and_choice_validation() {
        let f = OptionDescriptor {
            flag: "-U",
            name: "unpruned",
            description: "",
            default: "false".into(),
            kind: OptionKind::Flag,
        };
        assert!(f.validate("true").is_ok());
        assert!(f.validate("yes").is_err());
        let c = OptionDescriptor {
            flag: "-D",
            name: "distance",
            description: "",
            default: "euclidean".into(),
            kind: OptionKind::Choice(vec!["euclidean".into(), "manhattan".into()]),
        };
        assert!(c.validate("manhattan").is_ok());
        assert!(c.validate("cosine").is_err());
    }

    #[test]
    fn descriptor_lookup() {
        let ds = vec![real_opt()];
        assert!(descriptor_for(&ds, "-C").is_ok());
        assert!(descriptor_for(&ds, "-Z").is_err());
    }

    #[test]
    fn parse_option_string_pairs() {
        let pairs = parse_options_string("-C 0.25 -M 2");
        assert_eq!(
            pairs,
            vec![
                ("-C".to_string(), "0.25".to_string()),
                ("-M".to_string(), "2".to_string())
            ]
        );
    }

    #[test]
    fn parse_tolerates_stray_tokens() {
        let pairs = parse_options_string("oops -K 3 trailing");
        assert_eq!(pairs, vec![("-K".to_string(), "3".to_string())]);
    }
}
