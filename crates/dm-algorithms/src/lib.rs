//! # dm-algorithms — the machine-learning substrate of `faehim-rs`
//!
//! The paper derives its Web Services "from the WEKA data mining library
//! of algorithms" — classifiers, clustering algorithms, and association
//! rules, plus ~20 attribute search/selection approaches (§1). WEKA is a
//! Java library and cannot be a dependency here, so this crate is a
//! from-scratch reimplementation of a representative pool:
//!
//! * **Classifiers** ([`classifiers`]): ZeroR, OneR, DecisionStump,
//!   NaiveBayes, IBk (k-NN), **J48** (C4.5 with gain-ratio splits,
//!   fractional-weight missing-value handling, and pessimistic pruning —
//!   the algorithm of the paper's case study), PRISM, Logistic
//!   regression, a backpropagation MLP, RandomTree, and the meta
//!   learners Bagging, RandomForest and AdaBoostM1.
//! * **Clusterers** ([`cluster`]): SimpleKMeans, FarthestFirst,
//!   **Cobweb** (the paper's clustering Web Service example), EM, and
//!   agglomerative hierarchical clustering.
//! * **Association rules** ([`associations`]): Apriori and FP-Growth.
//! * **Attribute selection** ([`attrsel`]): single-attribute evaluators
//!   (info gain, gain ratio, chi-squared, symmetrical uncertainty,
//!   ReliefF, OneR) and subset evaluators (CFS, wrapper) crossed with
//!   search strategies (ranker, best-first, greedy forward/backward,
//!   **genetic search** — called out in the paper — random, exhaustive).
//! * **Evaluation** ([`eval`]): confusion matrices, accuracy/kappa,
//!   train/test and k-fold cross-validation.
//!
//! Every algorithm implements [`options::Configurable`] with WEKA-style
//! option descriptors so the general Classifier Web Service can expose
//! `getClassifiers` / `getOptions` / `classifyInstance` generically, and
//! offers binary state encode/decode (via [`state`]) so the Web Service
//! lifecycle experiment (E4) can serialise real model state.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// The numeric kernels index several parallel buffers (rows, centroids,
// responsibilities) by the same loop counter; iterator rewrites obscure
// the maths without changing the generated code.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::ptr_arg)]

pub mod associations;
pub mod attrsel;
pub mod classifiers;
pub mod cluster;
pub mod error;
pub mod eval;
pub mod options;
pub mod pool;
pub mod registry;
pub mod signal;
pub mod state;
pub mod tree;

pub use error::{AlgoError, Result};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::classifiers::{Classifier, NaiveBayes, ZeroR, J48};
    pub use crate::cluster::{Clusterer, KMeans};
    pub use crate::error::{AlgoError, Result};
    pub use crate::eval::{cross_validate, Evaluation};
    pub use crate::options::{Configurable, OptionDescriptor};
    pub use crate::registry::{classifier_names, make_classifier};
    pub use crate::tree::TreeModel;
}
