//! Shared work-stealing compute pool.
//!
//! The service layers (PR 1–4) are now far faster than the compute
//! underneath them: training and scoring were entirely single-threaded.
//! This module adds the bounded parallelism substrate the kernels run
//! on — `parallel_for` / [`parallel_map`] / [`parallel_map_reduce`]
//! primitives over the vendored [`crossbeam::deque`] work-stealing
//! deques — with three hard guarantees:
//!
//! 1. **Determinism.** Results are collected as `(index, value)` pairs
//!    and assembled in index order, and every reduction folds in index
//!    order. Output is byte-identical to a serial loop at any thread
//!    count, including 1.
//! 2. **Bounded threads.** A global permit budget caps the number of
//!    extra worker threads in flight across *all* concurrent batches,
//!    and any `parallel_*` call made from inside a pool worker runs
//!    inline on that worker — nested parallelism (cross-validation over
//!    random forests) can never oversubscribe the host.
//! 3. **Panic propagation.** A panicking task aborts the batch, and the
//!    payload of the lowest-index panic is re-raised on the caller via
//!    `resume_unwind` — never a worker-thread abort of the process.
//!
//! The thread count resolves as: [`with_threads`] override on the
//! calling thread → global setting ([`set_global_threads`], the
//! `FAEHIM_POOL_THREADS` environment variable, or
//! `std::thread::available_parallelism`). Worker threads are scoped per
//! batch (`std::thread::scope`; the caller participates as worker 0),
//! which keeps the whole pool safe under the workspace-wide
//! `#![forbid(unsafe_code)]` — no lifetime erasure, no leaked threads.

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crossbeam::deque::{Steal, Stealer, Worker};

// ---------------------------------------------------------------------------
// Thread-count resolution
// ---------------------------------------------------------------------------

/// Global thread setting; 0 = not yet initialised.
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Extra (non-caller) worker threads currently in flight, across all
/// concurrent batches. Bounded by `effective_threads - 1` per batch.
static EXTRA_IN_USE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set while the current thread is executing pool tasks: nested
    /// `parallel_*` calls run inline instead of spawning.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Per-thread thread-count override installed by [`with_threads`].
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

fn init_threads_from_env() -> usize {
    std::env::var("FAEHIM_POOL_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

fn global_threads() -> usize {
    let n = GLOBAL_THREADS.load(Ordering::Relaxed);
    if n != 0 {
        return n;
    }
    let resolved = init_threads_from_env();
    // First writer wins; concurrent initialisers resolve identically.
    let _ = GLOBAL_THREADS.compare_exchange(0, resolved, Ordering::Relaxed, Ordering::Relaxed);
    GLOBAL_THREADS.load(Ordering::Relaxed)
}

/// Set the global pool thread budget (clamped to ≥ 1). Wired to
/// `Toolkit::set_compute_threads`; `FAEHIM_POOL_THREADS` seeds the
/// initial value before the first call.
pub fn set_global_threads(n: usize) {
    GLOBAL_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// The thread count a `parallel_*` call made *right now* on this thread
/// would use: 1 inside a pool worker, otherwise the [`with_threads`]
/// override, otherwise the global setting.
pub fn current_threads() -> usize {
    if IN_WORKER.with(|w| w.get()) {
        return 1;
    }
    THREAD_OVERRIDE
        .with(|o| o.get())
        .unwrap_or_else(global_threads)
}

/// Run `f` with the pool forced to `n` threads on the calling thread
/// (restored afterwards, panic-safe). The determinism tests use this to
/// pin byte-identical output at pool sizes {1, 2, 8}.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            THREAD_OVERRIDE.with(|o| o.set(prev));
        }
    }
    let prev = THREAD_OVERRIDE.with(|o| o.replace(Some(n.max(1))));
    let _restore = Restore(prev);
    f()
}

fn acquire_extra(want: usize, cap: usize) -> usize {
    if want == 0 || cap == 0 {
        return 0;
    }
    let mut cur = EXTRA_IN_USE.load(Ordering::SeqCst);
    loop {
        let avail = cap.saturating_sub(cur);
        let grant = want.min(avail);
        if grant == 0 {
            return 0;
        }
        match EXTRA_IN_USE.compare_exchange(cur, cur + grant, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => return grant,
            Err(actual) => cur = actual,
        }
    }
}

fn release_extra(n: usize) {
    if n > 0 {
        EXTRA_IN_USE.fetch_sub(n, Ordering::SeqCst);
    }
}

// ---------------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------------

static TASKS_TOTAL: AtomicU64 = AtomicU64::new(0);
static BATCHES_TOTAL: AtomicU64 = AtomicU64::new(0);
static STEALS_TOTAL: AtomicU64 = AtomicU64::new(0);
static WORKER_STATS: Mutex<Vec<(u64, u64)>> = Mutex::new(Vec::new());

/// Per-worker-slot counters in a [`PoolStats`] snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerStats {
    /// Tasks this worker slot has executed.
    pub tasks: u64,
    /// Accumulated time this slot spent draining task queues.
    pub busy: Duration,
}

/// Snapshot of the pool's lifetime counters, exported through
/// `MetricsRegistry` as the `faehim_pool_*` family.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolStats {
    /// Currently configured thread budget.
    pub threads: usize,
    /// Tasks executed (pooled and inline batches alike).
    pub tasks: u64,
    /// `parallel_*` batches run.
    pub batches: u64,
    /// Successful steals from another worker's deque.
    pub steals: u64,
    /// Per-worker-slot counters; slot 0 is the calling thread.
    pub workers: Vec<WorkerStats>,
}

/// Snapshot the pool counters.
pub fn stats() -> PoolStats {
    let workers = WORKER_STATS
        .lock()
        .expect("pool stats poisoned")
        .iter()
        .map(|&(tasks, busy_nanos)| WorkerStats {
            tasks,
            busy: Duration::from_nanos(busy_nanos),
        })
        .collect();
    PoolStats {
        threads: current_threads(),
        tasks: TASKS_TOTAL.load(Ordering::Relaxed),
        batches: BATCHES_TOTAL.load(Ordering::Relaxed),
        steals: STEALS_TOTAL.load(Ordering::Relaxed),
        workers,
    }
}

/// Zero every counter (benchmarks and tests).
pub fn reset_stats() {
    TASKS_TOTAL.store(0, Ordering::Relaxed);
    BATCHES_TOTAL.store(0, Ordering::Relaxed);
    STEALS_TOTAL.store(0, Ordering::Relaxed);
    WORKER_STATS.lock().expect("pool stats poisoned").clear();
}

fn flush_worker_stats(slot: usize, tasks: u64, busy_nanos: u64, steals: u64) {
    TASKS_TOTAL.fetch_add(tasks, Ordering::Relaxed);
    STEALS_TOTAL.fetch_add(steals, Ordering::Relaxed);
    let mut workers = WORKER_STATS.lock().expect("pool stats poisoned");
    if workers.len() <= slot {
        workers.resize(slot + 1, (0, 0));
    }
    workers[slot].0 += tasks;
    workers[slot].1 += busy_nanos;
}

// ---------------------------------------------------------------------------
// Core primitives
// ---------------------------------------------------------------------------

type PanicPayload = Box<dyn Any + Send + 'static>;

/// Apply `f` to every index in `0..n` and return the results **in index
/// order**, using up to [`current_threads`] workers. Byte-identical to
/// `(0..n).map(f).collect()` at any thread count; a panicking `f` is
/// re-raised on the caller with its original payload.
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = current_threads().min(n);
    if threads <= 1 {
        return inline_map(n, &f);
    }
    let granted = acquire_extra(threads - 1, threads - 1);
    if granted == 0 {
        return inline_map(n, &f);
    }
    let workers = granted + 1;
    let out = run_pooled(n, workers, &f);
    release_extra(granted);
    match out {
        Ok(values) => values,
        Err(payload) => resume_unwind(payload),
    }
}

/// [`parallel_map`] that stays on a plain serial loop below
/// `min_parallel` items, so tiny batches (a 10-member ensemble vote)
/// skip deque and scope setup entirely. Results are identical either
/// way by construction.
pub fn parallel_map_min<T, F>(n: usize, min_parallel: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n < min_parallel {
        (0..n).map(f).collect()
    } else {
        parallel_map(n, f)
    }
}

/// Run `f` for every index in `0..n` (side effects only), with the same
/// scheduling and panic semantics as [`parallel_map`].
pub fn parallel_for<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    parallel_map(n, f);
}

/// Map every index through `map` in parallel, then fold the results
/// **in index order** — the fold itself is serial, so floating-point
/// accumulation matches the serial loop bit-for-bit.
pub fn parallel_map_reduce<T, A, M, F>(n: usize, map: M, init: A, fold: F) -> A
where
    T: Send,
    M: Fn(usize) -> T + Sync,
    F: FnMut(A, T) -> A,
{
    parallel_map(n, map).into_iter().fold(init, fold)
}

/// Serial execution path: thread budget of 1, nested call, or no
/// permits available. Still participates in pool accounting so the
/// metrics see every batch.
fn inline_map<T, F>(n: usize, f: &F) -> Vec<T>
where
    F: Fn(usize) -> T,
{
    BATCHES_TOTAL.fetch_add(1, Ordering::Relaxed);
    let started = Instant::now();
    let was_worker = IN_WORKER.with(|w| w.replace(true));
    let result = catch_unwind(AssertUnwindSafe(|| (0..n).map(f).collect::<Vec<T>>()));
    IN_WORKER.with(|w| w.set(was_worker));
    let executed = match &result {
        Ok(v) => v.len() as u64,
        Err(_) => 0, // partial progress is not observable after a panic
    };
    flush_worker_stats(0, executed, started.elapsed().as_nanos() as u64, 0);
    match result {
        Ok(v) => v,
        Err(payload) => resume_unwind(payload),
    }
}

/// The pooled path: seed one deque per worker with contiguous index
/// chunks, spawn `workers - 1` scoped threads (the caller is worker 0),
/// drain with work stealing, and assemble results in index order.
fn run_pooled<T, F>(n: usize, workers: usize, f: &F) -> Result<Vec<T>, PanicPayload>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    BATCHES_TOTAL.fetch_add(1, Ordering::Relaxed);

    let mut deques: Vec<Worker<usize>> = (0..workers).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<usize>> = deques.iter().map(|d| d.stealer()).collect();
    // Contiguous chunks keep each worker's slice of the index space
    // cache-friendly; stealing rebalances when chunks are uneven.
    for i in 0..n {
        deques[i * workers / n].push(i);
    }

    let abort = AtomicBool::new(false);
    let first_panic: Mutex<Option<(usize, PanicPayload)>> = Mutex::new(None);

    let mut slots: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let own = deques.remove(0);
        let handles: Vec<_> = deques
            .into_iter()
            .enumerate()
            .map(|(i, deque)| {
                let slot = i + 1;
                let stealers = &stealers;
                let abort = &abort;
                let first_panic = &first_panic;
                scope.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    drain_worker(slot, deque, stealers, f, abort, first_panic)
                })
            })
            .collect();
        let was_worker = IN_WORKER.with(|w| w.replace(true));
        let mine = drain_worker(0, own, &stealers, f, &abort, &first_panic);
        IN_WORKER.with(|w| w.set(was_worker));
        let mut all = vec![mine];
        for h in handles {
            all.push(h.join().expect("pool worker thread"));
        }
        all
    });

    if let Some((_, payload)) = first_panic.into_inner().expect("pool panic slot") {
        return Err(payload);
    }

    let mut assembled: Vec<Option<T>> = Vec::with_capacity(n);
    assembled.resize_with(n, || None);
    for slot in slots.drain(..) {
        for (i, v) in slot {
            assembled[i] = Some(v);
        }
    }
    Ok(assembled
        .into_iter()
        .map(|v| v.expect("pool task result missing"))
        .collect())
}

fn drain_worker<T, F>(
    slot: usize,
    own: Worker<usize>,
    stealers: &[Stealer<usize>],
    f: &F,
    abort: &AtomicBool,
    first_panic: &Mutex<Option<(usize, PanicPayload)>>,
) -> Vec<(usize, T)>
where
    F: Fn(usize) -> T,
{
    let started = Instant::now();
    let mut out = Vec::new();
    let mut tasks = 0u64;
    let mut steals = 0u64;
    'outer: loop {
        if abort.load(Ordering::SeqCst) {
            break;
        }
        let index = match own.pop() {
            Some(i) => i,
            None => {
                // Own deque dry: steal a batch from the next non-empty
                // victim, scanning round-robin from our right neighbour.
                let mut found = None;
                for offset in 1..stealers.len() {
                    let victim = (slot + offset) % stealers.len();
                    match stealers[victim].steal_batch_and_pop(&own) {
                        Steal::Success(i) => {
                            steals += 1;
                            found = Some(i);
                            break;
                        }
                        Steal::Empty => continue,
                        Steal::Retry => continue,
                    }
                }
                match found {
                    Some(i) => i,
                    None => break 'outer,
                }
            }
        };
        match catch_unwind(AssertUnwindSafe(|| f(index))) {
            Ok(value) => {
                tasks += 1;
                out.push((index, value));
            }
            Err(payload) => {
                tasks += 1;
                abort.store(true, Ordering::SeqCst);
                let mut lock = first_panic.lock().expect("pool panic slot");
                // Keep the lowest-index payload: closest to what a
                // serial loop would have raised first.
                match lock.as_ref() {
                    Some((prev, _)) if *prev <= index => {}
                    _ => *lock = Some((index, payload)),
                }
                break 'outer;
            }
        }
    }
    flush_worker_stats(slot, tasks, started.elapsed().as_nanos() as u64, steals);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_matches_serial_at_every_thread_count() {
        let serial: Vec<u64> = (0..997)
            .map(|i| (i as u64).wrapping_mul(2654435761))
            .collect();
        for threads in [1, 2, 3, 8] {
            let pooled = with_threads(threads, || {
                parallel_map(997, |i| (i as u64).wrapping_mul(2654435761))
            });
            assert_eq!(pooled, serial, "threads={threads}");
        }
    }

    #[test]
    fn map_reduce_folds_in_index_order() {
        // Non-commutative fold: order changes the result, so equality
        // with the serial fold proves index-ordered reduction.
        let serial = (0..200).fold(String::new(), |acc, i| format!("{acc}/{i}"));
        for threads in [1, 2, 8] {
            let pooled = with_threads(threads, || {
                parallel_map_reduce(200, |i| i, String::new(), |acc, i| format!("{acc}/{i}"))
            });
            assert_eq!(pooled, serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_batches() {
        let empty: Vec<u32> = parallel_map(0, |_| 1u32);
        assert!(empty.is_empty());
        assert_eq!(parallel_map(1, |i| i + 41), vec![41]);
    }

    #[test]
    fn parallel_for_covers_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        with_threads(4, || {
            parallel_for(500, |i| {
                hits[i].fetch_add(1, Ordering::SeqCst);
            })
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn panic_payload_propagates() {
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            with_threads(4, || {
                parallel_map(64, |i| {
                    if i == 17 {
                        panic!("task 17 exploded");
                    }
                    i
                })
            })
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "task 17 exploded");
    }

    #[test]
    fn nested_calls_run_inline() {
        let observed = with_threads(4, || {
            parallel_map(4, |_| {
                // Inside a worker the pool must report 1 thread and the
                // nested call must still produce correct ordered output.
                let inner = parallel_map(8, |j| j * 2);
                (current_threads(), inner)
            })
        });
        for (threads, inner) in observed {
            assert_eq!(threads, 1);
            assert_eq!(inner, vec![0, 2, 4, 6, 8, 10, 12, 14]);
        }
    }

    #[test]
    fn with_threads_restores_on_exit_and_panic() {
        let before = current_threads();
        with_threads(7, || assert_eq!(current_threads(), 7));
        assert_eq!(current_threads(), before);
        let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
            with_threads(5, || panic!("boom"));
        }));
        assert_eq!(current_threads(), before);
    }

    #[test]
    fn stats_count_tasks_and_batches() {
        // Counters are global; only assert monotonic deltas.
        let before = stats();
        with_threads(2, || parallel_map(100, |i| i));
        let after = stats();
        assert!(after.tasks >= before.tasks + 100);
        assert!(after.batches > before.batches);
        assert!(!after.workers.is_empty());
    }

    #[test]
    fn permit_budget_bounds_concurrent_batches() {
        // Two top-level batches racing for permits must both finish
        // with correct results even when one is forced inline.
        let results: Vec<Vec<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|_| s.spawn(|| with_threads(8, || parallel_map(300, |i| i * 3))))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let expect: Vec<usize> = (0..300).map(|i| i * 3).collect();
        for r in results {
            assert_eq!(r, expect);
        }
        assert_eq!(EXTRA_IN_USE.load(Ordering::SeqCst), 0, "permits leaked");
    }

    #[test]
    fn parallel_map_min_keeps_small_batches_serial() {
        let small = parallel_map_min(8, 16, |i| i + 1);
        assert_eq!(small, (1..=8).collect::<Vec<_>>());
        let large = with_threads(2, || parallel_map_min(32, 16, |i| i + 1));
        assert_eq!(large, (1..=32).collect::<Vec<_>>());
    }
}
