//! The algorithm registry: name → factory.
//!
//! This is what the general Classifier Web Service's `getClassifiers`
//! operation returns — "a list of available classifiers known to it" —
//! and likewise for clusterers and associators. Meta classifiers
//! (Bagging, AdaBoostM1) also resolve their base learners here.

use crate::associations::{Apriori, Associator, FPGrowth};
use crate::classifiers::{
    AdaBoostM1, Bagging, Classifier, DecisionStump, HoeffdingTree, IBk, Logistic,
    MultilayerPerceptron, NaiveBayes, OneR, Prism, RandomForest, RandomTree, ZeroR, J48,
};
use crate::cluster::{
    Clusterer, Cobweb, FarthestFirst, Hierarchical, IncrementalKMeans, KMeans, EM,
};
use crate::error::{AlgoError, Result};

/// Names of all registered classifiers, in stable order.
pub fn classifier_names() -> Vec<&'static str> {
    vec![
        "ZeroR",
        "OneR",
        "DecisionStump",
        "NaiveBayes",
        "IBk",
        "J48",
        "Prism",
        "Logistic",
        "MultilayerPerceptron",
        "RandomTree",
        "RandomForest",
        "Bagging",
        "AdaBoostM1",
        "HoeffdingTree",
    ]
}

/// Construct a classifier by registry name.
pub fn make_classifier(name: &str) -> Result<Box<dyn Classifier>> {
    Ok(match name {
        "ZeroR" => Box::new(ZeroR::new()),
        "OneR" => Box::new(OneR::new()),
        "DecisionStump" => Box::new(DecisionStump::new()),
        "NaiveBayes" => Box::new(NaiveBayes::new()),
        "IBk" => Box::new(IBk::new()),
        "J48" => Box::new(J48::new()),
        "Prism" => Box::new(Prism::new()),
        "Logistic" => Box::new(Logistic::new()),
        "MultilayerPerceptron" => Box::new(MultilayerPerceptron::new()),
        "RandomTree" => Box::new(RandomTree::new()),
        "RandomForest" => Box::new(RandomForest::new()),
        "Bagging" => Box::new(Bagging::new()),
        "AdaBoostM1" => Box::new(AdaBoostM1::new()),
        "HoeffdingTree" => Box::new(HoeffdingTree::new()),
        other => return Err(AlgoError::UnknownAlgorithm(other.to_string())),
    })
}

/// Names of all registered clusterers, in stable order.
pub fn clusterer_names() -> Vec<&'static str> {
    vec![
        "SimpleKMeans",
        "FarthestFirst",
        "Cobweb",
        "EM",
        "HierarchicalClusterer",
        "IncrementalKMeans",
    ]
}

/// Construct a clusterer by registry name.
pub fn make_clusterer(name: &str) -> Result<Box<dyn Clusterer>> {
    Ok(match name {
        "SimpleKMeans" => Box::new(KMeans::new()),
        "FarthestFirst" => Box::new(FarthestFirst::new()),
        "Cobweb" => Box::new(Cobweb::new()),
        "EM" => Box::new(EM::new()),
        "HierarchicalClusterer" => Box::new(Hierarchical::new()),
        "IncrementalKMeans" => Box::new(IncrementalKMeans::new()),
        other => return Err(AlgoError::UnknownAlgorithm(other.to_string())),
    })
}

/// Names of all registered association-rule miners.
pub fn associator_names() -> Vec<&'static str> {
    vec!["Apriori", "FPGrowth"]
}

/// Construct an association-rule miner by registry name.
pub fn make_associator(name: &str) -> Result<Box<dyn Associator>> {
    Ok(match name {
        "Apriori" => Box::new(Apriori::new()),
        "FPGrowth" => Box::new(FPGrowth::new()),
        other => return Err(AlgoError::UnknownAlgorithm(other.to_string())),
    })
}

/// Total algorithm inventory: classifiers + clusterers + associators +
/// attribute-selection approaches. The paper's WEKA pool contained ~75
/// algorithms; this reproduction implements a representative pool and
/// exposes it through the same registry contract (see DESIGN.md).
pub fn inventory_size() -> usize {
    classifier_names().len()
        + clusterer_names().len()
        + associator_names().len()
        + crate::attrsel::approaches().len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_classifier_name_constructs() {
        for name in classifier_names() {
            let c = make_classifier(name).unwrap();
            assert_eq!(c.name(), name);
        }
    }

    #[test]
    fn every_clusterer_name_constructs() {
        for name in clusterer_names() {
            let c = make_clusterer(name).unwrap();
            assert_eq!(c.name(), name);
        }
    }

    #[test]
    fn every_associator_name_constructs() {
        for name in associator_names() {
            let a = make_associator(name).unwrap();
            assert_eq!(a.name(), name);
        }
    }

    #[test]
    fn unknown_names_rejected() {
        assert!(matches!(
            make_classifier("C5.0"),
            Err(AlgoError::UnknownAlgorithm(_))
        ));
        assert!(make_clusterer("DBSCAN").is_err());
        assert!(make_associator("Eclat").is_err());
    }

    #[test]
    fn inventory_matches_paper_scale() {
        // 14 classifiers + 6 clusterers + 2 associators + 20 attribute
        // selection approaches = 42 registered algorithms.
        assert_eq!(inventory_size(), 42);
    }

    #[test]
    fn all_classifiers_train_on_weather() {
        let ds = crate::classifiers::test_support::weather_nominal();
        for name in classifier_names() {
            if name == "Prism" {
                // Prism needs all-nominal data — weather_nominal is; OK.
            }
            let mut c = make_classifier(name).unwrap();
            c.train(&ds)
                .unwrap_or_else(|e| panic!("{name} failed to train: {e}"));
            let d = c.distribution(&ds, 0).unwrap();
            assert_eq!(d.len(), 2, "{name} distribution arity");
            let s: f64 = d.iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "{name} distribution sums to {s}");
        }
    }

    #[test]
    fn all_clusterers_build_on_blobs() {
        let ds = crate::cluster::test_support::three_blobs();
        for name in clusterer_names() {
            let mut c = make_clusterer(name).unwrap();
            if name == "Cobweb" {
                c.set_option("-A", "0.3").unwrap();
            }
            c.build(&ds)
                .unwrap_or_else(|e| panic!("{name} failed to build: {e}"));
            assert!(c.num_clusters().unwrap() >= 1, "{name} cluster count");
            let assignment = c.cluster_instance(&ds, 0).unwrap();
            assert!(assignment < c.num_clusters().unwrap().max(1000));
        }
    }
}
