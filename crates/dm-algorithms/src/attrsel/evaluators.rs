//! Single-attribute evaluators: each scores every non-class attribute;
//! higher is better. Numeric attributes are discretised into ten
//! equal-width bins for the contingency-table-based measures.

use crate::classifiers::entropy;
use crate::error::{AlgoError, Result};
use dm_data::{Dataset, Value};

/// Scores all attributes of a dataset (class attribute gets 0).
pub trait AttributeEvaluator: Send {
    /// Evaluator name.
    fn name(&self) -> &'static str;
    /// Per-attribute scores, one per attribute (class attribute 0).
    fn evaluate_all(&self, data: &Dataset) -> Result<Vec<f64>>;
}

const NUM_BINS: usize = 10;

/// Discretised value of (row, attr): nominal index, or equal-width bin.
fn bucket(data: &Dataset, row: usize, attr: usize, range: Option<(f64, f64)>) -> Option<usize> {
    let v = data.value(row, attr);
    if Value::is_missing(v) {
        return None;
    }
    if data.attributes()[attr].is_nominal() {
        return Some(Value::as_index(v));
    }
    let (min, max) = range?;
    if max <= min {
        return Some(0);
    }
    Some((((v - min) / (max - min) * NUM_BINS as f64) as usize).min(NUM_BINS - 1))
}

fn numeric_range(data: &Dataset, attr: usize) -> Option<(f64, f64)> {
    if !data.attributes()[attr].is_numeric() {
        return None;
    }
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for r in 0..data.num_instances() {
        let v = data.value(r, attr);
        if !Value::is_missing(v) {
            min = min.min(v);
            max = max.max(v);
        }
    }
    (min <= max).then_some((min, max))
}

fn arity(data: &Dataset, attr: usize) -> usize {
    if data.attributes()[attr].is_nominal() {
        data.attributes()[attr].num_labels()
    } else {
        NUM_BINS
    }
}

/// Build the `attr × class` contingency table (weighted), skipping
/// missing values on either side.
fn contingency(data: &Dataset, attr: usize, ci: usize, k: usize) -> Vec<Vec<f64>> {
    let range = numeric_range(data, attr);
    let mut table = vec![vec![0.0; k]; arity(data, attr)];
    for r in 0..data.num_instances() {
        let cv = data.value(r, ci);
        if Value::is_missing(cv) {
            continue;
        }
        if let Some(b) = bucket(data, r, attr, range) {
            table[b][Value::as_index(cv)] += data.weight(r);
        }
    }
    table
}

fn class_setup(data: &Dataset) -> Result<(usize, usize)> {
    let ci = data
        .class_index()
        .ok_or(AlgoError::Data(dm_data::DataError::NoClass))?;
    let k = data.num_classes()?;
    Ok((ci, k))
}

/// `gain = H(C) − H(C|A)` from a contingency table.
fn info_gain_of(table: &[Vec<f64>]) -> f64 {
    let k = table.first().map_or(0, Vec::len);
    let mut class_totals = vec![0.0; k];
    let mut total = 0.0;
    for row in table {
        for (c, &x) in row.iter().enumerate() {
            class_totals[c] += x;
            total += x;
        }
    }
    if total <= 0.0 {
        return 0.0;
    }
    let h_class = entropy(&class_totals);
    let mut h_cond = 0.0;
    for row in table {
        let w: f64 = row.iter().sum();
        if w > 0.0 {
            h_cond += w / total * entropy(row);
        }
    }
    h_class - h_cond
}

fn attr_entropy(table: &[Vec<f64>]) -> f64 {
    let weights: Vec<f64> = table.iter().map(|row| row.iter().sum()).collect();
    entropy(&weights)
}

macro_rules! table_evaluator {
    ($(#[$doc:meta])* $name:ident, $strname:literal, $score:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $name;

        impl $name {
            /// Create the evaluator.
            pub fn new() -> $name {
                $name
            }
        }

        impl AttributeEvaluator for $name {
            fn name(&self) -> &'static str {
                $strname
            }

            fn evaluate_all(&self, data: &Dataset) -> Result<Vec<f64>> {
                let (ci, k) = class_setup(data)?;
                let score: fn(&[Vec<f64>]) -> f64 = $score;
                Ok((0..data.num_attributes())
                    .map(|a| {
                        if a == ci || data.attributes()[a].is_string() {
                            0.0
                        } else {
                            score(&contingency(data, a, ci, k))
                        }
                    })
                    .collect())
            }
        }
    };
}

table_evaluator!(
    /// Information gain `H(C) − H(C|A)`.
    InfoGainEval,
    "InfoGain",
    info_gain_of
);

table_evaluator!(
    /// Gain ratio `gain / H(A)`.
    GainRatioEval,
    "GainRatio",
    |table| {
        let si = attr_entropy(table);
        if si <= 1e-12 {
            0.0
        } else {
            info_gain_of(table) / si
        }
    }
);

table_evaluator!(
    /// Pearson chi-squared statistic of the `A × C` table.
    ChiSquared,
    "ChiSquared",
    |table| {
        let k = table.first().map_or(0, Vec::len);
        let mut col = vec![0.0; k];
        let mut total = 0.0;
        for row in table {
            for (c, &x) in row.iter().enumerate() {
                col[c] += x;
                total += x;
            }
        }
        if total <= 0.0 {
            return 0.0;
        }
        let mut chi2 = 0.0;
        for row in table {
            let rw: f64 = row.iter().sum();
            for (c, &x) in row.iter().enumerate() {
                let expected = rw * col[c] / total;
                if expected > 0.0 {
                    chi2 += (x - expected) * (x - expected) / expected;
                }
            }
        }
        chi2
    }
);

table_evaluator!(
    /// Symmetrical uncertainty `2·gain / (H(A) + H(C))`.
    SymmetricalUncertainty,
    "SymmetricalUncertainty",
    |table| {
        let k = table.first().map_or(0, Vec::len);
        let mut col = vec![0.0; k];
        for row in table {
            for (c, &x) in row.iter().enumerate() {
                col[c] += x;
            }
        }
        let denom = attr_entropy(table) + entropy(&col);
        if denom <= 1e-12 {
            0.0
        } else {
            2.0 * info_gain_of(table) / denom
        }
    }
);

table_evaluator!(
    /// Cramér's V association strength, `sqrt(χ² / (n·(min(r,c)−1)))`.
    CramersV,
    "CramersV",
    |table| {
        let k = table.first().map_or(0, Vec::len);
        let rows = table.iter().filter(|r| r.iter().sum::<f64>() > 0.0).count();
        let total: f64 = table.iter().map(|r| r.iter().sum::<f64>()).sum();
        if total <= 0.0 || rows < 2 || k < 2 {
            return 0.0;
        }
        // chi2 inline (same as ChiSquared).
        let mut col = vec![0.0; k];
        for row in table {
            for (c, &x) in row.iter().enumerate() {
                col[c] += x;
            }
        }
        let mut chi2 = 0.0;
        for row in table {
            let rw: f64 = row.iter().sum();
            for (c, &x) in row.iter().enumerate() {
                let expected = rw * col[c] / total;
                if expected > 0.0 {
                    chi2 += (x - expected) * (x - expected) / expected;
                }
            }
        }
        let m = (rows.min(k) - 1) as f64;
        (chi2 / (total * m)).sqrt()
    }
);

table_evaluator!(
    /// Accuracy of the best single-attribute (OneR-style) rule.
    OneRAttrEval,
    "OneR",
    |table| {
        let mut correct = 0.0;
        let mut total = 0.0;
        for row in table {
            correct += row.iter().cloned().fold(0.0, f64::max);
            total += row.iter().sum::<f64>();
        }
        if total <= 0.0 {
            0.0
        } else {
            correct / total
        }
    }
);

/// Normalised variance ranking (unsupervised; the "PCA-style" ranker).
/// Nominal attributes score by Gini diversity of their distribution.
#[derive(Debug, Clone, Copy, Default)]
pub struct VarianceRank;

impl VarianceRank {
    /// Create the evaluator.
    pub fn new() -> VarianceRank {
        VarianceRank
    }
}

impl AttributeEvaluator for VarianceRank {
    fn name(&self) -> &'static str {
        "Variance"
    }

    fn evaluate_all(&self, data: &Dataset) -> Result<Vec<f64>> {
        let ci = data.class_index();
        Ok((0..data.num_attributes())
            .map(|a| {
                if Some(a) == ci || data.attributes()[a].is_string() {
                    return 0.0;
                }
                if data.attributes()[a].is_nominal() {
                    let mut counts = vec![0.0; data.attributes()[a].num_labels()];
                    let mut total = 0.0;
                    for r in 0..data.num_instances() {
                        let v = data.value(r, a);
                        if !Value::is_missing(v) {
                            counts[Value::as_index(v)] += 1.0;
                            total += 1.0;
                        }
                    }
                    if total <= 0.0 {
                        0.0
                    } else {
                        1.0 - counts
                            .iter()
                            .map(|&c| (c / total) * (c / total))
                            .sum::<f64>()
                    }
                } else {
                    // Range-normalised variance.
                    let Some((min, max)) = numeric_range(data, a) else {
                        return 0.0;
                    };
                    if max <= min {
                        return 0.0;
                    }
                    let vals: Vec<f64> = (0..data.num_instances())
                        .filter_map(|r| {
                            let v = data.value(r, a);
                            (!Value::is_missing(v)).then(|| (v - min) / (max - min))
                        })
                        .collect();
                    let n = vals.len() as f64;
                    if n == 0.0 {
                        return 0.0;
                    }
                    let mean = vals.iter().sum::<f64>() / n;
                    vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n
                }
            })
            .collect())
    }
}

/// ReliefF (Kononenko 1994): weight attributes by how well they
/// separate each instance from its nearest misses versus nearest hits.
#[derive(Debug, Clone, Copy)]
pub struct ReliefF {
    /// Neighbours per class.
    pub k: usize,
}

impl Default for ReliefF {
    fn default() -> Self {
        ReliefF { k: 10 }
    }
}

impl ReliefF {
    /// Create with `k = 10` neighbours.
    pub fn new() -> ReliefF {
        ReliefF::default()
    }
}

impl AttributeEvaluator for ReliefF {
    fn name(&self) -> &'static str {
        "ReliefF"
    }

    fn evaluate_all(&self, data: &Dataset) -> Result<Vec<f64>> {
        let (ci, _k_classes) = class_setup(data)?;
        let n = data.num_instances();
        if n < 2 {
            return Err(AlgoError::Data(dm_data::DataError::Empty));
        }
        let n_attrs = data.num_attributes();
        let ranges: Vec<Option<(f64, f64)>> =
            (0..n_attrs).map(|a| numeric_range(data, a)).collect();

        // Per-attribute difference in [0, 1].
        let diff = |a: usize, r1: usize, r2: usize| -> f64 {
            if a == ci {
                return 0.0;
            }
            let (x, y) = (data.value(r1, a), data.value(r2, a));
            if Value::is_missing(x) || Value::is_missing(y) {
                return 1.0;
            }
            if data.attributes()[a].is_nominal() {
                f64::from(u8::from(Value::as_index(x) != Value::as_index(y)))
            } else {
                match ranges[a] {
                    Some((min, max)) if max > min => ((x - y) / (max - min)).abs(),
                    _ => 0.0,
                }
            }
        };
        let distance =
            |r1: usize, r2: usize| -> f64 { (0..n_attrs).map(|a| diff(a, r1, r2)).sum() };

        let mut weights = vec![0.0f64; n_attrs];
        for r in 0..n {
            let cv = data.value(r, ci);
            if Value::is_missing(cv) {
                continue;
            }
            let my_class = Value::as_index(cv);
            // Nearest hits and misses.
            let mut hits: Vec<(f64, usize)> = Vec::new();
            let mut misses: Vec<(f64, usize)> = Vec::new();
            for other in 0..n {
                if other == r {
                    continue;
                }
                let ov = data.value(other, ci);
                if Value::is_missing(ov) {
                    continue;
                }
                let d = distance(r, other);
                if Value::as_index(ov) == my_class {
                    hits.push((d, other));
                } else {
                    misses.push((d, other));
                }
            }
            let by_distance =
                |a: &(f64, usize), b: &(f64, usize)| a.0.partial_cmp(&b.0).expect("no NaN");
            hits.sort_by(by_distance);
            misses.sort_by(by_distance);
            let kh = self.k.min(hits.len());
            let km = self.k.min(misses.len());
            for (a, w) in weights.iter_mut().enumerate() {
                if a == ci {
                    continue;
                }
                for &(_, h) in &hits[..kh] {
                    *w -= diff(a, r, h) / (kh.max(1) * n) as f64;
                }
                for &(_, m) in &misses[..km] {
                    *w += diff(a, r, m) / (km.max(1) * n) as f64;
                }
            }
        }
        Ok(weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifiers::test_support::weather_nominal;

    fn scores(e: &dyn AttributeEvaluator) -> Vec<f64> {
        e.evaluate_all(&weather_nominal()).unwrap()
    }

    #[test]
    fn info_gain_known_weather_values() {
        // Quinlan's classic numbers: outlook 0.247, humidity 0.152,
        // windy 0.048, temperature 0.029.
        let s = scores(&InfoGainEval::new());
        assert!((s[0] - 0.2467).abs() < 1e-3, "outlook {}", s[0]);
        assert!((s[2] - 0.1518).abs() < 1e-3, "humidity {}", s[2]);
        assert!((s[3] - 0.0481).abs() < 1e-3, "windy {}", s[3]);
        assert!((s[1] - 0.0292).abs() < 1e-3, "temperature {}", s[1]);
        assert_eq!(s[4], 0.0); // class itself
    }

    #[test]
    fn gain_ratio_orders_outlook_first() {
        let s = scores(&GainRatioEval::new());
        assert!(s[0] > s[1] && s[0] > s[3]);
    }

    #[test]
    fn chi_squared_positive_for_informative() {
        let s = scores(&ChiSquared::new());
        assert!(s[0] > s[1]);
        assert!(s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn symmetrical_uncertainty_bounded() {
        let s = scores(&SymmetricalUncertainty::new());
        assert!(s.iter().all(|&x| (0.0..=1.0).contains(&x)));
        assert!(s[0] > 0.1);
    }

    #[test]
    fn one_r_eval_matches_rule_accuracy() {
        let s = scores(&OneRAttrEval::new());
        // outlook's best rule gets 10/14.
        assert!((s[0] - 10.0 / 14.0).abs() < 1e-9);
    }

    #[test]
    fn cramers_v_bounded() {
        let s = scores(&CramersV::new());
        assert!(s.iter().all(|&x| (0.0..=1.0 + 1e-9).contains(&x)));
        assert!(s[0] > s[1]);
    }

    #[test]
    fn relief_favours_node_caps_family() {
        let ds = dm_data::corpus::breast_cancer();
        let s = ReliefF::new().evaluate_all(&ds).unwrap();
        let nc = ds.attribute_index("node-caps").unwrap();
        let breast = ds.attribute_index("breast").unwrap();
        assert!(
            s[nc] > s[breast],
            "node-caps {} should outrank breast {}",
            s[nc],
            s[breast]
        );
    }

    #[test]
    fn variance_rank_unsupervised() {
        let s = scores(&VarianceRank::new());
        assert!(s.iter().take(4).all(|&x| x > 0.0));
        assert_eq!(s[4], 0.0);
    }

    #[test]
    fn numeric_attributes_binned() {
        let ds = crate::classifiers::test_support::weather_numeric();
        let s = InfoGainEval::new().evaluate_all(&ds).unwrap();
        assert!(s.iter().all(|&x| x.is_finite()));
        assert!(s[0] > 0.0);
    }

    #[test]
    fn breast_cancer_info_gain_ranking() {
        // The gains computed for the corpus design: deg-malig and
        // inv-nodes carry the largest raw gains.
        let ds = dm_data::corpus::breast_cancer();
        let s = InfoGainEval::new().evaluate_all(&ds).unwrap();
        let dm = ds.attribute_index("deg-malig").unwrap();
        let breast = ds.attribute_index("breast").unwrap();
        assert!(s[dm] > 0.05);
        assert!(s[breast] < 0.02);
    }

    #[test]
    fn requires_class() {
        let mut ds = weather_nominal();
        ds.set_class_index(None).unwrap();
        assert!(InfoGainEval::new().evaluate_all(&ds).is_err());
    }
}
