//! Attribute search and selection.
//!
//! The paper: "Additional capability is provided to support attribute
//! search and selection within a numeric data set and 20 different
//! approaches are provided to achieve this such as a genetic search
//! operator" (§1), and §5.3: "The attribute selection process can also
//! be automated through the use of a genetic search service."
//!
//! An *approach* is an (evaluator, search) pairing:
//!
//! * single-attribute evaluators ([`evaluators`]) rank attributes via
//!   the [`search::Ranker`] search — info gain, gain ratio,
//!   chi-squared, symmetrical uncertainty, OneR, ReliefF, Cramér's V,
//!   and variance ranking;
//! * subset evaluators ([`subset`]) — CFS and the classifier wrapper —
//!   combine with the subset searches ([`search`]): best-first, greedy
//!   forward, greedy backward, **genetic**, random, and exhaustive.
//!
//! [`approaches`] enumerates every supported pairing (8 + 2 × 6 = 20).

pub mod evaluators;
pub mod search;
pub mod subset;

pub use evaluators::{
    AttributeEvaluator, ChiSquared, CramersV, GainRatioEval, InfoGainEval, OneRAttrEval, ReliefF,
    SymmetricalUncertainty, VarianceRank,
};
pub use search::{
    BestFirst, Exhaustive, GeneticSearch, GreedyBackward, GreedyForward, RandomSearch, Ranker,
    SubsetSearch,
};
pub use subset::{CfsSubset, SubsetEvaluator, WrapperSubset};

use crate::error::Result;
use dm_data::Dataset;

/// A named attribute-selection approach (evaluator × search pairing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Approach {
    /// Display name, e.g. `"CfsSubset+GeneticSearch"`.
    pub name: String,
    /// Evaluator half of the pairing.
    pub evaluator: &'static str,
    /// Search half of the pairing.
    pub search: &'static str,
}

/// Every supported approach (the paper's "20 different approaches").
pub fn approaches() -> Vec<Approach> {
    let rankers = [
        "InfoGain",
        "GainRatio",
        "ChiSquared",
        "SymmetricalUncertainty",
        "OneR",
        "ReliefF",
        "CramersV",
        "Variance",
    ];
    let subset_evals = ["CfsSubset", "Wrapper"];
    let searches = [
        "BestFirst",
        "GreedyForward",
        "GreedyBackward",
        "GeneticSearch",
        "RandomSearch",
        "Exhaustive",
    ];
    let mut out: Vec<Approach> = rankers
        .iter()
        .map(|e| Approach {
            name: format!("{e}+Ranker"),
            evaluator: e,
            search: "Ranker",
        })
        .collect();
    for e in subset_evals {
        for s in searches {
            out.push(Approach {
                name: format!("{e}+{s}"),
                evaluator: e,
                search: s,
            });
        }
    }
    out
}

/// Run a named approach on `data`, returning the selected attribute
/// indices (ranked approaches return all non-class attributes in rank
/// order; subset approaches return the chosen subset). Seeded searches
/// use `seed`.
pub fn run_approach(name: &str, data: &Dataset, seed: u64) -> Result<Vec<usize>> {
    let (eval_name, search_name) = name.split_once('+').ok_or_else(|| {
        crate::error::AlgoError::UnknownAlgorithm(format!("approach {name:?} (want EVAL+SEARCH)"))
    })?;

    if search_name == "Ranker" {
        let evaluator: Box<dyn AttributeEvaluator> = match eval_name {
            "InfoGain" => Box::new(InfoGainEval::new()),
            "GainRatio" => Box::new(GainRatioEval::new()),
            "ChiSquared" => Box::new(ChiSquared::new()),
            "SymmetricalUncertainty" => Box::new(SymmetricalUncertainty::new()),
            "OneR" => Box::new(OneRAttrEval::new()),
            "ReliefF" => Box::new(ReliefF::new()),
            "CramersV" => Box::new(CramersV::new()),
            "Variance" => Box::new(VarianceRank::new()),
            other => {
                return Err(crate::error::AlgoError::UnknownAlgorithm(format!(
                    "evaluator {other:?}"
                )))
            }
        };
        return Ranker::new().rank(evaluator.as_ref(), data);
    }

    let evaluator: Box<dyn SubsetEvaluator> = match eval_name {
        "CfsSubset" => Box::new(CfsSubset::new()),
        "Wrapper" => Box::new(WrapperSubset::new("NaiveBayes", 3, seed)),
        other => {
            return Err(crate::error::AlgoError::UnknownAlgorithm(format!(
                "subset evaluator {other:?}"
            )))
        }
    };
    let search: Box<dyn SubsetSearch> = match search_name {
        "BestFirst" => Box::new(BestFirst::new()),
        "GreedyForward" => Box::new(GreedyForward::new()),
        "GreedyBackward" => Box::new(GreedyBackward::new()),
        "GeneticSearch" => Box::new(GeneticSearch::new(seed)),
        "RandomSearch" => Box::new(RandomSearch::new(200, seed)),
        "Exhaustive" => Box::new(Exhaustive::new()),
        other => {
            return Err(crate::error::AlgoError::UnknownAlgorithm(format!(
                "search {other:?}"
            )))
        }
    };
    search.search(evaluator.as_ref(), data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_approaches_enumerated() {
        let a = approaches();
        assert_eq!(a.len(), 20, "the paper claims 20 approaches");
        assert!(a.iter().any(|x| x.search == "GeneticSearch"));
        // All names unique.
        let mut names: Vec<&str> = a.iter().map(|x| x.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 20);
    }

    #[test]
    fn every_approach_runs_on_breast_cancer() {
        let ds = dm_data::corpus::breast_cancer();
        for approach in approaches() {
            // Skip the slowest wrapper×exhaustive combination here; it
            // is exercised in the integration suite.
            if approach.name == "Wrapper+Exhaustive" {
                continue;
            }
            let picked = run_approach(&approach.name, &ds, 7)
                .unwrap_or_else(|e| panic!("{} failed: {e}", approach.name));
            assert!(!picked.is_empty(), "{} selected nothing", approach.name);
            let class = ds.class_index().unwrap();
            assert!(
                !picked.contains(&class),
                "{} selected the class attribute",
                approach.name
            );
        }
    }

    #[test]
    fn unknown_names_rejected() {
        let ds = dm_data::corpus::breast_cancer();
        assert!(run_approach("Bogus+Ranker", &ds, 0).is_err());
        assert!(run_approach("CfsSubset+Bogus", &ds, 0).is_err());
        assert!(run_approach("NoPlus", &ds, 0).is_err());
    }
}
