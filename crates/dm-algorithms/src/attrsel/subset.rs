//! Subset evaluators: score a whole attribute subset at once.

use super::evaluators::{AttributeEvaluator, SymmetricalUncertainty};
use crate::classifiers::entropy;
use crate::error::{AlgoError, Result};
use dm_data::{Dataset, Value};

/// Scores an attribute subset; higher is better.
pub trait SubsetEvaluator: Send {
    /// Evaluator name.
    fn name(&self) -> &'static str;
    /// Merit of `subset` (non-class attribute indices) on `data`.
    fn evaluate_subset(&self, data: &Dataset, subset: &[usize]) -> Result<f64>;
}

/// CFS (Hall 1999): merit = `k·r̄_cf / sqrt(k + k(k−1)·r̄_ff)` where
/// `r̄_cf` is the mean feature–class correlation and `r̄_ff` the mean
/// feature–feature correlation, both measured by symmetrical
/// uncertainty.
#[derive(Debug, Clone, Copy, Default)]
pub struct CfsSubset;

impl CfsSubset {
    /// Create the evaluator.
    pub fn new() -> CfsSubset {
        CfsSubset
    }

    /// Symmetrical uncertainty between two (discretised) attributes.
    fn su_between(data: &Dataset, a: usize, b: usize) -> f64 {
        // Build the joint table treating `b` as the "class".
        let arity = |attr: usize| -> usize {
            if data.attributes()[attr].is_nominal() {
                data.attributes()[attr].num_labels()
            } else {
                10
            }
        };
        let range = |attr: usize| -> Option<(f64, f64)> {
            if !data.attributes()[attr].is_numeric() {
                return None;
            }
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for r in 0..data.num_instances() {
                let v = data.value(r, attr);
                if !Value::is_missing(v) {
                    min = min.min(v);
                    max = max.max(v);
                }
            }
            (min <= max).then_some((min, max))
        };
        let bucket = |attr: usize, r: usize, range: Option<(f64, f64)>| -> Option<usize> {
            let v = data.value(r, attr);
            if Value::is_missing(v) {
                return None;
            }
            if data.attributes()[attr].is_nominal() {
                return Some(Value::as_index(v));
            }
            let (min, max) = range?;
            if max <= min {
                return Some(0);
            }
            Some((((v - min) / (max - min) * 10.0) as usize).min(9))
        };
        let (ra, rb) = (range(a), range(b));
        let mut table = vec![vec![0.0f64; arity(b)]; arity(a)];
        for r in 0..data.num_instances() {
            if let (Some(x), Some(y)) = (bucket(a, r, ra), bucket(b, r, rb)) {
                table[x][y] += 1.0;
            }
        }
        // H(A), H(B), H(A,B).
        let row_sums: Vec<f64> = table.iter().map(|r| r.iter().sum()).collect();
        let mut col_sums = vec![0.0f64; arity(b)];
        let mut joint: Vec<f64> = Vec::new();
        for row in &table {
            for (c, &x) in row.iter().enumerate() {
                col_sums[c] += x;
                joint.push(x);
            }
        }
        let (ha, hb, hab) = (entropy(&row_sums), entropy(&col_sums), entropy(&joint));
        let gain = ha + hb - hab;
        if ha + hb <= 1e-12 {
            0.0
        } else {
            (2.0 * gain / (ha + hb)).clamp(0.0, 1.0)
        }
    }
}

impl SubsetEvaluator for CfsSubset {
    fn name(&self) -> &'static str {
        "CfsSubset"
    }

    fn evaluate_subset(&self, data: &Dataset, subset: &[usize]) -> Result<f64> {
        let ci = data
            .class_index()
            .ok_or(AlgoError::Data(dm_data::DataError::NoClass))?;
        if subset.is_empty() {
            return Ok(0.0);
        }
        // Feature-class correlations via the standard evaluator.
        let su = SymmetricalUncertainty::new().evaluate_all(data)?;
        let k = subset.len() as f64;
        let r_cf: f64 = subset.iter().map(|&a| su[a]).sum::<f64>() / k;
        let mut r_ff = 0.0;
        let mut pairs = 0.0;
        for (i, &a) in subset.iter().enumerate() {
            for &b in &subset[i + 1..] {
                if a == ci || b == ci {
                    continue;
                }
                r_ff += Self::su_between(data, a, b);
                pairs += 1.0;
            }
        }
        let r_ff = if pairs > 0.0 { r_ff / pairs } else { 0.0 };
        let denom = (k + k * (k - 1.0) * r_ff).sqrt();
        Ok(if denom <= 1e-12 {
            0.0
        } else {
            k * r_cf / denom
        })
    }
}

/// Wrapper evaluation (Kohavi & John 1997): cross-validated accuracy of
/// a classifier trained on the projected subset.
#[derive(Debug, Clone)]
pub struct WrapperSubset {
    classifier: String,
    folds: usize,
    seed: u64,
}

impl WrapperSubset {
    /// Create a wrapper around the named registry classifier.
    pub fn new(classifier: &str, folds: usize, seed: u64) -> WrapperSubset {
        WrapperSubset {
            classifier: classifier.to_string(),
            folds: folds.max(2),
            seed,
        }
    }
}

impl SubsetEvaluator for WrapperSubset {
    fn name(&self) -> &'static str {
        "Wrapper"
    }

    fn evaluate_subset(&self, data: &Dataset, subset: &[usize]) -> Result<f64> {
        let ci = data
            .class_index()
            .ok_or(AlgoError::Data(dm_data::DataError::NoClass))?;
        if subset.is_empty() {
            return Ok(0.0);
        }
        let mut keep = subset.to_vec();
        if !keep.contains(&ci) {
            keep.push(ci);
        }
        let projected = dm_data::filters::project(data, &keep)?;
        let eval = crate::eval::cross_validate(
            || crate::registry::make_classifier(&self.classifier),
            &projected,
            self.folds,
            self.seed,
        )?;
        Ok(eval.accuracy())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifiers::test_support::weather_nominal;

    #[test]
    fn cfs_prefers_informative_subset() {
        let ds = weather_nominal();
        let cfs = CfsSubset::new();
        let good = cfs.evaluate_subset(&ds, &[0, 2]).unwrap(); // outlook + humidity
        let bad = cfs.evaluate_subset(&ds, &[1]).unwrap(); // temperature
        assert!(good > bad, "CFS merit good {good} !> bad {bad}");
    }

    #[test]
    fn cfs_empty_subset_scores_zero() {
        let ds = weather_nominal();
        assert_eq!(CfsSubset::new().evaluate_subset(&ds, &[]).unwrap(), 0.0);
    }

    #[test]
    fn cfs_su_between_self_is_one() {
        let ds = weather_nominal();
        let su = CfsSubset::su_between(&ds, 0, 0);
        assert!((su - 1.0).abs() < 1e-9, "self-SU {su}");
    }

    #[test]
    fn cfs_redundancy_penalised() {
        // Duplicate an attribute: a subset of {attr, its copy} has the
        // same relevance but higher redundancy than the singleton.
        use dm_data::{Attribute, Dataset};
        let src = weather_nominal();
        let mut ds = Dataset::new(
            "dup",
            vec![
                Attribute::nominal("outlook", ["sunny", "overcast", "rainy"]),
                Attribute::nominal("outlook2", ["sunny", "overcast", "rainy"]),
                Attribute::nominal("play", ["yes", "no"]),
            ],
        );
        ds.set_class_index(Some(2)).unwrap();
        for r in 0..src.num_instances() {
            ds.push_row(vec![src.value(r, 0), src.value(r, 0), src.value(r, 4)])
                .unwrap();
        }
        let cfs = CfsSubset::new();
        let single = cfs.evaluate_subset(&ds, &[0]).unwrap();
        let dup = cfs.evaluate_subset(&ds, &[0, 1]).unwrap();
        // A perfectly redundant copy adds relevance and redundancy in
        // exact balance: the merit must not increase.
        assert!(
            dup <= single + 1e-9,
            "duplicated pair {dup} beats single {single}"
        );
    }

    #[test]
    fn wrapper_scores_are_accuracies() {
        let ds = dm_data::corpus::breast_cancer();
        let w = WrapperSubset::new("NaiveBayes", 3, 1);
        let nc = ds.attribute_index("node-caps").unwrap();
        let dm = ds.attribute_index("deg-malig").unwrap();
        let acc = w.evaluate_subset(&ds, &[nc, dm]).unwrap();
        assert!((0.0..=1.0).contains(&acc));
        assert!(acc > 0.6, "wrapper accuracy {acc}");
    }

    #[test]
    fn wrapper_empty_subset_zero() {
        let ds = weather_nominal();
        let w = WrapperSubset::new("ZeroR", 2, 1);
        assert_eq!(w.evaluate_subset(&ds, &[]).unwrap(), 0.0);
    }
}
