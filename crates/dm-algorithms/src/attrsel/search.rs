//! Search strategies over attribute subsets, including the genetic
//! search operator the paper highlights (§1, §5.3).

use super::evaluators::AttributeEvaluator;
use super::subset::SubsetEvaluator;
use crate::error::{AlgoError, Result};
use dm_data::Dataset;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// A search over attribute subsets driven by a [`SubsetEvaluator`].
pub trait SubsetSearch: Send {
    /// Search name.
    fn name(&self) -> &'static str;
    /// Return the selected attribute indices.
    fn search(&self, evaluator: &dyn SubsetEvaluator, data: &Dataset) -> Result<Vec<usize>>;
}

/// Candidate (non-class, non-string) attribute indices.
fn candidates(data: &Dataset) -> Result<Vec<usize>> {
    let ci = data
        .class_index()
        .ok_or(AlgoError::Data(dm_data::DataError::NoClass))?;
    Ok((0..data.num_attributes())
        .filter(|&a| a != ci && !data.attributes()[a].is_string())
        .collect())
}

// ---------------------------------------------------------------------
// Ranker (for single-attribute evaluators).
// ---------------------------------------------------------------------

/// Ranks attributes by a single-attribute evaluator's score.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ranker {
    /// Keep only the top `n` attributes (0 = all).
    pub top_n: usize,
}

impl Ranker {
    /// Create a ranker returning all attributes in rank order.
    pub fn new() -> Ranker {
        Ranker { top_n: 0 }
    }

    /// Create a ranker keeping the best `n` attributes.
    pub fn top(n: usize) -> Ranker {
        Ranker { top_n: n }
    }

    /// Rank attributes by the evaluator's scores (descending).
    pub fn rank(&self, evaluator: &dyn AttributeEvaluator, data: &Dataset) -> Result<Vec<usize>> {
        let scores = evaluator.evaluate_all(data)?;
        let mut order = candidates(data)?;
        order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite scores"));
        if self.top_n > 0 {
            order.truncate(self.top_n);
        }
        Ok(order)
    }
}

// ---------------------------------------------------------------------
// Greedy searches.
// ---------------------------------------------------------------------

/// Forward selection: start empty, add the best attribute while it
/// improves the merit.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyForward;

impl GreedyForward {
    /// Create the search.
    pub fn new() -> GreedyForward {
        GreedyForward
    }
}

impl SubsetSearch for GreedyForward {
    fn name(&self) -> &'static str {
        "GreedyForward"
    }

    fn search(&self, evaluator: &dyn SubsetEvaluator, data: &Dataset) -> Result<Vec<usize>> {
        let pool = candidates(data)?;
        let mut selected: Vec<usize> = Vec::new();
        let mut best = evaluator.evaluate_subset(data, &selected)?;
        loop {
            let mut improved = None;
            for &a in &pool {
                if selected.contains(&a) {
                    continue;
                }
                let mut trial = selected.clone();
                trial.push(a);
                let merit = evaluator.evaluate_subset(data, &trial)?;
                if merit > best + 1e-12 {
                    best = merit;
                    improved = Some(a);
                }
            }
            match improved {
                Some(a) => selected.push(a),
                None => break,
            }
        }
        if selected.is_empty() {
            // Never return nothing: fall back to the single best attribute.
            let mut top = (0.0f64, pool[0]);
            for &a in &pool {
                let merit = evaluator.evaluate_subset(data, &[a])?;
                if merit > top.0 {
                    top = (merit, a);
                }
            }
            selected.push(top.1);
        }
        selected.sort_unstable();
        Ok(selected)
    }
}

/// Backward elimination: start full, drop attributes while merit
/// improves (or stays equal, favouring smaller subsets).
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyBackward;

impl GreedyBackward {
    /// Create the search.
    pub fn new() -> GreedyBackward {
        GreedyBackward
    }
}

impl SubsetSearch for GreedyBackward {
    fn name(&self) -> &'static str {
        "GreedyBackward"
    }

    fn search(&self, evaluator: &dyn SubsetEvaluator, data: &Dataset) -> Result<Vec<usize>> {
        let mut selected = candidates(data)?;
        let mut best = evaluator.evaluate_subset(data, &selected)?;
        loop {
            if selected.len() <= 1 {
                break;
            }
            let mut improved: Option<usize> = None;
            for (i, _) in selected.iter().enumerate() {
                let mut trial = selected.clone();
                trial.remove(i);
                let merit = evaluator.evaluate_subset(data, &trial)?;
                if merit >= best - 1e-12 {
                    best = merit.max(best);
                    improved = Some(i);
                    break;
                }
            }
            match improved {
                Some(i) => {
                    selected.remove(i);
                }
                None => break,
            }
        }
        Ok(selected)
    }
}

/// Best-first search with backtracking (WEKA's default subset search):
/// forward expansion from the best open node, stopping after
/// `max_stale` consecutive non-improving expansions.
#[derive(Debug, Clone, Copy)]
pub struct BestFirst {
    /// Consecutive non-improving expansions before stopping.
    pub max_stale: usize,
}

impl Default for BestFirst {
    fn default() -> Self {
        BestFirst { max_stale: 5 }
    }
}

impl BestFirst {
    /// Create with WEKA's default patience (5).
    pub fn new() -> BestFirst {
        BestFirst::default()
    }
}

impl SubsetSearch for BestFirst {
    fn name(&self) -> &'static str {
        "BestFirst"
    }

    fn search(&self, evaluator: &dyn SubsetEvaluator, data: &Dataset) -> Result<Vec<usize>> {
        use std::collections::BTreeSet;
        let pool = candidates(data)?;
        let mut open: Vec<(f64, Vec<usize>)> = vec![(0.0, Vec::new())];
        let mut visited: BTreeSet<Vec<usize>> = BTreeSet::new();
        let mut best_subset: Vec<usize> = Vec::new();
        let mut best_merit = 0.0f64;
        let mut stale = 0usize;

        while let Some(idx) = open
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("finite"))
            .map(|(i, _)| i)
        {
            let (_, node) = open.swap_remove(idx);
            let mut improved_any = false;
            for &a in &pool {
                if node.contains(&a) {
                    continue;
                }
                let mut child = node.clone();
                child.push(a);
                child.sort_unstable();
                if !visited.insert(child.clone()) {
                    continue;
                }
                let merit = evaluator.evaluate_subset(data, &child)?;
                if merit > best_merit + 1e-12 {
                    best_merit = merit;
                    best_subset = child.clone();
                    improved_any = true;
                }
                open.push((merit, child));
            }
            stale = if improved_any { 0 } else { stale + 1 };
            if stale >= self.max_stale || open.is_empty() {
                break;
            }
        }
        if best_subset.is_empty() && !pool.is_empty() {
            best_subset.push(pool[0]);
        }
        Ok(best_subset)
    }
}

// ---------------------------------------------------------------------
// Genetic search.
// ---------------------------------------------------------------------

/// Genetic search (Goldberg-style simple GA over subset bitmasks) — the
/// operator the paper names explicitly.
#[derive(Debug, Clone, Copy)]
pub struct GeneticSearch {
    /// Population size.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Per-bit mutation probability.
    pub mutation: f64,
    /// Crossover probability.
    pub crossover: f64,
    /// RNG seed.
    pub seed: u64,
}

impl GeneticSearch {
    /// Create with WEKA-like defaults (population 20, 20 generations).
    pub fn new(seed: u64) -> GeneticSearch {
        GeneticSearch {
            population: 20,
            generations: 20,
            mutation: 0.033,
            crossover: 0.6,
            seed,
        }
    }
}

impl SubsetSearch for GeneticSearch {
    fn name(&self) -> &'static str {
        "GeneticSearch"
    }

    fn search(&self, evaluator: &dyn SubsetEvaluator, data: &Dataset) -> Result<Vec<usize>> {
        let pool = candidates(data)?;
        let n = pool.len();
        if n == 0 {
            return Err(AlgoError::Unsupported("no candidate attributes".into()));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let decode = |mask: &[bool]| -> Vec<usize> {
            pool.iter()
                .zip(mask)
                .filter(|(_, &m)| m)
                .map(|(&a, _)| a)
                .collect()
        };
        let fitness_of = |mask: &[bool]| -> Result<f64> {
            let subset = decode(mask);
            if subset.is_empty() {
                return Ok(0.0);
            }
            evaluator.evaluate_subset(data, &subset)
        };

        // Initial population: random masks with expected half density.
        let mut population: Vec<Vec<bool>> = (0..self.population)
            .map(|_| (0..n).map(|_| rng.random_bool(0.5)).collect())
            .collect();
        let mut fitness: Vec<f64> = population
            .iter()
            .map(|m| fitness_of(m))
            .collect::<Result<_>>()?;

        let mut best_mask = population[0].clone();
        let mut best_fit = fitness[0];
        for (m, &f) in population.iter().zip(&fitness) {
            if f > best_fit {
                best_fit = f;
                best_mask = m.clone();
            }
        }

        for _gen in 0..self.generations {
            let mut next: Vec<Vec<bool>> = Vec::with_capacity(self.population);
            // Elitism: carry the best forward.
            next.push(best_mask.clone());
            while next.len() < self.population {
                // Tournament selection (size 2).
                let mut pick = || -> usize {
                    let a = rng.random_range(0..population.len());
                    let b = rng.random_range(0..population.len());
                    if fitness[a] >= fitness[b] {
                        a
                    } else {
                        b
                    }
                };
                let (pa, pb) = (pick(), pick());
                let mut child = population[pa].clone();
                if rng.random_bool(self.crossover) {
                    let cut = rng.random_range(0..n);
                    child[cut..].copy_from_slice(&population[pb][cut..]);
                }
                for bit in child.iter_mut() {
                    if rng.random_bool(self.mutation) {
                        *bit = !*bit;
                    }
                }
                next.push(child);
            }
            population = next;
            fitness = population
                .iter()
                .map(|m| fitness_of(m))
                .collect::<Result<_>>()?;
            for (m, &f) in population.iter().zip(&fitness) {
                if f > best_fit {
                    best_fit = f;
                    best_mask = m.clone();
                }
            }
        }
        let mut selected = decode(&best_mask);
        if selected.is_empty() {
            selected.push(pool[0]);
        }
        Ok(selected)
    }
}

// ---------------------------------------------------------------------
// Random and exhaustive searches.
// ---------------------------------------------------------------------

/// Random search: evaluate `samples` random subsets, keep the best.
#[derive(Debug, Clone, Copy)]
pub struct RandomSearch {
    /// Number of random subsets evaluated.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl RandomSearch {
    /// Create with an explicit sample budget.
    pub fn new(samples: usize, seed: u64) -> RandomSearch {
        RandomSearch {
            samples: samples.max(1),
            seed,
        }
    }
}

impl SubsetSearch for RandomSearch {
    fn name(&self) -> &'static str {
        "RandomSearch"
    }

    fn search(&self, evaluator: &dyn SubsetEvaluator, data: &Dataset) -> Result<Vec<usize>> {
        let pool = candidates(data)?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut best: (f64, Vec<usize>) = (f64::NEG_INFINITY, vec![pool[0]]);
        for _ in 0..self.samples {
            let subset: Vec<usize> = pool
                .iter()
                .copied()
                .filter(|_| rng.random_bool(0.5))
                .collect();
            if subset.is_empty() {
                continue;
            }
            let merit = evaluator.evaluate_subset(data, &subset)?;
            if merit > best.0 {
                best = (merit, subset);
            }
        }
        Ok(best.1)
    }
}

/// Exhaustive search over all non-empty subsets (guarded to ≤ 20
/// candidate attributes).
#[derive(Debug, Clone, Copy, Default)]
pub struct Exhaustive;

impl Exhaustive {
    /// Create the search.
    pub fn new() -> Exhaustive {
        Exhaustive
    }
}

impl SubsetSearch for Exhaustive {
    fn name(&self) -> &'static str {
        "Exhaustive"
    }

    fn search(&self, evaluator: &dyn SubsetEvaluator, data: &Dataset) -> Result<Vec<usize>> {
        let pool = candidates(data)?;
        if pool.len() > 20 {
            return Err(AlgoError::Unsupported(format!(
                "exhaustive search over {} attributes is infeasible",
                pool.len()
            )));
        }
        let mut best: (f64, Vec<usize>) = (f64::NEG_INFINITY, Vec::new());
        for mask in 1usize..(1 << pool.len()) {
            let subset: Vec<usize> = pool
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &a)| a)
                .collect();
            let merit = evaluator.evaluate_subset(data, &subset)?;
            if merit > best.0 || (merit == best.0 && subset.len() < best.1.len()) {
                best = (merit, subset);
            }
        }
        Ok(best.1)
    }
}

#[cfg(test)]
mod tests {
    use super::super::evaluators::InfoGainEval;
    use super::super::subset::CfsSubset;
    use super::*;
    use crate::classifiers::test_support::weather_nominal;

    #[test]
    fn ranker_orders_weather() {
        let ds = weather_nominal();
        let order = Ranker::new().rank(&InfoGainEval::new(), &ds).unwrap();
        assert_eq!(order[0], 0, "outlook must rank first");
        assert_eq!(order.len(), 4);
        let top2 = Ranker::top(2).rank(&InfoGainEval::new(), &ds).unwrap();
        assert_eq!(top2.len(), 2);
        assert_eq!(top2[0], 0);
    }

    #[test]
    fn greedy_forward_finds_informative_subset() {
        let ds = weather_nominal();
        let picked = GreedyForward::new().search(&CfsSubset::new(), &ds).unwrap();
        assert!(
            picked.contains(&0),
            "outlook should be selected: {picked:?}"
        );
    }

    #[test]
    fn greedy_backward_returns_nonempty() {
        let ds = weather_nominal();
        let picked = GreedyBackward::new()
            .search(&CfsSubset::new(), &ds)
            .unwrap();
        assert!(!picked.is_empty());
    }

    #[test]
    fn best_first_matches_exhaustive_on_small_data() {
        let ds = weather_nominal();
        let cfs = CfsSubset::new();
        let bf = BestFirst::new().search(&cfs, &ds).unwrap();
        let ex = Exhaustive::new().search(&cfs, &ds).unwrap();
        let bf_merit = cfs.evaluate_subset(&ds, &bf).unwrap();
        let ex_merit = cfs.evaluate_subset(&ds, &ex).unwrap();
        assert!(
            (bf_merit - ex_merit).abs() < 1e-9,
            "bf {bf_merit} vs ex {ex_merit}"
        );
    }

    #[test]
    fn genetic_search_close_to_exhaustive() {
        let ds = weather_nominal();
        let cfs = CfsSubset::new();
        let ga = GeneticSearch::new(11).search(&cfs, &ds).unwrap();
        let ex = Exhaustive::new().search(&cfs, &ds).unwrap();
        let ga_merit = cfs.evaluate_subset(&ds, &ga).unwrap();
        let ex_merit = cfs.evaluate_subset(&ds, &ex).unwrap();
        assert!(
            ga_merit >= 0.9 * ex_merit,
            "GA merit {ga_merit} vs exhaustive {ex_merit}"
        );
    }

    #[test]
    fn genetic_search_deterministic_per_seed() {
        let ds = weather_nominal();
        let cfs = CfsSubset::new();
        let a = GeneticSearch::new(5).search(&cfs, &ds).unwrap();
        let b = GeneticSearch::new(5).search(&cfs, &ds).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn random_search_returns_valid_subset() {
        let ds = weather_nominal();
        let picked = RandomSearch::new(50, 3)
            .search(&CfsSubset::new(), &ds)
            .unwrap();
        assert!(!picked.is_empty());
        assert!(picked.iter().all(|&a| a < 4));
    }

    #[test]
    fn exhaustive_guard() {
        use dm_data::{Attribute, Dataset};
        let attrs: Vec<Attribute> = (0..22)
            .map(|i| Attribute::nominal(format!("a{i}"), ["x", "y"]))
            .chain([Attribute::nominal("c", ["p", "n"])])
            .collect();
        let mut ds = Dataset::new("wide", attrs);
        ds.set_class_index(Some(22)).unwrap();
        ds.push_row(vec![0.0; 23]).unwrap();
        ds.push_row(vec![1.0; 23]).unwrap();
        assert!(Exhaustive::new().search(&CfsSubset::new(), &ds).is_err());
    }

    #[test]
    fn genetic_on_breast_cancer_keeps_node_caps() {
        let ds = dm_data::corpus::breast_cancer();
        let picked = GeneticSearch::new(7)
            .search(&CfsSubset::new(), &ds)
            .unwrap();
        let nc = ds.attribute_index("node-caps").unwrap();
        let dm = ds.attribute_index("deg-malig").unwrap();
        assert!(
            picked.contains(&nc) || picked.contains(&dm),
            "GA dropped both strong attributes: {picked:?}"
        );
    }
}
