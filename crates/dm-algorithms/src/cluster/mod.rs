//! Clustering algorithms.
//!
//! The paper's clustering Web Services ("Web Services have been
//! developed and deployed for a variety of different clustering
//! algorithms", §4.1, with Cobweb as the worked example) are backed by
//! these implementations. All ignore the class attribute if one is set,
//! so labelled corpora can be clustered and scored against ground truth.

mod cobweb;
mod em;
mod farthest_first;
mod hierarchical;
mod incremental_kmeans;
mod kmeans;

pub use cobweb::Cobweb;
pub use em::EM;
pub use farthest_first::FarthestFirst;
pub use hierarchical::{Hierarchical, Linkage};
pub use incremental_kmeans::IncrementalKMeans;
pub use kmeans::KMeans;

use crate::error::{AlgoError, Result};
use crate::options::Configurable;
use crate::state::Stateful;
use crate::tree::TreeModel;
use dm_data::{Dataset, Value};

/// A trainable clustering algorithm.
pub trait Clusterer: Configurable + Stateful + Send {
    /// Registry name, e.g. `"SimpleKMeans"`.
    fn name(&self) -> &'static str;

    /// Build the clustering from `data`.
    fn build(&mut self, data: &Dataset) -> Result<()>;

    /// Cluster index assigned to row `row` of `data`.
    fn cluster_instance(&self, data: &Dataset, row: usize) -> Result<usize>;

    /// Number of clusters in the built model.
    fn num_clusters(&self) -> Result<usize>;

    /// Human-readable model description (the paper's "textual output
    /// describing the clustering results").
    fn describe(&self) -> String;

    /// Hierarchy rendering for tree-shaped clusterers (the paper's
    /// `getCobwebGraph` operation). `None` for flat clusterers.
    fn tree_model(&self) -> Option<TreeModel> {
        None
    }
}

/// Shared distance machinery: range-normalised numeric differences and
/// 0/1 nominal overlap, with missing values contributing the maximum
/// difference — the same convention as `IBk`.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct DistanceSpace {
    pub ranges: Vec<Option<(f64, f64)>>,
    pub nominal: Vec<bool>,
    pub skip: Vec<bool>,
}

impl DistanceSpace {
    /// Fit ranges from data, skipping the class attribute.
    pub fn fit(data: &Dataset) -> DistanceSpace {
        let class = data.class_index();
        let n_attrs = data.num_attributes();
        let mut ranges = Vec::with_capacity(n_attrs);
        let mut nominal = Vec::with_capacity(n_attrs);
        let mut skip = Vec::with_capacity(n_attrs);
        for a in 0..n_attrs {
            let attr = &data.attributes()[a];
            nominal.push(attr.is_nominal());
            skip.push(Some(a) == class || attr.is_string());
            if attr.is_numeric() {
                let mut min = f64::INFINITY;
                let mut max = f64::NEG_INFINITY;
                for r in 0..data.num_instances() {
                    let v = data.value(r, a);
                    if !Value::is_missing(v) {
                        min = min.min(v);
                        max = max.max(v);
                    }
                }
                ranges.push((min <= max).then_some((min, max)));
            } else {
                ranges.push(None);
            }
        }
        DistanceSpace {
            ranges,
            nominal,
            skip,
        }
    }

    /// Normalise one raw value for attribute `a` into `[0, 1]`.
    #[inline]
    pub fn norm(&self, a: usize, v: f64) -> f64 {
        match self.ranges[a] {
            Some((min, max)) if max > min => ((v - min) / (max - min)).clamp(0.0, 1.0),
            _ => 0.0,
        }
    }

    /// Distance between a raw data row and a normalised centroid
    /// (`centroid[a]` is the normalised mean for numeric attributes and
    /// the modal label index for nominal ones).
    pub fn distance_to_centroid(&self, data: &Dataset, row: usize, centroid: &[f64]) -> f64 {
        let mut d = 0.0;
        for a in 0..centroid.len() {
            if self.skip[a] {
                continue;
            }
            let v = data.value(row, a);
            let c = centroid[a];
            let diff = if Value::is_missing(v) || Value::is_missing(c) {
                1.0
            } else if self.nominal[a] {
                if Value::as_index(v) == Value::as_index(c) {
                    0.0
                } else {
                    1.0
                }
            } else {
                self.norm(a, v) - c
            };
            d += diff * diff;
        }
        d.sqrt()
    }

    /// Distance between two raw data rows (possibly across datasets).
    pub fn distance_rows(
        &self,
        a_data: &Dataset,
        a_row: usize,
        b_data: &Dataset,
        b_row: usize,
    ) -> f64 {
        let mut d = 0.0;
        for a in 0..self.skip.len() {
            if self.skip[a] {
                continue;
            }
            let x = a_data.value(a_row, a);
            let y = b_data.value(b_row, a);
            let diff = if Value::is_missing(x) || Value::is_missing(y) {
                1.0
            } else if self.nominal[a] {
                if Value::as_index(x) == Value::as_index(y) {
                    0.0
                } else {
                    1.0
                }
            } else {
                self.norm(a, x) - self.norm(a, y)
            };
            d += diff * diff;
        }
        d.sqrt()
    }

    /// Encode into a state writer.
    pub fn encode(&self, w: &mut crate::state::StateWriter) {
        w.put_usize(self.ranges.len());
        for r in &self.ranges {
            match r {
                None => w.put_bool(false),
                Some((min, max)) => {
                    w.put_bool(true);
                    w.put_f64(*min);
                    w.put_f64(*max);
                }
            }
        }
        w.put_usize(self.nominal.len());
        for &b in &self.nominal {
            w.put_bool(b);
        }
        w.put_usize(self.skip.len());
        for &b in &self.skip {
            w.put_bool(b);
        }
    }

    /// Decode from a state reader.
    pub fn decode(r: &mut crate::state::StateReader<'_>) -> Result<DistanceSpace> {
        let n = r.get_usize()?;
        if n > 1 << 20 {
            return Err(AlgoError::BadState("absurd range count".into()));
        }
        let ranges = (0..n)
            .map(|_| -> Result<Option<(f64, f64)>> {
                Ok(if r.get_bool()? {
                    Some((r.get_f64()?, r.get_f64()?))
                } else {
                    None
                })
            })
            .collect::<Result<_>>()?;
        let nn = r.get_usize()?;
        if nn > 1 << 20 {
            return Err(AlgoError::BadState("absurd nominal count".into()));
        }
        let nominal = (0..nn).map(|_| r.get_bool()).collect::<Result<_>>()?;
        let ns = r.get_usize()?;
        if ns > 1 << 20 {
            return Err(AlgoError::BadState("absurd skip count".into()));
        }
        let skip = (0..ns).map(|_| r.get_bool()).collect::<Result<_>>()?;
        Ok(DistanceSpace {
            ranges,
            nominal,
            skip,
        })
    }
}

/// Validate clustering input: at least one instance and one usable
/// attribute.
pub(crate) fn check_clusterable(data: &Dataset) -> Result<()> {
    if data.num_instances() == 0 {
        return Err(AlgoError::Data(dm_data::DataError::Empty));
    }
    let class = data.class_index();
    let usable =
        (0..data.num_attributes()).any(|a| Some(a) != class && !data.attributes()[a].is_string());
    if !usable {
        return Err(AlgoError::Unsupported(
            "no usable attributes to cluster on".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
pub(crate) mod test_support {
    use dm_data::corpus::{gaussian_blobs, BlobSpec};
    use dm_data::Dataset;

    /// Three well-separated 2-D blobs (ground truth in the class attr).
    pub fn three_blobs() -> Dataset {
        gaussian_blobs(
            &[
                BlobSpec {
                    center: vec![0.0, 0.0],
                    stddev: 0.3,
                    count: 50,
                },
                BlobSpec {
                    center: vec![10.0, 0.0],
                    stddev: 0.3,
                    count: 50,
                },
                BlobSpec {
                    center: vec![0.0, 10.0],
                    stddev: 0.3,
                    count: 50,
                },
            ],
            42,
        )
    }

    /// Fraction of instance pairs whose same/different-cluster relation
    /// agrees with ground truth (Rand index).
    pub fn rand_index(ds: &Dataset, assignments: &[usize]) -> f64 {
        let ci = ds.class_index().expect("blobs have ground truth");
        let n = ds.num_instances();
        let mut agree = 0usize;
        let mut total = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                let same_true = ds.value(i, ci) == ds.value(j, ci);
                let same_pred = assignments[i] == assignments[j];
                if same_true == same_pred {
                    agree += 1;
                }
                total += 1;
            }
        }
        agree as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_data::{Attribute, Dataset};

    #[test]
    fn distance_space_skips_class() {
        let mut ds = Dataset::new(
            "t",
            vec![Attribute::numeric("x"), Attribute::nominal("c", ["a", "b"])],
        );
        ds.set_class_index(Some(1)).unwrap();
        ds.push_row(vec![0.0, 0.0]).unwrap();
        ds.push_row(vec![10.0, 1.0]).unwrap();
        let space = DistanceSpace::fit(&ds);
        assert!(space.skip[1]);
        // Distance ignores the differing class label.
        let d = space.distance_rows(&ds, 0, &ds, 1);
        assert!((d - 1.0).abs() < 1e-12); // normalised numeric diff = 1
    }

    #[test]
    fn missing_is_maximal() {
        let mut ds = Dataset::new("t", vec![Attribute::numeric("x")]);
        ds.push_row(vec![5.0]).unwrap();
        ds.push_row(vec![f64::NAN]).unwrap();
        ds.push_row(vec![5.0]).unwrap();
        let space = DistanceSpace::fit(&ds);
        assert_eq!(space.distance_rows(&ds, 0, &ds, 1), 1.0);
        assert_eq!(space.distance_rows(&ds, 0, &ds, 2), 0.0);
    }

    #[test]
    fn state_roundtrip() {
        let mut ds = Dataset::new(
            "t",
            vec![Attribute::numeric("x"), Attribute::nominal("n", ["u", "v"])],
        );
        ds.push_row(vec![1.0, 0.0]).unwrap();
        ds.push_row(vec![3.0, 1.0]).unwrap();
        let space = DistanceSpace::fit(&ds);
        let mut w = crate::state::StateWriter::new();
        space.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = crate::state::StateReader::new(&bytes);
        let space2 = DistanceSpace::decode(&mut r).unwrap();
        assert_eq!(space, space2);
    }

    #[test]
    fn clusterable_checks() {
        let ds = Dataset::new("e", vec![Attribute::numeric("x")]);
        assert!(check_clusterable(&ds).is_err()); // empty
        let mut ds2 = Dataset::new("c", vec![Attribute::nominal("c", ["a", "b"])]);
        ds2.set_class_index(Some(0)).unwrap();
        ds2.push_labels(&["a"]).unwrap();
        assert!(check_clusterable(&ds2).is_err()); // only the class attr
    }
}
